#include "analysis/registry.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "api/factory.h"
#include "common/string_util.h"
#include "exec/batch_detector.h"

namespace freqywm {

namespace {
constexpr char kMagicV1[] = "freqywm-registry v1";
constexpr char kMagicV2[] = "freqywm-registry v2";

/// Overflow-safe parse of a size field. The previous `std::stoull` threw
/// an uncaught `std::out_of_range` on a 20+-digit count — malformed
/// registry text could terminate the process instead of returning a
/// status. Expects `text` to be digits-only (pre-checked by `IsInteger`
/// plus a sign rejection).
Result<size_t> ParseSizeField(const std::string& text, const char* what) {
  errno = 0;
  uint64_t value = std::strtoull(text.c_str(), nullptr, 10);
  if (errno == ERANGE ||
      value > std::numeric_limits<size_t>::max()) {  // 32-bit size_t
    return Status::InvalidArgument(std::string(what) + " '" + text +
                                   "' overflows this build's size_t");
  }
  return static_cast<size_t>(value);
}

void SortStrongestFirst(std::vector<TraceMatch>& matches) {
  std::stable_sort(matches.begin(), matches.end(),
                   [](const TraceMatch& a, const TraceMatch& b) {
                     return a.detection.verified_fraction >
                            b.detection.verified_fraction;
                   });
}

}  // namespace

Status FingerprintRegistry::Register(const std::string& buyer_id,
                                     SchemeKey key) {
  if (buyer_id.empty() || buyer_id.find('\n') != std::string::npos) {
    return Status::InvalidArgument("buyer id must be a non-empty line");
  }
  if (key.scheme.empty() ||
      key.scheme.find_first_of(" \t\n") != std::string::npos) {
    return Status::InvalidArgument(
        "scheme tag must be non-empty without whitespace");
  }
  if (!buyer_ids_.insert(buyer_id).second) {
    return Status::InvalidArgument("buyer '" + buyer_id +
                                   "' already registered");
  }
  records_.push_back(FingerprintRecord{buyer_id, std::move(key)});
  return Status::OK();
}

Status FingerprintRegistry::Register(const std::string& buyer_id,
                                     const WatermarkSecrets& secrets) {
  return Register(buyer_id, SchemeKey{"freqywm", secrets.Serialize()});
}

namespace {

/// Shared trace loop; `options_for` picks the detection settings per
/// record (fixed caller options vs the scheme's recommended ones).
template <typename OptionsFor>
std::vector<TraceMatch> TraceRecords(
    const std::vector<FingerprintRecord>& records, const Histogram& suspect,
    const OptionsFor& options_for) {
  SchemeCache cache;
  std::vector<TraceMatch> matches;
  for (const auto& record : records) {
    const WatermarkScheme* scheme = cache.Get(record.key.scheme);
    if (!scheme) continue;  // scheme not registered in the factory
    DetectResult r =
        scheme->Detect(suspect, record.key, options_for(*scheme, record));
    if (r.accepted) {
      matches.push_back(TraceMatch{record.buyer_id, record.key.scheme, r});
    }
  }
  SortStrongestFirst(matches);
  return matches;
}

}  // namespace

std::vector<TraceMatch> FingerprintRegistry::Trace(
    const Histogram& suspect, const DetectOptions& options) const {
  return TraceRecords(records_, suspect,
                      [&options](const WatermarkScheme&,
                                 const FingerprintRecord&) {
                        return options;
                      });
}

std::vector<TraceMatch> FingerprintRegistry::TraceWithRecommendedOptions(
    const Histogram& suspect) const {
  return TraceRecords(records_, suspect,
                      [](const WatermarkScheme& scheme,
                         const FingerprintRecord& record) {
                        return scheme.RecommendedDetectOptions(record.key);
                      });
}

std::vector<std::vector<TraceMatch>> FingerprintRegistry::TraceSuspects(
    const std::vector<Histogram>& suspects,
    const TraceOptions& options) const {
  std::vector<SchemeKey> keys;
  keys.reserve(records_.size());
  for (const auto& record : records_) keys.push_back(record.key);

  BatchDetectOptions batch;
  batch.num_threads = options.num_threads;
  batch.use_recommended_options = options.use_recommended_options;
  batch.detect_options = options.detect_options;
  batch.key_cache = options.key_cache;
  std::vector<std::vector<DetectResult>> detections =
      BatchDetector(batch).Run(suspects, std::move(keys));

  // Reduce each suspect's row exactly as the serial trace does: keep the
  // accepted records in registration order, then sort strongest first
  // (stable, so registration order breaks ties). Unregistered schemes
  // yield default (rejected) results and drop out, matching the serial
  // skip.
  std::vector<std::vector<TraceMatch>> matches(suspects.size());
  for (size_t i = 0; i < suspects.size(); ++i) {
    for (size_t j = 0; j < records_.size(); ++j) {
      if (!detections[i][j].accepted) continue;
      matches[i].push_back(TraceMatch{records_[j].buyer_id,
                                      records_[j].key.scheme,
                                      detections[i][j]});
    }
    SortStrongestFirst(matches[i]);
  }
  return matches;
}

std::string FingerprintRegistry::Serialize() const {
  std::ostringstream out;
  out << kMagicV2 << '\n';
  out << "records " << records_.size() << '\n';
  for (const auto& record : records_) {
    // v2 counts payload BYTES (not lines) so payloads of out-of-tree
    // schemes round-trip byte-exact whether or not they end in '\n'; a
    // separator newline (outside the count) follows the payload.
    out << "buyer " << record.key.payload.size() << ' '
        << record.key.scheme << ' ' << record.buyer_id << '\n';
    out << record.key.payload << '\n';
  }
  return out.str();
}

Result<FingerprintRegistry> FingerprintRegistry::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty registry text");
  }
  std::string_view magic = StripWhitespace(line);
  bool v1 = magic == kMagicV1;
  if (!v1 && magic != kMagicV2) {
    return Status::Corruption("bad registry magic");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing records line");
  }
  std::vector<std::string> head =
      Split(std::string(StripWhitespace(line)), ' ');
  if (head.size() != 2 || head[0] != "records" || !IsInteger(head[1]) ||
      head[1][0] == '-' || head[1][0] == '+') {
    return Status::Corruption("malformed records line");
  }
  FREQYWM_ASSIGN_OR_RETURN(size_t n,
                           ParseSizeField(head[1], "records count"));

  FingerprintRegistry registry;
  for (size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("truncated registry");
    }
    // v2: "buyer <payload-bytes> <scheme> <buyer id...>"
    // v1: "buyer <payload-lines> <buyer id...>" (implicitly freqywm)
    std::vector<std::string> parts = Split(line, ' ');
    size_t min_parts = v1 ? 3 : 4;
    if (parts.size() < min_parts || parts[0] != "buyer" ||
        !IsInteger(parts[1]) || parts[1][0] == '-' || parts[1][0] == '+') {
      return Status::Corruption("malformed buyer line");
    }
    FREQYWM_ASSIGN_OR_RETURN(size_t payload_size,
                             ParseSizeField(parts[1], "payload size"));
    std::string scheme = v1 ? "freqywm" : parts[2];
    size_t id_offset = parts[0].size() + 1 + parts[1].size() + 1;
    if (!v1) id_offset += parts[2].size() + 1;
    std::string buyer_id = line.substr(id_offset);

    std::string payload;
    if (v1) {
      for (size_t l = 0; l < payload_size; ++l) {
        if (!std::getline(in, line)) {
          return Status::Corruption("truncated key for '" + buyer_id + "'");
        }
        payload += line;
        payload += '\n';
      }
    } else {
      if (payload_size > text.size()) {
        return Status::Corruption("payload size exceeds registry text");
      }
      payload.resize(payload_size);
      if (payload_size > 0 &&
          !in.read(&payload[0], static_cast<std::streamsize>(payload_size))) {
        return Status::Corruption("truncated key for '" + buyer_id + "'");
      }
      if (in.get() != '\n') {
        return Status::Corruption("missing payload separator for '" +
                                  buyer_id + "'");
      }
    }
    if (scheme == "freqywm") {
      // FreqyWM payloads are structured secrets; validate them eagerly so
      // corruption surfaces at load time, exactly as the v1 format did.
      FREQYWM_RETURN_NOT_OK(WatermarkSecrets::Deserialize(payload).status());
    }
    FREQYWM_RETURN_NOT_OK(
        registry.Register(buyer_id, SchemeKey{scheme, std::move(payload)}));
  }

  // Round-trip hardening (ISSUE 5): anything after the declared records
  // was previously accepted and silently dropped — an undercounting
  // `records` header would make Deserialize(Serialize(x)) lossy without a
  // whisper. Only trailing whitespace (the serializer's final newline) is
  // legitimate.
  char trailing;
  while (in.get(trailing)) {
    if (!std::isspace(static_cast<unsigned char>(trailing))) {
      return Status::InvalidArgument(
          "trailing data after the declared records");
    }
  }
  return registry;
}

}  // namespace freqywm
