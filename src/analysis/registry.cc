#include "analysis/registry.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace freqywm {

namespace {
constexpr char kMagic[] = "freqywm-registry v1";
}  // namespace

Status FingerprintRegistry::Register(const std::string& buyer_id,
                                     WatermarkSecrets secrets) {
  if (buyer_id.empty() || buyer_id.find('\n') != std::string::npos) {
    return Status::InvalidArgument("buyer id must be a non-empty line");
  }
  for (const auto& r : records_) {
    if (r.buyer_id == buyer_id) {
      return Status::InvalidArgument("buyer '" + buyer_id +
                                     "' already registered");
    }
  }
  records_.push_back(FingerprintRecord{buyer_id, std::move(secrets)});
  return Status::OK();
}

std::vector<TraceMatch> FingerprintRegistry::Trace(
    const Histogram& suspect, const DetectOptions& options) const {
  std::vector<TraceMatch> matches;
  for (const auto& record : records_) {
    DetectResult r = DetectWatermark(suspect, record.secrets, options);
    if (r.accepted) {
      matches.push_back(TraceMatch{record.buyer_id, r});
    }
  }
  std::stable_sort(matches.begin(), matches.end(),
                   [](const TraceMatch& a, const TraceMatch& b) {
                     return a.detection.verified_fraction >
                            b.detection.verified_fraction;
                   });
  return matches;
}

std::string FingerprintRegistry::Serialize() const {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "records " << records_.size() << '\n';
  for (const auto& record : records_) {
    std::string secrets = record.secrets.Serialize();
    size_t lines = static_cast<size_t>(
        std::count(secrets.begin(), secrets.end(), '\n'));
    out << "buyer " << lines << ' ' << record.buyer_id << '\n';
    out << secrets;
  }
  return out.str();
}

Result<FingerprintRegistry> FingerprintRegistry::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::Corruption("bad registry magic");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing records line");
  }
  std::vector<std::string> head = Split(std::string(StripWhitespace(line)), ' ');
  if (head.size() != 2 || head[0] != "records" || !IsInteger(head[1])) {
    return Status::Corruption("malformed records line");
  }
  size_t n = std::stoull(head[1]);

  FingerprintRegistry registry;
  for (size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("truncated registry");
    }
    // "buyer <secret-lines> <buyer id...>"
    std::vector<std::string> parts = Split(line, ' ');
    if (parts.size() < 3 || parts[0] != "buyer" || !IsInteger(parts[1])) {
      return Status::Corruption("malformed buyer line");
    }
    size_t secret_lines = std::stoull(parts[1]);
    std::string buyer_id =
        line.substr(parts[0].size() + 1 + parts[1].size() + 1);

    std::string secrets_text;
    for (size_t l = 0; l < secret_lines; ++l) {
      if (!std::getline(in, line)) {
        return Status::Corruption("truncated secrets for '" + buyer_id +
                                  "'");
      }
      secrets_text += line;
      secrets_text += '\n';
    }
    FREQYWM_ASSIGN_OR_RETURN(WatermarkSecrets secrets,
                             WatermarkSecrets::Deserialize(secrets_text));
    FREQYWM_RETURN_NOT_OK(registry.Register(buyer_id, std::move(secrets)));
  }
  return registry;
}

}  // namespace freqywm
