#ifndef FREQYWM_ANALYSIS_WAL_H_
#define FREQYWM_ANALYSIS_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace freqywm {

/// When the write-ahead log flushes appended records to stable storage
/// (DESIGN.md §15). The policy trades acknowledged-write durability
/// against escrow throughput; `bench_durability` measures the curve.
enum class WalSyncPolicy {
  /// `fsync` after every `Append` — an acknowledged record is durable
  /// before the caller hears OK. The crash-recovery invariant
  /// ("recovery yields every acknowledged record") holds at this level.
  kEveryRecord,
  /// Group commit: records accumulate unsynced until the bounded window
  /// (`group_commit_max_records` / `group_commit_max_bytes`) fills, then
  /// one `fsync` covers the batch. A crash may lose at most one window
  /// of acknowledged records.
  kGroupCommit,
  /// Never sync implicitly; only an explicit `Sync()` (or the OS cache
  /// writeback) makes records durable. For bulk loads that checkpoint
  /// at the end.
  kNone,
};

struct WalOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kEveryRecord;

  /// Bounds of the group-commit unsynced window (`kGroupCommit` only).
  /// Crossing either bound forces a sync inside the crossing `Append`.
  size_t group_commit_max_records = 64;
  size_t group_commit_max_bytes = 1 << 20;
};

/// First bytes of every WAL file; a file that does not start with this
/// (or a crash-torn prefix of it) is typed `Corruption` on open.
inline constexpr char kWalMagic[] = "freqywm-wal v1\n";
inline constexpr size_t kWalMagicLen = sizeof(kWalMagic) - 1;

/// Outcome of scanning WAL bytes (the pure, file-free half of `Open`,
/// exposed for recovery tests and `fuzz_wal_replay`).
struct WalScanResult {
  /// Payloads of every intact record, in append order.
  std::vector<std::string> records;
  /// Bytes of the valid prefix: magic + every intact frame. Anything
  /// past this offset is a torn tail a crash left behind.
  size_t valid_bytes = 0;
  /// True when `valid_bytes` < input size — the tail was torn (an
  /// incomplete frame, or a checksum-damaged final frame) and recovery
  /// must truncate it.
  bool torn_tail = false;
};

/// Append-only, length-framed, per-record-checksummed log (DESIGN.md
/// §15) — the durability primitive under `DurableRegistry`. Byte format:
///
///   "freqywm-wal v1\n"                          (15-byte magic)
///   repeated frames:
///     u64 payload length, little-endian          (8 bytes)
///     SHA-256 over (length bytes || payload)     (32 bytes)
///     payload                                    (length bytes)
///
/// Every frame is independently verifiable, so `Open` detects a torn
/// tail (the partial frame a crash mid-append leaves) and truncates the
/// file back to the last intact record; damage *before* the tail — a
/// bit flip inside a frame that intact frames follow — is typed
/// `Corruption`, never silently skipped and never parsed past.
///
/// NOT thread-safe: callers serialize externally (`DurableRegistry`
/// holds its mutex across every call — the log has no lock of its own
/// so the lock order stays trivially acyclic).
class WriteAheadLog {
 public:
  /// What `Open` recovered: the log positioned for appending, every
  /// intact payload in append order (for replay), and whether a torn
  /// tail was truncated.
  struct OpenResult {
    std::unique_ptr<WriteAheadLog> log;
    std::vector<std::string> records;
    bool torn_tail_truncated = false;
    uint64_t truncated_bytes = 0;
  };

  /// Opens (creating if absent) the log at `path`: reads and verifies
  /// every frame, truncates a torn tail back to the last intact record,
  /// and positions the file for appending. Typed failures:
  /// `Corruption` for damage before the tail (the file is left
  /// untouched for forensics), `Unavailable` for I/O errors.
  [[nodiscard]] static Result<OpenResult> Open(const std::string& path,
                                               WalOptions options = {});

  /// The pure scan behind `Open`: validates `bytes` as a WAL image and
  /// returns the intact prefix. Never reads past a bad checksum; for
  /// arbitrary bytes the outcome is a (possibly empty) valid prefix
  /// with `torn_tail` set, or typed `Corruption` — never a crash
  /// (fuzzed by `fuzz_wal_replay`).
  [[nodiscard]] static Result<WalScanResult> Scan(std::string_view bytes);

  /// One frame's exact bytes (header + checksum + payload) — exposed so
  /// tests and the fuzz harness can build well-formed and deliberately
  /// torn images without reimplementing the format.
  static std::string EncodeFrame(std::string_view payload);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and applies the sync policy. On any failure
  /// (injected `wal/append`, a short device, a failed policy sync) the
  /// caller must treat the record as NOT acknowledged; after a failed
  /// sync the bytes may or may not be durable — recovery handles both,
  /// which is why replay is idempotent.
  [[nodiscard]] Status Append(std::string_view payload);

  /// Forces everything appended so far to stable storage (the
  /// `wal/fsync` fault site). No-op when nothing is unsynced.
  [[nodiscard]] Status Sync();

  /// Truncates the log back to its magic header — called after a
  /// checkpoint has durably published a snapshot covering every logged
  /// record (the `wal/rotate` fault site). A crash between checkpoint
  /// and rotation is benign: replaying the stale records is idempotent.
  [[nodiscard]] Status Rotate();

  /// Current file size in bytes (magic + intact frames + unsynced ones).
  uint64_t size_bytes() const { return size_bytes_; }
  /// Records appended since the last sync (bounded by the group-commit
  /// window under `kGroupCommit`).
  uint64_t unsynced_records() const { return unsynced_records_; }
  uint64_t unsynced_bytes() const { return unsynced_bytes_; }
  /// Records appended through this handle since `Open`.
  uint64_t appended_records() const { return appended_records_; }
  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, int fd, uint64_t size, WalOptions options);

  const std::string path_;
  const WalOptions options_;
  int fd_;
  uint64_t size_bytes_;
  uint64_t unsynced_records_ = 0;
  uint64_t unsynced_bytes_ = 0;
  uint64_t appended_records_ = 0;
};

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_WAL_H_
