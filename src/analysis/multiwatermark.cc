#include "analysis/multiwatermark.h"

#include "stats/similarity.h"

namespace freqywm {

Result<MultiWatermarkResult> ApplySuccessiveWatermarks(
    const Histogram& original, size_t num_watermarks,
    const GenerateOptions& base_options) {
  return ApplySuccessiveWatermarks(original, num_watermarks, base_options,
                                   ExecContext{});
}

Result<MultiWatermarkResult> ApplySuccessiveWatermarks(
    const Histogram& original, size_t num_watermarks,
    const GenerateOptions& base_options, const ExecContext& exec) {
  MultiWatermarkResult out;
  out.final_histogram = original;

  for (size_t layer = 0; layer < num_watermarks; ++layer) {
    GenerateOptions opts = base_options;
    opts.seed = base_options.seed + layer + 1;
    WatermarkGenerator generator(opts);

    // Each layer watermarks the previous layer's output (sorted again:
    // earlier layers may have introduced count ties in a different order).
    Histogram input = out.final_histogram.Resorted();
    Result<HistogramGenerateResult> r =
        generator.GenerateFromHistogram(input, exec);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kResourceExhausted) {
        // This layer found no room; record and continue with the next.
        out.similarity_to_original.push_back(
            HistogramSimilarityPercent(original, out.final_histogram));
        continue;
      }
      return r.status();
    }
    out.final_histogram = std::move(r.value().watermarked);
    out.layers.push_back(std::move(r.value().report.secrets));
    ++out.layers_embedded;
    out.similarity_to_original.push_back(
        HistogramSimilarityPercent(original, out.final_histogram));
  }
  return out;
}

}  // namespace freqywm
