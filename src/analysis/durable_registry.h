#ifndef FREQYWM_ANALYSIS_DURABLE_REGISTRY_H_
#define FREQYWM_ANALYSIS_DURABLE_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/registry.h"
#include "analysis/wal.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/health.h"

namespace freqywm {

struct DurableRegistryOptions {
  /// WAL flush policy (DESIGN.md §15). The crash-recovery invariant —
  /// reopening after a crash yields every acknowledged registration —
  /// holds under the default `kEveryRecord`; the other policies trade a
  /// bounded acked-record window for throughput (`bench_durability`
  /// measures the curve).
  WalOptions wal;

  /// Auto-checkpoint trigger: when a `Register` pushes the WAL past this
  /// many bytes, the registry publishes a snapshot (atomic `SaveToFile`)
  /// and rotates the WAL. 0 disables auto-checkpointing (explicit
  /// `Checkpoint()` only).
  uint64_t checkpoint_threshold_bytes = 4 << 20;
};

/// `FingerprintRegistry` with crash durability (DESIGN.md §15): every
/// `Register` appends a checksummed WAL record BEFORE it is applied in
/// memory and acknowledged, so an acknowledged registration survives a
/// kill at any instant (under fsync=every). Recovery (`Open`) loads the
/// last published snapshot, then replays the WAL idempotently — records
/// already covered by the snapshot are skipped via the registry's O(1)
/// buyer-id index, which is what makes the crash window between
/// checkpoint-publish and WAL-rotate benign.
///
/// On-disk layout under `dir`:
///   dir/registry.snapshot   — checksummed snapshot (`SaveToFile` format)
///   dir/registry.wal        — the write-ahead log
///
/// Failure semantics of `Register`: any non-OK return means NOT
/// acknowledged. After a failed WAL sync the record's bytes may or may
/// not have reached the disk — recovery may therefore surface an
/// *unacked* trailing record, never lose an acked one; callers that
/// retry the same buyer id after a failure should treat a subsequent
/// "already registered" as success-after-recovery.
///
/// Thread-safe; one internal mutex covers WAL, registry and gauges (the
/// WAL itself is unsynchronized by design — this class is its only
/// caller, so the lock order stays trivially acyclic).
class DurableRegistry {
 public:
  /// What recovery observed, frozen at `Open` (also surfaced through
  /// `gauges()` for health plumbing).
  struct OpenStats {
    /// True when `dir/registry.snapshot` existed and was loaded.
    bool snapshot_loaded = false;
    /// WAL records applied on top of the snapshot.
    uint64_t records_replayed = 0;
    /// WAL records skipped because the snapshot already contained them
    /// (the checkpoint-then-crash-before-rotate window).
    uint64_t duplicates_skipped = 0;
    /// True when the WAL ended in a torn frame that was truncated.
    bool torn_tail_truncated = false;
    uint64_t truncated_bytes = 0;
  };

  /// Opens (creating if needed) the durable registry rooted at `dir`.
  /// The directory must already exist. Typed failures: `Corruption` when
  /// the snapshot or the WAL body is damaged (never silently repaired —
  /// except the torn WAL *tail*, which is the expected crash artifact
  /// and is truncated), `Unavailable` for I/O errors.
  [[nodiscard]] static Result<std::unique_ptr<DurableRegistry>> Open(
      const std::string& dir, DurableRegistryOptions options = {});

  /// WAL-append (+ policy sync), then in-memory `Register`, then — if
  /// the log crossed `checkpoint_threshold_bytes` — an auto-checkpoint
  /// whose failure does NOT fail this call (the record is already
  /// durable; the failure lands in `gauges().checkpoint_failures` and
  /// the checkpoint retries at the next crossing). Validation failures
  /// (`InvalidArgument`, duplicate ids included) are rejected before any
  /// byte is logged.
  [[nodiscard]] Status Register(const std::string& buyer_id, SchemeKey key);

  /// Publishes a snapshot of the current registry (atomic `SaveToFile`)
  /// and, once the snapshot is durably in place, rotates the WAL. A
  /// crash between the two replays the stale WAL records onto the new
  /// snapshot idempotently.
  [[nodiscard]] Status Checkpoint();

  /// Forces unsynced WAL records to stable storage (meaningful under
  /// `kGroupCommit` / `kNone`).
  [[nodiscard]] Status Sync();

  /// Copy of the in-memory registry, for tracing/session key snapshots
  /// (the same copy-under-lock idiom `TenantContext::TraceSuspects`
  /// already uses).
  FingerprintRegistry Snapshot() const;

  size_t size() const;
  bool Contains(const std::string& buyer_id) const;

  /// Point-in-time WAL/checkpoint gauges (`durable` always true here).
  DurabilityGauges gauges() const;

  const OpenStats& open_stats() const { return open_stats_; }
  const std::string& dir() const { return dir_; }

  /// On-disk file names under `dir` (shared with tests and the bench).
  static std::string SnapshotPath(const std::string& dir);
  static std::string WalPath(const std::string& dir);

  DurableRegistry(const DurableRegistry&) = delete;
  DurableRegistry& operator=(const DurableRegistry&) = delete;

 private:
  DurableRegistry(std::string dir, DurableRegistryOptions options,
                  FingerprintRegistry registry,
                  std::unique_ptr<WriteAheadLog> wal, OpenStats open_stats);

  /// The checkpoint body, factored so `Register`'s auto-checkpoint and
  /// the public `Checkpoint` share one publish-then-rotate sequence.
  [[nodiscard]] Status CheckpointLocked() REQUIRES(mu_);

  const std::string dir_;
  const DurableRegistryOptions options_;
  const OpenStats open_stats_;

  mutable Mutex mu_;
  FingerprintRegistry registry_ GUARDED_BY(mu_);
  std::unique_ptr<WriteAheadLog> wal_ GUARDED_BY(mu_);
  /// Clock-free checkpoint age (DurabilityGauges contract).
  uint64_t records_since_checkpoint_ GUARDED_BY(mu_) = 0;
  uint64_t bytes_since_checkpoint_ GUARDED_BY(mu_) = 0;
  uint64_t checkpoints_published_ GUARDED_BY(mu_) = 0;
  uint64_t checkpoint_failures_ GUARDED_BY(mu_) = 0;
  uint64_t parent_dir_fsync_warnings_ GUARDED_BY(mu_) = 0;
};

/// Serializes one registration for the WAL (`buyer_id` line, `scheme`
/// line, raw payload bytes) — exposed for the replay fuzzer and tests.
std::string EncodeRegistration(const std::string& buyer_id,
                               const SchemeKey& key);

/// Parses `EncodeRegistration` output; `Corruption` on malformed bytes
/// (a checksummed WAL record should never fail this — if it does, the
/// record was written by something else and must not be applied).
[[nodiscard]] Result<FingerprintRecord> DecodeRegistration(
    std::string_view payload);

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_DURABLE_REGISTRY_H_
