#ifndef FREQYWM_ANALYSIS_MULTIWATERMARK_H_
#define FREQYWM_ANALYSIS_MULTIWATERMARK_H_

#include <vector>

#include "common/result.h"
#include "core/options.h"
#include "core/secrets.h"
#include "core/watermark.h"
#include "data/histogram.h"
#include "exec/exec_context.h"

namespace freqywm {

/// Result of applying `n` successive watermarks to the same dataset (§VI):
/// either for provenance tracking through a pipeline, or as the setting of
/// the multi-watermark distortion study (Figs. 6–9).
struct MultiWatermarkResult {
  /// Histogram after every successive watermark has been embedded.
  Histogram final_histogram;
  /// Secrets of each watermark layer, oldest first.
  std::vector<WatermarkSecrets> layers;
  /// Similarity (percent) of each intermediate histogram to the ORIGINAL.
  std::vector<double> similarity_to_original;
  /// How many watermarks were actually embedded (a layer is skipped if no
  /// pair fits its budget).
  size_t layers_embedded = 0;
};

/// Applies `num_watermarks` successive FreqyWM embeddings. Layer i uses
/// `base_options` with seed `base_options.seed + i + 1` (deterministic but
/// independent secrets). The paper's headline result is that 10 layers with
/// b = 2 distort the histogram by ~0.003%, not 20%.
Result<MultiWatermarkResult> ApplySuccessiveWatermarks(
    const Histogram& original, size_t num_watermarks,
    const GenerateOptions& base_options);

/// Exec-aware variant: every layer's eligible-pair scan runs through
/// `exec` (DESIGN.md §8), so multi-watermarking parallelizes inside each
/// layer (the layers themselves are inherently sequential — layer i
/// watermarks layer i-1's output). Byte-identical to the serial overload
/// at any thread count.
Result<MultiWatermarkResult> ApplySuccessiveWatermarks(
    const Histogram& original, size_t num_watermarks,
    const GenerateOptions& base_options, const ExecContext& exec);

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_MULTIWATERMARK_H_
