#include "analysis/tenant.h"

#include <algorithm>
#include <utility>

#include "exec/fault_injection.h"

namespace freqywm {

// --------------------------------------------------------- TenantSession

TenantSession::TenantSession(TenantContext* tenant,
                             std::unique_ptr<BatchDetector::Session> session)
    : tenant_(tenant), session_(std::move(session)) {}

TenantSession::~TenantSession() {
  {
    // Return every still-leased unit before freeing the session slot, so
    // a tenant that abandons undrained work never leaks in-flight
    // capacity.
    MutexLock lock(mu_);
    permits_.clear();
  }
  MutexLock lock(tenant_->mu_);
  --tenant_->open_sessions_;
  auto& live = tenant_->live_sessions_;
  live.erase(std::remove(live.begin(), live.end(), this), live.end());
}

Status TenantSession::Submit(std::vector<Histogram> suspects,
                             const InterruptContext& interrupt) {
  if (suspects.empty()) return Status::OK();
  Result<AdmissionController::Permit> permit =
      tenant_->admission_->Admit(suspects.size(), interrupt);
  FREQYWM_RETURN_NOT_OK(permit.status());
  // A failed enqueue drops the permit here, so the shed leaves no units
  // leased — all-or-nothing.
  FREQYWM_RETURN_NOT_OK(
      session_->AddSuspectsBounded(std::move(suspects), interrupt));
  MutexLock lock(mu_);
  permits_.push_back(std::move(permit).value());
  return Status::OK();
}

Status TenantSession::TrySubmit(std::vector<Histogram> suspects,
                                const Deadline& deadline) {
  if (suspects.empty()) return Status::OK();
  Result<AdmissionController::Permit> permit =
      tenant_->admission_->TryAdmit(suspects.size(), deadline);
  FREQYWM_RETURN_NOT_OK(permit.status());
  FREQYWM_RETURN_NOT_OK(session_->TryAddSuspects(std::move(suspects)));
  MutexLock lock(mu_);
  permits_.push_back(std::move(permit).value());
  return Status::OK();
}

SessionDrainResult TenantSession::DrainChecked(
    const InterruptContext& interrupt) {
  SessionDrainResult result = session_->DrainChecked(interrupt);
  // One admitted unit per drained row; an interrupted drain still
  // consumed its claimed suspects (the DrainChecked contract), so their
  // units return here either way.
  ReleaseUnits(result.verdicts.size());
  return result;
}

size_t TenantSession::pending_suspects() const {
  return session_->pending_suspects();
}

void TenantSession::ReleaseUnits(size_t rows) {
  MutexLock lock(mu_);
  while (rows > 0 && !permits_.empty()) {
    AdmissionController::Permit& front = permits_.front();
    const size_t take = std::min(front.units(), rows);
    front.ReleasePartial(take);
    rows -= take;
    if (front.units() == 0) permits_.pop_front();
  }
}

// --------------------------------------------------------- TenantContext

namespace {

std::shared_ptr<KeyCircuitBreaker> MakeBreaker(const TenantQuotas& quotas) {
  if (quotas.breaker_failure_threshold == 0) return nullptr;
  CircuitBreakerOptions options;
  options.failure_threshold = quotas.breaker_failure_threshold;
  options.cooldown = quotas.breaker_cooldown;
  options.clock_nanos = quotas.clock_nanos;
  return std::make_shared<KeyCircuitBreaker>(std::move(options));
}

std::unique_ptr<AdmissionController> MakeAdmission(
    const TenantQuotas& quotas) {
  AdmissionOptions options;
  options.max_in_flight = quotas.max_in_flight_suspects;
  options.max_pending = quotas.max_pending_suspects;
  options.rate_per_unit_time = quotas.rate_per_unit_time;
  options.burst = quotas.burst;
  options.clock_nanos = quotas.clock_nanos;
  return std::make_unique<AdmissionController>(std::move(options));
}

}  // namespace

TenantContext::TenantContext(std::string tenant_id, TenantQuotas quotas)
    : tenant_id_(std::move(tenant_id)),
      quotas_(std::move(quotas)),
      key_cache_(std::make_shared<PreparedKeyCache>(
          quotas_.max_cache_entries > 0 ? quotas_.max_cache_entries
                                        : PreparedKeyCache::kDefaultCapacity)),
      breaker_(MakeBreaker(quotas_)),
      admission_(MakeAdmission(quotas_)) {
  if (!quotas_.durable_dir.empty()) {
    DurableRegistryOptions options;
    options.wal.sync_policy = quotas_.durable_sync_policy;
    options.checkpoint_threshold_bytes =
        quotas_.durable_checkpoint_threshold_bytes;
    Result<std::unique_ptr<DurableRegistry>> opened =
        DurableRegistry::Open(quotas_.durable_dir, options);
    if (opened.ok()) {
      durable_ = std::move(opened).value();
    } else {
      // A constructor cannot fail; the recovery error is held and
      // returned by every Escrow (prefer `Open`, which surfaces it
      // immediately).
      durable_open_error_ = opened.status();
    }
  }
}

Result<std::unique_ptr<TenantContext>> TenantContext::Open(
    std::string tenant_id, TenantQuotas quotas) {
  auto tenant = std::make_unique<TenantContext>(std::move(tenant_id),
                                                std::move(quotas));
  FREQYWM_RETURN_NOT_OK(tenant->durable_open_error_);
  return tenant;
}

Status TenantContext::Escrow(const std::string& buyer_id, SchemeKey key) {
  FREQYWM_FAULT_POINT("tenant/quota");
  FREQYWM_RETURN_NOT_OK(durable_open_error_);
  MutexLock lock(mu_);
  const size_t escrowed = durable_ ? durable_->size() : registry_.size();
  if (quotas_.max_escrowed_keys > 0 &&
      escrowed >= quotas_.max_escrowed_keys) {
    return Status::ResourceExhausted(
        "tenant '" + tenant_id_ + "' key-escrow quota reached (" +
        std::to_string(quotas_.max_escrowed_keys) + " keys)");
  }
  if (durable_) return durable_->Register(buyer_id, std::move(key));
  return registry_.Register(buyer_id, std::move(key));
}

Result<std::unique_ptr<TenantSession>> TenantContext::OpenSession(
    size_t num_threads) {
  std::vector<SchemeKey> keys;
  {
    MutexLock lock(mu_);
    if (quotas_.max_concurrent_sessions > 0 &&
        open_sessions_ >= quotas_.max_concurrent_sessions) {
      return Status::ResourceExhausted(
          "tenant '" + tenant_id_ + "' session quota reached (" +
          std::to_string(quotas_.max_concurrent_sessions) +
          " concurrent sessions)");
    }
    ++open_sessions_;  // slot claimed; construction below cannot fail
    if (!durable_) {
      keys.reserve(registry_.size());
      for (const FingerprintRecord& record : registry_.records()) {
        keys.push_back(record.key);
      }
    }
  }
  if (durable_) {
    // Outside `mu_`: the durable registry is internally synchronized,
    // and the session-keys contract is bind-at-open-time either way.
    const FingerprintRegistry snapshot = durable_->Snapshot();
    keys.reserve(snapshot.size());
    for (const FingerprintRecord& record : snapshot.records()) {
      keys.push_back(record.key);
    }
  }
  BatchDetectOptions options;
  options.num_threads = num_threads;
  options.key_cache = key_cache_;
  options.max_pending_suspects = quotas_.max_pending_suspects;
  options.circuit_breaker = breaker_;
  // Key preparation (the expensive part) runs outside the tenant lock.
  auto session = std::unique_ptr<TenantSession>(new TenantSession(
      this,
      std::make_unique<BatchDetector::Session>(std::move(options),
                                               std::move(keys))));
  MutexLock lock(mu_);
  live_sessions_.push_back(session.get());
  return session;
}

FingerprintRegistry TenantContext::RegistrySnapshot() const {
  if (durable_) return durable_->Snapshot();
  MutexLock lock(mu_);
  return registry_;
}

std::vector<std::vector<TraceMatch>> TenantContext::TraceSuspects(
    const std::vector<Histogram>& suspects, size_t num_threads) const {
  const FingerprintRegistry snapshot = RegistrySnapshot();
  TraceOptions options;
  options.num_threads = num_threads;
  options.key_cache = key_cache_;
  return snapshot.TraceSuspects(suspects, options);
}

EngineHealthSnapshot TenantContext::Health() const {
  EngineHealthSnapshot snapshot;
  snapshot.admission = admission_->stats();
  snapshot.key_cache = key_cache_->stats();
  if (breaker_ != nullptr) snapshot.breaker = breaker_->stats();
  if (durable_) snapshot.durability = durable_->gauges();
  MutexLock lock(mu_);
  snapshot.open_sessions = open_sessions_;
  for (const TenantSession* session : live_sessions_) {
    snapshot.session_queue_depth += session->pending_suspects();
  }
  return snapshot;
}

size_t TenantContext::escrowed_keys() const {
  if (durable_) return durable_->size();
  MutexLock lock(mu_);
  return registry_.size();
}

size_t TenantContext::open_sessions() const {
  MutexLock lock(mu_);
  return open_sessions_;
}

}  // namespace freqywm
