#ifndef FREQYWM_ANALYSIS_REGISTRY_H_
#define FREQYWM_ANALYSIS_REGISTRY_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "api/scheme.h"
#include "common/result.h"
#include "core/detect.h"
#include "core/secrets.h"
#include "data/histogram.h"

namespace freqywm {

class PreparedKeyCache;  // exec/prepared_key_cache.h
struct RetryPolicy;      // exec/retry.h
struct InterruptContext; // exec/cancellation.h

/// One escrowed fingerprint: a buyer identity and the scheme-tagged key of
/// the watermark embedded in that buyer's copy. Buyers of the same asset
/// may be fingerprinted with different schemes — `Trace` dispatches each
/// record through the `SchemeFactory` by its tag.
struct FingerprintRecord {
  std::string buyer_id;
  SchemeKey key;
};

/// Result of tracing a suspect dataset against the registry.
struct TraceMatch {
  std::string buyer_id;
  /// Scheme tag of the matching record (useful when buyers mix schemes).
  std::string scheme;
  DetectResult detection;

  friend bool operator==(const TraceMatch& a, const TraceMatch& b) {
    return a.buyer_id == b.buyer_id && a.scheme == b.scheme &&
           a.detection == b.detection;
  }
};

/// Knobs of `FingerprintRegistry::TraceSuspects` — the batch trace over a
/// whole set of suspect copies (DESIGN.md §7).
struct TraceOptions {
  /// Opt-in parallelism: 1 (default) runs the serial reference path; > 1
  /// evaluates the (suspect × record) detection matrix on that many
  /// threads via the `BatchDetector`. Results are identical either way.
  size_t num_threads = 1;

  /// When true (default), each record is detected under its scheme's
  /// `RecommendedDetectOptions` (the `TraceWithRecommendedOptions`
  /// semantics); when false, `detect_options` applies to every record
  /// (the fixed-options `Trace` semantics).
  bool use_recommended_options = true;
  DetectOptions detect_options;

  /// Optional shared `PreparedKey` cache (DESIGN.md §10): successive
  /// `TraceSuspects` batches over the same escrowed keys then skip key
  /// parsing and modulus derivation entirely — preparation is paid once
  /// per key lifetime, the per-tenant caching the batch-detection service
  /// needs. Null → keys are prepared privately per call. Results are
  /// identical either way.
  std::shared_ptr<PreparedKeyCache> key_cache;
};

/// The immutable escrow index from the paper's introduction: a seller (or
/// marketplace) stores one watermark key per buyer; when an unauthorized
/// copy surfaces, `Trace` identifies the culprit by running every escrowed
/// key against it — entirely through the `WatermarkScheme` interface, with
/// no scheme-specific branching.
///
/// The paper suggests a blockchain for immutability; this class provides
/// the data structure and a text serialization — pin the serialized bytes
/// wherever immutability is required.
class FingerprintRegistry {
 public:
  FingerprintRegistry() = default;

  /// Escrows a buyer's scheme-tagged fingerprint key. Fails with
  /// `InvalidArgument` when the buyer id is empty, contains newlines, or is
  /// already registered, or when the key's scheme tag is empty or contains
  /// whitespace.
  [[nodiscard]] Status Register(const std::string& buyer_id, SchemeKey key);

  /// Legacy convenience for FreqyWM secrets (delegates to the tagged
  /// overload with scheme "freqywm").
  [[nodiscard]] Status Register(const std::string& buyer_id,
                                const WatermarkSecrets& secrets);

  size_t size() const { return records_.size(); }
  const std::vector<FingerprintRecord>& records() const { return records_; }

  /// O(1) membership test on the buyer-id index — what makes WAL replay
  /// idempotent (`DurableRegistry` skips already-snapshotted records by
  /// id instead of re-registering and failing).
  bool Contains(const std::string& buyer_id) const {
    return buyer_ids_.count(buyer_id) > 0;
  }

  /// Runs detection with `options` for every escrowed key against
  /// `suspect` — each record through its scheme's `Detect` — and returns
  /// the accepted matches, strongest first (by verified fraction, ties by
  /// registration order). Records whose scheme is not registered in the
  /// `SchemeFactory` are skipped.
  std::vector<TraceMatch> Trace(const Histogram& suspect,
                                const DetectOptions& options) const;

  /// Like `Trace`, but detects each record under its scheme's
  /// `RecommendedDetectOptions`, so mixed-scheme registries use sound
  /// per-scheme accept thresholds instead of one global setting.
  std::vector<TraceMatch> TraceWithRecommendedOptions(
      const Histogram& suspect) const;

  /// Traces a whole batch of suspect copies — the marketplace workload
  /// where one owner screens many surfaced datasets at once. Element `i`
  /// of the result is exactly what the serial per-suspect call
  /// (`TraceWithRecommendedOptions(suspects[i])`, or
  /// `Trace(suspects[i], options.detect_options)` when
  /// `use_recommended_options` is false) returns, independent of
  /// `options.num_threads`.
  std::vector<std::vector<TraceMatch>> TraceSuspects(
      const std::vector<Histogram>& suspects,
      const TraceOptions& options = {}) const;

  /// Serializes the whole registry (buyer ids + scheme-tagged keys).
  std::string Serialize() const;

  /// Parses the output of `Serialize`. Accepts both the current v2 format
  /// and the legacy v1 format (untagged FreqyWM secrets). Rejects
  /// duplicate buyer ids with `InvalidArgument` (like `Register`),
  /// byte-level damage with `Corruption`, and — since the ISSUE 5
  /// round-trip hardening — text whose `records` header undercounts the
  /// records present (`InvalidArgument`: trailing data would be silently
  /// dropped by a round trip) or whose size fields overflow `uint64`.
  [[nodiscard]] static Result<FingerprintRegistry> Deserialize(
      const std::string& text);

  /// `Serialize()` output plus an integrity footer — the byte format of
  /// `SaveToFile` (DESIGN.md §13). The footer is one final line,
  /// `checksum sha256 <64 lowercase hex>`, whose digest covers every byte
  /// before it, so truncation, bit rot and torn writes are detected
  /// before any record is parsed.
  std::string SerializeSnapshot() const;

  /// Parses the output of `SerializeSnapshot`: verifies the checksum
  /// footer, then delegates to `Deserialize`. Typed failures: a missing
  /// or malformed footer (including a truncated final line) and a digest
  /// mismatch are `Corruption`; record-level damage reports whatever
  /// `Deserialize` reports.
  [[nodiscard]] static Result<FingerprintRegistry> ParseSnapshot(
      const std::string& text);

  /// Non-fatal observations from a successful `SaveToFile` — durability
  /// weaker than requested, but the snapshot itself is intact.
  struct SaveReport {
    /// Times the parent-directory fsync (which makes the final rename
    /// itself durable) failed or was unsupported. The data file is still
    /// synced; on such filesystems a crash immediately after save may
    /// surface the previous snapshot instead of this one.
    uint64_t parent_dir_fsync_warnings = 0;
  };

  /// Atomically persists the snapshot to `path` (DESIGN.md §13): writes
  /// `path + ".tmp"`, fsyncs it, then renames over `path` — a reader (or
  /// a crash) at any instant sees either the previous complete snapshot
  /// or the new one, never a torn file. I/O failures are `Unavailable`
  /// (transient, retryable); the temp file is cleaned up on failure.
  /// A non-null `report` receives warning counts (see `SaveReport`) that
  /// do not fail the save.
  [[nodiscard]] Status SaveToFile(const std::string& path,
                                  SaveReport* report = nullptr) const;

  /// `SaveToFile` with bounded retry for transient failures: attempts
  /// are governed by `retry` (exec/retry.h — injectable sleep, so tests
  /// run instantly) and stop early when `interrupt` fires.
  [[nodiscard]] Status SaveToFile(const std::string& path,
                                  const RetryPolicy& retry,
                                  const InterruptContext& interrupt) const;

  /// Reads and `ParseSnapshot`s `path`. `NotFound` when the file does not
  /// exist, `Unavailable` for transient read errors, `Corruption` for a
  /// damaged snapshot.
  [[nodiscard]] static Result<FingerprintRegistry> LoadFromFile(
      const std::string& path);

 private:
  std::vector<FingerprintRecord> records_;
  /// Registered ids, for O(1) duplicate rejection — `Register` stays
  /// linear-free at registry scale (a million escrowed buyers would
  /// otherwise make registration, and thus `Deserialize`, quadratic).
  std::unordered_set<std::string> buyer_ids_;
};

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_REGISTRY_H_
