#ifndef FREQYWM_ANALYSIS_REGISTRY_H_
#define FREQYWM_ANALYSIS_REGISTRY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/detect.h"
#include "core/secrets.h"
#include "data/histogram.h"

namespace freqywm {

/// One escrowed fingerprint: a buyer identity and the secrets of the
/// watermark embedded in that buyer's copy.
struct FingerprintRecord {
  std::string buyer_id;
  WatermarkSecrets secrets;
};

/// Result of tracing a suspect dataset against the registry.
struct TraceMatch {
  std::string buyer_id;
  DetectResult detection;
};

/// The immutable escrow index from the paper's introduction: a seller (or
/// marketplace) stores one watermark secret per buyer; when an
/// unauthorized copy surfaces, `Trace` identifies the culprit by running
/// every escrowed secret against it.
///
/// The paper suggests a blockchain for immutability; this class provides
/// the data structure and a text serialization — pin the serialized bytes
/// wherever immutability is required.
class FingerprintRegistry {
 public:
  FingerprintRegistry() = default;

  /// Escrows a buyer's fingerprint. Fails with `InvalidArgument` when the
  /// buyer id is empty, contains newlines, or is already registered.
  Status Register(const std::string& buyer_id, WatermarkSecrets secrets);

  size_t size() const { return records_.size(); }
  const std::vector<FingerprintRecord>& records() const { return records_; }

  /// Runs detection with `options` for every escrowed secret against
  /// `suspect` and returns the accepted matches, strongest first
  /// (by verified fraction, ties by registration order).
  std::vector<TraceMatch> Trace(const Histogram& suspect,
                                const DetectOptions& options) const;

  /// Serializes the whole registry (buyer ids + secrets).
  std::string Serialize() const;

  /// Parses the output of `Serialize`.
  static Result<FingerprintRegistry> Deserialize(const std::string& text);

 private:
  std::vector<FingerprintRecord> records_;
};

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_REGISTRY_H_
