#ifndef FREQYWM_ANALYSIS_TENANT_H_
#define FREQYWM_ANALYSIS_TENANT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/durable_registry.h"
#include "analysis/registry.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "data/histogram.h"
#include "exec/admission.h"
#include "exec/batch_detector.h"
#include "exec/cancellation.h"
#include "exec/circuit_breaker.h"
#include "exec/health.h"
#include "exec/prepared_key_cache.h"

namespace freqywm {

/// Resource quotas of one tenant (DESIGN.md §14). Every limit defaults
/// to 0 = "unlimited", so a default-constructed tenant behaves exactly
/// like the pre-tenancy engine — isolation is opt-in, and quotas never
/// change what admitted work computes, only whether work is admitted.
struct TenantQuotas {
  /// Maximum fingerprint keys the tenant may escrow. 0 = unlimited.
  size_t max_escrowed_keys = 0;

  /// Capacity of the tenant's private `PreparedKeyCache` slice. 0 →
  /// `PreparedKeyCache::kDefaultCapacity`. Tenants never share a cache:
  /// one tenant churning keys cannot evict another's warm entries.
  size_t max_cache_entries = 0;

  /// Maximum concurrently open `TenantSession`s. 0 = unlimited.
  size_t max_concurrent_sessions = 0;

  /// Maximum suspects admitted (submitted, not yet drained) across all
  /// of the tenant's sessions — `AdmissionOptions::max_in_flight`. 0 =
  /// unlimited.
  size_t max_in_flight_suspects = 0;

  /// Suspects that may wait inside blocking `Submit` calls —
  /// `AdmissionOptions::max_pending`. 0 = unlimited.
  size_t max_pending_suspects = 0;

  /// Token-bucket rate limit in suspects per second, with burst
  /// capacity — `AdmissionOptions::{rate_per_unit_time, burst}`. 0 =
  /// unlimited rate.
  double rate_per_unit_time = 0;
  double burst = 0;

  /// Cooldown circuit breaker over the tenant's keys: consecutive
  /// Prepare/Detect failures before a key is quarantined, and for how
  /// long. `failure_threshold == 0` disables the breaker for this
  /// tenant.
  uint32_t breaker_failure_threshold = 3;
  std::chrono::nanoseconds breaker_cooldown = std::chrono::seconds(1);

  /// Injectable clock shared by the tenant's admission controller and
  /// circuit breaker — the testing seam (see `AdmissionOptions::
  /// clock_nanos`). Null → the real monotonic clock.
  std::function<int64_t()> clock_nanos;

  /// Opt-in durability (DESIGN.md §15): when non-empty, the tenant's
  /// escrow registry is a `DurableRegistry` rooted at this existing
  /// directory — every acknowledged `Escrow` is WAL-logged before the
  /// caller hears OK, and a reopened tenant recovers snapshot + replay.
  /// Empty (the default) keeps the pre-durability in-memory registry.
  /// Construct durable tenants through `TenantContext::Open` so a
  /// failed recovery surfaces at open time instead of on first escrow.
  std::string durable_dir;

  /// WAL flush policy and auto-checkpoint threshold of the durable
  /// registry; ignored when `durable_dir` is empty.
  WalSyncPolicy durable_sync_policy = WalSyncPolicy::kEveryRecord;
  uint64_t durable_checkpoint_threshold_bytes = 4 << 20;
};

class TenantContext;

/// One RAII detection session scoped to a tenant (DESIGN.md §14): a
/// `BatchDetector::Session` over the tenant's escrowed keys, fronted by
/// the tenant's admission controller. `Submit` admits suspects (blocking
/// with backpressure, honoring the caller's interrupt) before they enter
/// the session queue; `TrySubmit` is the non-blocking shed-mode variant.
/// Draining returns admitted units to the in-flight semaphore, one per
/// drained row; destruction returns whatever is still outstanding and
/// frees the tenant's session slot.
///
/// Determinism: a suspect that is admitted produces verdicts
/// byte-identical to the same suspect through an unthrottled session at
/// any thread count — admission changes membership of the drained set,
/// never its bytes (enforced by tests/analysis/tenant_test.cc).
///
/// Concurrency: `Submit`/`TrySubmit` are thread-safe (many producers);
/// `DrainChecked` is single-caller, like `Session::Drain`.
class TenantSession {
 public:
  ~TenantSession();
  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  /// Blocking submission: admits `suspects.size()` units through the
  /// tenant's admission controller (rate + in-flight + pending budget,
  /// deadline-aware), then enqueues through the session's bounded
  /// backpressure path. Typed outcomes: `kResourceExhausted` sheds,
  /// `kCancelled` / the interrupt status when `interrupt` fires while
  /// queued. All-or-nothing: on any non-OK return NOTHING was enqueued
  /// and no units stay leased.
  [[nodiscard]] Status Submit(std::vector<Histogram> suspects,
                              const InterruptContext& interrupt);

  /// Non-blocking submission: sheds immediately (typed
  /// `kResourceExhausted`) instead of waiting for tokens, capacity or
  /// queue space. All-or-nothing like `Submit`.
  [[nodiscard]] Status TrySubmit(std::vector<Histogram> suspects,
                                 const Deadline& deadline = {});

  /// Failure-aware drain of everything admitted so far (the
  /// `Session::DrainChecked` contract). Each drained row returns one
  /// admitted unit to the tenant's in-flight semaphore.
  SessionDrainResult DrainChecked(const InterruptContext& interrupt);

  /// Suspects admitted and not yet drained.
  size_t pending_suspects() const;

  /// Per-key preparation outcome of the underlying session (poisoned
  /// columns: prepare failures and circuit-breaker quarantines).
  const std::vector<Status>& key_statuses() const {
    return session_->key_statuses();
  }

  const std::vector<SchemeKey>& keys() const { return session_->keys(); }

 private:
  friend class TenantContext;
  TenantSession(TenantContext* tenant,
                std::unique_ptr<BatchDetector::Session> session);

  /// Returns `rows` admitted units to the in-flight semaphore, oldest
  /// permits first.
  void ReleaseUnits(size_t rows);

  TenantContext* const tenant_;
  const std::unique_ptr<BatchDetector::Session> session_;

  /// Admission permits for submitted-but-undrained suspects, oldest
  /// first; drains release from the front (FIFO, matching the session
  /// queue's arrival order).
  mutable Mutex mu_;
  std::deque<AdmissionController::Permit> permits_ GUARDED_BY(mu_);
};

/// One tenant of the detection engine (DESIGN.md §14): owns the tenant's
/// `FingerprintRegistry`, a private `PreparedKeyCache` slice, an
/// `AdmissionController` and a `KeyCircuitBreaker`, all sized by
/// `TenantQuotas`. The isolation contract: a tenant saturating its own
/// quotas — or holding keys whose circuits are open — cannot change
/// another tenant's verdicts, cache contents or latency class, because
/// nothing here is shared across `TenantContext` instances (enforced by
/// tests/analysis/tenant_test.cc).
///
/// Thread-safe throughout; `Escrow` and `OpenSession` may race with
/// running sessions (a session binds the key set at open time — keys
/// escrowed later join the next session, the `Session` keys-fixed-at-
/// construction contract).
class TenantContext {
 public:
  explicit TenantContext(std::string tenant_id, TenantQuotas quotas = {});

  /// Factory for durable tenants: constructs the context AND surfaces a
  /// failed durable-registry recovery (damaged snapshot/WAL, unreadable
  /// directory) as this call's error instead of deferring it to the
  /// first `Escrow`. Works for in-memory tenants too (never fails
  /// there), so callers can use one construction path throughout.
  [[nodiscard]] static Result<std::unique_ptr<TenantContext>> Open(
      std::string tenant_id, TenantQuotas quotas = {});

  TenantContext(const TenantContext&) = delete;
  TenantContext& operator=(const TenantContext&) = delete;

  /// Escrows one buyer fingerprint into the tenant's registry. Typed
  /// failures: `kResourceExhausted` when `max_escrowed_keys` is reached
  /// (the quota fault site `tenant/quota` injects here), plus whatever
  /// `FingerprintRegistry::Register` rejects. Durable tenants
  /// additionally WAL-log the record before acknowledging — a non-OK
  /// return means NOT escrowed (see `DurableRegistry::Register` for the
  /// failed-fsync window) — and report the recovery error here when the
  /// context was constructed directly despite a broken `durable_dir`.
  [[nodiscard]] Status Escrow(const std::string& buyer_id, SchemeKey key);

  /// Opens a detection session over every key escrowed so far, fronted
  /// by this tenant's admission controller, cache and breaker.
  /// `kResourceExhausted` when `max_concurrent_sessions` sessions are
  /// already open. `num_threads` follows `BatchDetectOptions`.
  Result<std::unique_ptr<TenantSession>> OpenSession(size_t num_threads = 1);

  /// Traces suspects through the tenant's registry with the tenant's
  /// cache — the serial convenience path, un-throttled (admission
  /// applies to sessions; a trace is one bounded call).
  std::vector<std::vector<TraceMatch>> TraceSuspects(
      const std::vector<Histogram>& suspects, size_t num_threads = 1) const;

  /// Point-in-time health of this tenant's slice of the engine:
  /// admission counters, cache counters, breaker gauges, queue depth
  /// summed over open sessions, open-session gauge.
  EngineHealthSnapshot Health() const;

  const std::string& tenant_id() const { return tenant_id_; }
  const TenantQuotas& quotas() const { return quotas_; }
  size_t escrowed_keys() const;
  size_t open_sessions() const;

  const std::shared_ptr<PreparedKeyCache>& key_cache() const {
    return key_cache_;
  }
  const std::shared_ptr<KeyCircuitBreaker>& circuit_breaker() const {
    return breaker_;
  }
  AdmissionController& admission() { return *admission_; }

  /// The tenant's durable registry, or null for in-memory tenants —
  /// for recovery stats (`open_stats`), explicit `Checkpoint`/`Sync`,
  /// and tests. Internally synchronized.
  DurableRegistry* durable_registry() const { return durable_.get(); }

 private:
  friend class TenantSession;

  /// Snapshot of the registry for reads (trace, session keys) — the
  /// durable registry when present, else a copy of `registry_`.
  FingerprintRegistry RegistrySnapshot() const;

  const std::string tenant_id_;
  const TenantQuotas quotas_;
  const std::shared_ptr<PreparedKeyCache> key_cache_;
  const std::shared_ptr<KeyCircuitBreaker> breaker_;
  const std::unique_ptr<AdmissionController> admission_;
  /// Set in the constructor body, immutable after; internally
  /// synchronized, so calls on it never need `mu_` (lock order stays
  /// `mu_` → DurableRegistry's mutex on the escrow path, acyclic).
  std::unique_ptr<DurableRegistry> durable_;
  /// Why `durable_` is null despite a non-empty `durable_dir` (direct
  /// construction only — `Open` surfaces this instead). OK otherwise.
  Status durable_open_error_;

  mutable Mutex mu_;
  FingerprintRegistry registry_ GUARDED_BY(mu_);
  size_t open_sessions_ GUARDED_BY(mu_) = 0;
  /// Live sessions, for summing queue depth into `Health` — raw
  /// borrows, erased by each session's destructor.
  std::vector<const TenantSession*> live_sessions_ GUARDED_BY(mu_);
};

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_TENANT_H_
