// Crash-durable registry: WAL-before-ack + snapshot checkpoints
// (DESIGN.md §15).
#include "analysis/durable_registry.h"

#include <utility>

#include "exec/fault_injection.h"

namespace freqywm {

namespace {

constexpr char kSnapshotFile[] = "registry.snapshot";
constexpr char kWalFile[] = "registry.wal";

std::string JoinPath(const std::string& dir, const char* file) {
  if (dir.empty()) return file;
  if (dir.back() == '/') return dir + file;
  return dir + "/" + file;
}

}  // namespace

std::string EncodeRegistration(const std::string& buyer_id,
                               const SchemeKey& key) {
  // buyer_id cannot contain '\n' and scheme cannot contain whitespace
  // (Register's validation, enforced before any byte is logged), so two
  // newline-terminated lines followed by the raw payload round-trip
  // byte-exactly.
  std::string payload;
  payload.reserve(buyer_id.size() + key.scheme.size() + key.payload.size() +
                  2);
  payload += buyer_id;
  payload += '\n';
  payload += key.scheme;
  payload += '\n';
  payload += key.payload;
  return payload;
}

Result<FingerprintRecord> DecodeRegistration(std::string_view payload) {
  const size_t id_end = payload.find('\n');
  if (id_end == std::string_view::npos) {
    return Status::Corruption("WAL record: missing buyer-id line");
  }
  const size_t scheme_end = payload.find('\n', id_end + 1);
  if (scheme_end == std::string_view::npos) {
    return Status::Corruption("WAL record: missing scheme line");
  }
  FingerprintRecord record;
  record.buyer_id = std::string(payload.substr(0, id_end));
  record.key.scheme =
      std::string(payload.substr(id_end + 1, scheme_end - id_end - 1));
  record.key.payload = std::string(payload.substr(scheme_end + 1));
  if (record.buyer_id.empty()) {
    return Status::Corruption("WAL record: empty buyer id");
  }
  if (record.key.scheme.empty() ||
      record.key.scheme.find_first_of(" \t\n") != std::string::npos) {
    return Status::Corruption("WAL record: malformed scheme tag");
  }
  return record;
}

std::string DurableRegistry::SnapshotPath(const std::string& dir) {
  return JoinPath(dir, kSnapshotFile);
}

std::string DurableRegistry::WalPath(const std::string& dir) {
  return JoinPath(dir, kWalFile);
}

Result<std::unique_ptr<DurableRegistry>> DurableRegistry::Open(
    const std::string& dir, DurableRegistryOptions options) {
  OpenStats stats;

  FingerprintRegistry registry;
  Result<FingerprintRegistry> loaded =
      FingerprintRegistry::LoadFromFile(SnapshotPath(dir));
  if (loaded.ok()) {
    registry = std::move(loaded).value();
    stats.snapshot_loaded = true;
  } else if (loaded.status().code() != StatusCode::kNotFound) {
    // A damaged or unreadable snapshot is never silently discarded — the
    // WAL alone cannot prove how many checkpointed records it covered.
    return loaded.status();
  }

  Result<WriteAheadLog::OpenResult> wal =
      WriteAheadLog::Open(WalPath(dir), options.wal);
  FREQYWM_RETURN_NOT_OK(wal.status());
  stats.torn_tail_truncated = wal.value().torn_tail_truncated;
  stats.truncated_bytes = wal.value().truncated_bytes;

  // Idempotent replay: records the last checkpoint already covers — the
  // crash-between-publish-and-rotate window — are skipped by id. Any
  // other Register failure means the WAL and snapshot disagree in a way
  // replay must not paper over.
  for (const std::string& payload : wal.value().records) {
    FREQYWM_ASSIGN_OR_RETURN(FingerprintRecord record,
                             DecodeRegistration(payload));
    if (registry.Contains(record.buyer_id)) {
      ++stats.duplicates_skipped;
      continue;
    }
    FREQYWM_RETURN_NOT_OK(
        registry.Register(record.buyer_id, std::move(record.key)));
    ++stats.records_replayed;
  }

  return std::unique_ptr<DurableRegistry>(
      new DurableRegistry(dir, std::move(options), std::move(registry),
                          std::move(wal.value().log), stats));
}

DurableRegistry::DurableRegistry(std::string dir,
                                 DurableRegistryOptions options,
                                 FingerprintRegistry registry,
                                 std::unique_ptr<WriteAheadLog> wal,
                                 OpenStats open_stats)
    : dir_(std::move(dir)),
      options_(options),
      open_stats_(open_stats),
      registry_(std::move(registry)),
      wal_(std::move(wal)) {}

Status DurableRegistry::Register(const std::string& buyer_id, SchemeKey key) {
  MutexLock lock(mu_);
  // Validate first (duplicate id, malformed id/scheme) so rejected
  // registrations never consume log space — and so replay of whatever a
  // crash leaves in the WAL cannot re-encounter the rejection.
  if (registry_.Contains(buyer_id)) {
    return Status::InvalidArgument("buyer '" + buyer_id +
                                   "' already registered");
  }
  if (buyer_id.empty() || buyer_id.find('\n') != std::string::npos) {
    return Status::InvalidArgument("buyer id must be a non-empty line");
  }
  if (key.scheme.empty() ||
      key.scheme.find_first_of(" \t\n") != std::string::npos) {
    return Status::InvalidArgument(
        "scheme tag must be non-empty without whitespace");
  }

  // Durability point: the record must be in the log (and, under
  // fsync=every, on the platter) before the in-memory state — and thus
  // the caller's acknowledgement — can see it.
  const std::string payload = EncodeRegistration(buyer_id, key);
  FREQYWM_RETURN_NOT_OK(wal_->Append(payload));
  FREQYWM_RETURN_NOT_OK(registry_.Register(buyer_id, std::move(key)));
  ++records_since_checkpoint_;
  bytes_since_checkpoint_ += payload.size();

  if (options_.checkpoint_threshold_bytes > 0 &&
      wal_->size_bytes() > options_.checkpoint_threshold_bytes) {
    // The record is already acked-durable; a failed checkpoint must not
    // un-acknowledge it. Count the failure and retry at the next
    // crossing.
    if (!CheckpointLocked().ok()) ++checkpoint_failures_;
  }
  return Status::OK();
}

Status DurableRegistry::Checkpoint() {
  MutexLock lock(mu_);
  return CheckpointLocked();
}

Status DurableRegistry::CheckpointLocked() {
  // Order is the invariant: the snapshot covering every logged record
  // must be durably published BEFORE the log forgets them. A crash
  // after publish but before rotate re-replays the stale records, which
  // idempotent replay skips by id.
  FREQYWM_RETURN_NOT_OK(FREQYWM_FAULT_STATUS("checkpoint/publish"));
  FingerprintRegistry::SaveReport report;
  FREQYWM_RETURN_NOT_OK(registry_.SaveToFile(SnapshotPath(dir_), &report));
  parent_dir_fsync_warnings_ += report.parent_dir_fsync_warnings;
  FREQYWM_RETURN_NOT_OK(wal_->Rotate());
  ++checkpoints_published_;
  records_since_checkpoint_ = 0;
  bytes_since_checkpoint_ = 0;
  return Status::OK();
}

Status DurableRegistry::Sync() {
  MutexLock lock(mu_);
  return wal_->Sync();
}

FingerprintRegistry DurableRegistry::Snapshot() const {
  MutexLock lock(mu_);
  return registry_;
}

size_t DurableRegistry::size() const {
  MutexLock lock(mu_);
  return registry_.size();
}

bool DurableRegistry::Contains(const std::string& buyer_id) const {
  MutexLock lock(mu_);
  return registry_.Contains(buyer_id);
}

DurabilityGauges DurableRegistry::gauges() const {
  MutexLock lock(mu_);
  DurabilityGauges gauges;
  gauges.durable = true;
  gauges.wal_size_bytes = wal_->size_bytes();
  gauges.wal_unsynced_records = wal_->unsynced_records();
  gauges.wal_unsynced_bytes = wal_->unsynced_bytes();
  gauges.wal_records_since_checkpoint = records_since_checkpoint_;
  gauges.wal_bytes_since_checkpoint = bytes_since_checkpoint_;
  gauges.checkpoints_published = checkpoints_published_;
  gauges.checkpoint_failures = checkpoint_failures_;
  gauges.records_replayed_at_open = open_stats_.records_replayed;
  gauges.duplicates_skipped_at_open = open_stats_.duplicates_skipped;
  gauges.torn_tail_truncated_at_open = open_stats_.torn_tail_truncated;
  gauges.parent_dir_fsync_warnings = parent_dir_fsync_warnings_;
  return gauges;
}

}  // namespace freqywm
