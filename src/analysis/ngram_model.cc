#include "analysis/ngram_model.h"

#include <algorithm>

namespace freqywm {

void BigramModel::Train(const Dataset& sequence) {
  transitions_.clear();
  best_successor_.clear();
  global_fallback_.clear();

  const auto& tokens = sequence.tokens();
  std::unordered_map<Token, size_t> unigram;
  for (const Token& t : tokens) ++unigram[t];
  for (size_t i = 1; i < tokens.size(); ++i) {
    ++transitions_[tokens[i - 1]][tokens[i]];
  }

  for (const auto& [context, successors] : transitions_) {
    const Token* best = nullptr;
    size_t best_count = 0;
    for (const auto& [succ, count] : successors) {
      if (count > best_count || (count == best_count && best != nullptr &&
                                 succ < *best)) {
        best = &succ;
        best_count = count;
      }
    }
    if (best) best_successor_[context] = *best;
  }

  size_t best_count = 0;
  for (const auto& [tok, count] : unigram) {
    if (count > best_count ||
        (count == best_count && tok < global_fallback_)) {
      global_fallback_ = tok;
      best_count = count;
    }
  }
}

Token BigramModel::Predict(const Token& token) const {
  auto it = best_successor_.find(token);
  if (it != best_successor_.end()) return it->second;
  return global_fallback_;
}

double BigramModel::Accuracy(const Dataset& sequence) const {
  const auto& tokens = sequence.tokens();
  if (tokens.size() < 2) return 0.0;
  size_t correct = 0;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (Predict(tokens[i - 1]) == tokens[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(tokens.size() - 1);
}

double TrainTestAccuracy(const Dataset& sequence, double train_fraction) {
  const auto& tokens = sequence.tokens();
  size_t split = static_cast<size_t>(
      static_cast<double>(tokens.size()) *
      std::clamp(train_fraction, 0.0, 1.0));
  if (split < 2 || split >= tokens.size()) return 0.0;

  Dataset train(
      std::vector<Token>(tokens.begin(), tokens.begin() +
                                              static_cast<ptrdiff_t>(split)));
  Dataset test(
      std::vector<Token>(tokens.begin() + static_cast<ptrdiff_t>(split),
                         tokens.end()));
  BigramModel model;
  model.Train(train);
  return model.Accuracy(test);
}

}  // namespace freqywm
