// Append-only checksummed write-ahead log (DESIGN.md §15).
//
// Like analysis/registry_io.cc (the snapshot side of durability), this
// file confines platform I/O — open/write/fsync/ftruncate — so the WAL
// format logic stays testable on in-memory byte strings via `Scan`.
#include "analysis/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "crypto/sha256.h"
#include "exec/fault_injection.h"

namespace freqywm {

namespace {

constexpr size_t kFrameLengthLen = 8;
constexpr size_t kFrameHeaderLen = kFrameLengthLen + Sha256::kDigestSize;

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoMessage("write", path));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadWhole(int fd, const std::string& path) {
  std::string text;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoMessage("read", path));
    }
    if (n == 0) break;
    text.append(buf, static_cast<size_t>(n));
  }
  return text;
}

void EncodeLengthLe(uint64_t value, uint8_t out[kFrameLengthLen]) {
  for (size_t i = 0; i < kFrameLengthLen; ++i) {
    out[i] = static_cast<uint8_t>(value >> (8 * i));
  }
}

uint64_t DecodeLengthLe(const uint8_t* bytes) {
  uint64_t value = 0;
  for (size_t i = 0; i < kFrameLengthLen; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

Sha256::Digest FrameDigest(const uint8_t length_bytes[kFrameLengthLen],
                           std::string_view payload) {
  Sha256 hasher;
  hasher.Update(length_bytes, kFrameLengthLen);
  hasher.Update(payload);
  return hasher.Finish();
}

}  // namespace

std::string WriteAheadLog::EncodeFrame(std::string_view payload) {
  uint8_t length_bytes[kFrameLengthLen];
  EncodeLengthLe(payload.size(), length_bytes);
  const Sha256::Digest digest = FrameDigest(length_bytes, payload);
  std::string frame;
  frame.reserve(kFrameHeaderLen + payload.size());
  frame.append(reinterpret_cast<const char*>(length_bytes), kFrameLengthLen);
  frame.append(reinterpret_cast<const char*>(digest.data()), digest.size());
  frame.append(payload);
  return frame;
}

Result<WalScanResult> WriteAheadLog::Scan(std::string_view bytes) {
  WalScanResult result;
  if (bytes.size() < kWalMagicLen) {
    // A file shorter than the magic is either a crash between create and
    // header write (a magic *prefix* — recoverable as an empty log) or
    // not a WAL at all.
    if (std::string_view(kWalMagic, bytes.size()) == bytes) {
      result.valid_bytes = 0;
      result.torn_tail = !bytes.empty();
      return result;
    }
    return Status::Corruption("WAL: bad magic header");
  }
  if (bytes.substr(0, kWalMagicLen) != kWalMagic) {
    return Status::Corruption("WAL: bad magic header");
  }
  size_t pos = kWalMagicLen;
  result.valid_bytes = pos;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kFrameHeaderLen) {
      // Crash mid-header: an incomplete frame is by definition the tail.
      result.torn_tail = true;
      return result;
    }
    const uint8_t* header =
        reinterpret_cast<const uint8_t*>(bytes.data()) + pos;
    const uint64_t payload_len = DecodeLengthLe(header);
    if (payload_len > remaining - kFrameHeaderLen) {
      // The declared payload runs past EOF: a torn append (or garbage
      // length bytes from one). Checked BEFORE any allocation so a
      // hostile 2^63 length cannot OOM the scanner.
      result.torn_tail = true;
      return result;
    }
    const std::string_view payload(
        bytes.data() + pos + kFrameHeaderLen,
        static_cast<size_t>(payload_len));
    const Sha256::Digest actual = FrameDigest(header, payload);
    if (std::memcmp(actual.data(), header + kFrameLengthLen,
                    Sha256::kDigestSize) != 0) {
      if (pos + kFrameHeaderLen + payload_len == bytes.size()) {
        // A damaged FINAL frame is indistinguishable from a torn write
        // whose length bytes landed (sector reordering): truncate.
        result.torn_tail = true;
        return result;
      }
      // Damage with intact data after it is bit rot, not a crash tail —
      // refusing is the only honest answer (truncating here would throw
      // away the intact records that follow).
      return Status::Corruption("WAL: checksum mismatch before the tail");
    }
    result.records.emplace_back(payload);
    pos += kFrameHeaderLen + static_cast<size_t>(payload_len);
    result.valid_bytes = pos;
  }
  return result;
}

Result<WriteAheadLog::OpenResult> WriteAheadLog::Open(const std::string& path,
                                                      WalOptions options) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::Unavailable(ErrnoMessage("open", path));

  Result<std::string> bytes = ReadWhole(fd, path);
  if (!bytes.ok()) {
    (void)::close(fd);
    return bytes.status();
  }
  Result<WalScanResult> scan = Scan(bytes.value());
  if (!scan.ok()) {
    (void)::close(fd);  // damaged file left untouched for forensics
    return scan.status();
  }

  OpenResult result;
  result.records = std::move(scan.value().records);
  result.torn_tail_truncated = scan.value().torn_tail;
  result.truncated_bytes = bytes.value().size() - scan.value().valid_bytes;

  uint64_t size = scan.value().valid_bytes;
  if (scan.value().torn_tail) {
    // Cut the torn tail off NOW and make the cut durable, so a second
    // crash cannot resurrect half a record behind a later append.
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      const Status status =
          Status::Unavailable(ErrnoMessage("ftruncate", path));
      (void)::close(fd);
      return status;
    }
    if (::fsync(fd) != 0) {
      const Status status = Status::Unavailable(ErrnoMessage("fsync", path));
      (void)::close(fd);
      return status;
    }
  }
  if (size < kWalMagicLen) {
    // Fresh (or header-torn) file: write the magic before any record.
    if (::lseek(fd, 0, SEEK_SET) < 0) {
      const Status status = Status::Unavailable(ErrnoMessage("lseek", path));
      (void)::close(fd);
      return status;
    }
    Status wrote = WriteAll(fd, std::string_view(kWalMagic, kWalMagicLen),
                            path);
    if (wrote.ok() && ::fsync(fd) != 0) {
      wrote = Status::Unavailable(ErrnoMessage("fsync", path));
    }
    if (!wrote.ok()) {
      (void)::close(fd);
      return wrote;
    }
    size = kWalMagicLen;
  } else if (::lseek(fd, static_cast<off_t>(size), SEEK_SET) < 0) {
    const Status status = Status::Unavailable(ErrnoMessage("lseek", path));
    (void)::close(fd);
    return status;
  }

  result.log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, fd, size, options));
  return result;
}

WriteAheadLog::WriteAheadLog(std::string path, int fd, uint64_t size,
                             WalOptions options)
    : path_(std::move(path)), options_(options), fd_(fd), size_bytes_(size) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    // Destruction is not an acknowledgement point: anything unsynced
    // follows the policy's contract (it may or may not survive), so a
    // failed close changes no durability promise.
    (void)::close(fd_);
  }
}

Status WriteAheadLog::Append(std::string_view payload) {
  FREQYWM_FAULT_POINT("wal/append");
  const std::string frame = EncodeFrame(payload);
  FREQYWM_RETURN_NOT_OK(WriteAll(fd_, frame, path_));
  size_bytes_ += frame.size();
  ++appended_records_;
  ++unsynced_records_;
  unsynced_bytes_ += frame.size();
  switch (options_.sync_policy) {
    case WalSyncPolicy::kEveryRecord:
      return Sync();
    case WalSyncPolicy::kGroupCommit:
      if (unsynced_records_ >= options_.group_commit_max_records ||
          unsynced_bytes_ >= options_.group_commit_max_bytes) {
        return Sync();
      }
      return Status::OK();
    case WalSyncPolicy::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (unsynced_records_ == 0 && unsynced_bytes_ == 0) return Status::OK();
  FREQYWM_FAULT_POINT("wal/fsync");
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(ErrnoMessage("fsync", path_));
  }
  unsynced_records_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Rotate() {
  FREQYWM_FAULT_POINT("wal/rotate");
  if (::ftruncate(fd_, static_cast<off_t>(kWalMagicLen)) != 0) {
    return Status::Unavailable(ErrnoMessage("ftruncate", path_));
  }
  if (::lseek(fd_, static_cast<off_t>(kWalMagicLen), SEEK_SET) < 0) {
    return Status::Unavailable(ErrnoMessage("lseek", path_));
  }
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(ErrnoMessage("fsync", path_));
  }
  size_bytes_ = kWalMagicLen;
  unsynced_records_ = 0;
  unsynced_bytes_ = 0;
  return Status::OK();
}

}  // namespace freqywm
