#ifndef FREQYWM_ANALYSIS_NGRAM_MODEL_H_
#define FREQYWM_ANALYSIS_NGRAM_MODEL_H_

#include <string>
#include <unordered_map>

#include "data/dataset.h"

namespace freqywm {

/// Bigram (first-order Markov) next-token predictor.
///
/// Stand-in for the paper's §VI TensorFlow LSTM next-URL model (see
/// DESIGN.md substitutions): the experiment's claim is that watermarking
/// leaves sequence statistics intact, and any predictor driven by token
/// transition statistics demonstrates that invariance. Prediction: argmax
/// over observed successors of the previous token, falling back to the
/// globally most frequent token for unseen contexts.
class BigramModel {
 public:
  /// Fits transition counts on a token sequence.
  void Train(const Dataset& sequence);

  /// Predicts the most likely successor of `token` ("" if never seen and
  /// no global fallback exists).
  Token Predict(const Token& token) const;

  /// Fraction of positions t in `sequence` (t >= 1) where
  /// Predict(sequence[t-1]) == sequence[t].
  double Accuracy(const Dataset& sequence) const;

  /// Number of distinct contexts learned.
  size_t num_contexts() const { return best_successor_.size(); }

 private:
  std::unordered_map<Token, std::unordered_map<Token, size_t>> transitions_;
  std::unordered_map<Token, Token> best_successor_;
  Token global_fallback_;
};

/// Convenience harness: train on the first `train_fraction` of `sequence`,
/// report accuracy on the remainder (the §VI protocol: same architecture,
/// original vs watermarked stream).
double TrainTestAccuracy(const Dataset& sequence, double train_fraction);

}  // namespace freqywm

#endif  // FREQYWM_ANALYSIS_NGRAM_MODEL_H_
