// Crash-safe persistence of the fingerprint registry (DESIGN.md §13).
//
// Split out of registry.cc so the in-memory data structure stays free of
// platform I/O: snapshot open/write/fsync/rename lives here (the WAL's
// append-side I/O lives in analysis/wal.cc), plus the checksum-footer
// snapshot format that makes on-disk damage a typed `Corruption` instead
// of a parse surprise.
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "analysis/registry.h"
#include "common/hex.h"
#include "crypto/sha256.h"
#include "exec/fault_injection.h"
#include "exec/retry.h"

namespace freqywm {

namespace {

constexpr char kChecksumPrefix[] = "checksum sha256 ";
constexpr size_t kChecksumPrefixLen = sizeof(kChecksumPrefix) - 1;
constexpr size_t kHexDigestLen = 2 * Sha256::kDigestSize;
// "checksum sha256 <64 hex>\n"
constexpr size_t kFooterLen = kChecksumPrefixLen + kHexDigestLen + 1;

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

/// Writes all of `data` to `fd`, resuming on EINTR and short writes.
Status WriteAll(int fd, const std::string& data, const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(ErrnoMessage("write", path));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Fsync of the directory containing `path`, so the rename itself is
/// durable. Failure does not fail the save (the data file is already
/// synced, and not every filesystem supports directory fsync) but is no
/// longer silent: the caller counts a `SaveReport` warning.
bool SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  if (!FREQYWM_FAULT_STATUS("registry_io/fsync_dir").ok()) return false;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool synced = ::fsync(fd) == 0;
  (void)::close(fd);
  return synced;
}

Status SaveSnapshotTo(const std::string& snapshot, const std::string& path,
                      FingerprintRegistry::SaveReport* report) {
  const std::string temp = path + ".tmp";

  FREQYWM_FAULT_POINT("registry_io/open_temp");
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Unavailable(ErrnoMessage("open", temp));

  Status status = FREQYWM_FAULT_STATUS("registry_io/write");
  if (status.ok()) status = WriteAll(fd, snapshot, temp);

  if (status.ok()) {
    status = FREQYWM_FAULT_STATUS("registry_io/fsync");
    if (status.ok() && ::fsync(fd) != 0) {
      status = Status::Unavailable(ErrnoMessage("fsync", temp));
    }
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::Unavailable(ErrnoMessage("close", temp));
  }

  // The kill-during-save window: the temp file is complete and durable,
  // the target not yet replaced. A fault (or crash) here must leave the
  // previous snapshot untouched and loadable — which it does, because
  // nothing has touched `path` yet.
  if (status.ok()) status = FREQYWM_FAULT_STATUS("registry_io/rename");

  if (status.ok() && ::rename(temp.c_str(), path.c_str()) != 0) {
    status = Status::Unavailable(ErrnoMessage("rename", temp));
  }
  if (!status.ok()) {
    (void)::unlink(temp.c_str());  // best-effort cleanup of the temp file
    return status;
  }
  if (!SyncParentDir(path) && report != nullptr) {
    ++report->parent_dir_fsync_warnings;
  }
  return Status::OK();
}

}  // namespace

std::string FingerprintRegistry::SerializeSnapshot() const {
  std::string payload = Serialize();
  const Sha256::Digest digest = Sha256::Hash(payload);
  payload += kChecksumPrefix;
  payload += HexEncode(digest.data(), digest.size());
  payload += '\n';
  return payload;
}

Result<FingerprintRegistry> FingerprintRegistry::ParseSnapshot(
    const std::string& text) {
  if (text.size() < kFooterLen || text.back() != '\n') {
    return Status::Corruption(
        "snapshot truncated: missing checksum footer line");
  }
  const size_t footer_pos = text.size() - kFooterLen;
  if (footer_pos != 0 && text[footer_pos - 1] != '\n') {
    // The 80 bytes before the end don't start a line — either the footer
    // line is malformed or the payload's tail was torn off with the
    // correct total length destroyed.
    return Status::Corruption("snapshot corrupt: malformed checksum footer");
  }
  const std::string_view footer(text.data() + footer_pos, kFooterLen);
  if (footer.substr(0, kChecksumPrefixLen) != kChecksumPrefix) {
    return Status::Corruption("snapshot corrupt: malformed checksum footer");
  }
  const std::string_view hex_digest =
      footer.substr(kChecksumPrefixLen, kHexDigestLen);
  Result<std::vector<uint8_t>> expected = HexDecode(hex_digest);
  if (!expected.ok() || expected.value().size() != Sha256::kDigestSize) {
    return Status::Corruption("snapshot corrupt: malformed checksum footer");
  }
  const std::string_view payload(text.data(), footer_pos);
  const Sha256::Digest actual = Sha256::Hash(payload);
  if (!std::equal(actual.begin(), actual.end(),
                  expected.value().begin())) {
    return Status::Corruption(
        "snapshot corrupt: checksum mismatch (bit rot, truncation, or a "
        "torn write)");
  }
  return Deserialize(std::string(payload));
}

Status FingerprintRegistry::SaveToFile(const std::string& path,
                                       SaveReport* report) const {
  return SaveSnapshotTo(SerializeSnapshot(), path, report);
}

Status FingerprintRegistry::SaveToFile(
    const std::string& path, const RetryPolicy& retry,
    const InterruptContext& interrupt) const {
  // Serialize once; only the I/O retries.
  const std::string snapshot = SerializeSnapshot();
  return RetryWithBackoff(retry, interrupt, [&] {
    return SaveSnapshotTo(snapshot, path, nullptr);
  });
}

Result<FingerprintRegistry> FingerprintRegistry::LoadFromFile(
    const std::string& path) {
  FREQYWM_FAULT_POINT("registry_io/read");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no registry snapshot at '" + path + "'");
    }
    return Status::Unavailable(ErrnoMessage("open", path));
  }
  std::string text;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::Unavailable(ErrnoMessage("read", path));
      (void)::close(fd);
      return status;
    }
    if (n == 0) break;
    text.append(buf, static_cast<size_t>(n));
  }
  (void)::close(fd);
  return ParseSnapshot(text);
}

}  // namespace freqywm
