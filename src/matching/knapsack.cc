#include "matching/knapsack.h"

#include <algorithm>

namespace freqywm {

std::vector<size_t> SolveEquallyValuedKnapsack(
    std::vector<KnapsackItem> items, int64_t capacity) {
  std::sort(items.begin(), items.end(),
            [](const KnapsackItem& a, const KnapsackItem& b) {
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.id < b.id;
            });
  std::vector<size_t> chosen;
  int64_t used = 0;
  for (const auto& item : items) {
    if (item.weight < 0) continue;  // defensive: treat as unusable
    if (used + item.weight > capacity) break;
    used += item.weight;
    chosen.push_back(item.id);
  }
  return chosen;
}

}  // namespace freqywm
