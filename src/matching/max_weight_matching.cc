#include "matching/max_weight_matching.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace freqywm {
namespace {

/// State of one run of the blossom algorithm.
///
/// The implementation follows Galil's exposition ("Efficient algorithms for
/// finding maximum matching in graphs", ACM CSUR 1986) in the concrete
/// formulation popularized by van Rantwijk's reference implementation.
/// Vertices are 0..n-1; blossom slots are n..2n-1. Edge endpoints are
/// encoded as 2k / 2k+1 for edge k. Input weights are doubled internally so
/// every dual update stays integral (delta3 divides a slack by two).
class BlossomMatcher {
 public:
  BlossomMatcher(int num_vertices, const std::vector<WeightedEdge>& input,
                 bool max_cardinality)
      : n_(num_vertices), max_cardinality_(max_cardinality) {
    edges_.reserve(input.size());
    for (const auto& e : input) {
      if (e.u == e.v) continue;  // self-loops never participate
      assert(e.u >= 0 && e.u < n_ && e.v >= 0 && e.v < n_);
      edges_.push_back(WeightedEdge{e.u, e.v, e.weight * 2});
    }
    m_ = static_cast<int>(edges_.size());

    max_weight_ = 0;
    for (const auto& e : edges_) max_weight_ = std::max(max_weight_, e.weight);

    endpoint_.resize(2 * m_);
    for (int k = 0; k < m_; ++k) {
      endpoint_[2 * k] = edges_[k].u;
      endpoint_[2 * k + 1] = edges_[k].v;
    }
    neighb_end_.assign(n_, {});
    for (int k = 0; k < m_; ++k) {
      neighb_end_[edges_[k].u].push_back(2 * k + 1);
      neighb_end_[edges_[k].v].push_back(2 * k);
    }

    mate_.assign(n_, -1);
    label_.assign(2 * n_, 0);
    label_end_.assign(2 * n_, -1);
    in_blossom_.resize(n_);
    for (int v = 0; v < n_; ++v) in_blossom_[v] = v;
    blossom_parent_.assign(2 * n_, -1);
    blossom_childs_.assign(2 * n_, {});
    blossom_base_.assign(2 * n_, -1);
    for (int v = 0; v < n_; ++v) blossom_base_[v] = v;
    blossom_endps_.assign(2 * n_, {});
    best_edge_.assign(2 * n_, -1);
    blossom_best_edges_.assign(2 * n_, {});
    has_best_edges_.assign(2 * n_, false);
    for (int b = 2 * n_ - 1; b >= n_; --b) unused_blossoms_.push_back(b);
    dual_var_.assign(2 * n_, 0);
    for (int v = 0; v < n_; ++v) dual_var_[v] = max_weight_;
    allow_edge_.assign(m_, false);
  }

  std::vector<int> Run() {
    for (int stage = 0; stage < n_; ++stage) {
      std::fill(label_.begin(), label_.end(), 0);
      std::fill(best_edge_.begin(), best_edge_.end(), -1);
      for (int b = n_; b < 2 * n_; ++b) {
        blossom_best_edges_[b].clear();
        has_best_edges_[b] = false;
      }
      std::fill(allow_edge_.begin(), allow_edge_.end(), false);
      queue_.clear();

      for (int v = 0; v < n_; ++v) {
        if (mate_[v] == -1 && label_[in_blossom_[v]] == 0) {
          AssignLabel(v, 1, -1);
        }
      }

      bool augmented = false;
      while (true) {
        while (!queue_.empty() && !augmented) {
          int v = queue_.back();
          queue_.pop_back();
          assert(label_[in_blossom_[v]] == 1);

          for (int p : neighb_end_[v]) {
            int k = p / 2;
            int w = endpoint_[p];
            if (in_blossom_[v] == in_blossom_[w]) continue;
            int64_t kslack = 0;
            if (!allow_edge_[k]) {
              kslack = Slack(k);
              if (kslack <= 0) allow_edge_[k] = true;
            }
            if (allow_edge_[k]) {
              if (label_[in_blossom_[w]] == 0) {
                AssignLabel(w, 2, p ^ 1);
              } else if (label_[in_blossom_[w]] == 1) {
                int base = ScanBlossom(v, w);
                if (base >= 0) {
                  AddBlossom(base, k);
                } else {
                  AugmentMatching(k);
                  augmented = true;
                  break;
                }
              } else if (label_[w] == 0) {
                assert(label_[in_blossom_[w]] == 2);
                label_[w] = 2;
                label_end_[w] = p ^ 1;
              }
            } else if (label_[in_blossom_[w]] == 1) {
              int b = in_blossom_[v];
              if (best_edge_[b] == -1 || kslack < Slack(best_edge_[b])) {
                best_edge_[b] = k;
              }
            } else if (label_[w] == 0) {
              if (best_edge_[w] == -1 || kslack < Slack(best_edge_[w])) {
                best_edge_[w] = k;
              }
            }
          }
        }
        if (augmented) break;

        // No augmenting path under the current duals; compute the minimum
        // delta over the four dual-update cases.
        int delta_type = -1;
        int64_t delta = 0;
        int delta_edge = -1;
        int delta_blossom = -1;

        if (!max_cardinality_) {
          delta_type = 1;
          delta = std::numeric_limits<int64_t>::max();
          for (int v = 0; v < n_; ++v) delta = std::min(delta, dual_var_[v]);
          delta = std::max<int64_t>(delta, 0);
        }
        for (int v = 0; v < n_; ++v) {
          if (label_[in_blossom_[v]] == 0 && best_edge_[v] != -1) {
            int64_t d = Slack(best_edge_[v]);
            if (delta_type == -1 || d < delta) {
              delta = d;
              delta_type = 2;
              delta_edge = best_edge_[v];
            }
          }
        }
        for (int b = 0; b < 2 * n_; ++b) {
          if (blossom_parent_[b] == -1 && label_[b] == 1 &&
              best_edge_[b] != -1) {
            int64_t kslack = Slack(best_edge_[b]);
            assert(kslack % 2 == 0);
            int64_t d = kslack / 2;
            if (delta_type == -1 || d < delta) {
              delta = d;
              delta_type = 3;
              delta_edge = best_edge_[b];
            }
          }
        }
        for (int b = n_; b < 2 * n_; ++b) {
          if (blossom_base_[b] >= 0 && blossom_parent_[b] == -1 &&
              label_[b] == 2 && (delta_type == -1 || dual_var_[b] < delta)) {
            delta = dual_var_[b];
            delta_type = 4;
            delta_blossom = b;
          }
        }
        if (delta_type == -1) {
          // Max-cardinality mode with no slack anywhere: one final update.
          assert(max_cardinality_);
          delta_type = 1;
          int64_t mn = std::numeric_limits<int64_t>::max();
          for (int v = 0; v < n_; ++v) mn = std::min(mn, dual_var_[v]);
          delta = std::max<int64_t>(0, mn);
        }

        for (int v = 0; v < n_; ++v) {
          int lbl = label_[in_blossom_[v]];
          if (lbl == 1) {
            dual_var_[v] -= delta;
          } else if (lbl == 2) {
            dual_var_[v] += delta;
          }
        }
        for (int b = n_; b < 2 * n_; ++b) {
          if (blossom_base_[b] >= 0 && blossom_parent_[b] == -1) {
            if (label_[b] == 1) {
              dual_var_[b] += delta;
            } else if (label_[b] == 2) {
              dual_var_[b] -= delta;
            }
          }
        }

        if (delta_type == 1) {
          break;  // optimum reached
        } else if (delta_type == 2) {
          allow_edge_[delta_edge] = true;
          int i = edges_[delta_edge].u;
          int j = edges_[delta_edge].v;
          if (label_[in_blossom_[i]] == 0) std::swap(i, j);
          assert(label_[in_blossom_[i]] == 1);
          queue_.push_back(i);
          (void)j;
        } else if (delta_type == 3) {
          allow_edge_[delta_edge] = true;
          int i = edges_[delta_edge].u;
          assert(label_[in_blossom_[i]] == 1);
          queue_.push_back(i);
        } else {
          ExpandBlossom(delta_blossom, /*endstage=*/false);
        }
      }

      if (!augmented) break;

      // End of stage: expand S-blossoms whose dual hit zero.
      for (int b = n_; b < 2 * n_; ++b) {
        if (blossom_parent_[b] == -1 && blossom_base_[b] >= 0 &&
            label_[b] == 1 && dual_var_[b] == 0) {
          ExpandBlossom(b, /*endstage=*/true);
        }
      }
    }

#ifndef NDEBUG
    VerifyOptimum();
#endif

    std::vector<int> result(n_, -1);
    for (int v = 0; v < n_; ++v) {
      if (mate_[v] >= 0) result[v] = endpoint_[mate_[v]];
    }
    return result;
  }

 private:
  int64_t Slack(int k) const {
    return dual_var_[edges_[k].u] + dual_var_[edges_[k].v] -
           2 * edges_[k].weight;
  }

  void CollectLeaves(int b, std::vector<int>& out) const {
    if (b < n_) {
      out.push_back(b);
      return;
    }
    for (int t : blossom_childs_[b]) CollectLeaves(t, out);
  }

  std::vector<int> BlossomLeaves(int b) const {
    std::vector<int> out;
    CollectLeaves(b, out);
    return out;
  }

  void AssignLabel(int w, int t, int p) {
    int b = in_blossom_[w];
    assert(label_[w] == 0 && label_[b] == 0);
    label_[w] = label_[b] = t;
    label_end_[w] = label_end_[b] = p;
    best_edge_[w] = best_edge_[b] = -1;
    if (t == 1) {
      for (int leaf : BlossomLeaves(b)) queue_.push_back(leaf);
    } else if (t == 2) {
      int base = blossom_base_[b];
      assert(mate_[base] >= 0);
      AssignLabel(endpoint_[mate_[base]], 1, mate_[base] ^ 1);
    }
  }

  int ScanBlossom(int v, int w) {
    std::vector<int> path;
    int base = -1;
    while (v != -1 || w != -1) {
      int b = in_blossom_[v];
      if (label_[b] & 4) {
        base = blossom_base_[b];
        break;
      }
      assert(label_[b] == 1);
      path.push_back(b);
      label_[b] = 5;
      assert(label_end_[b] == mate_[blossom_base_[b]]);
      if (label_end_[b] == -1) {
        v = -1;
      } else {
        v = endpoint_[label_end_[b]];
        b = in_blossom_[v];
        assert(label_[b] == 2);
        assert(label_end_[b] >= 0);
        v = endpoint_[label_end_[b]];
      }
      if (w != -1) std::swap(v, w);
    }
    for (int b : path) label_[b] = 1;
    return base;
  }

  void AddBlossom(int base, int k) {
    int v = edges_[k].u;
    int w = edges_[k].v;
    int bb = in_blossom_[base];
    int bv = in_blossom_[v];
    int bw = in_blossom_[w];

    assert(!unused_blossoms_.empty());
    int b = unused_blossoms_.back();
    unused_blossoms_.pop_back();
    blossom_base_[b] = base;
    blossom_parent_[b] = -1;
    blossom_parent_[bb] = b;

    std::vector<int>& path = blossom_childs_[b];
    std::vector<int>& endps = blossom_endps_[b];
    path.clear();
    endps.clear();

    while (bv != bb) {
      blossom_parent_[bv] = b;
      path.push_back(bv);
      endps.push_back(label_end_[bv]);
      assert(label_[bv] == 2 ||
             (label_[bv] == 1 &&
              label_end_[bv] == mate_[blossom_base_[bv]]));
      assert(label_end_[bv] >= 0);
      v = endpoint_[label_end_[bv]];
      bv = in_blossom_[v];
    }
    path.push_back(bb);
    std::reverse(path.begin(), path.end());
    std::reverse(endps.begin(), endps.end());
    endps.push_back(2 * k);

    while (bw != bb) {
      blossom_parent_[bw] = b;
      path.push_back(bw);
      endps.push_back(label_end_[bw] ^ 1);
      assert(label_[bw] == 2 ||
             (label_[bw] == 1 &&
              label_end_[bw] == mate_[blossom_base_[bw]]));
      assert(label_end_[bw] >= 0);
      w = endpoint_[label_end_[bw]];
      bw = in_blossom_[w];
    }

    assert(label_[bb] == 1);
    label_[b] = 1;
    label_end_[b] = label_end_[bb];
    dual_var_[b] = 0;

    for (int leaf : BlossomLeaves(b)) {
      if (label_[in_blossom_[leaf]] == 2) queue_.push_back(leaf);
      in_blossom_[leaf] = b;
    }

    // Compute the least-slack edges from the new blossom to every other
    // S-blossom (used by delta3).
    std::vector<int> best_edge_to(2 * n_, -1);
    for (int child : path) {
      std::vector<std::vector<int>> nblists;
      if (!has_best_edges_[child]) {
        for (int leaf : BlossomLeaves(child)) {
          std::vector<int> lst;
          lst.reserve(neighb_end_[leaf].size());
          for (int p : neighb_end_[leaf]) lst.push_back(p / 2);
          nblists.push_back(std::move(lst));
        }
      } else {
        nblists.push_back(blossom_best_edges_[child]);
      }
      for (const auto& nblist : nblists) {
        for (int ke : nblist) {
          int i = edges_[ke].u;
          int j = edges_[ke].v;
          if (in_blossom_[j] == b) std::swap(i, j);
          int bj = in_blossom_[j];
          if (bj != b && label_[bj] == 1 &&
              (best_edge_to[bj] == -1 ||
               Slack(ke) < Slack(best_edge_to[bj]))) {
            best_edge_to[bj] = ke;
          }
        }
      }
      blossom_best_edges_[child].clear();
      has_best_edges_[child] = false;
      best_edge_[child] = -1;
    }
    blossom_best_edges_[b].clear();
    for (int ke : best_edge_to) {
      if (ke != -1) blossom_best_edges_[b].push_back(ke);
    }
    has_best_edges_[b] = true;

    best_edge_[b] = -1;
    for (int ke : blossom_best_edges_[b]) {
      if (best_edge_[b] == -1 || Slack(ke) < Slack(best_edge_[b])) {
        best_edge_[b] = ke;
      }
    }
  }

  void ExpandBlossom(int b, bool endstage) {
    for (int s : blossom_childs_[b]) {
      blossom_parent_[s] = -1;
      if (s < n_) {
        in_blossom_[s] = s;
      } else if (endstage && dual_var_[s] == 0) {
        ExpandBlossom(s, endstage);
      } else {
        for (int leaf : BlossomLeaves(s)) in_blossom_[leaf] = s;
      }
    }

    if (!endstage && label_[b] == 2) {
      assert(label_end_[b] >= 0);
      int entry_child = in_blossom_[endpoint_[label_end_[b] ^ 1]];
      int j = 0;
      const int len = static_cast<int>(blossom_childs_[b].size());
      for (int idx = 0; idx < len; ++idx) {
        if (blossom_childs_[b][idx] == entry_child) {
          j = idx;
          break;
        }
      }
      int jstep, endptrick;
      if (j & 1) {
        j -= len;
        jstep = 1;
        endptrick = 0;
      } else {
        jstep = -1;
        endptrick = 1;
      }
      auto child_at = [&](int idx) {
        return blossom_childs_[b][(idx % len + len) % len];
      };
      auto endp_at = [&](int idx) {
        return blossom_endps_[b][(idx % len + len) % len];
      };

      int p = label_end_[b];
      while (j != 0) {
        label_[endpoint_[p ^ 1]] = 0;
        label_[endpoint_[endp_at(j - endptrick) ^ endptrick ^ 1]] = 0;
        AssignLabel(endpoint_[p ^ 1], 2, p);
        allow_edge_[endp_at(j - endptrick) / 2] = true;
        j += jstep;
        p = endp_at(j - endptrick) ^ endptrick;
        allow_edge_[p / 2] = true;
        j += jstep;
      }
      int bv = child_at(j);
      label_[endpoint_[p ^ 1]] = label_[bv] = 2;
      label_end_[endpoint_[p ^ 1]] = label_end_[bv] = p;
      best_edge_[bv] = -1;
      j += jstep;
      while (child_at(j) != entry_child) {
        bv = child_at(j);
        if (label_[bv] == 1) {
          j += jstep;
          continue;
        }
        int reached = -1;
        for (int leaf : BlossomLeaves(bv)) {
          if (label_[leaf] != 0) {
            reached = leaf;
            break;
          }
        }
        if (reached != -1) {
          assert(label_[reached] == 2);
          assert(in_blossom_[reached] == bv);
          label_[reached] = 0;
          label_[endpoint_[mate_[blossom_base_[bv]]]] = 0;
          AssignLabel(reached, 2, label_end_[reached]);
        }
        j += jstep;
      }
    }

    label_[b] = -1;
    label_end_[b] = -1;
    blossom_childs_[b].clear();
    blossom_endps_[b].clear();
    blossom_base_[b] = -1;
    blossom_best_edges_[b].clear();
    has_best_edges_[b] = false;
    best_edge_[b] = -1;
    unused_blossoms_.push_back(b);
  }

  void AugmentBlossom(int b, int v) {
    int t = v;
    while (blossom_parent_[t] != b) t = blossom_parent_[t];
    if (t >= n_) AugmentBlossom(t, v);

    const int len = static_cast<int>(blossom_childs_[b].size());
    int i = 0;
    for (int idx = 0; idx < len; ++idx) {
      if (blossom_childs_[b][idx] == t) {
        i = idx;
        break;
      }
    }
    int j = i;
    int jstep, endptrick;
    if (i & 1) {
      j -= len;
      jstep = 1;
      endptrick = 0;
    } else {
      jstep = -1;
      endptrick = 1;
    }
    auto child_at = [&](int idx) {
      return blossom_childs_[b][(idx % len + len) % len];
    };
    auto endp_at = [&](int idx) {
      return blossom_endps_[b][(idx % len + len) % len];
    };

    while (j != 0) {
      j += jstep;
      t = child_at(j);
      int p = endp_at(j - endptrick) ^ endptrick;
      if (t >= n_) AugmentBlossom(t, endpoint_[p]);
      j += jstep;
      t = child_at(j);
      if (t >= n_) AugmentBlossom(t, endpoint_[p ^ 1]);
      mate_[endpoint_[p]] = p ^ 1;
      mate_[endpoint_[p ^ 1]] = p;
    }

    std::vector<int> new_childs, new_endps;
    new_childs.reserve(len);
    new_endps.reserve(len);
    for (int idx = 0; idx < len; ++idx) {
      new_childs.push_back(blossom_childs_[b][(i + idx) % len]);
      new_endps.push_back(blossom_endps_[b][(i + idx) % len]);
    }
    blossom_childs_[b] = std::move(new_childs);
    blossom_endps_[b] = std::move(new_endps);
    blossom_base_[b] = blossom_base_[blossom_childs_[b][0]];
    assert(blossom_base_[b] == v);
  }

  void AugmentMatching(int k) {
    const int kv = edges_[k].u;
    const int kw = edges_[k].v;
    const int starts[2][2] = {{kv, 2 * k + 1}, {kw, 2 * k}};
    for (const auto& start : starts) {
      int s = start[0];
      int p = start[1];
      while (true) {
        int bs = in_blossom_[s];
        assert(label_[bs] == 1);
        assert(label_end_[bs] == mate_[blossom_base_[bs]]);
        if (bs >= n_) AugmentBlossom(bs, s);
        mate_[s] = p;
        if (label_end_[bs] == -1) break;
        int t = endpoint_[label_end_[bs]];
        int bt = in_blossom_[t];
        assert(label_[bt] == 2);
        assert(label_end_[bt] >= 0);
        s = endpoint_[label_end_[bt]];
        int j = endpoint_[label_end_[bt] ^ 1];
        assert(blossom_base_[bt] == t);
        if (bt >= n_) AugmentBlossom(bt, j);
        mate_[j] = label_end_[bt];
        p = label_end_[bt] ^ 1;
      }
    }
  }

#ifndef NDEBUG
  /// Checks LP dual feasibility and complementary slackness — the standard
  /// certificate that the produced matching is optimal.
  void VerifyOptimum() const {
    int64_t vdual_min = max_cardinality_ ? std::numeric_limits<int64_t>::min()
                                         : 0;
    for (int v = 0; v < n_; ++v) {
      assert(dual_var_[v] >= vdual_min || mate_[v] >= 0);
    }
    for (int k = 0; k < m_; ++k) {
      int64_t s = Slack(k);
      // Slack must be non-negative except where blossom duals compensate;
      // full verification mirrors van Rantwijk's verifyOptimum.
      int i = edges_[k].u;
      int j = edges_[k].v;
      std::vector<int> iblossoms{i}, jblossoms{j};
      while (blossom_parent_[iblossoms.back()] != -1) {
        iblossoms.push_back(blossom_parent_[iblossoms.back()]);
      }
      while (blossom_parent_[jblossoms.back()] != -1) {
        jblossoms.push_back(blossom_parent_[jblossoms.back()]);
      }
      int64_t extra = 0;
      size_t a = 0;
      // Common blossoms contribute 2 * z_b to the edge's dual sum.
      while (a < iblossoms.size() && a < jblossoms.size()) {
        size_t ri = iblossoms.size() - 1 - a;
        size_t rj = jblossoms.size() - 1 - a;
        if (iblossoms[ri] != jblossoms[rj]) break;
        if (iblossoms[ri] >= n_) extra += 2 * dual_var_[iblossoms[ri]];
        ++a;
      }
      s += extra;
      assert(s >= 0);
      if (mate_[i] >= 0 && mate_[i] / 2 == k) {
        assert(mate_[i] / 2 == mate_[j] / 2);
        assert(s == 0);
      }
    }
  }
#endif

  int n_;
  bool max_cardinality_;
  std::vector<WeightedEdge> edges_;
  int m_ = 0;
  int64_t max_weight_ = 0;

  std::vector<int> endpoint_;
  std::vector<std::vector<int>> neighb_end_;
  std::vector<int> mate_;
  std::vector<int> label_;
  std::vector<int> label_end_;
  std::vector<int> in_blossom_;
  std::vector<int> blossom_parent_;
  std::vector<std::vector<int>> blossom_childs_;
  std::vector<int> blossom_base_;
  std::vector<std::vector<int>> blossom_endps_;
  std::vector<int> best_edge_;
  std::vector<std::vector<int>> blossom_best_edges_;
  std::vector<char> has_best_edges_;
  std::vector<int> unused_blossoms_;
  std::vector<int64_t> dual_var_;
  std::vector<char> allow_edge_;
  std::vector<int> queue_;
};

}  // namespace

std::vector<int> MaxWeightMatching(int num_vertices,
                                   const std::vector<WeightedEdge>& edges,
                                   bool max_cardinality) {
  if (num_vertices <= 0) return {};
  BlossomMatcher matcher(num_vertices, edges, max_cardinality);
  return matcher.Run();
}

int64_t MatchingWeight(const std::vector<int>& mate,
                       const std::vector<WeightedEdge>& edges) {
  int64_t total = 0;
  for (const auto& e : edges) {
    if (e.u < static_cast<int>(mate.size()) && mate[e.u] == e.v &&
        mate[e.v] == e.u && e.u < e.v) {
      total += e.weight;
    }
  }
  return total;
}

std::vector<int> GreedyMatching(int num_vertices,
                                const std::vector<WeightedEdge>& edges) {
  std::vector<size_t> order(edges.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (edges[a].weight != edges[b].weight) {
      return edges[a].weight > edges[b].weight;
    }
    return a < b;
  });
  std::vector<int> mate(num_vertices, -1);
  for (size_t idx : order) {
    const auto& e = edges[idx];
    if (e.u == e.v || e.weight < 0) continue;
    if (mate[e.u] == -1 && mate[e.v] == -1) {
      mate[e.u] = e.v;
      mate[e.v] = e.u;
    }
  }
  return mate;
}

namespace {

void BruteForceRecurse(const std::vector<WeightedEdge>& edges, size_t idx,
                       std::vector<int>& mate, int64_t weight,
                       int64_t& best_weight, std::vector<int>& best_mate) {
  if (idx == edges.size()) {
    if (weight > best_weight) {
      best_weight = weight;
      best_mate = mate;
    }
    return;
  }
  // Skip edge idx.
  BruteForceRecurse(edges, idx + 1, mate, weight, best_weight, best_mate);
  // Take edge idx if both endpoints are free.
  const auto& e = edges[idx];
  if (e.u != e.v && mate[e.u] == -1 && mate[e.v] == -1) {
    mate[e.u] = e.v;
    mate[e.v] = e.u;
    BruteForceRecurse(edges, idx + 1, mate, weight + e.weight, best_weight,
                      best_mate);
    mate[e.u] = -1;
    mate[e.v] = -1;
  }
}

}  // namespace

std::vector<int> BruteForceMaxWeightMatching(
    int num_vertices, const std::vector<WeightedEdge>& edges) {
  std::vector<int> mate(num_vertices, -1);
  std::vector<int> best_mate = mate;
  int64_t best_weight = 0;
  BruteForceRecurse(edges, 0, mate, 0, best_weight, best_mate);
  return best_mate;
}

}  // namespace freqywm
