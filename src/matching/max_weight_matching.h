#ifndef FREQYWM_MATCHING_MAX_WEIGHT_MATCHING_H_
#define FREQYWM_MATCHING_MAX_WEIGHT_MATCHING_H_

#include <cstdint>
#include <vector>

namespace freqywm {

/// An undirected weighted edge between vertex indices `u` and `v`.
struct WeightedEdge {
  int u = 0;
  int v = 0;
  int64_t weight = 0;

  friend bool operator==(const WeightedEdge& a, const WeightedEdge& b) {
    return a.u == b.u && a.v == b.v && a.weight == b.weight;
  }
};

/// Maximum weight matching on a general graph (Galil's blossom algorithm,
/// O(V^3) formulation after van Rantwijk). This is the exact solver behind
/// FreqyWM's *optimal* pair selection (paper §III-B2).
///
/// Returns `mate` with `mate[v]` = matched partner of `v`, or -1 if `v` is
/// single. Self-loops are ignored; negative-weight edges are never matched
/// unless `max_cardinality` forces cardinality over weight.
///
/// Correctness is established two ways in the test suite: against an
/// exhaustive brute-force matcher on random graphs (property tests), and by
/// verifying LP dual feasibility + complementary slackness internally when
/// assertions are enabled.
std::vector<int> MaxWeightMatching(int num_vertices,
                                   const std::vector<WeightedEdge>& edges,
                                   bool max_cardinality = false);

/// Sum of weights of matched edges for a `mate` array produced by any
/// matcher here.
int64_t MatchingWeight(const std::vector<int>& mate,
                       const std::vector<WeightedEdge>& edges);

/// Greedy matcher: repeatedly takes the heaviest edge whose endpoints are
/// both free. 1/2-approximation; used for scale comparisons and tests.
std::vector<int> GreedyMatching(int num_vertices,
                                const std::vector<WeightedEdge>& edges);

/// Exhaustive exact matcher for small graphs (<= ~20 edges practical).
/// Used only as a test oracle for the blossom implementation.
std::vector<int> BruteForceMaxWeightMatching(
    int num_vertices, const std::vector<WeightedEdge>& edges);

}  // namespace freqywm

#endif  // FREQYWM_MATCHING_MAX_WEIGHT_MATCHING_H_
