#ifndef FREQYWM_MATCHING_KNAPSACK_H_
#define FREQYWM_MATCHING_KNAPSACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace freqywm {

/// An item of the equally-valued 0/1 knapsack (QKP) from §III-B2: every
/// item is worth 1, only the weights differ.
struct KnapsackItem {
  /// Caller-defined identifier (FreqyWM stores the eligible-pair index).
  size_t id = 0;
  /// Non-negative cost of taking this item.
  int64_t weight = 0;
};

/// Solves the equally-valued 0/1 knapsack exactly: picks the maximum number
/// of items whose total weight does not exceed `capacity`.
///
/// Because all values are equal, sorting by ascending weight and taking a
/// prefix is optimal (an exchange argument: any feasible set can be mapped
/// to an ascending prefix of the same cardinality with no larger weight).
/// This is the polynomial special case the paper relies on — the general
/// 0/1 knapsack is NP-hard.
///
/// Ties are broken by ascending `id`, which makes selection deterministic.
/// Returns the chosen item ids in selection order.
std::vector<size_t> SolveEquallyValuedKnapsack(
    std::vector<KnapsackItem> items, int64_t capacity);

}  // namespace freqywm

#endif  // FREQYWM_MATCHING_KNAPSACK_H_
