#ifndef FREQYWM_STATS_RANK_H_
#define FREQYWM_STATS_RANK_H_

#include <cstddef>
#include <vector>

#include "data/histogram.h"

namespace freqywm {

/// Summary of how a mutated histogram's token ranking compares with the
/// original ranking (used by the §IV-D baseline comparison, where WM-OBT
/// and WM-RVS scramble 998/1000 and 987/1000 ranks respectively while
/// FreqyWM preserves all of them).
struct RankComparison {
  /// Tokens whose rank position changed.
  size_t changed = 0;
  /// Tokens present in both histograms (the comparison universe).
  size_t compared = 0;
  /// Spearman rank correlation over the common tokens; 1 = identical order.
  double spearman = 1.0;
};

/// Compares token rankings. Both histograms are re-sorted internally, so
/// callers may pass mutated (unsorted) histograms directly.
RankComparison CompareRankings(const Histogram& original,
                               const Histogram& modified);

/// Spearman rank correlation of two equal-length score vectors
/// (ranks are assigned by descending score; ties get their average rank).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Kendall tau-a rank correlation of two equal-length score vectors.
/// O(n^2); intended for analysis-scale series, not hot paths.
double KendallTau(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace freqywm

#endif  // FREQYWM_STATS_RANK_H_
