#include "stats/poisson_binomial.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>

namespace freqywm {

PoissonBinomial::PoissonBinomial(std::vector<double> probabilities) {
  for (auto& p : probabilities) p = std::clamp(p, 0.0, 1.0);
  n_ = probabilities.size();
  mean_ = 0;
  for (double p : probabilities) mean_ += p;

  // DFT of the characteristic function (Hong 2013):
  //   P(S = m) = 1/(n+1) * sum_{l=0}^{n} w^{-lm} * prod_j (1 + (w^l - 1) p_j)
  // with w = exp(2*pi*i / (n+1)).
  const size_t size = n_ + 1;
  const std::complex<double> i_unit(0.0, 1.0);
  const double omega = 2.0 * M_PI / static_cast<double>(size);

  std::vector<std::complex<double>> xi(size);
  for (size_t l = 0; l < size; ++l) {
    std::complex<double> w_l =
        std::exp(i_unit * (omega * static_cast<double>(l)));
    std::complex<double> prod(1.0, 0.0);
    for (double p : probabilities) {
      prod *= (1.0 + (w_l - 1.0) * p);
    }
    xi[l] = prod;
  }

  pmf_.assign(size, 0.0);
  for (size_t m = 0; m < size; ++m) {
    std::complex<double> sum(0.0, 0.0);
    for (size_t l = 0; l < size; ++l) {
      std::complex<double> w_neg = std::exp(
          -i_unit * (omega * static_cast<double>(l) * static_cast<double>(m)));
      sum += w_neg * xi[l];
    }
    pmf_[m] = std::max(0.0, sum.real() / static_cast<double>(size));
  }
}

double PoissonBinomial::Pmf(size_t m) const {
  if (m >= pmf_.size()) return 0.0;
  return pmf_[m];
}

double PoissonBinomial::Survival(size_t k) const {
  if (k == 0) return 1.0;
  double s = 0.0;
  for (size_t m = k; m < pmf_.size(); ++m) s += pmf_[m];
  return std::min(1.0, s);
}

double MarkovSurvivalBound(double mean, size_t k) {
  if (k == 0) return 1.0;
  return std::clamp(mean / static_cast<double>(k), 0.0, 1.0);
}

double PairFalsePositiveProbability(uint64_t t, uint64_t s) {
  if (s == 0) return 1.0;
  uint64_t passing = std::min(t + 1, s);
  return static_cast<double>(passing) / static_cast<double>(s);
}

}  // namespace freqywm
