#include "stats/rank.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace freqywm {
namespace {

/// Average ranks (1-based) by descending value.
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    if (values[x] != values[y]) return values[x] > values[y];
    return x < y;
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const size_t n = a.size();
  if (n == 0) return 1.0;
  double ma = 0, mb = 0;
  for (size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0 || vb == 0) return 1.0;  // constant series: order unchanged
  return cov / std::sqrt(va * vb);
}

}  // namespace

RankComparison CompareRankings(const Histogram& original,
                               const Histogram& modified) {
  Histogram orig = original.Resorted();
  Histogram mod = modified.Resorted();

  RankComparison out;
  std::vector<double> orig_counts, mod_counts;
  for (const auto& e : orig.entries()) {
    auto mod_rank = mod.RankOf(e.token);
    if (!mod_rank) continue;
    auto orig_rank = orig.RankOf(e.token);
    ++out.compared;
    if (*orig_rank != *mod_rank) ++out.changed;
    orig_counts.push_back(static_cast<double>(e.count));
    mod_counts.push_back(static_cast<double>(*mod.CountOf(e.token)));
  }
  out.spearman = SpearmanCorrelation(orig_counts, mod_counts);
  return out;
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 1.0;
  return PearsonCorrelation(AverageRanks(a), AverageRanks(b));
}

double KendallTau(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 1.0;
  const size_t n = a.size();
  long long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double da = a[i] - a[j];
      double db = b[i] - b[j];
      double prod = da * db;
      if (prod > 0) {
        ++concordant;
      } else if (prod < 0) {
        ++discordant;
      }
    }
  }
  double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) /
         pairs;
}

}  // namespace freqywm
