#include "stats/decomposition.h"

#include <cassert>
#include <cmath>

namespace freqywm {

SeasonalDecomposition DecomposeAdditive(const std::vector<double>& series,
                                        size_t period) {
  const size_t n = series.size();
  assert(period >= 2);
  assert(n >= 2 * period);

  SeasonalDecomposition out;
  out.trend.assign(n, 0.0);
  out.seasonal.assign(n, 0.0);
  out.residual.assign(n, 0.0);

  // Centered moving average. For even periods the classical 2xMA applies
  // half weight to the two extreme points of the window.
  const size_t half = period / 2;
  std::vector<char> defined(n, 0);
  for (size_t t = half; t + half < n; ++t) {
    double sum = 0.0;
    if (period % 2 == 0) {
      sum += 0.5 * series[t - half];
      sum += 0.5 * series[t + half];
      for (size_t j = t - half + 1; j < t + half; ++j) sum += series[j];
      out.trend[t] = sum / static_cast<double>(period);
    } else {
      for (size_t j = t - half; j <= t + half; ++j) sum += series[j];
      out.trend[t] = sum / static_cast<double>(period);
    }
    defined[t] = 1;
  }
  // Extend trend into the undefined edges.
  size_t first_def = half;
  size_t last_def = n - half - 1;
  for (size_t t = 0; t < first_def; ++t) out.trend[t] = out.trend[first_def];
  for (size_t t = last_def + 1; t < n; ++t) out.trend[t] = out.trend[last_def];

  // Seasonal: mean of detrended values per phase, normalized to zero-sum.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<size_t> phase_count(period, 0);
  for (size_t t = first_def; t <= last_def; ++t) {
    phase_sum[t % period] += series[t] - out.trend[t];
    ++phase_count[t % period];
  }
  std::vector<double> phase_mean(period, 0.0);
  double grand = 0.0;
  for (size_t ph = 0; ph < period; ++ph) {
    phase_mean[ph] =
        phase_count[ph] ? phase_sum[ph] / static_cast<double>(phase_count[ph])
                        : 0.0;
    grand += phase_mean[ph];
  }
  grand /= static_cast<double>(period);
  for (auto& m : phase_mean) m -= grand;

  for (size_t t = 0; t < n; ++t) {
    out.seasonal[t] = phase_mean[t % period];
    out.residual[t] = series[t] - out.trend[t] - out.seasonal[t];
  }
  return out;
}

double RootMeanSquaredDifference(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(n));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double m = Mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size()));
}

}  // namespace freqywm
