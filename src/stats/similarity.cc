#include "stats/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace freqywm {
namespace {

/// Aligns two histograms into parallel vectors over the token union.
void AlignHistograms(const Histogram& a, const Histogram& b,
                     std::vector<double>& va, std::vector<double>& vb) {
  va.clear();
  vb.clear();
  va.reserve(a.num_tokens() + b.num_tokens());
  vb.reserve(a.num_tokens() + b.num_tokens());
  for (const auto& e : a.entries()) {
    va.push_back(static_cast<double>(e.count));
    auto cb = b.CountOf(e.token);
    vb.push_back(cb ? static_cast<double>(*cb) : 0.0);
  }
  for (const auto& e : b.entries()) {
    if (!a.CountOf(e.token)) {
      va.push_back(0.0);
      vb.push_back(static_cast<double>(e.count));
    }
  }
}

}  // namespace

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double dot = 0, na = 0, nb = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  for (size_t i = n; i < a.size(); ++i) na += a[i] * a[i];
  for (size_t i = n; i < b.size(); ++i) nb += b[i] * b[i];
  if (na == 0 && nb == 0) return 1.0;
  if (na == 0 || nb == 0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double HistogramSimilarity(const Histogram& a, const Histogram& b,
                           SimilarityMetric metric) {
  std::vector<double> va, vb;
  AlignHistograms(a, b, va, vb);
  switch (metric) {
    case SimilarityMetric::kCosine:
      return CosineSimilarity(va, vb);
    case SimilarityMetric::kNormalizedL1: {
      double l1 = 0, total = 0;
      for (size_t i = 0; i < va.size(); ++i) {
        l1 += std::abs(va[i] - vb[i]);
        total += va[i] + vb[i];
      }
      return total == 0 ? 1.0 : 1.0 - l1 / total;
    }
    case SimilarityMetric::kMinMaxRatio: {
      double mn = 0, mx = 0;
      for (size_t i = 0; i < va.size(); ++i) {
        mn += std::min(va[i], vb[i]);
        mx += std::max(va[i], vb[i]);
      }
      return mx == 0 ? 1.0 : mn / mx;
    }
  }
  return 0.0;
}

double HistogramSimilarityPercent(const Histogram& a, const Histogram& b,
                                  SimilarityMetric metric) {
  return HistogramSimilarity(a, b, metric) * 100.0;
}

IncrementalCosine::IncrementalCosine(const Histogram& original) {
  original_.reserve(original.num_tokens());
  for (const auto& e : original.entries()) {
    original_.push_back(static_cast<double>(e.count));
  }
  current_ = original_;
  for (double v : original_) {
    dot_ += v * v;
    norm_orig_sq_ += v * v;
  }
  norm_cur_sq_ = norm_orig_sq_;
}

double IncrementalCosine::Similarity() const {
  if (norm_orig_sq_ == 0 && norm_cur_sq_ == 0) return 1.0;
  if (norm_orig_sq_ == 0 || norm_cur_sq_ == 0) return 0.0;
  return dot_ / (std::sqrt(norm_orig_sq_) * std::sqrt(norm_cur_sq_));
}

void IncrementalCosine::ApplyDelta(size_t rank, int64_t delta) {
  double old_v = current_[rank];
  double new_v = old_v + static_cast<double>(delta);
  dot_ += original_[rank] * (new_v - old_v);
  norm_cur_sq_ += new_v * new_v - old_v * old_v;
  current_[rank] = new_v;
}

double IncrementalCosine::ProbePairDelta(size_t rank_i, int64_t delta_i,
                                         size_t rank_j,
                                         int64_t delta_j) const {
  double dot = dot_;
  double ncur = norm_cur_sq_;
  const size_t ranks[2] = {rank_i, rank_j};
  const int64_t deltas[2] = {delta_i, delta_j};
  for (int s = 0; s < 2; ++s) {
    double old_v = current_[ranks[s]];
    double new_v = old_v + static_cast<double>(deltas[s]);
    dot += original_[ranks[s]] * (new_v - old_v);
    ncur += new_v * new_v - old_v * old_v;
  }
  if (norm_orig_sq_ == 0 && ncur == 0) return 1.0;
  if (norm_orig_sq_ == 0 || ncur == 0) return 0.0;
  return dot / (std::sqrt(norm_orig_sq_) * std::sqrt(ncur));
}

}  // namespace freqywm
