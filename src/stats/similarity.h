#ifndef FREQYWM_STATS_SIMILARITY_H_
#define FREQYWM_STATS_SIMILARITY_H_

#include <vector>

#include "data/histogram.h"

namespace freqywm {

/// Similarity metric selector for the budget constraint. The paper uses
/// cosine in all experiments but notes any similarity works (§III fn. 2).
enum class SimilarityMetric {
  kCosine,
  /// 1 - L1(a,b) / (|a|_1 + |b|_1), in [0, 1].
  kNormalizedL1,
  /// Jaccard-style min/max overlap: sum(min) / sum(max), in [0, 1].
  kMinMaxRatio,
};

/// Cosine similarity of two non-negative vectors; 1.0 when both are zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Computes similarity between two histograms, aligning entries by token
/// over the union of both token sets (absent tokens count as 0).
double HistogramSimilarity(const Histogram& a, const Histogram& b,
                           SimilarityMetric metric = SimilarityMetric::kCosine);

/// Similarity expressed in percent (100 = identical), the unit used by the
/// paper's budget `b` ("similarity at least (100 - b)%").
double HistogramSimilarityPercent(
    const Histogram& a, const Histogram& b,
    SimilarityMetric metric = SimilarityMetric::kCosine);

/// Incremental cosine tracker for the original histogram vs a mutated copy.
///
/// The QKP/greedy selection loop repeatedly asks "what is the similarity if
/// I also apply this pair's deltas?". Recomputing the full dot product each
/// time is O(n) per probe; this tracker answers in O(1) because each
/// FreqyWM pair touches exactly two disjoint entries.
class IncrementalCosine {
 public:
  /// Starts from `original` compared against itself (similarity 1).
  explicit IncrementalCosine(const Histogram& original);

  /// Similarity after the deltas applied so far.
  double Similarity() const;
  /// Similarity in percent.
  double SimilarityPercent() const { return Similarity() * 100.0; }

  /// Applies a signed delta to the mutated copy of the entry at `rank`.
  void ApplyDelta(size_t rank, int64_t delta);

  /// Similarity that *would* result from additionally applying `delta` at
  /// `rank_i` and `delta_j` at `rank_j`, without committing.
  double ProbePairDelta(size_t rank_i, int64_t delta_i, size_t rank_j,
                        int64_t delta_j) const;

 private:
  std::vector<double> original_;
  std::vector<double> current_;
  double dot_ = 0;
  double norm_orig_sq_ = 0;
  double norm_cur_sq_ = 0;
};

}  // namespace freqywm

#endif  // FREQYWM_STATS_SIMILARITY_H_
