#ifndef FREQYWM_STATS_POISSON_BINOMIAL_H_
#define FREQYWM_STATS_POISSON_BINOMIAL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace freqywm {

/// The Poisson–Binomial distribution: the sum S_n of n independent Bernoulli
/// trials with heterogeneous success probabilities p_1..p_n.
///
/// FreqyWM's false-positive analysis (§III-B4) models each stored pair's
/// chance of *accidentally* satisfying `(f_i - f_j) mod s_ij <= t` on a
/// non-watermarked dataset as a Bernoulli with p_m = (t + 1) / s_ij, and
/// asks for the survival probability P(S_n >= k). The paper computes this
/// via the Discrete Fourier Transform of the characteristic function; this
/// class implements exactly that method (Fernández–Williams / Hong 2013).
class PoissonBinomial {
 public:
  /// Builds the exact PMF for the given success probabilities.
  /// Probabilities are clamped to [0, 1].
  explicit PoissonBinomial(std::vector<double> probabilities);

  /// P(S_n = m) for m in [0, n]; 0 outside.
  double Pmf(size_t m) const;

  /// P(S_n >= k) (the paper's acceptance probability for threshold k).
  double Survival(size_t k) const;

  /// E[S_n] = sum p_m.
  double Mean() const { return mean_; }

  size_t n() const { return n_; }

 private:
  size_t n_;
  double mean_;
  std::vector<double> pmf_;
};

/// Markov's inequality upper bound used in the paper: P(S_n >= k) <= mu / k,
/// clamped to [0, 1]. `k == 0` returns 1 (the event is certain).
double MarkovSurvivalBound(double mean, size_t k);

/// Convenience: the per-pair accidental-acceptance probability for detection
/// threshold `t` under modulus `s` — the fraction of residues in [0, s)
/// that pass `residue <= t`.
double PairFalsePositiveProbability(uint64_t t, uint64_t s);

}  // namespace freqywm

#endif  // FREQYWM_STATS_POISSON_BINOMIAL_H_
