#ifndef FREQYWM_STATS_DECOMPOSITION_H_
#define FREQYWM_STATS_DECOMPOSITION_H_

#include <cstddef>
#include <vector>

namespace freqywm {

/// Classical additive time-series decomposition: x_t = trend + seasonal +
/// residual. Used for the §VI feature analysis (Figs. 6–8): the paper shows
/// that 10 successive watermarks leave the trend, seasonality, and residual
/// structure of the eyeWnder click-stream essentially unchanged.
struct SeasonalDecomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> residual;
};

/// Decomposes `series` with seasonal period `period` (e.g. 24 for hourly
/// data with daily seasonality, 7 for daily data with weekly seasonality).
///
/// Trend is a centered moving average of window `period` (with the usual
/// 2x(period) average for even periods); seasonal components are the
/// de-trended means per phase, normalized to sum to zero; residual is the
/// remainder. Edges where the moving average is undefined get trend values
/// extended from the nearest defined point.
///
/// Precondition: `period >= 2` and `series.size() >= 2 * period`.
SeasonalDecomposition DecomposeAdditive(const std::vector<double>& series,
                                        size_t period);

/// Root mean squared difference between two equal-length series (0 for
/// identical); the drift measure we report for the §VI figures.
double RootMeanSquaredDifference(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// Mean of a series (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population standard deviation of a series (0 for empty input).
double StdDev(const std::vector<double>& values);

}  // namespace freqywm

#endif  // FREQYWM_STATS_DECOMPOSITION_H_
