#include "crypto/pair_modulus.h"

#include <cassert>

#include "crypto/sha256.h"

namespace freqywm {

PairModulus::PairModulus(const WatermarkSecret& secret, uint64_t z)
    : r_bytes_(secret.r.begin(), secret.r.end()), z_(z) {
  assert(z_ >= 2 && "modulo 0 is undefined and modulo 1 is always 0");
}

uint64_t PairModulus::Compute(std::string_view token_i,
                              std::string_view token_j) const {
  return ComputeWithInner(token_i, InnerDigest(token_j));
}

Sha256::Digest PairModulus::InnerDigest(std::string_view token_j) const {
  Sha256 inner;
  inner.Update(r_bytes_);
  inner.Update(token_j);
  return inner.Finish();
}

uint64_t PairModulus::ComputeWithInner(std::string_view token_i,
                                       const Sha256::Digest& inner_j) const {
  Sha256 outer;
  outer.Update(token_i);
  outer.Update(inner_j.data(), inner_j.size());
  Sha256::Digest outer_digest = outer.Finish();
  return DigestPrefixU64(outer_digest) % z_;
}

PairModulus::OuterState::OuterState(std::string_view token_i, uint64_t z)
    : z_(z) {
  midstate_.Update(token_i);
}

uint64_t PairModulus::OuterState::Reduce(const Sha256::Digest& inner_j) const {
  Sha256 outer = midstate_;  // clone-after-absorb
  outer.Update(inner_j.data(), inner_j.size());
  return DigestPrefixU64(outer.Finish()) % z_;
}

}  // namespace freqywm
