#ifndef FREQYWM_CRYPTO_SHA256_H_
#define FREQYWM_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace freqywm {

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
///
/// The paper instantiates the collision-resistant hash `H` with SHA-256;
/// this is the only cryptographic primitive FreqyWM needs. The
/// implementation is verified against the NIST CAVP short-message vectors
/// in `tests/crypto/sha256_test.cc`.
///
/// Usage:
/// \code
///   Sha256 h;
///   h.Update(data, len);
///   auto digest = h.Finish();   // 32 bytes
/// \endcode
///
/// The state is a copyable *midstate*: copying a `Sha256` snapshots the
/// absorbed prefix, and the copy can absorb more data and finish
/// independently of the original (clone-after-absorb). Bulk keyed-hash
/// scans exploit this — absorb a shared prefix once, then pay only a
/// cloned finish per suffix (see `PairModulus::OuterState`).
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();
  Sha256(const Sha256&) = default;
  Sha256& operator=(const Sha256&) = default;

  /// Absorbs `len` bytes. May be called any number of times before Finish.
  void Update(const uint8_t* data, size_t len);

  /// Convenience overload for string data.
  void Update(std::string_view data);

  /// Completes the hash and returns the 32-byte digest. The object must not
  /// be reused afterwards (construct a fresh `Sha256` or keep a midstate
  /// copy taken before the call).
  Digest Finish();

  /// Finishes a *clone* of the current midstate, leaving this object
  /// untouched and reusable: `h.FinishedCopy()` equals
  /// `Sha256(h).Finish()` and may be called repeatedly between Updates.
  Digest FinishedCopy() const;

  /// One-shot digest of `data`.
  static Digest Hash(std::string_view data);

  /// One-shot digest of a byte vector.
  static Digest Hash(const std::vector<uint8_t>& data);

  /// One-shot digest returned as lowercase hex (for tests and serialization).
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Interprets the first 8 digest bytes as a big-endian integer. This is how
/// FreqyWM reduces a digest to a number before the `mod z` step.
uint64_t DigestPrefixU64(const Sha256::Digest& digest);

}  // namespace freqywm

#endif  // FREQYWM_CRYPTO_SHA256_H_
