#ifndef FREQYWM_CRYPTO_SECRET_H_
#define FREQYWM_CRYPTO_SECRET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace freqywm {

/// The high-entropy watermarking secret `R` from the paper (λ-bit string).
///
/// `R` is the private key of the scheme: together with the public modulus
/// bound `z` it determines every per-pair modulus `s_ij`. Anyone holding `R`,
/// `z`, and the pair list can verify the watermark; nobody else can guess it
/// with non-negligible probability (paper §V-A).
struct WatermarkSecret {
  /// λ/8 bytes of key material (default λ = 256).
  std::vector<uint8_t> r;

  /// Security parameter in bits (length of `r` in bits).
  size_t lambda_bits() const { return r.size() * 8; }

  /// Serializes to lowercase hex for storage alongside `Lsc`.
  std::string ToHex() const;

  /// Parses a secret from hex produced by `ToHex`.
  static Result<WatermarkSecret> FromHex(const std::string& hex);

  friend bool operator==(const WatermarkSecret& a, const WatermarkSecret& b) {
    return a.r == b.r;
  }
};

/// Generates a fresh λ-bit secret.
///
/// Entropy is drawn from `std::random_device` and whitened through SHA-256.
/// When `deterministic_seed` is non-zero the secret is instead derived
/// entirely from the seed — used by tests and by the experiment harnesses so
/// every reported number is reproducible.
WatermarkSecret GenerateSecret(size_t lambda_bits = 256,
                               uint64_t deterministic_seed = 0);

}  // namespace freqywm

#endif  // FREQYWM_CRYPTO_SECRET_H_
