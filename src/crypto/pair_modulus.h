#ifndef FREQYWM_CRYPTO_PAIR_MODULUS_H_
#define FREQYWM_CRYPTO_PAIR_MODULUS_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/secret.h"
#include "crypto/sha256.h"

namespace freqywm {

/// Derives the per-pair modulus `s_ij = H(tk_i || H(R || tk_j)) mod z`.
///
/// This is the keyed quantity at the heart of FreqyWM: the watermark
/// embedding rule forces `(f_i - f_j) mod s_ij == 0`, and only a holder of
/// `R` can recompute `s_ij` for a pair. The digest prefix (first 8 bytes,
/// big-endian) is reduced modulo `z`.
///
/// Note the derivation is intentionally *asymmetric* in (i, j): the pair is
/// always keyed with the higher-ranked token first, matching the paper's
/// ordered pair list `Lwm`.
///
/// Preconditions: `z >= 2` (modulo 0 is undefined and modulo 1 is always 0,
/// paper §III-B1). The returned value lies in `[0, z)`; values 0 and 1 make
/// the pair ineligible and are filtered by `core::BuildEligiblePairs`.
class PairModulus {
 public:
  /// Creates a derivation context bound to secret `R` and bound `z`.
  PairModulus(const WatermarkSecret& secret, uint64_t z);

  /// Computes `s_ij` for an ordered token pair.
  uint64_t Compute(std::string_view token_i, std::string_view token_j) const;

  /// Precomputes the inner digest `H(R || tk_j)`. Bulk pair scans (the
  /// O(n^2) eligible-pair construction) cache one inner digest per token,
  /// halving the hash work.
  Sha256::Digest InnerDigest(std::string_view token_j) const;

  /// Computes `s_ij` given a precomputed inner digest for `token_j`.
  uint64_t ComputeWithInner(std::string_view token_i,
                            const Sha256::Digest& inner_j) const;

  /// Midstate of the outer hash `H(tk_i || ·)` with `tk_i` already
  /// absorbed. The O(n^2) eligible-pair scan keeps one per outer token:
  /// each pair then costs a cloned finish over the 32-byte inner digest
  /// (clone-after-absorb) instead of re-buffering `tk_i` per pair.
  /// Copyable and immutable after construction; safe to share across
  /// threads.
  class OuterState {
   public:
    /// `s_ij` for this state's `tk_i` and a precomputed inner digest —
    /// byte-identical to `ComputeWithInner(tk_i, inner_j)`.
    uint64_t Reduce(const Sha256::Digest& inner_j) const;

   private:
    friend class PairModulus;
    OuterState(std::string_view token_i, uint64_t z);

    Sha256 midstate_;
    uint64_t z_;
  };

  /// Builds the outer-hash midstate for `token_i`.
  OuterState OuterFor(std::string_view token_i) const {
    return OuterState(token_i, z_);
  }

  /// The modulus bound `z`.
  uint64_t z() const { return z_; }

 private:
  std::string r_bytes_;
  uint64_t z_;
};

}  // namespace freqywm

#endif  // FREQYWM_CRYPTO_PAIR_MODULUS_H_
