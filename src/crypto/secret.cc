#include "crypto/secret.h"

#include <random>

#include "common/hex.h"
#include "crypto/sha256.h"

namespace freqywm {

std::string WatermarkSecret::ToHex() const { return HexEncode(r); }

Result<WatermarkSecret> WatermarkSecret::FromHex(const std::string& hex) {
  FREQYWM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, HexDecode(hex));
  if (bytes.empty()) {
    return Status::Corruption("empty watermark secret");
  }
  return WatermarkSecret{std::move(bytes)};
}

WatermarkSecret GenerateSecret(size_t lambda_bits, uint64_t deterministic_seed) {
  size_t n_bytes = (lambda_bits + 7) / 8;
  if (n_bytes == 0) n_bytes = 1;
  std::vector<uint8_t> out;
  out.reserve(n_bytes);

  // Stretch seed material through SHA-256 in counter mode. For the
  // non-deterministic path the seed blocks come from std::random_device.
  std::vector<uint8_t> seed_block(40, 0);
  if (deterministic_seed != 0) {
    for (int i = 0; i < 8; ++i) {
      seed_block[i] = static_cast<uint8_t>(deterministic_seed >> (8 * i));
    }
  } else {
    std::random_device rd;
    for (size_t i = 0; i + 3 < seed_block.size(); i += 4) {
      uint32_t v = rd();
      seed_block[i] = static_cast<uint8_t>(v);
      seed_block[i + 1] = static_cast<uint8_t>(v >> 8);
      seed_block[i + 2] = static_cast<uint8_t>(v >> 16);
      seed_block[i + 3] = static_cast<uint8_t>(v >> 24);
    }
  }

  uint32_t counter = 0;
  while (out.size() < n_bytes) {
    Sha256 h;
    h.Update(seed_block.data(), seed_block.size());
    uint8_t ctr[4] = {static_cast<uint8_t>(counter >> 24),
                      static_cast<uint8_t>(counter >> 16),
                      static_cast<uint8_t>(counter >> 8),
                      static_cast<uint8_t>(counter)};
    h.Update(ctr, 4);
    Sha256::Digest d = h.Finish();
    for (uint8_t b : d) {
      if (out.size() == n_bytes) break;
      out.push_back(b);
    }
    ++counter;
  }
  return WatermarkSecret{std::move(out)};
}

}  // namespace freqywm
