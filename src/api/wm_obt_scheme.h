#ifndef FREQYWM_API_WM_OBT_SCHEME_H_
#define FREQYWM_API_WM_OBT_SCHEME_H_

#include <string>

#include "api/scheme.h"
#include "baselines/wm_obt.h"

namespace freqywm {

/// `WatermarkScheme` implementation of the WM-OBT baseline (Shehab et al.),
/// giving the paper's §IV-D comparison scheme the full embed/detect
/// lifecycle the seed lacked: the key payload carries the secret partition
/// key, bit string, reference condition and decode threshold, so a suspect
/// histogram can be verified through the same call path as FreqyWM.
///
/// Factory id: "wm-obt".
class WmObtScheme : public WatermarkScheme {
 public:
  explicit WmObtScheme(WmObtOptions options = {});

  std::string name() const override;
  Result<EmbedOutcome> Embed(const Histogram& original) const override;
  /// Exec-aware embed: the per-partition genetic optimization shards
  /// across the pool (deterministic per-partition RNG streams, DESIGN.md
  /// §9); byte-identical output at any thread count.
  Result<EmbedOutcome> Embed(const Histogram& original,
                             const ExecContext& exec) const override;
  DetectResult Detect(const Histogram& suspect, const SchemeKey& key,
                      const DetectOptions& options) const override;
  /// Parses the key payload once; the prepared `Detect` skips re-parsing.
  std::unique_ptr<PreparedKey> Prepare(const SchemeKey& key) const override;
  DetectResult Detect(const Histogram& suspect, const PreparedKey& prepared,
                      const DetectOptions& options) const override;
  DetectOptions RecommendedDetectOptions(const SchemeKey& key) const override;

  const WmObtOptions& options() const { return options_; }

  /// Key payload (de)serialization, exposed for tests.
  static std::string SerializeKeyPayload(const WmObtOptions& options);
  static Result<WmObtOptions> ParseKeyPayload(const std::string& payload);

 protected:
  uint64_t dataset_transform_seed() const override {
    return options_.key_seed;
  }

 private:
  WmObtOptions options_;
};

}  // namespace freqywm

#endif  // FREQYWM_API_WM_OBT_SCHEME_H_
