#include "api/factory.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "api/freqywm_scheme.h"
#include "api/key_util.h"
#include "api/wm_obt_scheme.h"
#include "api/wm_rvs_scheme.h"
#include "common/mutex.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace freqywm {

// ---------------------------------------------------------------- OptionBag

Result<OptionBag> OptionBag::FromString(std::string_view text) {
  OptionBag bag;
  for (const std::string& part : Split(text, ',')) {
    std::string_view stripped = StripWhitespace(part);
    if (stripped.empty()) continue;
    size_t eq = stripped.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("option '" + std::string(stripped) +
                                     "' is not key=value");
    }
    bag.Set(std::string(StripWhitespace(stripped.substr(0, eq))),
            std::string(StripWhitespace(stripped.substr(eq + 1))));
  }
  return bag;
}

void OptionBag::Set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

bool OptionBag::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

Result<std::string> OptionBag::GetString(const std::string& key,
                                         std::string fallback) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? std::move(fallback) : it->second;
}

Result<double> OptionBag::GetDouble(const std::string& key,
                                    double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  // The whole token must parse ("1.5abc" is garbage, not 1.5) and the
  // value must be finite — "inf"/"nan" and overflowing literals like
  // "1e999" would poison every downstream budget/threshold computation.
  if (end == begin || *end != '\0') {
    return Status::InvalidArgument("option '" + key + "': '" + it->second +
                                   "' is not a number");
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("option '" + key + "': '" + it->second +
                                   "' is not a finite number");
  }
  return value;
}

Result<uint64_t> OptionBag::GetU64(const std::string& key,
                                   uint64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  if (!IsInteger(it->second) || it->second[0] == '-') {
    return Status::InvalidArgument("option '" + key + "': '" + it->second +
                                   "' is not a non-negative integer");
  }
  errno = 0;
  uint64_t value = std::strtoull(it->second.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    return Status::InvalidArgument("option '" + key + "': '" + it->second +
                                   "' overflows uint64");
  }
  return value;
}

Status OptionBag::ExpectOnly(
    std::initializer_list<std::string_view> allowed) const {
  for (const auto& [key, value] : entries_) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return Status::InvalidArgument("unknown option '" + key + "'");
    }
  }
  return Status::OK();
}

// ------------------------------------------------------------ SchemeFactory

namespace {

/// Builder for "freqywm": the generator knobs of `GenerateOptions`.
Result<std::unique_ptr<WatermarkScheme>> BuildFreqyWm(const OptionBag& bag) {
  FREQYWM_RETURN_NOT_OK(
      bag.ExpectOnly({"budget", "z", "min_modulus", "min_pair_cost",
                      "strategy", "budget_mode", "eligibility", "weight",
                      "metric", "lambda", "seed", "refresh_churn"}));
  GenerateOptions o;
  FREQYWM_ASSIGN_OR_RETURN(o.budget_percent,
                           bag.GetDouble("budget", o.budget_percent));
  FREQYWM_ASSIGN_OR_RETURN(o.modulus_bound, bag.GetU64("z", o.modulus_bound));
  FREQYWM_ASSIGN_OR_RETURN(o.min_modulus,
                           bag.GetU64("min_modulus", o.min_modulus));
  FREQYWM_ASSIGN_OR_RETURN(o.min_pair_cost,
                           bag.GetU64("min_pair_cost", o.min_pair_cost));
  FREQYWM_ASSIGN_OR_RETURN(uint64_t lambda,
                           bag.GetU64("lambda", o.lambda_bits));
  o.lambda_bits = lambda;
  FREQYWM_ASSIGN_OR_RETURN(o.seed, bag.GetU64("seed", o.seed));

  FREQYWM_ASSIGN_OR_RETURN(std::string strategy,
                           bag.GetString("strategy", "optimal"));
  if (strategy == "optimal") {
    o.strategy = SelectionStrategy::kOptimal;
  } else if (strategy == "greedy") {
    o.strategy = SelectionStrategy::kGreedy;
  } else if (strategy == "random") {
    o.strategy = SelectionStrategy::kRandom;
  } else {
    return Status::InvalidArgument("unknown strategy '" + strategy + "'");
  }

  FREQYWM_ASSIGN_OR_RETURN(std::string budget_mode,
                           bag.GetString("budget_mode", "similarity"));
  if (budget_mode == "similarity") {
    o.budget_mode = BudgetMode::kSimilarity;
  } else if (budget_mode == "additive-churn") {
    o.budget_mode = BudgetMode::kAdditiveChurn;
  } else {
    return Status::InvalidArgument("unknown budget_mode '" + budget_mode +
                                   "'");
  }

  FREQYWM_ASSIGN_OR_RETURN(std::string eligibility,
                           bag.GetString("eligibility", "paper"));
  if (eligibility == "paper") {
    o.eligibility = EligibilityRule::kPaper;
  } else if (eligibility == "strict-half-gap") {
    o.eligibility = EligibilityRule::kStrictHalfGap;
  } else {
    return Status::InvalidArgument("unknown eligibility '" + eligibility +
                                   "'");
  }

  FREQYWM_ASSIGN_OR_RETURN(std::string weight,
                           bag.GetString("weight", "paper"));
  if (weight == "paper") {
    o.weight_formula = WeightFormula::kPaperRemainder;
  } else if (weight == "effective-cost") {
    o.weight_formula = WeightFormula::kEffectiveCost;
  } else {
    return Status::InvalidArgument("unknown weight '" + weight + "'");
  }

  FREQYWM_ASSIGN_OR_RETURN(std::string metric,
                           bag.GetString("metric", "cosine"));
  if (metric == "cosine") {
    o.metric = SimilarityMetric::kCosine;
  } else if (metric == "l1") {
    o.metric = SimilarityMetric::kNormalizedL1;
  } else if (metric == "minmax") {
    o.metric = SimilarityMetric::kMinMaxRatio;
  } else {
    return Status::InvalidArgument("unknown metric '" + metric + "'");
  }

  RefreshOptions refresh;
  FREQYWM_ASSIGN_OR_RETURN(
      refresh.max_churn_percent,
      bag.GetDouble("refresh_churn", refresh.max_churn_percent));
  return std::unique_ptr<WatermarkScheme>(
      std::make_unique<FreqyWmScheme>(o, refresh));
}

/// Builder for "wm-obt": partition key, bit string and GA knobs.
Result<std::unique_ptr<WatermarkScheme>> BuildWmObt(const OptionBag& bag) {
  FREQYWM_RETURN_NOT_OK(
      bag.ExpectOnly({"seed", "partitions", "bits", "condition",
                      "decode_threshold", "min_change", "max_change",
                      "population", "generations", "mutation_rate"}));
  WmObtOptions o;
  FREQYWM_ASSIGN_OR_RETURN(o.key_seed, bag.GetU64("seed", o.key_seed));
  FREQYWM_ASSIGN_OR_RETURN(uint64_t partitions,
                           bag.GetU64("partitions", o.num_partitions));
  if (partitions == 0) {
    return Status::InvalidArgument("partitions must be > 0");
  }
  o.num_partitions = partitions;
  FREQYWM_ASSIGN_OR_RETURN(o.condition,
                           bag.GetDouble("condition", o.condition));
  FREQYWM_ASSIGN_OR_RETURN(
      o.decode_threshold,
      bag.GetDouble("decode_threshold", o.decode_threshold));
  FREQYWM_ASSIGN_OR_RETURN(
      o.min_change_fraction,
      bag.GetDouble("min_change", o.min_change_fraction));
  FREQYWM_ASSIGN_OR_RETURN(
      o.max_change_fraction,
      bag.GetDouble("max_change", o.max_change_fraction));
  FREQYWM_ASSIGN_OR_RETURN(uint64_t population,
                           bag.GetU64("population", o.population));
  FREQYWM_ASSIGN_OR_RETURN(uint64_t generations,
                           bag.GetU64("generations", o.generations));
  if (population == 0) return Status::InvalidArgument("population must be > 0");
  o.population = population;
  o.generations = generations;
  FREQYWM_ASSIGN_OR_RETURN(o.mutation_rate,
                           bag.GetDouble("mutation_rate", o.mutation_rate));
  if (bag.Has("bits")) {
    FREQYWM_ASSIGN_OR_RETURN(std::string bits, bag.GetString("bits", ""));
    FREQYWM_ASSIGN_OR_RETURN(o.watermark_bits, ParseBitString(bits));
  }
  return std::unique_ptr<WatermarkScheme>(std::make_unique<WmObtScheme>(o));
}

/// Builder for "wm-rvs": digit key and bit string.
Result<std::unique_ptr<WatermarkScheme>> BuildWmRvs(const OptionBag& bag) {
  FREQYWM_RETURN_NOT_OK(
      bag.ExpectOnly({"seed", "bits", "max_digit_position"}));
  WmRvsOptions o;
  FREQYWM_ASSIGN_OR_RETURN(o.key_seed, bag.GetU64("seed", o.key_seed));
  FREQYWM_ASSIGN_OR_RETURN(
      uint64_t pos,
      bag.GetU64("max_digit_position",
                 static_cast<uint64_t>(o.max_digit_position)));
  if (pos > 18) {
    return Status::InvalidArgument("max_digit_position out of range");
  }
  o.max_digit_position = static_cast<int>(pos);
  if (bag.Has("bits")) {
    FREQYWM_ASSIGN_OR_RETURN(std::string bits, bag.GetString("bits", ""));
    FREQYWM_ASSIGN_OR_RETURN(o.watermark_bits, ParseBitString(bits));
  }
  return std::unique_ptr<WatermarkScheme>(std::make_unique<WmRvsScheme>(o));
}

struct FactoryState {
  Mutex mutex;
  std::map<std::string, SchemeFactory::Builder> builders GUARDED_BY(mutex);
};

/// Singleton with the paper schemes pre-registered; function-local so
/// static-archive linking and initialization order are both safe.
FactoryState& State() {
  static FactoryState* state = [] {
    auto* s = new FactoryState();
    s->builders["freqywm"] = BuildFreqyWm;
    s->builders["wm-obt"] = BuildWmObt;
    s->builders["wm-rvs"] = BuildWmRvs;
    return s;
  }();
  return *state;
}

}  // namespace

Status SchemeFactory::Register(const std::string& name, Builder builder) {
  if (name.empty() ||
      name.find_first_of(" \t\n") != std::string::npos) {
    return Status::InvalidArgument(
        "scheme name must be non-empty without whitespace");
  }
  if (!builder) {
    return Status::InvalidArgument("scheme builder must be callable");
  }
  FactoryState& state = State();
  MutexLock lock(state.mutex);
  if (!state.builders.emplace(name, std::move(builder)).second) {
    return Status::InvalidArgument("scheme '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<WatermarkScheme>> SchemeFactory::Create(
    const std::string& name, const OptionBag& options) {
  Builder builder;
  {
    FactoryState& state = State();
    MutexLock lock(state.mutex);
    auto it = state.builders.find(name);
    if (it == state.builders.end()) {
      return Status::NotFound("no scheme registered as '" + name + "'");
    }
    builder = it->second;
  }
  return builder(options);
}

const WatermarkScheme* SchemeCache::Get(const std::string& name) {
  auto it = schemes_.find(name);
  if (it == schemes_.end()) {
    auto created = SchemeFactory::Create(name);
    it = schemes_
             .emplace(name, created.ok() ? std::move(created).value()
                                         : nullptr)
             .first;
  }
  return it->second.get();
}

std::vector<std::string> SchemeFactory::RegisteredNames() {
  FactoryState& state = State();
  MutexLock lock(state.mutex);
  std::vector<std::string> names;
  names.reserve(state.builders.size());
  for (const auto& [name, builder] : state.builders) {
    names.push_back(name);
  }
  return names;
}

}  // namespace freqywm
