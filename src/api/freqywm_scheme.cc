#include "api/freqywm_scheme.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/detect.h"
#include "core/secrets.h"
#include "core/watermark.h"
#include "stats/similarity.h"

namespace freqywm {

namespace {

SchemeKey MakeKey(const WatermarkSecrets& secrets) {
  return SchemeKey{"freqywm", secrets.Serialize()};
}

EmbedReport MakeReport(const GenerateReport& report) {
  EmbedReport out;
  out.embedded_units = report.chosen_pairs;
  out.eligible_units = report.eligible_pairs;
  out.similarity_percent = report.similarity_percent;
  out.total_churn = report.total_churn;
  return out;
}

/// Parses the key payload; a foreign scheme tag or corrupt payload yields
/// an error so detection degrades to "rejected" instead of crashing.
Result<WatermarkSecrets> ParseKey(const SchemeKey& key) {
  if (key.scheme != "freqywm") {
    return Status::InvalidArgument("key belongs to scheme '" + key.scheme +
                                   "'");
  }
  return WatermarkSecrets::Deserialize(key.payload);
}

/// Prepared state: the key parsed and its per-pair moduli derived once.
/// An unparsable key leaves the table invalid, so the prepared path
/// rejects exactly like the parse-per-call path.
class FreqyWmPreparedKey : public PreparedKey {
 public:
  explicit FreqyWmPreparedKey(const SchemeKey& key) : PreparedKey(key) {
    auto secrets = ParseKey(key);
    if (secrets.ok()) table_ = PairModulusTable::Build(secrets.value());
  }

  const PairModulusTable& table() const { return table_; }

  /// Detection reads exactly the counts of the table's interned tokens, so
  /// those are the dense-gather vocabulary; an invalid table (malformed
  /// key) opts out and the engine degrades to the rejecting histogram
  /// path.
  const std::vector<Token>* TokenVocabulary() const override {
    return table_.valid() ? &table_.tokens() : nullptr;
  }

 private:
  PairModulusTable table_;
};

}  // namespace

FreqyWmScheme::FreqyWmScheme(GenerateOptions options,
                             RefreshOptions refresh_options)
    : options_(options), refresh_options_(refresh_options) {}

std::string FreqyWmScheme::name() const { return "freqywm"; }

Result<EmbedOutcome> FreqyWmScheme::Embed(const Histogram& original) const {
  return Embed(original, ExecContext{});
}

Result<EmbedOutcome> FreqyWmScheme::Embed(const Histogram& original,
                                          const ExecContext& exec) const {
  FREQYWM_RETURN_NOT_OK(exec.CheckInterrupted());
  FREQYWM_ASSIGN_OR_RETURN(
      HistogramGenerateResult generated,
      WatermarkGenerator(options_).GenerateFromHistogram(original, exec));
  EmbedOutcome out;
  out.key = MakeKey(generated.report.secrets);
  out.report = MakeReport(generated.report);
  out.watermarked = std::move(generated.watermarked);
  return out;
}

Result<DatasetEmbedOutcome> FreqyWmScheme::EmbedDataset(
    const Dataset& original) const {
  return EmbedDataset(original, ExecContext{});
}

Result<DatasetEmbedOutcome> FreqyWmScheme::EmbedDataset(
    const Dataset& original, const ExecContext& exec) const {
  // Exec-aware end to end: sharded histogram build AND sharded
  // eligible-pair scan (byte-identical to serial at any thread count).
  FREQYWM_ASSIGN_OR_RETURN(DatasetGenerateResult generated,
                           WatermarkGenerator(options_).Generate(original,
                                                                 exec));
  DatasetEmbedOutcome out;
  out.key = MakeKey(generated.report.secrets);
  out.report = MakeReport(generated.report);
  out.watermarked = std::move(generated.watermarked);
  return out;
}

DetectResult FreqyWmScheme::Detect(const Histogram& suspect,
                                   const SchemeKey& key,
                                   const DetectOptions& options) const {
  auto secrets = ParseKey(key);
  if (!secrets.ok()) return DetectResult{};
  return DetectWatermark(suspect, secrets.value(), options);
}

std::unique_ptr<PreparedKey> FreqyWmScheme::Prepare(
    const SchemeKey& key) const {
  return std::make_unique<FreqyWmPreparedKey>(key);
}

DetectResult FreqyWmScheme::Detect(const Histogram& suspect,
                                   const PreparedKey& prepared,
                                   const DetectOptions& options) const {
  const auto* own = dynamic_cast<const FreqyWmPreparedKey*>(&prepared);
  if (own == nullptr) return Detect(suspect, prepared.key(), options);
  // An invalid table (unparsable/foreign key) rejects inside
  // DetectWatermark, matching the parse-per-call path bit for bit.
  return DetectWatermark(suspect, own->table(), options);
}

DetectResult FreqyWmScheme::Detect(const DenseSuspectCounts& counts,
                                   const uint32_t* dense_ids,
                                   const PreparedKey& prepared,
                                   const DetectOptions& options) const {
  const auto* own = dynamic_cast<const FreqyWmPreparedKey*>(&prepared);
  // The engine only routes here for a non-null vocabulary, which implies a
  // valid own-scheme table; a foreign object rejects (base default).
  if (own == nullptr || !own->table().valid()) {
    return WatermarkScheme::Detect(counts, dense_ids, prepared, options);
  }
  return DetectWatermark(own->table(), dense_ids, counts.counts,
                         counts.present, options);
}

DetectOptions FreqyWmScheme::RecommendedDetectOptions(
    const SchemeKey& key) const {
  DetectOptions options;
  options.pair_threshold = 0;
  auto secrets = ParseKey(key);
  options.min_pairs =
      secrets.ok() ? std::max<size_t>(1, secrets.value().pairs.size() / 2)
                   : 1;
  return options;
}

Result<EmbedOutcome> FreqyWmScheme::Refresh(const Histogram& drifted,
                                            const SchemeKey& key) const {
  FREQYWM_ASSIGN_OR_RETURN(WatermarkSecrets secrets, ParseKey(key));
  FREQYWM_ASSIGN_OR_RETURN(
      RefreshResult refreshed,
      RefreshWatermark(drifted, secrets, refresh_options_));
  EmbedOutcome out;
  out.key = MakeKey(refreshed.secrets);
  out.report.embedded_units = refreshed.secrets.pairs.size();
  out.report.eligible_units = refreshed.report.pairs_checked;
  out.report.total_churn = refreshed.report.total_churn;
  out.report.similarity_percent =
      HistogramSimilarityPercent(drifted, refreshed.refreshed);
  out.watermarked = std::move(refreshed.refreshed);
  return out;
}

}  // namespace freqywm
