#include "api/scheme.h"

#include <fstream>
#include <sstream>

#include "common/random.h"
#include "common/string_util.h"
#include "core/watermark.h"

namespace freqywm {

namespace {
constexpr char kMagic[] = "freqywm-scheme-key v1";
}  // namespace

std::string SchemeKey::Serialize() const {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "scheme " << scheme << '\n';
  out << payload;
  return out.str();
}

Result<SchemeKey> SchemeKey::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::Corruption("bad scheme-key magic");
  }
  if (!std::getline(in, line)) {
    return Status::Corruption("missing scheme line");
  }
  std::vector<std::string> parts =
      Split(std::string(StripWhitespace(line)), ' ');
  if (parts.size() != 2 || parts[0] != "scheme" || parts[1].empty()) {
    return Status::Corruption("malformed scheme line");
  }
  SchemeKey key;
  key.scheme = parts[1];
  // The payload is the rest of the text, verbatim.
  size_t header_end = text.find('\n');
  if (header_end != std::string::npos) {
    header_end = text.find('\n', header_end + 1);
  }
  if (header_end != std::string::npos) {
    key.payload = text.substr(header_end + 1);
  }
  return key;
}

Status SchemeKey::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << Serialize();
  return out.good() ? Status::OK()
                    : Status::Corruption("short write to '" + path + "'");
}

Result<SchemeKey> SchemeKey::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Deserialize(buf.str());
}

Result<EmbedOutcome> WatermarkScheme::Embed(const Histogram& original,
                                            const ExecContext& /*exec*/) const {
  return Embed(original);
}

Result<DatasetEmbedOutcome> WatermarkScheme::EmbedDataset(
    const Dataset& original) const {
  return EmbedDataset(original, ExecContext{});
}

Result<DatasetEmbedOutcome> WatermarkScheme::EmbedDataset(
    const Dataset& original, const ExecContext& exec) const {
  // The histogram build and the scheme's Embed both honor the context's
  // cancellation/deadline; the final dataset transform is not worth a
  // checkpoint (it is linear in the dataset and allocation-bound).
  FREQYWM_ASSIGN_OR_RETURN(Histogram hist, exec.BuildHistogramChecked(original));
  FREQYWM_ASSIGN_OR_RETURN(EmbedOutcome outcome, Embed(hist, exec));
  Rng rng(dataset_transform_seed());
  DatasetEmbedOutcome out;
  out.watermarked = TransformDataset(original, outcome.watermarked, rng);
  out.key = std::move(outcome.key);
  out.report = outcome.report;
  return out;
}

DetectResult WatermarkScheme::Detect(const Dataset& suspect,
                                     const SchemeKey& key,
                                     const DetectOptions& options) const {
  return Detect(Histogram::FromDataset(suspect), key, options);
}

std::unique_ptr<PreparedKey> WatermarkScheme::Prepare(
    const SchemeKey& key) const {
  return std::make_unique<PreparedKey>(key);
}

DetectResult WatermarkScheme::Detect(const Histogram& suspect,
                                     const PreparedKey& prepared,
                                     const DetectOptions& options) const {
  return Detect(suspect, prepared.key(), options);
}

DetectResult WatermarkScheme::Detect(const DenseSuspectCounts& /*counts*/,
                                     const uint32_t* /*dense_ids*/,
                                     const PreparedKey& /*prepared*/,
                                     const DetectOptions& /*options*/) const {
  // Reached only on a contract violation (a scheme exposing a vocabulary
  // without overriding the dense overload, or a foreign `prepared`);
  // reject rather than crash, matching the malformed-key convention.
  return DetectResult{};
}

DetectOptions WatermarkScheme::RecommendedDetectOptions(
    const SchemeKey& /*key*/) const {
  return DetectOptions{};
}

Result<EmbedOutcome> WatermarkScheme::Refresh(const Histogram& /*drifted*/,
                                              const SchemeKey& /*key*/) const {
  return Status::NotSupported("scheme '" + name() +
                              "' has no refresh (incremental) path");
}

}  // namespace freqywm
