#include "api/wm_obt_scheme.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "api/key_util.h"
#include "stats/similarity.h"

namespace freqywm {

namespace {

constexpr char kKeyMagic[] = "wm-obt-key v1";

/// Prepared state: the key payload parsed once. An unparsable or foreign
/// key leaves `valid` false, so the prepared path rejects exactly like the
/// parse-per-call path.
class WmObtPreparedKey : public PreparedKey {
 public:
  explicit WmObtPreparedKey(const SchemeKey& key) : PreparedKey(key) {
    if (key.scheme != "wm-obt") return;
    auto parsed = WmObtScheme::ParseKeyPayload(key.payload);
    if (!parsed.ok()) return;
    options = std::move(parsed).value();
    valid = true;
  }

  /// Dense gather opt-out (DESIGN.md §10): WM-OBT's evidence is the keyed
  /// partition statistic over *every* suspect token — the key names no
  /// token set of its own — so there is no vocabulary to scatter and the
  /// batch engine keeps the histogram-path `Detect` for this scheme.
  const std::vector<Token>* TokenVocabulary() const override {
    return nullptr;
  }

  WmObtOptions options;
  bool valid = false;
};

}  // namespace

WmObtScheme::WmObtScheme(WmObtOptions options) : options_(options) {}

std::string WmObtScheme::name() const { return "wm-obt"; }

std::string WmObtScheme::SerializeKeyPayload(const WmObtOptions& options) {
  std::ostringstream out;
  out << kKeyMagic << '\n';
  out << "key_seed " << options.key_seed << '\n';
  out << "num_partitions " << options.num_partitions << '\n';
  out << "condition " << FormatDouble(options.condition) << '\n';
  out << "decode_threshold " << FormatDouble(options.decode_threshold)
      << '\n';
  out << "bits " << BitsToString(options.watermark_bits) << '\n';
  return out.str();
}

Result<WmObtOptions> WmObtScheme::ParseKeyPayload(
    const std::string& payload) {
  FREQYWM_ASSIGN_OR_RETURN(auto fields, ParseKeyFields(payload, kKeyMagic));
  WmObtOptions options;  // GA parameters keep defaults: detect never embeds
  FREQYWM_ASSIGN_OR_RETURN(std::string seed, RequireField(fields, "key_seed"));
  if (!IsInteger(seed) || seed[0] == '-') {
    return Status::Corruption("bad key_seed");
  }
  options.key_seed = std::strtoull(seed.c_str(), nullptr, 10);
  FREQYWM_ASSIGN_OR_RETURN(std::string parts,
                           RequireField(fields, "num_partitions"));
  if (!IsInteger(parts) || parts[0] == '-') {
    return Status::Corruption("bad num_partitions");
  }
  options.num_partitions = std::strtoull(parts.c_str(), nullptr, 10);
  // Upper bound keeps a corrupt key from driving a giant allocation in
  // WmObtPartitionStatistics (Detect must reject, never crash).
  if (options.num_partitions == 0 || options.num_partitions > (1u << 20)) {
    return Status::Corruption("num_partitions out of range");
  }
  FREQYWM_ASSIGN_OR_RETURN(std::string condition,
                           RequireField(fields, "condition"));
  options.condition = std::strtod(condition.c_str(), nullptr);
  FREQYWM_ASSIGN_OR_RETURN(std::string threshold,
                           RequireField(fields, "decode_threshold"));
  options.decode_threshold = std::strtod(threshold.c_str(), nullptr);
  FREQYWM_ASSIGN_OR_RETURN(std::string bits, RequireField(fields, "bits"));
  FREQYWM_ASSIGN_OR_RETURN(options.watermark_bits, ParseBitString(bits));
  return options;
}

Result<EmbedOutcome> WmObtScheme::Embed(const Histogram& original) const {
  return Embed(original, ExecContext{});
}

Result<EmbedOutcome> WmObtScheme::Embed(const Histogram& original,
                                        const ExecContext& exec) const {
  FREQYWM_RETURN_NOT_OK(exec.CheckInterrupted());
  if (original.empty()) {
    return Status::InvalidArgument("cannot watermark an empty histogram");
  }
  Histogram watermarked = EmbedWmObt(original, options_, exec);
  // An interruption mid-GA breaks the evolution loops early; the
  // histogram above is then partial and must not escape as a success.
  FREQYWM_RETURN_NOT_OK(exec.CheckInterrupted());

  // Calibrate the decode threshold from this embedding: the hiding
  // statistic is nearly scale-invariant, so the achievable bit-0/bit-1
  // separation depends on the dataset. The midpoint between the highest
  // bit-0 and the lowest bit-1 partition statistic decodes this embedding
  // exactly; it ships inside the key (the paper's 0.0966 was likewise an
  // empirical constant of their embedding run).
  WmObtOptions keyed = options_;
  std::vector<double> stats = WmObtPartitionStatistics(watermarked, keyed);
  {
    double lo_max = -1.0, hi_min = 2.0;
    for (size_t p = 0; p < stats.size(); ++p) {
      if (stats[p] < 0) continue;
      int bit = keyed.watermark_bits[p % keyed.watermark_bits.size()];
      if (bit == 1) {
        hi_min = std::min(hi_min, stats[p]);
      } else {
        lo_max = std::max(lo_max, stats[p]);
      }
    }
    if (lo_max >= 0.0 && hi_min <= 1.0) {
      keyed.decode_threshold = (lo_max + hi_min) / 2.0;
    }
  }

  EmbedOutcome out;
  out.key = SchemeKey{"wm-obt", SerializeKeyPayload(keyed)};
  out.report.eligible_units = options_.num_partitions;
  // Embedding never adds or removes tokens, so the watermarked stats also
  // tell which partitions were non-empty in the original.
  for (double stat : stats) {
    if (stat >= 0) ++out.report.embedded_units;  // non-empty partition
  }
  out.report.similarity_percent =
      HistogramSimilarityPercent(original, watermarked);
  for (const auto& e : original.entries()) {
    auto count = watermarked.CountOf(e.token);
    if (!count) continue;
    out.report.total_churn += *count > e.count ? *count - e.count
                                               : e.count - *count;
  }
  out.watermarked = std::move(watermarked);
  return out;
}

DetectResult WmObtScheme::Detect(const Histogram& suspect,
                                 const SchemeKey& key,
                                 const DetectOptions& options) const {
  if (key.scheme != "wm-obt") return DetectResult{};
  auto parsed = ParseKeyPayload(key.payload);
  if (!parsed.ok()) return DetectResult{};
  return DetectWmObt(suspect, parsed.value(), options);
}

std::unique_ptr<PreparedKey> WmObtScheme::Prepare(const SchemeKey& key) const {
  return std::make_unique<WmObtPreparedKey>(key);
}

DetectResult WmObtScheme::Detect(const Histogram& suspect,
                                 const PreparedKey& prepared,
                                 const DetectOptions& options) const {
  const auto* own = dynamic_cast<const WmObtPreparedKey*>(&prepared);
  if (own == nullptr) return Detect(suspect, prepared.key(), options);
  if (!own->valid) return DetectResult{};
  return DetectWmObt(suspect, own->options, options);
}

DetectOptions WmObtScheme::RecommendedDetectOptions(
    const SchemeKey& /*key*/) const {
  DetectOptions options;
  // The bit-string evidence is all-or-nothing: demand at least two decoded
  // partitions and allow a single wrongly-decoded one (embedding can leave
  // a sparse partition on the wrong side of the threshold).
  options.min_pairs = 2;
  options.pair_threshold = 1;
  return options;
}

}  // namespace freqywm
