#ifndef FREQYWM_API_SCHEME_H_
#define FREQYWM_API_SCHEME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/detect.h"
#include "core/options.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "exec/exec_context.h"

namespace freqywm {

/// The portable proof-of-ownership artifact every scheme emits at embed
/// time and consumes at detect time: a factory id plus the scheme-specific
/// secret material, serialized (see DESIGN.md §6).
///
/// For FreqyWM the payload is `WatermarkSecrets::Serialize()` (`Lsc`); for
/// WM-OBT it is the partition key, bit string and decode threshold; for
/// WM-RVS the digit key and bit string. Treat the whole struct as secret —
/// anyone holding it can verify (and, for some schemes, strip) the
/// watermark.
struct SchemeKey {
  /// Factory id of the scheme that produced this key ("freqywm", ...).
  std::string scheme;
  /// Scheme-specific serialized secret material.
  std::string payload;

  /// Serializes tag + payload into one self-describing text blob.
  std::string Serialize() const;

  /// Parses the output of `Serialize`. Fails with `Corruption` on malformed
  /// input.
  [[nodiscard]] static Result<SchemeKey> Deserialize(const std::string& text);

  /// Saves to / loads from a file.
  [[nodiscard]] Status SaveToFile(const std::string& path) const;
  [[nodiscard]] static Result<SchemeKey> LoadFromFile(const std::string& path);

  friend bool operator==(const SchemeKey& a, const SchemeKey& b) {
    return a.scheme == b.scheme && a.payload == b.payload;
  }
};

/// Scheme-agnostic embedding statistics. "Units" are whatever the scheme
/// embeds: FreqyWM pairs, WM-OBT partitions, WM-RVS digits.
struct EmbedReport {
  /// Units actually carrying watermark information (|Lwm| for FreqyWM).
  size_t embedded_units = 0;
  /// Units that were candidates (|Le| for FreqyWM; 0 when the scheme has no
  /// eligibility phase).
  size_t eligible_units = 0;
  /// Similarity (percent) between original and watermarked histograms.
  double similarity_percent = 100.0;
  /// Token instances added plus removed.
  uint64_t total_churn = 0;
};

/// What `WatermarkScheme::Embed` produces: the artifact, the key to detect
/// it later, and the statistics the paper's tables report.
struct EmbedOutcome {
  Histogram watermarked;
  SchemeKey key;
  EmbedReport report;
};

/// Dataset-level sibling of `EmbedOutcome` (row-level artifact).
struct DatasetEmbedOutcome {
  Dataset watermarked;
  SchemeKey key;
  EmbedReport report;
};

/// A suspect histogram scattered into dense token ids (DESIGN.md §10): the
/// batch engine interns the union of its keys' `TokenVocabulary`s into ids
/// `[0, vocab_size)` once per session, then writes each suspect's counts
/// into one flat array — `counts[id]` is valid iff `present[id]` is
/// non-zero. A detection cell reads counts by index instead of hashing
/// into the suspect histogram per key token. Both pointers are non-null
/// and sized to the session vocabulary; the view never owns the storage.
struct DenseSuspectCounts {
  const uint64_t* counts = nullptr;
  const uint8_t* present = nullptr;
};

/// Opaque per-key detection state returned by `WatermarkScheme::Prepare`:
/// everything about a key that detection reuses across suspects (parsed
/// payload, derived moduli, ...), paid once per key instead of once per
/// `Detect` call. The base class simply carries the key; schemes with real
/// key-side state subclass it (DESIGN.md §8).
///
/// Instances are immutable after `Prepare` and safe to share across
/// threads, matching the `Detect`-is-stateless contract. Prepared state
/// must be a pure function of the `SchemeKey` alone — never of the
/// preparing instance's embed-side configuration — so instances are
/// shareable across runs, sessions and tenants through the
/// `PreparedKeyCache` (DESIGN.md §10); every in-tree `Prepare` only parses
/// the key payload.
class PreparedKey {
 public:
  explicit PreparedKey(SchemeKey key) : key_(std::move(key)) {}
  virtual ~PreparedKey() = default;

  /// The key this state was derived from.
  const SchemeKey& key() const { return key_; }

  /// The key's token vocabulary: the distinct tokens whose suspect-side
  /// counts detection reads, enabling the batch engine's dense count
  /// gather (DESIGN.md §10). Returns nullptr when detection scans the
  /// whole suspect histogram instead of a key-determined token set (WM-OBT
  /// partition statistics, WM-RVS per-token digits) or when the key is
  /// malformed — the engine then falls back to the histogram-path
  /// `Detect`. When non-null, the owning scheme must override the
  /// dense-counts `Detect` overload, the vector must stay valid and
  /// unchanged for the lifetime of this object, and for counts scattered
  /// from a suspect the dense overload must be byte-identical to
  /// `Detect(suspect, *this, options)`.
  virtual const std::vector<Token>* TokenVocabulary() const {
    return nullptr;
  }

 private:
  SchemeKey key_;
};

/// The unified lifecycle interface every watermarking scheme implements
/// (tentpole of the API redesign; DESIGN.md §6). The paper's evaluation is
/// a schemes x attacks x datasets matrix — this interface makes each sweep
/// a loop over `SchemeFactory` names instead of per-scheme plumbing.
///
/// Contract:
///  * `Embed` is deterministic for a fixed scheme configuration (schemes
///    draw randomness from their configured seed, never from global state).
///  * `Detect` must accept the scheme's own fresh embedding and reject a
///    clean histogram presented with a foreign key (enforced for every
///    registered scheme by `tests/api/scheme_conformance_test.cc`).
///  * `Detect` never fails: a malformed or foreign-scheme key yields a
///    default (rejected) `DetectResult`.
class WatermarkScheme {
 public:
  virtual ~WatermarkScheme() = default;

  /// Factory id; equals the name the scheme is registered under.
  virtual std::string name() const = 0;

  /// Watermarks a frequency histogram.
  [[nodiscard]] virtual Result<EmbedOutcome> Embed(
      const Histogram& original) const = 0;

  /// Exec-aware variant of `Embed`: when `exec` carries a thread pool, the
  /// scheme's intra-embed hot loops run sharded across it — FreqyWM's
  /// eligible-pair scan (DESIGN.md §8), WM-OBT's per-partition genetic
  /// optimization and WM-RVS's per-token keyed-hash pass (DESIGN.md §9).
  /// The default delegates to the serial `Embed`. Overrides must keep the
  /// determinism contract: byte-identical output at any thread count.
  [[nodiscard]] virtual Result<EmbedOutcome> Embed(
      const Histogram& original, const ExecContext& exec) const;

  /// Watermarks a dataset end-to-end. The default implementation embeds at
  /// histogram level and applies the generic data transformation (insert or
  /// remove token instances at random positions until the histogram
  /// matches); schemes with a native row-level path override it.
  [[nodiscard]] virtual Result<DatasetEmbedOutcome> EmbedDataset(
      const Dataset& original) const;

  /// Exec-aware variant of `EmbedDataset`: when `exec` carries a thread
  /// pool, the histogram build (the token→count aggregation) is sharded
  /// across it and merged (DESIGN.md §7), and the histogram-level embed
  /// runs through `Embed(original, exec)` so intra-embed hot loops
  /// parallelize too. The outcome is bit-identical to the serial overload
  /// for any thread count; overriding schemes must preserve that contract.
  [[nodiscard]] virtual Result<DatasetEmbedOutcome> EmbedDataset(
      const Dataset& original, const ExecContext& exec) const;

  /// Runs detection of `key` on a suspect histogram. `options` semantics
  /// per scheme: `min_pairs` is always the minimum number of verified
  /// units; `pair_threshold` is the per-unit tolerance (FreqyWM residue
  /// bound; WM-OBT number of partitions allowed to decode wrongly; unused
  /// by WM-RVS).
  virtual DetectResult Detect(const Histogram& suspect, const SchemeKey& key,
                              const DetectOptions& options) const = 0;

  /// Convenience overload building the histogram from a raw dataset.
  DetectResult Detect(const Dataset& suspect, const SchemeKey& key,
                      const DetectOptions& options) const;

  /// Derives the reusable per-key detection state for `key`. The batch
  /// engine prepares each key once and then runs the whole suspect column
  /// against the prepared state, so key parsing and keyed-hash derivation
  /// are paid |keys| times instead of |suspects| × |keys| times.
  ///
  /// Contract: `Detect(suspect, *Prepare(key), options)` is byte-identical
  /// to `Detect(suspect, key, options)` for every input, malformed keys
  /// included (enforced per scheme by `tests/exec/prepared_detect_test.cc`).
  /// The default wraps the key unparsed; schemes overriding this must
  /// override the prepared `Detect` overload too. Never returns null.
  virtual std::unique_ptr<PreparedKey> Prepare(const SchemeKey& key) const;

  /// Detection against a prepared key. The default delegates to
  /// `Detect(suspect, prepared.key(), options)`; schemes with real
  /// key-side state override it alongside `Prepare`. A `prepared` object
  /// from a different scheme degrades to the key-parsing path (which
  /// rejects a foreign key), never crashes.
  virtual DetectResult Detect(const Histogram& suspect,
                              const PreparedKey& prepared,
                              const DetectOptions& options) const;

  /// Dense-gather detection (DESIGN.md §10): `dense_ids[t]` maps index `t`
  /// of `prepared.TokenVocabulary()` to an id in `counts`. The batch
  /// engine calls this only when the vocabulary is non-null, after
  /// scattering the suspect histogram into `counts` once for all keys.
  ///
  /// Contract: byte-identical to `Detect(suspect, prepared, options)`
  /// whenever `counts` was scattered from `suspect` over a vocabulary
  /// union containing the key's tokens. Schemes returning a non-null
  /// `TokenVocabulary` must override this; the default (for schemes whose
  /// detection scans the whole suspect and for foreign `prepared` objects)
  /// rejects.
  virtual DetectResult Detect(const DenseSuspectCounts& counts,
                              const uint32_t* dense_ids,
                              const PreparedKey& prepared,
                              const DetectOptions& options) const;

  /// Detection settings that make `Detect` a sound accept/reject oracle for
  /// this scheme's `key` on un-attacked data (used by the conformance test,
  /// the CLI default, and `FingerprintRegistry::Trace` callers).
  virtual DetectOptions RecommendedDetectOptions(const SchemeKey& key) const;

  /// True when `Refresh` is implemented.
  virtual bool SupportsRefresh() const { return false; }

  /// Re-aligns a drifted watermark (incremental maintenance, paper §VI).
  /// Default: `NotSupported`.
  [[nodiscard]] virtual Result<EmbedOutcome> Refresh(
      const Histogram& drifted, const SchemeKey& key) const;

 protected:
  /// Seed for the default `EmbedDataset` row-placement randomness; schemes
  /// return their configured secret seed so runs stay reproducible.
  virtual uint64_t dataset_transform_seed() const { return 0x7ab5eedULL; }
};

}  // namespace freqywm

#endif  // FREQYWM_API_SCHEME_H_
