#ifndef FREQYWM_API_KEY_UTIL_H_
#define FREQYWM_API_KEY_UTIL_H_

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/string_util.h"

namespace freqywm {

/// Helpers shared by the baseline schemes' key (de)serializers: their keys
/// are flat "name value" line files behind a magic line.

/// Renders watermark bits as a compact bit string ("11010").
inline std::string BitsToString(const std::vector<int>& bits) {
  std::string out;
  out.reserve(bits.size());
  for (int b : bits) out.push_back(b ? '1' : '0');
  return out;
}

/// Parses a bit string; fails on empty input or non-binary characters.
inline Result<std::vector<int>> ParseBitString(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("bit string must be non-empty");
  }
  std::vector<int> bits;
  bits.reserve(text.size());
  for (char c : text) {
    if (c != '0' && c != '1') {
      return Status::InvalidArgument("bit string must contain only 0/1");
    }
    bits.push_back(c == '1' ? 1 : 0);
  }
  return bits;
}

/// Round-trip-exact double formatting for key files.
inline std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

/// Parses "<magic>\n(<name> <value>\n)*" into a field map. The magic line
/// must match exactly (modulo surrounding whitespace); duplicate fields
/// are corruption.
///
/// Key files travel between platforms and editors, so the parser is
/// liberal in the whitespace dimension only: lines may end in CRLF (the
/// trailing '\r' is stripped) and name/value may be separated by any run
/// of spaces or tabs — a tab-separated key written on another platform is
/// the same key, not a malformed one.
inline Result<std::map<std::string, std::string>> ParseKeyFields(
    const std::string& payload, const std::string& magic) {
  // Compare the magic with every run of spaces/tabs collapsed to one
  // space, so "wm-obt-key\tv1\r\n" still identifies as "wm-obt-key v1".
  auto collapse = [](std::string_view text) {
    std::string out;
    bool in_gap = false;
    for (char c : StripWhitespace(text)) {
      if (c == ' ' || c == '\t') {
        in_gap = true;
        continue;
      }
      if (in_gap) out.push_back(' ');
      in_gap = false;
      out.push_back(c);
    }
    return out;
  };
  std::istringstream in(payload);
  std::string line;
  if (!std::getline(in, line) || collapse(line) != collapse(magic)) {
    return Status::Corruption("bad key magic (want '" + magic + "')");
  }
  std::map<std::string, std::string> fields;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    size_t sep = stripped.find_first_of(" \t");
    if (sep == std::string_view::npos || sep == 0) {
      return Status::Corruption("malformed key line '" + line + "'");
    }
    std::string name(stripped.substr(0, sep));
    std::string_view value = StripWhitespace(stripped.substr(sep + 1));
    if (!fields.emplace(name, std::string(value)).second) {
      return Status::Corruption("duplicate key field '" + name + "'");
    }
  }
  return fields;
}

/// Fetches a required field from a parsed key map.
inline Result<std::string> RequireField(
    const std::map<std::string, std::string>& fields,
    const std::string& name) {
  auto it = fields.find(name);
  if (it == fields.end()) {
    return Status::Corruption("key is missing field '" + name + "'");
  }
  return it->second;
}

}  // namespace freqywm

#endif  // FREQYWM_API_KEY_UTIL_H_
