#ifndef FREQYWM_API_WM_RVS_SCHEME_H_
#define FREQYWM_API_WM_RVS_SCHEME_H_

#include <string>

#include "api/scheme.h"
#include "baselines/wm_rvs.h"

namespace freqywm {

/// `WatermarkScheme` implementation of the WM-RVS baseline (Li et al.),
/// adding the detect path the seed lacked: the key payload carries the
/// digit key and bit string, and a suspect token verifies when its count
/// holds the keyed substitution digit.
///
/// Note the reversibility side-table is deliberately NOT part of the key:
/// it recovers the original data and is the owner's private undo log, not
/// detection evidence. Call `EmbedWmRvs` directly when it is needed.
///
/// Factory id: "wm-rvs".
class WmRvsScheme : public WatermarkScheme {
 public:
  explicit WmRvsScheme(WmRvsOptions options = {});

  std::string name() const override;
  Result<EmbedOutcome> Embed(const Histogram& original) const override;
  /// Exec-aware embed: the per-token keyed-hash pass fans out across the
  /// pool; byte-identical output (and side effects) at any thread count.
  Result<EmbedOutcome> Embed(const Histogram& original,
                             const ExecContext& exec) const override;
  DetectResult Detect(const Histogram& suspect, const SchemeKey& key,
                      const DetectOptions& options) const override;
  /// Parses the key payload once; the prepared `Detect` skips re-parsing.
  std::unique_ptr<PreparedKey> Prepare(const SchemeKey& key) const override;
  DetectResult Detect(const Histogram& suspect, const PreparedKey& prepared,
                      const DetectOptions& options) const override;
  DetectOptions RecommendedDetectOptions(const SchemeKey& key) const override;

  /// WM-RVS refresh = re-embed under the key (DESIGN.md §6 parity gap):
  /// embedding *sets* each token's keyed substitution digit outright, so a
  /// drifted digit needs no explicit revert — re-embedding the drifted
  /// histogram restores every decodable token's watermark digit while
  /// leaving already-aligned counts untouched (idempotent on clean data).
  bool SupportsRefresh() const override { return true; }
  Result<EmbedOutcome> Refresh(const Histogram& drifted,
                               const SchemeKey& key) const override;

  const WmRvsOptions& options() const { return options_; }

  /// Key payload (de)serialization, exposed for tests.
  static std::string SerializeKeyPayload(const WmRvsOptions& options);
  static Result<WmRvsOptions> ParseKeyPayload(const std::string& payload);

 protected:
  uint64_t dataset_transform_seed() const override {
    return options_.key_seed;
  }

 private:
  WmRvsOptions options_;
};

}  // namespace freqywm

#endif  // FREQYWM_API_WM_RVS_SCHEME_H_
