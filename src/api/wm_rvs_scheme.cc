#include "api/wm_rvs_scheme.h"

#include <cstdlib>
#include <memory>
#include <sstream>
#include <utility>

#include "api/key_util.h"
#include "stats/similarity.h"

namespace freqywm {

namespace {

constexpr char kKeyMagic[] = "wm-rvs-key v1";

/// Prepared state: the key payload parsed once. An unparsable or foreign
/// key leaves `valid` false, so the prepared path rejects exactly like the
/// parse-per-call path.
class WmRvsPreparedKey : public PreparedKey {
 public:
  explicit WmRvsPreparedKey(const SchemeKey& key) : PreparedKey(key) {
    if (key.scheme != "wm-rvs") return;
    auto parsed = WmRvsScheme::ParseKeyPayload(key.payload);
    if (!parsed.ok()) return;
    options = std::move(parsed).value();
    valid = true;
  }

  /// Dense gather opt-out (DESIGN.md §10): WM-RVS re-derives a keyed digit
  /// for *every* suspect token — the key determines positions, not a token
  /// set — so there is no vocabulary to scatter and the batch engine keeps
  /// the histogram-path `Detect` for this scheme.
  const std::vector<Token>* TokenVocabulary() const override {
    return nullptr;
  }

  WmRvsOptions options;
  bool valid = false;
};

}  // namespace

WmRvsScheme::WmRvsScheme(WmRvsOptions options) : options_(options) {}

std::string WmRvsScheme::name() const { return "wm-rvs"; }

std::string WmRvsScheme::SerializeKeyPayload(const WmRvsOptions& options) {
  std::ostringstream out;
  out << kKeyMagic << '\n';
  out << "key_seed " << options.key_seed << '\n';
  out << "max_digit_position " << options.max_digit_position << '\n';
  out << "bits " << BitsToString(options.watermark_bits) << '\n';
  return out.str();
}

Result<WmRvsOptions> WmRvsScheme::ParseKeyPayload(
    const std::string& payload) {
  FREQYWM_ASSIGN_OR_RETURN(auto fields, ParseKeyFields(payload, kKeyMagic));
  WmRvsOptions options;
  FREQYWM_ASSIGN_OR_RETURN(std::string seed, RequireField(fields, "key_seed"));
  if (!IsInteger(seed) || seed[0] == '-') {
    return Status::Corruption("bad key_seed");
  }
  options.key_seed = std::strtoull(seed.c_str(), nullptr, 10);
  FREQYWM_ASSIGN_OR_RETURN(std::string pos,
                           RequireField(fields, "max_digit_position"));
  if (!IsInteger(pos) || pos[0] == '-') {
    return Status::Corruption("bad max_digit_position");
  }
  options.max_digit_position = static_cast<int>(std::atoll(pos.c_str()));
  if (options.max_digit_position < 0 || options.max_digit_position > 18) {
    return Status::Corruption("max_digit_position out of range");
  }
  FREQYWM_ASSIGN_OR_RETURN(std::string bits, RequireField(fields, "bits"));
  FREQYWM_ASSIGN_OR_RETURN(options.watermark_bits, ParseBitString(bits));
  return options;
}

namespace {

/// Assembles the outcome of embedding (or re-embedding) under `options`:
/// report statistics are measured against `baseline` — the original for
/// `Embed`, the drifted input for `Refresh`.
EmbedOutcome MakeOutcome(const Histogram& baseline, Histogram watermarked,
                         const WmRvsSideTable& side_table,
                         const WmRvsOptions& options) {
  EmbedOutcome out;
  out.key = SchemeKey{"wm-rvs", WmRvsScheme::SerializeKeyPayload(options)};
  out.report.embedded_units = side_table.entries.size();
  out.report.eligible_units = baseline.num_tokens();
  out.report.similarity_percent =
      HistogramSimilarityPercent(baseline, watermarked);
  for (const auto& e : baseline.entries()) {
    auto count = watermarked.CountOf(e.token);
    if (!count) continue;
    out.report.total_churn += *count > e.count ? *count - e.count
                                               : e.count - *count;
  }
  out.watermarked = std::move(watermarked);
  return out;
}

}  // namespace

Result<EmbedOutcome> WmRvsScheme::Embed(const Histogram& original) const {
  return Embed(original, ExecContext{});
}

Result<EmbedOutcome> WmRvsScheme::Embed(const Histogram& original,
                                        const ExecContext& exec) const {
  FREQYWM_RETURN_NOT_OK(exec.CheckInterrupted());
  if (original.empty()) {
    return Status::InvalidArgument("cannot watermark an empty histogram");
  }
  WmRvsSideTable side_table;
  Histogram watermarked = EmbedWmRvs(original, options_, &side_table, exec);
  return MakeOutcome(original, std::move(watermarked), side_table, options_);
}

Result<EmbedOutcome> WmRvsScheme::Refresh(const Histogram& drifted,
                                          const SchemeKey& key) const {
  if (key.scheme != "wm-rvs") {
    return Status::InvalidArgument("key belongs to scheme '" + key.scheme +
                                   "'");
  }
  if (drifted.empty()) {
    return Status::InvalidArgument("cannot refresh an empty histogram");
  }
  FREQYWM_ASSIGN_OR_RETURN(WmRvsOptions keyed, ParseKeyPayload(key.payload));
  // Re-embedding under the key overwrites each decodable token's keyed
  // substitution digit, realigning whatever drift touched; the report's
  // churn/similarity measure the realignment cost against the drifted
  // input. The refreshed key equals the input key (the digit key never
  // rotates), so existing escrowed copies keep verifying.
  WmRvsSideTable side_table;
  Histogram refreshed = EmbedWmRvs(drifted, keyed, &side_table);
  return MakeOutcome(drifted, std::move(refreshed), side_table, keyed);
}

DetectResult WmRvsScheme::Detect(const Histogram& suspect,
                                 const SchemeKey& key,
                                 const DetectOptions& options) const {
  if (key.scheme != "wm-rvs") return DetectResult{};
  auto parsed = ParseKeyPayload(key.payload);
  if (!parsed.ok()) return DetectResult{};
  return DetectWmRvs(suspect, parsed.value(), options);
}

std::unique_ptr<PreparedKey> WmRvsScheme::Prepare(const SchemeKey& key) const {
  return std::make_unique<WmRvsPreparedKey>(key);
}

DetectResult WmRvsScheme::Detect(const Histogram& suspect,
                                 const PreparedKey& prepared,
                                 const DetectOptions& options) const {
  const auto* own = dynamic_cast<const WmRvsPreparedKey*>(&prepared);
  if (own == nullptr) return Detect(suspect, prepared.key(), options);
  if (!own->valid) return DetectResult{};
  return DetectWmRvs(suspect, own->options, options);
}

DetectOptions WmRvsScheme::RecommendedDetectOptions(
    const SchemeKey& /*key*/) const {
  DetectOptions options;
  // The majority rule in DetectWmRvs carries the discrimination (chance
  // floor ~10%); min_pairs only guards against trivially small evidence.
  options.min_pairs = 4;
  return options;
}

}  // namespace freqywm
