#ifndef FREQYWM_API_FACTORY_H_
#define FREQYWM_API_FACTORY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/scheme.h"
#include "common/result.h"

namespace freqywm {

/// A generic string key/value option bag: the runtime currency CLIs and
/// benches use to configure a scheme they select by name, without
/// compiling against its concrete options struct.
///
/// Values are parsed lazily by the typed getters, which fail with
/// `InvalidArgument` on malformed input; scheme builders additionally
/// reject unknown keys so typos surface instead of silently applying
/// defaults.
class OptionBag {
 public:
  OptionBag() = default;

  /// Parses "key=value,key=value" (the CLI `--opt` syntax). Whitespace
  /// around keys and values is stripped; empty segments are skipped.
  [[nodiscard]] static Result<OptionBag> FromString(std::string_view text);

  void Set(const std::string& key, const std::string& value);
  bool Has(const std::string& key) const;
  bool empty() const { return entries_.empty(); }
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

  /// Typed getters: return `fallback` when the key is absent and
  /// `InvalidArgument` when present but unparsable.
  [[nodiscard]] Result<std::string> GetString(const std::string& key,
                                              std::string fallback) const;
  [[nodiscard]] Result<double> GetDouble(const std::string& key,
                                         double fallback) const;
  [[nodiscard]] Result<uint64_t> GetU64(const std::string& key,
                                        uint64_t fallback) const;

  /// Fails with `InvalidArgument` naming the first key outside `allowed`.
  [[nodiscard]] Status ExpectOnly(
      std::initializer_list<std::string_view> allowed) const;

 private:
  std::map<std::string, std::string> entries_;
};

/// String-keyed scheme registry + factory (tentpole of the API redesign).
///
/// The three paper schemes are pre-registered: "freqywm", "wm-obt",
/// "wm-rvs". Out-of-tree schemes join the same sweeps by calling
/// `Register` once at startup; everything downstream (benches, CLI,
/// `FingerprintRegistry::Trace`, the conformance test) discovers schemes
/// through `RegisteredNames` and never names a concrete class.
class SchemeFactory {
 public:
  using Builder = std::function<Result<std::unique_ptr<WatermarkScheme>>(
      const OptionBag& options)>;

  /// Registers a scheme builder. Fails with `InvalidArgument` when `name`
  /// is empty, contains whitespace/newlines, or is already registered.
  [[nodiscard]] static Status Register(const std::string& name,
                                       Builder builder);

  /// Instantiates a scheme by name. Fails with `NotFound` for unknown
  /// names and propagates builder failures (e.g. malformed options).
  [[nodiscard]] static Result<std::unique_ptr<WatermarkScheme>> Create(
      const std::string& name, const OptionBag& options = {});

  /// All registered scheme names, sorted.
  static std::vector<std::string> RegisteredNames();
};

/// One default-configured scheme instance per distinct tag, created
/// lazily through the factory. Detection parameters live entirely in each
/// `SchemeKey`, so default-configured objects suffice for any detect-side
/// work; unregistered tags map to nullptr. Shared by the serial
/// `FingerprintRegistry` trace and the exec-layer `BatchDetector`, whose
/// outputs must stay behaviorally identical.
///
/// Not thread-safe: populate on one thread (`Get` each tag up front),
/// then share the const scheme pointers freely — `Detect` is const and
/// stateless for every in-tree scheme.
class SchemeCache {
 public:
  /// The cached scheme for `name`, created on first use; nullptr when the
  /// name is not registered in the factory.
  const WatermarkScheme* Get(const std::string& name);

 private:
  std::map<std::string, std::unique_ptr<WatermarkScheme>> schemes_;
};

}  // namespace freqywm

#endif  // FREQYWM_API_FACTORY_H_
