#ifndef FREQYWM_API_FREQYWM_SCHEME_H_
#define FREQYWM_API_FREQYWM_SCHEME_H_

#include <string>

#include "api/scheme.h"
#include "core/incremental.h"
#include "core/options.h"

namespace freqywm {

/// `WatermarkScheme` implementation of FreqyWM itself, wrapping
/// `WatermarkGenerator` (embed), `DetectWatermark` (detect) and
/// `RefreshWatermark` (incremental maintenance). The key payload is
/// `WatermarkSecrets::Serialize()` — existing secret files remain valid.
///
/// Factory id: "freqywm".
class FreqyWmScheme : public WatermarkScheme {
 public:
  explicit FreqyWmScheme(GenerateOptions options = {},
                         RefreshOptions refresh_options = {});

  std::string name() const override;
  Result<EmbedOutcome> Embed(const Histogram& original) const override;
  /// Exec-aware embed: the eligible-pair scan shards across the pool
  /// (DESIGN.md §8); byte-identical output at any thread count.
  Result<EmbedOutcome> Embed(const Histogram& original,
                             const ExecContext& exec) const override;
  Result<DatasetEmbedOutcome> EmbedDataset(
      const Dataset& original) const override;
  Result<DatasetEmbedOutcome> EmbedDataset(
      const Dataset& original, const ExecContext& exec) const override;
  DetectResult Detect(const Histogram& suspect, const SchemeKey& key,
                      const DetectOptions& options) const override;
  /// Parses the key and derives its `PairModulusTable` once; the prepared
  /// `Detect` below then runs hash-free (count gather + residue checks).
  std::unique_ptr<PreparedKey> Prepare(const SchemeKey& key) const override;
  DetectResult Detect(const Histogram& suspect, const PreparedKey& prepared,
                      const DetectOptions& options) const override;
  /// Dense-gather detection over the prepared table: zero hash probes per
  /// cell (DESIGN.md §10); byte-identical to the histogram overload.
  DetectResult Detect(const DenseSuspectCounts& counts,
                      const uint32_t* dense_ids, const PreparedKey& prepared,
                      const DetectOptions& options) const override;
  DetectOptions RecommendedDetectOptions(const SchemeKey& key) const override;
  bool SupportsRefresh() const override { return true; }
  Result<EmbedOutcome> Refresh(const Histogram& drifted,
                               const SchemeKey& key) const override;

  const GenerateOptions& options() const { return options_; }

 protected:
  uint64_t dataset_transform_seed() const override { return options_.seed; }

 private:
  GenerateOptions options_;
  RefreshOptions refresh_options_;
};

}  // namespace freqywm

#endif  // FREQYWM_API_FREQYWM_SCHEME_H_
