#ifndef FREQYWM_API_ATTACK_H_
#define FREQYWM_API_ATTACK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/options.h"
#include "data/histogram.h"

namespace freqywm {

/// Polymorphic pirate move (tentpole of the API redesign; DESIGN.md §6):
/// takes a watermarked histogram, returns the attacked copy. Every §V
/// attack of the paper is wrapped behind this interface so robustness
/// sweeps iterate scheme x attack instead of hand-wiring signatures.
///
/// Attacks never mutate their input and draw all randomness from the
/// caller's `Rng`, so sweeps stay reproducible rep by rep.
class Attack {
 public:
  virtual ~Attack() = default;

  /// Human-readable id including parameters, e.g. "destroy-boundary(1%)".
  virtual std::string name() const = 0;

  /// Applies the attack. Implementations that require a rank-sorted input
  /// re-sort internally; callers may pass mutated histograms directly.
  virtual Histogram Apply(const Histogram& watermarked, Rng& rng) const = 0;
};

/// §V-C1 attack (1): random perturbation within each token's rank
/// boundaries (order-preserving). Wraps `DestroyAttackWithinBoundaries`.
std::unique_ptr<Attack> MakeWithinBoundariesAttack();

/// §V-C1 attack (2): each token moves at most `percent`% of its boundary.
/// Wraps `DestroyAttackPercentOfBoundary`.
std::unique_ptr<Attack> MakePercentOfBoundaryAttack(double percent);

/// §V-C2 attack: ±`percent`% of each value, re-ordering allowed. Wraps
/// `DestroyAttackWithReordering`.
std::unique_ptr<Attack> MakeReorderingAttack(double percent);

/// §V-B attack: keep a uniformly random `fraction` of the rows (multivariate
/// hypergeometric draw on counts). Wraps `SamplingAttackHistogram`.
std::unique_ptr<Attack> MakeSamplingAttack(double fraction);

/// §V-D attack: the pirate re-watermarks the stolen copy with its own
/// FreqyWM secret to forge a genuine-looking proof. Wraps
/// `ReWatermarkAttack`; `options.seed` is re-derived from the caller's
/// `Rng` per application so reps differ. When no pair fits (inapplicable
/// case) the attack degrades to a no-op copy — the pirate ships the data
/// unchanged.
std::unique_ptr<Attack> MakeRewatermarkAttack(GenerateOptions options);

/// The paper's §V robustness suite with its headline parameters: the two
/// order-preserving destroy attacks (full-boundary and 1%), the ±1%
/// re-ordering attack, 50% sampling, and the re-watermark attack.
std::vector<std::unique_ptr<Attack>> StandardAttackSuite();

}  // namespace freqywm

#endif  // FREQYWM_API_ATTACK_H_
