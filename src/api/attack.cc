#include "api/attack.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "attacks/destroy.h"
#include "attacks/rewatermark.h"
#include "attacks/sampling.h"

namespace freqywm {

namespace {

/// The destroy attacks document "histogram sorted descending" as a
/// precondition; restore it when the caller hands over a mutated copy.
Histogram Sorted(const Histogram& hist) {
  return hist.IsSortedDescending() ? hist : hist.Resorted();
}

std::string PercentName(const char* base, double percent) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(%g%%)", base, percent);
  return std::string(buf);
}

class WithinBoundariesAttack final : public Attack {
 public:
  std::string name() const override { return "destroy-boundary(full)"; }
  Histogram Apply(const Histogram& watermarked, Rng& rng) const override {
    return DestroyAttackWithinBoundaries(Sorted(watermarked), rng);
  }
};

class PercentOfBoundaryAttack final : public Attack {
 public:
  explicit PercentOfBoundaryAttack(double percent) : percent_(percent) {}
  std::string name() const override {
    return PercentName("destroy-boundary", percent_);
  }
  Histogram Apply(const Histogram& watermarked, Rng& rng) const override {
    return DestroyAttackPercentOfBoundary(Sorted(watermarked), percent_, rng);
  }

 private:
  double percent_;
};

class ReorderingAttack final : public Attack {
 public:
  explicit ReorderingAttack(double percent) : percent_(percent) {}
  std::string name() const override {
    return PercentName("destroy-reorder", percent_);
  }
  Histogram Apply(const Histogram& watermarked, Rng& rng) const override {
    return DestroyAttackWithReordering(watermarked, percent_, rng);
  }

 private:
  double percent_;
};

class SamplingHistogramAttack final : public Attack {
 public:
  explicit SamplingHistogramAttack(double fraction) : fraction_(fraction) {}
  std::string name() const override {
    return PercentName("sampling", fraction_ * 100.0);
  }
  Histogram Apply(const Histogram& watermarked, Rng& rng) const override {
    double clamped = std::clamp(fraction_, 0.0, 1.0);
    auto sample_size = static_cast<size_t>(
        clamped * static_cast<double>(watermarked.total_count()));
    return SamplingAttackHistogram(watermarked, sample_size, rng);
  }

 private:
  double fraction_;
};

class RewatermarkAttackAdapter final : public Attack {
 public:
  explicit RewatermarkAttackAdapter(GenerateOptions options)
      : options_(options) {}
  std::string name() const override { return "re-watermark"; }
  Histogram Apply(const Histogram& watermarked, Rng& rng) const override {
    GenerateOptions options = options_;
    options.seed = rng.NextU64() | 1;  // non-zero: stay deterministic
    auto forged = ReWatermarkAttack(Sorted(watermarked), options);
    if (!forged.ok()) return watermarked;  // inapplicable: ship unchanged
    return std::move(forged).value().watermarked;
  }

 private:
  GenerateOptions options_;
};

}  // namespace

std::unique_ptr<Attack> MakeWithinBoundariesAttack() {
  return std::make_unique<WithinBoundariesAttack>();
}

std::unique_ptr<Attack> MakePercentOfBoundaryAttack(double percent) {
  return std::make_unique<PercentOfBoundaryAttack>(percent);
}

std::unique_ptr<Attack> MakeReorderingAttack(double percent) {
  return std::make_unique<ReorderingAttack>(percent);
}

std::unique_ptr<Attack> MakeSamplingAttack(double fraction) {
  return std::make_unique<SamplingHistogramAttack>(fraction);
}

std::unique_ptr<Attack> MakeRewatermarkAttack(GenerateOptions options) {
  return std::make_unique<RewatermarkAttackAdapter>(options);
}

std::vector<std::unique_ptr<Attack>> StandardAttackSuite() {
  std::vector<std::unique_ptr<Attack>> suite;
  suite.push_back(MakeWithinBoundariesAttack());
  suite.push_back(MakePercentOfBoundaryAttack(1.0));
  suite.push_back(MakeReorderingAttack(1.0));
  suite.push_back(MakeSamplingAttack(0.5));
  GenerateOptions pirate;
  pirate.modulus_bound = 131;
  suite.push_back(MakeRewatermarkAttack(pirate));
  return suite;
}

}  // namespace freqywm
