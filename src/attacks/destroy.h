#ifndef FREQYWM_ATTACKS_DESTROY_H_
#define FREQYWM_ATTACKS_DESTROY_H_

#include "common/random.h"
#include "data/histogram.h"

namespace freqywm {

/// Destroy attacks (§V-C): the pirate knows the scheme (Kerckhoffs) and
/// perturbs token frequencies hoping to erase the modular relationships,
/// while trying not to ruin the data's utility.

/// §V-C1 attack (1), the stronger of the two order-preserving attacks:
/// walk the ranks, pick a uniformly random perturbation inside the current
/// upper/lower boundary of each token, and update the next token's boundary
/// after each change so the ranking never breaks.
///
/// The top token's upper boundary is unbounded; the attack caps it at the
/// token's gap to rank 1 (mirroring its only finite boundary) so the attack
/// stays "utility-preserving".
///
/// Precondition: histogram sorted descending. Returns the attacked copy.
Histogram DestroyAttackWithinBoundaries(const Histogram& watermarked,
                                        Rng& rng);

/// §V-C1 attack (2): like the above but each token moves at most
/// `percent`% of its boundary (the paper's 1% attack), i.e.
/// u'_i = floor(u_i * percent/100), l'_i = floor(l_i * percent/100).
Histogram DestroyAttackPercentOfBoundary(const Histogram& watermarked,
                                         double percent, Rng& rng);

/// §V-C2 attack: re-ordering allowed. Every frequency moves by a uniform
/// amount in [-percent%, +percent%] of its own value, which may scramble
/// ranks (and wrecks utility at high percentages — the paper's point).
Histogram DestroyAttackWithReordering(const Histogram& watermarked,
                                      double percent, Rng& rng);

}  // namespace freqywm

#endif  // FREQYWM_ATTACKS_DESTROY_H_
