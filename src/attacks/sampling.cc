#include "attacks/sampling.h"

#include <algorithm>
#include <cmath>

namespace freqywm {

Dataset SamplingAttack(const Dataset& watermarked, double fraction,
                       Rng& rng) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  size_t n = static_cast<size_t>(
      std::llround(static_cast<double>(watermarked.size()) * fraction));
  return watermarked.SampleRows(n, rng);
}

Histogram SamplingAttackHistogram(const Histogram& watermarked,
                                  size_t sample_size, Rng& rng) {
  // Sequential multivariate hypergeometric: walk the tokens, drawing each
  // token's sampled count from Hypergeometric(remaining_total, count,
  // remaining_draws) via direct simulation of the count proportion.
  // For the sizes used here (millions of rows) a per-token binomial-style
  // draw of the exact hypergeometric is done by sampling without
  // replacement in aggregate.
  uint64_t remaining_total = watermarked.total_count();
  uint64_t remaining_draws =
      std::min<uint64_t>(sample_size, remaining_total);

  std::vector<HistogramEntry> entries;
  for (const auto& e : watermarked.entries()) {
    if (remaining_draws == 0) break;
    // Draw how many of this token's `e.count` instances land in the sample:
    // exact sequential hypergeometric using per-instance inclusion.
    // For large counts this loop is the dominant cost but stays linear in
    // the dataset size, same as materializing rows would be.
    uint64_t took = 0;
    for (uint64_t c = 0; c < e.count && remaining_draws > 0; ++c) {
      // Probability this instance is drawn = remaining_draws / remaining_total.
      if (rng.UniformU64(remaining_total) < remaining_draws) {
        ++took;
        --remaining_draws;
      }
      --remaining_total;
    }
    if (took > 0) entries.push_back({e.token, took});
  }
  Result<Histogram> h = Histogram::FromCounts(std::move(entries));
  // Tokens are distinct (copied from a valid histogram), counts positive.
  return std::move(h).value();
}

DetectResult DetectOnSample(const Histogram& sample,
                            uint64_t original_total_count,
                            const WatermarkSecrets& secrets,
                            DetectOptions options) {
  if (sample.total_count() > 0) {
    options.rescale_factor = static_cast<double>(original_total_count) /
                             static_cast<double>(sample.total_count());
  }
  return DetectWatermark(sample, secrets, options);
}

}  // namespace freqywm
