#ifndef FREQYWM_ATTACKS_SAMPLING_H_
#define FREQYWM_ATTACKS_SAMPLING_H_

#include <cstddef>

#include "common/random.h"
#include "core/detect.h"
#include "core/secrets.h"
#include "data/dataset.h"
#include "data/histogram.h"

namespace freqywm {

/// The sampling attack (§V-B): the pirate copies only a uniformly random
/// x% of the watermarked rows, hoping the watermark dissolves.
///
/// Returns the stolen subsample (row order preserved).
Dataset SamplingAttack(const Dataset& watermarked, double fraction, Rng& rng);

/// Histogram-level version: draws a sample of `sample_size` rows directly
/// from the histogram's counts (multivariate hypergeometric), avoiding the
/// need to materialize millions of rows. Tokens that lose all occurrences
/// disappear from the returned histogram — exactly what dooms detection at
/// extreme subsampling rates (Fig. 4).
Histogram SamplingAttackHistogram(const Histogram& watermarked,
                                  size_t sample_size, Rng& rng);

/// Owner-side detection of a (suspected) subsample: scales the suspect's
/// counts by original_size / suspect_size before running detection, the
/// §V-B rescale step ("via info added to its metadata").
DetectResult DetectOnSample(const Histogram& sample,
                            uint64_t original_total_count,
                            const WatermarkSecrets& secrets,
                            DetectOptions options);

}  // namespace freqywm

#endif  // FREQYWM_ATTACKS_SAMPLING_H_
