#include "attacks/rewatermark.h"

namespace freqywm {

Result<HistogramGenerateResult> ReWatermarkAttack(
    const Histogram& honest_watermarked, const GenerateOptions& options) {
  WatermarkGenerator generator(options);
  return generator.GenerateFromHistogram(honest_watermarked);
}

JudgeReport ArbitrateOwnership(const Histogram& data_a,
                               const WatermarkSecrets& secrets_a,
                               const Histogram& data_b,
                               const WatermarkSecrets& secrets_b,
                               const DetectOptions& options) {
  JudgeReport report;
  report.a_on_a = DetectWatermark(data_a, secrets_a, options);
  report.a_on_b = DetectWatermark(data_b, secrets_a, options);
  report.b_on_a = DetectWatermark(data_a, secrets_b, options);
  report.b_on_b = DetectWatermark(data_b, secrets_b, options);

  // Primary rule (paper §V-D): only the rightful owner's secret verifies
  // on BOTH datasets.
  const bool a_everywhere = report.a_on_a.accepted && report.a_on_b.accepted;
  const bool b_everywhere = report.b_on_a.accepted && report.b_on_b.accepted;
  if (a_everywhere && !b_everywhere) {
    report.verdict = JudgeVerdict::kPartyA;
    return report;
  }
  if (b_everywhere && !a_everywhere) {
    report.verdict = JudgeVerdict::kPartyB;
    return report;
  }

  // Tie-break on cross-verification strength: the first watermark leaves a
  // partial trace in the second party's dataset, while a re-watermarker's
  // pairs (each requiring a frequency change, min_pair_cost >= 1) verify
  // nowhere on data it never touched. Require a clear 2x margin; anything
  // closer stays inconclusive.
  const bool a_own = report.a_on_a.accepted;
  const bool b_own = report.b_on_b.accepted;
  const double a_cross = report.a_on_b.verified_fraction;
  const double b_cross = report.b_on_a.verified_fraction;
  if (a_own && a_cross > 2.0 * b_cross && a_cross > 0.05) {
    report.verdict = JudgeVerdict::kPartyA;
  } else if (b_own && b_cross > 2.0 * a_cross && b_cross > 0.05) {
    report.verdict = JudgeVerdict::kPartyB;
  } else {
    report.verdict = JudgeVerdict::kInconclusive;
  }
  return report;
}

}  // namespace freqywm
