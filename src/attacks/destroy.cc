#include "attacks/destroy.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace freqywm {
namespace {

/// Shared walk for the two order-preserving attacks. `scale` in (0, 1]
/// shrinks the usable boundary fraction (1.0 = full boundary).
Histogram AttackWithinBoundaries(const Histogram& watermarked, double scale,
                                 Rng& rng) {
  assert(watermarked.IsSortedDescending());
  Histogram out = watermarked;
  const auto& entries = watermarked.entries();
  const size_t n = entries.size();
  if (n == 0) return out;

  // prev_new tracks the already-perturbed value of the previous rank so the
  // updated upper boundary ("updates u_{i+1} by r_i", §V-C1) is respected.
  uint64_t prev_new = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t f = entries[i].count;
    // Upper slack: distance to the previous (already modified) token. The
    // top token mirrors its lower gap since its true boundary is infinite.
    uint64_t upper;
    if (i == 0) {
      upper = (n > 1) ? entries[0].count - entries[1].count
                      : entries[0].count;
    } else {
      upper = prev_new > f ? prev_new - f : 0;
    }
    // Lower slack: distance to the next token's (original) frequency; the
    // last token may drop to 1.
    uint64_t lower =
        (i + 1 < n) ? f - entries[i + 1].count : (f > 0 ? f - 1 : 0);

    auto scaled = [scale](uint64_t b) {
      return static_cast<uint64_t>(
          std::floor(static_cast<double>(b) * scale));
    };
    int64_t lo = -static_cast<int64_t>(scaled(lower));
    int64_t hi = static_cast<int64_t>(scaled(upper));
    int64_t r = (lo >= hi) ? 0 : rng.UniformInt(lo, hi);

    Status s = out.SetCount(entries[i].token,
                            static_cast<uint64_t>(
                                static_cast<int64_t>(f) + r));
    assert(s.ok());
    (void)s;
    prev_new = static_cast<uint64_t>(static_cast<int64_t>(f) + r);
  }
  assert(out.IsSortedDescending());
  return out;
}

}  // namespace

Histogram DestroyAttackWithinBoundaries(const Histogram& watermarked,
                                        Rng& rng) {
  return AttackWithinBoundaries(watermarked, 1.0, rng);
}

Histogram DestroyAttackPercentOfBoundary(const Histogram& watermarked,
                                         double percent, Rng& rng) {
  return AttackWithinBoundaries(watermarked,
                                std::clamp(percent, 0.0, 100.0) / 100.0, rng);
}

Histogram DestroyAttackWithReordering(const Histogram& watermarked,
                                      double percent, Rng& rng) {
  Histogram out = watermarked;
  double p = std::clamp(percent, 0.0, 100.0) / 100.0;
  for (const auto& e : watermarked.entries()) {
    int64_t span = static_cast<int64_t>(
        std::floor(static_cast<double>(e.count) * p));
    int64_t r = span > 0 ? rng.UniformInt(-span, span) : 0;
    int64_t nv = static_cast<int64_t>(e.count) + r;
    if (nv < 1) nv = 1;  // keep the token present
    Status s = out.SetCount(e.token, static_cast<uint64_t>(nv));
    assert(s.ok());
    (void)s;
  }
  return out;
}

}  // namespace freqywm
