#ifndef FREQYWM_ATTACKS_GUESS_H_
#define FREQYWM_ATTACKS_GUESS_H_

#include <cstddef>
#include <cstdint>

#include "common/random.h"
#include "core/options.h"
#include "data/histogram.h"

namespace freqywm {

/// Parameters of the empirical guess (brute-force) attack study (§V-A).
struct GuessAttackSpec {
  /// Number of independent forged secrets the attacker tries.
  size_t attempts = 1000;
  /// Bits of the forged secret R*. Real deployments use 256; the empirical
  /// study uses tiny values to show the success curve collapsing.
  size_t attacker_lambda_bits = 16;
  /// Modulus bound z* the attacker assumes (Kerckhoffs: z may be public).
  uint64_t attacker_z = 131;
  /// Number of pairs l the attacker claims (>= k to matter).
  size_t claimed_pairs = 10;
  /// Detection thresholds the verifier applies to the attacker's claim.
  uint64_t pair_threshold = 0;
  size_t min_pairs = 10;
};

/// Result of the empirical guess attack.
struct GuessAttackResult {
  size_t attempts = 0;
  size_t successes = 0;
  /// Empirical success probability.
  double success_rate = 0.0;
  /// The analytical per-pair accidental pass probability (t+1)/E[s] under a
  /// uniform modulus in [2, z); the paper's negligibility argument compounds
  /// this over k pairs.
  double per_pair_probability = 0.0;
};

/// Simulates the guess attack: for each attempt the adversary forges a
/// random secret R*, picks `claimed_pairs` random token pairs from the
/// watermarked data (all it can see), and submits this as its own `Lsc`.
/// The attack succeeds when detection verifies at least `min_pairs` pairs.
///
/// With realistic parameters the success rate is indistinguishable from the
/// chance of `min_pairs` residues landing below `t` simultaneously —
/// negligible in λ; this function makes the claim measurable.
GuessAttackResult RunGuessAttack(const Histogram& watermarked,
                                 const GuessAttackSpec& spec, Rng& rng);

}  // namespace freqywm

#endif  // FREQYWM_ATTACKS_GUESS_H_
