#ifndef FREQYWM_ATTACKS_REWATERMARK_H_
#define FREQYWM_ATTACKS_REWATERMARK_H_

#include "common/result.h"
#include "core/detect.h"
#include "core/options.h"
#include "core/secrets.h"
#include "core/watermark.h"
#include "data/histogram.h"

namespace freqywm {

/// Who the judge declares the rightful owner (§V-D).
enum class JudgeVerdict {
  /// Party A's secret verified on both datasets, party B's only on its own.
  kPartyA,
  /// Symmetric case for party B.
  kPartyB,
  /// Neither (or both) secrets verified on both datasets.
  kInconclusive,
};

/// The four detections the judge runs: each party's secret against each
/// party's dataset.
struct JudgeReport {
  JudgeVerdict verdict = JudgeVerdict::kInconclusive;
  DetectResult a_on_a;  ///< A's secret on A's dataset
  DetectResult a_on_b;  ///< A's secret on B's dataset
  DetectResult b_on_a;  ///< B's secret on A's dataset
  DetectResult b_on_b;  ///< B's secret on B's dataset
};

/// Mounts the re-watermarking (false-claim) attack: the pirate runs
/// `WmGenerate` on the honest owner's watermarked histogram and obtains its
/// own `(D_w^A, Lsc^A)` pair, giving it a *genuine-looking* proof.
Result<HistogramGenerateResult> ReWatermarkAttack(
    const Histogram& honest_watermarked, const GenerateOptions& options);

/// The dispute arbitration protocol from §V-D. The key asymmetry: the
/// honest owner's watermark survives inside the attacker's re-watermarked
/// dataset (FreqyWM introduces tiny distortion), so the honest secret
/// verifies on BOTH datasets, while the attacker's secret verifies only on
/// its own (the attacker never saw the honest original).
///
/// Chronology therefore resolves the dispute: the party whose secret
/// verifies on both datasets watermarked first.
JudgeReport ArbitrateOwnership(const Histogram& data_a,
                               const WatermarkSecrets& secrets_a,
                               const Histogram& data_b,
                               const WatermarkSecrets& secrets_b,
                               const DetectOptions& options);

}  // namespace freqywm

#endif  // FREQYWM_ATTACKS_REWATERMARK_H_
