#include "attacks/guess.h"

#include <algorithm>

#include "core/detect.h"
#include "core/secrets.h"
#include "crypto/secret.h"
#include "stats/poisson_binomial.h"

namespace freqywm {

GuessAttackResult RunGuessAttack(const Histogram& watermarked,
                                 const GuessAttackSpec& spec, Rng& rng) {
  GuessAttackResult out;
  out.attempts = spec.attempts;

  const auto& entries = watermarked.entries();
  const size_t n = entries.size();
  if (n < 2 || spec.attempts == 0) return out;

  DetectOptions detect_opts;
  detect_opts.pair_threshold = spec.pair_threshold;
  detect_opts.min_pairs = spec.min_pairs;

  for (size_t a = 0; a < spec.attempts; ++a) {
    // Forge a secret deterministically from the attack RNG so runs are
    // reproducible.
    WatermarkSecret forged =
        GenerateSecret(spec.attacker_lambda_bits, rng.NextU64() | 1);

    WatermarkSecrets claim;
    claim.r = std::move(forged);
    claim.z = spec.attacker_z;
    claim.pairs.reserve(spec.claimed_pairs);
    for (size_t p = 0; p < spec.claimed_pairs; ++p) {
      size_t i = static_cast<size_t>(rng.UniformU64(n));
      size_t j = static_cast<size_t>(rng.UniformU64(n));
      while (j == i) j = static_cast<size_t>(rng.UniformU64(n));
      // Order by frequency as an honest owner would.
      if (entries[i].count < entries[j].count) std::swap(i, j);
      claim.pairs.push_back(
          SecretPair{entries[i].token, entries[j].token});
    }

    DetectResult dr = DetectWatermark(watermarked, claim, detect_opts);
    if (dr.accepted) ++out.successes;
  }

  out.success_rate = static_cast<double>(out.successes) /
                     static_cast<double>(out.attempts);
  // Mean modulus for a uniform draw over [0, z) conditioned on s >= 2 is
  // about z/2; the analytical per-pair probability uses that proxy.
  uint64_t mean_s = std::max<uint64_t>(2, spec.attacker_z / 2);
  out.per_pair_probability =
      PairFalsePositiveProbability(spec.pair_threshold, mean_s);
  return out;
}

}  // namespace freqywm
