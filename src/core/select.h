#ifndef FREQYWM_CORE_SELECT_H_
#define FREQYWM_CORE_SELECT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/eligible.h"
#include "core/options.h"
#include "data/histogram.h"

namespace freqywm {

/// Outcome of pair selection: indices into the eligible list, plus the
/// similarity the watermarked histogram will have after applying them.
struct SelectionResult {
  /// Indices into the eligible vector, token-disjoint by construction.
  std::vector<size_t> chosen;
  /// Histogram similarity (percent) after applying all chosen deltas.
  double similarity_percent = 100.0;
};

/// Selects watermarking pairs from `eligible` under the similarity budget.
///
/// * `kOptimal` — reduce to Maximum Weight Matching over the token graph
///   (edge weight per `options.weight_formula`), then fill the budget with
///   the equally-valued-knapsack order (ascending cost) while the exact
///   similarity constraint holds (§III-B2).
/// * `kGreedy`  — ascending-remainder scan over all eligible pairs.
/// * `kRandom`  — random-order scan.
///
/// All strategies guarantee the returned pairs share no token and that
/// applying their deltas keeps similarity >= (100 - budget)%.
///
/// `rng` is consumed only by `kRandom`.
SelectionResult SelectPairs(const Histogram& hist,
                            const std::vector<EligiblePair>& eligible,
                            const GenerateOptions& options, Rng& rng);

}  // namespace freqywm

#endif  // FREQYWM_CORE_SELECT_H_
