#ifndef FREQYWM_CORE_MULTIDIM_H_
#define FREQYWM_CORE_MULTIDIM_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/detect.h"
#include "core/watermark.h"
#include "data/dataset.h"

namespace freqywm {

/// Result of watermarking a relational table through composite tokens.
struct TableGenerateResult {
  TableDataset watermarked;
  GenerateReport report;
};

/// Watermarks a multi-dimensional dataset (§IV-C).
///
/// The named columns are joined into composite tokens (e.g.
/// `[Age, WorkClass]`), the token histogram is watermarked as usual, and
/// the table is transformed: removals delete uniformly random rows holding
/// the token; additions use the paper's "naive solution" — replicate a
/// random donor row with the same token so the non-token attributes stay
/// internally consistent. The paper notes semantic constraints may need a
/// domain-aware last step; that hook is exactly `ReplicateTokenRows`, which
/// callers can replace with their own policy.
Result<TableGenerateResult> WatermarkTable(
    const TableDataset& table, const std::vector<std::string>& token_columns,
    const GenerateOptions& options);

/// Detects a watermark on a relational table by re-projecting the token
/// columns and running histogram detection.
Result<DetectResult> DetectTableWatermark(
    const TableDataset& table, const std::vector<std::string>& token_columns,
    const WatermarkSecrets& secrets, const DetectOptions& options);

}  // namespace freqywm

#endif  // FREQYWM_CORE_MULTIDIM_H_
