#ifndef FREQYWM_CORE_SECRETS_H_
#define FREQYWM_CORE_SECRETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/secret.h"
#include "data/token.h"

namespace freqywm {

/// One entry of the watermarked pair list `Lwm`: an *ordered* token pair
/// (the more frequent token at generation time first — the order matters
/// because the modulus derivation is asymmetric).
struct SecretPair {
  Token token_i;
  Token token_j;

  friend bool operator==(const SecretPair& a, const SecretPair& b) {
    return a.token_i == b.token_i && a.token_j == b.token_j;
  }
};

/// The owner's secret list `Lsc = {Lwm, R, z}` (Table I). This is exactly
/// what must be stored after generation and presented at detection; it is
/// also what a seller would escrow per-buyer in an immutable index for the
/// leak-tracing use case (§I).
struct WatermarkSecrets {
  std::vector<SecretPair> pairs;
  WatermarkSecret r;
  uint64_t z = 0;

  /// Serializes to a line-oriented text format (tokens hex-encoded so any
  /// byte content round-trips).
  std::string Serialize() const;

  /// Parses the output of `Serialize`. Fails with `Corruption` on malformed
  /// input.
  static Result<WatermarkSecrets> Deserialize(const std::string& text);

  /// Saves to / loads from a file.
  Status SaveToFile(const std::string& path) const;
  static Result<WatermarkSecrets> LoadFromFile(const std::string& path);

  friend bool operator==(const WatermarkSecrets& a,
                         const WatermarkSecrets& b) {
    return a.pairs == b.pairs && a.r == b.r && a.z == b.z;
  }
};

}  // namespace freqywm

#endif  // FREQYWM_CORE_SECRETS_H_
