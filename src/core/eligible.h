#ifndef FREQYWM_CORE_ELIGIBLE_H_
#define FREQYWM_CORE_ELIGIBLE_H_

#include <cstdint>
#include <vector>

#include "core/boundaries.h"
#include "core/options.h"
#include "crypto/pair_modulus.h"
#include "data/histogram.h"

namespace freqywm {

/// One candidate watermarking pair (an element of `Le`, §III-B1), with the
/// exact frequency changes that would embed it.
///
/// `rank_i < rank_j`, so token i is the more frequent one and
/// `f_i - f_j >= 0`. The embedding rule requires `(f_i' - f_j') mod s == 0`;
/// with remainder `rm = (f_i - f_j) mod s` the cheapest fix is:
///   * shrink the difference by `rm` when `rm <= s/2`
///     (f_i -= ceil(rm/2), f_j += floor(rm/2)), or
///   * grow it by `s - rm` otherwise
///     (f_i += ceil((s-rm)/2), f_j -= floor((s-rm)/2)) —
/// the paper's wrap-around observation that caps per-pair churn at s/2.
struct EligiblePair {
  size_t rank_i = 0;
  size_t rank_j = 0;
  /// Keyed per-pair modulus (>= 2 for eligible pairs).
  uint64_t s = 0;
  /// (f_i - f_j) mod s at generation time.
  uint64_t remainder = 0;
  /// Exact signed frequency deltas that zero the residue.
  int64_t delta_i = 0;
  int64_t delta_j = 0;
  /// Total token-instance churn |delta_i| + |delta_j| = min(rm, s - rm).
  uint64_t cost = 0;
};

/// Computes the deltas/cost fields for a pair given its difference and
/// modulus. Exposed separately because detection-side analysis and tests
/// reuse the rule.
EligiblePair MakePairPlan(size_t rank_i, size_t rank_j, uint64_t freq_diff,
                          uint64_t s);

/// Builds the eligible pair list `Le` for a sorted histogram.
///
/// Scans all token pairs (O(n^2) keyed-hash evaluations), keeping a pair
/// when `s_ij >= min_modulus` (the paper's rule is min_modulus = 2) and the
/// boundary test of `rule` passes. The returned list is ordered by
/// (rank_i, rank_j), which makes downstream selection deterministic.
///
/// Precondition: `hist.IsSortedDescending()`.
std::vector<EligiblePair> BuildEligiblePairs(const Histogram& hist,
                                             const PairModulus& modulus,
                                             EligibilityRule rule,
                                             uint64_t min_modulus = 2,
                                             uint64_t min_pair_cost = 0);

}  // namespace freqywm

#endif  // FREQYWM_CORE_ELIGIBLE_H_
