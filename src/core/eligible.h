#ifndef FREQYWM_CORE_ELIGIBLE_H_
#define FREQYWM_CORE_ELIGIBLE_H_

#include <cstdint>
#include <vector>

#include "core/boundaries.h"
#include "core/options.h"
#include "crypto/pair_modulus.h"
#include "data/histogram.h"
#include "exec/exec_context.h"

namespace freqywm {

/// One candidate watermarking pair (an element of `Le`, §III-B1), with the
/// exact frequency changes that would embed it.
///
/// `rank_i < rank_j`, so token i is the more frequent one and
/// `f_i - f_j >= 0`. The embedding rule requires `(f_i' - f_j') mod s == 0`;
/// with remainder `rm = (f_i - f_j) mod s` the cheapest fix is:
///   * shrink the difference by `rm` when `rm <= s/2`
///     (f_i -= ceil(rm/2), f_j += floor(rm/2)), or
///   * grow it by `s - rm` otherwise
///     (f_i += ceil((s-rm)/2), f_j -= floor((s-rm)/2)) —
/// the paper's wrap-around observation that caps per-pair churn at s/2.
struct EligiblePair {
  size_t rank_i = 0;
  size_t rank_j = 0;
  /// Keyed per-pair modulus (>= 2 for eligible pairs).
  uint64_t s = 0;
  /// (f_i - f_j) mod s at generation time.
  uint64_t remainder = 0;
  /// Exact signed frequency deltas that zero the residue.
  int64_t delta_i = 0;
  int64_t delta_j = 0;
  /// Total token-instance churn |delta_i| + |delta_j| = min(rm, s - rm).
  uint64_t cost = 0;

  /// Field-wise equality — the golden identity tests compare whole pair
  /// lists between the reference, pruned-serial and sharded-parallel scans.
  friend bool operator==(const EligiblePair& a, const EligiblePair& b) {
    return a.rank_i == b.rank_i && a.rank_j == b.rank_j && a.s == b.s &&
           a.remainder == b.remainder && a.delta_i == b.delta_i &&
           a.delta_j == b.delta_j && a.cost == b.cost;
  }
  friend bool operator!=(const EligiblePair& a, const EligiblePair& b) {
    return !(a == b);
  }
};

/// Computes the deltas/cost fields for a pair given its difference and
/// modulus. Exposed separately because detection-side analysis and tests
/// reuse the rule.
EligiblePair MakePairPlan(size_t rank_i, size_t rank_j, uint64_t freq_diff,
                          uint64_t s);

/// Builds the eligible pair list `Le` for a sorted histogram.
///
/// Scans all token pairs, keeping a pair when `s_ij >= min_modulus` (the
/// paper's rule is min_modulus = 2) and the boundary test of `rule`
/// passes. The returned list is ordered by (rank_i, rank_j), which makes
/// downstream selection deterministic.
///
/// This is the Gen hot path (O(n^2) keyed-hash evaluations; Table II's
/// generation cost), so the scan is engineered (DESIGN.md §8):
///  * one inner digest `H(R || tk_j)` per token and one outer-hash
///    midstate per row `i` — each pair costs a single cloned finish over
///    32 bytes (`PairModulus::OuterState`);
///  * pairs that cannot pass the filters for ANY modulus value are pruned
///    before hashing: tokens whose boundary slack can never admit
///    `s >= min_modulus` or afford `cost >= min_pair_cost` (kPaper rule),
///    and the leading run of `j` whose `freq_diff = f_i - f_j` is below
///    `min_pair_cost` (cost <= freq_diff always);
///  * when `exec` carries a thread pool, the outer `i`-loop is sharded
///    into contiguous row ranges with per-shard output vectors
///    concatenated in `i`-order, so the result is byte-identical to the
///    serial scan at any thread count.
///
/// `BuildEligiblePairsReference` below is the unpruned one-hash-per-pair
/// reference; `tests/exec/parallel_eligible_test.cc` enforces identity.
///
/// Precondition: `hist.IsSortedDescending()` (validated with
/// `InvalidArgument` at the `WatermarkGenerator` entry points; asserted
/// here).
std::vector<EligiblePair> BuildEligiblePairs(const Histogram& hist,
                                             const PairModulus& modulus,
                                             EligibilityRule rule,
                                             uint64_t min_modulus = 2,
                                             uint64_t min_pair_cost = 0,
                                             const ExecContext& exec = {});

/// The pre-optimization scan (PR 2 state): full outer re-hash per pair, no
/// pruning, single-threaded. Kept as the identity oracle for the golden
/// tests and as the "before" side of the perf counters in
/// `bench_micro_corelib`; output is byte-identical to `BuildEligiblePairs`.
std::vector<EligiblePair> BuildEligiblePairsReference(
    const Histogram& hist, const PairModulus& modulus, EligibilityRule rule,
    uint64_t min_modulus = 2, uint64_t min_pair_cost = 0);

}  // namespace freqywm

#endif  // FREQYWM_CORE_ELIGIBLE_H_
