#include "core/boundaries.h"

#include <cassert>

namespace freqywm {

std::vector<TokenBoundary> ComputeBoundaries(const Histogram& hist) {
  assert(hist.IsSortedDescending());
  const auto& entries = hist.entries();
  const size_t n = entries.size();
  std::vector<TokenBoundary> bounds(n);
  for (size_t i = 0; i < n; ++i) {
    bounds[i].upper = (i == 0) ? TokenBoundary::kUnbounded
                               : entries[i - 1].count - entries[i].count;
    if (i + 1 < n) {
      bounds[i].lower = entries[i].count - entries[i + 1].count;
    } else {
      bounds[i].lower = entries[i].count > 0 ? entries[i].count - 1 : 0;
    }
  }
  return bounds;
}

}  // namespace freqywm
