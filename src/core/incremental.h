#ifndef FREQYWM_CORE_INCREMENTAL_H_
#define FREQYWM_CORE_INCREMENTAL_H_

#include <cstdint>

#include "common/result.h"
#include "core/secrets.h"
#include "data/histogram.h"

namespace freqywm {

/// Options for incremental watermark maintenance (§VI "Incremental
/// FreqyWM"): a watermarked dataset keeps growing/shrinking in production,
/// drifting pair residues away from zero; instead of re-running the full
/// generation pipeline, the owner re-aligns only the broken pairs.
struct RefreshOptions {
  /// Maximum total token churn the refresh may spend, as a percent of the
  /// dataset's current row count.
  double max_churn_percent = 2.0;

  /// When true (default), a repair is skipped if its deltas would violate
  /// the ranking constraint of the *current* histogram (checked with the
  /// conservative half-gap rule, so simultaneous repairs stay safe).
  bool preserve_ranking = true;
};

/// Outcome statistics of a refresh.
struct RefreshReport {
  size_t pairs_checked = 0;
  /// Residue already zero — untouched.
  size_t pairs_intact = 0;
  /// Residue re-zeroed by applying fresh deltas.
  size_t pairs_repaired = 0;
  /// Token missing, repair infeasible (ranking/churn), or modulus
  /// degenerate — removed from the refreshed secret list.
  size_t pairs_dropped = 0;
  /// Token instances added plus removed by the repairs.
  uint64_t total_churn = 0;
};

/// Result of `RefreshWatermark`.
struct RefreshResult {
  Histogram refreshed;
  /// Same R and z; the pair list shrinks by the dropped pairs.
  WatermarkSecrets secrets;
  RefreshReport report;
};

/// Re-aligns the stored pairs of `secrets` on `drifted` (a watermarked
/// histogram whose counts have since changed). Runs in
/// O(|Lwm| + n log n) — no eligible-pair scan, no matching — which is the
/// §VI observation that incremental maintenance avoids the from-scratch
/// pipeline.
///
/// Fails with `InvalidArgument` on malformed secrets/options.
Result<RefreshResult> RefreshWatermark(const Histogram& drifted,
                                       const WatermarkSecrets& secrets,
                                       const RefreshOptions& options);

}  // namespace freqywm

#endif  // FREQYWM_CORE_INCREMENTAL_H_
