#include "core/eligible.h"

#include <algorithm>
#include <cassert>

#include "exec/thread_pool.h"

namespace freqywm {
namespace {

/// Half of `gap`, rounded down, with unbounded passed through.
uint64_t HalfGap(uint64_t gap) {
  if (gap == TokenBoundary::kUnbounded) return gap;
  return gap / 2;
}

/// True when a signed delta fits within the available slack.
bool DeltaFits(int64_t delta, uint64_t up_slack, uint64_t down_slack) {
  if (delta >= 0) {
    return up_slack == TokenBoundary::kUnbounded ||
           static_cast<uint64_t>(delta) <= up_slack;
  }
  return static_cast<uint64_t>(-delta) <= down_slack;
}

/// Immutable per-scan state shared by every row of the pruned scan; row
/// scans only read it, so shards can run it concurrently.
struct PairScan {
  const std::vector<HistogramEntry>& entries;
  const std::vector<TokenBoundary>& bounds;
  const PairModulus& modulus;
  EligibilityRule rule;
  uint64_t min_modulus;
  uint64_t min_pair_cost;
  /// Inner digests H(R || tk_j), filled for every candidate rank.
  const std::vector<Sha256::Digest>& inner;
  /// Ascending ranks that survive per-token pruning (every rank for the
  /// strict rule). Both loop roles draw from this list: a pruned token can
  /// appear in no pair at all.
  const std::vector<uint32_t>& candidates;

  /// Appends row `i`'s eligible pairs to `out` in ascending-j order.
  void ScanRow(uint32_t i, std::vector<EligiblePair>* out) const;
};

void PairScan::ScanRow(uint32_t i, std::vector<EligiblePair>* out) const {
  const size_t n = entries.size();
  const uint64_t fi = entries[i].count;

  auto it = std::upper_bound(candidates.begin(), candidates.end(), i);
  if (min_pair_cost > 0) {
    // cost <= freq_diff always, and counts are non-increasing in rank, so
    // the leading run of j with `f_i - f_j < min_pair_cost` (ties first)
    // can never pass the cost filter: skip it without hashing.
    if (fi < min_pair_cost) return;
    const uint64_t max_fj = fi - min_pair_cost;
    it = std::partition_point(it, candidates.end(), [&](uint32_t j) {
      return entries[j].count > max_fj;
    });
  }
  if (it == candidates.end()) return;

  // One outer-hash midstate per row: every pair below is a cloned finish
  // over the 32-byte inner digest.
  const PairModulus::OuterState outer = modulus.OuterFor(entries[i].token);

  for (; it != candidates.end(); ++it) {
    const uint32_t j = *it;
    const uint64_t s = outer.Reduce(inner[j]);
    if (s < min_modulus) continue;  // s < 2 undefined; below the floor

    EligiblePair plan = MakePairPlan(i, j, fi - entries[j].count, s);
    if (plan.cost < min_pair_cost) continue;  // carries no evidence

    bool ok = false;
    if (rule == EligibilityRule::kPaper) {
      // All four boundaries must be at least ceil(s/2).
      const uint64_t need = (s + 1) / 2;
      auto fits = [need](uint64_t bound) {
        return bound == TokenBoundary::kUnbounded || bound >= need;
      };
      ok = fits(bounds[i].upper) && fits(bounds[i].lower) &&
           fits(bounds[j].upper) && fits(bounds[j].lower);
    } else {
      // Strict rule: the exact deltas must fit within HALF of each shared
      // gap (full slack at the unshared extremes), which provably keeps
      // the ranking for any token-disjoint set of pairs.
      uint64_t up_i = (i == 0) ? TokenBoundary::kUnbounded
                               : HalfGap(bounds[i].upper);
      uint64_t down_i = (i + 1 == n) ? bounds[i].lower
                                     : HalfGap(bounds[i].lower);
      uint64_t up_j = (j == 0) ? TokenBoundary::kUnbounded
                               : HalfGap(bounds[j].upper);
      uint64_t down_j = (j + 1 == n) ? bounds[j].lower
                                     : HalfGap(bounds[j].lower);
      ok = DeltaFits(plan.delta_i, up_i, down_i) &&
           DeltaFits(plan.delta_j, up_j, down_j);
    }
    if (ok) out->push_back(plan);
  }
}

/// Ranks that can participate in any eligible pair. Under the paper rule a
/// token whose tightest boundary `B = min(upper, lower)` cannot admit any
/// `s >= min_modulus` (every such s needs `ceil(s/2) >= ceil(min_modulus/2)
/// > B`) — or cannot afford `cost >= min_pair_cost` (a boundary-passing
/// pair has `cost <= floor(s/2) <= B`) — is pruned before any hashing. The
/// strict rule keeps every rank: its fitness depends on the residue's
/// direction, which only the hash reveals.
std::vector<uint32_t> CollectCandidates(
    const std::vector<HistogramEntry>& entries,
    const std::vector<TokenBoundary>& bounds, EligibilityRule rule,
    uint64_t min_modulus, uint64_t min_pair_cost) {
  const size_t n = entries.size();
  std::vector<uint32_t> candidates;
  candidates.reserve(n);
  const uint64_t need_floor = (min_modulus + 1) / 2;
  for (uint32_t t = 0; t < n; ++t) {
    if (rule == EligibilityRule::kPaper) {
      // kUnbounded is the max uint64, so min() picks the finite bound.
      const uint64_t b = std::min(bounds[t].upper, bounds[t].lower);
      if (b < need_floor || b < min_pair_cost) continue;
    }
    candidates.push_back(t);
  }
  return candidates;
}

}  // namespace

EligiblePair MakePairPlan(size_t rank_i, size_t rank_j, uint64_t freq_diff,
                          uint64_t s) {
  assert(s >= 2);
  EligiblePair p;
  p.rank_i = rank_i;
  p.rank_j = rank_j;
  p.s = s;
  p.remainder = freq_diff % s;

  if (p.remainder == 0) {
    p.delta_i = 0;
    p.delta_j = 0;
    p.cost = 0;
  } else if (p.remainder <= s / 2) {
    // Shrink the difference by rm: take ceil(rm/2) from the frequent token,
    // give floor(rm/2) to the rare one.
    uint64_t rm = p.remainder;
    p.delta_i = -static_cast<int64_t>((rm + 1) / 2);
    p.delta_j = static_cast<int64_t>(rm / 2);
    p.cost = rm;
  } else {
    // Wrap around: grow the difference by s - rm instead.
    uint64_t d = s - p.remainder;
    p.delta_i = static_cast<int64_t>((d + 1) / 2);
    p.delta_j = -static_cast<int64_t>(d / 2);
    p.cost = d;
  }
  return p;
}

std::vector<EligiblePair> BuildEligiblePairs(const Histogram& hist,
                                             const PairModulus& modulus,
                                             EligibilityRule rule,
                                             uint64_t min_modulus,
                                             uint64_t min_pair_cost,
                                             const ExecContext& exec) {
  if (min_modulus < 2) min_modulus = 2;
  assert(hist.IsSortedDescending());
  const auto& entries = hist.entries();
  const std::vector<TokenBoundary> bounds = ComputeBoundaries(hist);
  const std::vector<uint32_t> candidates =
      CollectCandidates(entries, bounds, rule, min_modulus, min_pair_cost);
  const size_t rows = candidates.size();

  // Inner digests H(R || tk_j), one per candidate token (non-candidates
  // are never read). Indexed writes keep the parallel fill deterministic.
  std::vector<Sha256::Digest> inner(entries.size());
  auto fill_inner = [&](size_t r) {
    inner[candidates[r]] = modulus.InnerDigest(entries[candidates[r]].token);
  };
  if (exec.parallel() && rows >= 2) {
    exec.pool->ParallelFor(rows, fill_inner);
  } else {
    for (size_t r = 0; r < rows; ++r) fill_inner(r);
  }

  const PairScan scan{entries,    bounds, modulus, rule,
                      min_modulus, min_pair_cost, inner, candidates};

  // Shard the outer i-loop into contiguous candidate-row ranges of roughly
  // equal triangular work (row r scans ~rows - r candidates). Each shard
  // appends into its own vector; concatenating the shards in range order
  // reproduces the serial (rank_i, rank_j) order exactly, so the output is
  // byte-identical at any thread count.
  size_t num_shards = 1;
  if (exec.parallel() && rows >= 2) {
    num_shards = std::min(rows, (exec.pool->num_threads() + 1) * 4);
  }

  std::vector<size_t> shard_begin(num_shards + 1, rows);
  shard_begin[0] = 0;
  if (num_shards > 1) {
    const double total_work =
        static_cast<double>(rows) * static_cast<double>(rows + 1) / 2.0;
    double acc = 0.0;
    size_t shard = 1;
    for (size_t r = 0; r < rows && shard < num_shards; ++r) {
      acc += static_cast<double>(rows - r);
      if (acc >= total_work * static_cast<double>(shard) /
                     static_cast<double>(num_shards)) {
        shard_begin[shard++] = r + 1;
      }
    }
    for (; shard < num_shards; ++shard) shard_begin[shard] = rows;
  }

  std::vector<std::vector<EligiblePair>> shard_out(num_shards);
  auto run_shard = [&](size_t shard) {
    std::vector<EligiblePair>& out = shard_out[shard];
    // Modest up-front reserve; |Le| is typically a small multiple of n,
    // spread across shards, and the merge below reserves exactly.
    out.reserve(std::min<size_t>(rows, 256));
    for (size_t r = shard_begin[shard]; r < shard_begin[shard + 1]; ++r) {
      scan.ScanRow(candidates[r], &out);
    }
  };
  if (num_shards > 1) {
    exec.pool->ParallelFor(num_shards, run_shard);
  } else {
    run_shard(0);
  }
  if (num_shards == 1) return std::move(shard_out[0]);

  size_t total = 0;
  for (const auto& part : shard_out) total += part.size();
  std::vector<EligiblePair> eligible;
  eligible.reserve(total);
  for (auto& part : shard_out) {
    eligible.insert(eligible.end(), part.begin(), part.end());
  }
  return eligible;
}

std::vector<EligiblePair> BuildEligiblePairsReference(const Histogram& hist,
                                                      const PairModulus& modulus,
                                                      EligibilityRule rule,
                                                      uint64_t min_modulus,
                                                      uint64_t min_pair_cost) {
  if (min_modulus < 2) min_modulus = 2;
  assert(hist.IsSortedDescending());
  const auto& entries = hist.entries();
  const size_t n = entries.size();
  std::vector<TokenBoundary> bounds = ComputeBoundaries(hist);
  std::vector<EligiblePair> eligible;

  // Cache the inner digest H(R || tk_j) per token: the O(n^2) scan then
  // costs one outer hash per pair instead of two hashes.
  std::vector<Sha256::Digest> inner(n);
  for (size_t j = 0; j < n; ++j) {
    inner[j] = modulus.InnerDigest(entries[j].token);
  }

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      uint64_t s = modulus.ComputeWithInner(entries[i].token, inner[j]);
      if (s < min_modulus) continue;  // s < 2 undefined; below the floor

      EligiblePair plan =
          MakePairPlan(i, j, entries[i].count - entries[j].count, s);
      if (plan.cost < min_pair_cost) continue;  // carries no evidence

      bool ok = false;
      if (rule == EligibilityRule::kPaper) {
        // All four boundaries must be at least ceil(s/2).
        const uint64_t need = (s + 1) / 2;
        auto fits = [need](uint64_t bound) {
          return bound == TokenBoundary::kUnbounded || bound >= need;
        };
        ok = fits(bounds[i].upper) && fits(bounds[i].lower) &&
             fits(bounds[j].upper) && fits(bounds[j].lower);
      } else {
        // Strict rule: the exact deltas must fit within HALF of each shared
        // gap (full slack at the unshared extremes), which provably keeps
        // the ranking for any token-disjoint set of pairs.
        uint64_t up_i = (i == 0) ? TokenBoundary::kUnbounded
                                 : HalfGap(bounds[i].upper);
        uint64_t down_i = (i + 1 == n) ? bounds[i].lower
                                       : HalfGap(bounds[i].lower);
        uint64_t up_j = (j == 0) ? TokenBoundary::kUnbounded
                                 : HalfGap(bounds[j].upper);
        uint64_t down_j = (j + 1 == n) ? bounds[j].lower
                                       : HalfGap(bounds[j].lower);
        ok = DeltaFits(plan.delta_i, up_i, down_i) &&
             DeltaFits(plan.delta_j, up_j, down_j);
      }
      if (ok) eligible.push_back(plan);
    }
  }
  return eligible;
}

}  // namespace freqywm
