#include "core/eligible.h"

#include <cassert>

namespace freqywm {
namespace {

/// Half of `gap`, rounded down, with unbounded passed through.
uint64_t HalfGap(uint64_t gap) {
  if (gap == TokenBoundary::kUnbounded) return gap;
  return gap / 2;
}

/// True when a signed delta fits within the available slack.
bool DeltaFits(int64_t delta, uint64_t up_slack, uint64_t down_slack) {
  if (delta >= 0) {
    return up_slack == TokenBoundary::kUnbounded ||
           static_cast<uint64_t>(delta) <= up_slack;
  }
  return static_cast<uint64_t>(-delta) <= down_slack;
}

}  // namespace

EligiblePair MakePairPlan(size_t rank_i, size_t rank_j, uint64_t freq_diff,
                          uint64_t s) {
  assert(s >= 2);
  EligiblePair p;
  p.rank_i = rank_i;
  p.rank_j = rank_j;
  p.s = s;
  p.remainder = freq_diff % s;

  if (p.remainder == 0) {
    p.delta_i = 0;
    p.delta_j = 0;
    p.cost = 0;
  } else if (p.remainder <= s / 2) {
    // Shrink the difference by rm: take ceil(rm/2) from the frequent token,
    // give floor(rm/2) to the rare one.
    uint64_t rm = p.remainder;
    p.delta_i = -static_cast<int64_t>((rm + 1) / 2);
    p.delta_j = static_cast<int64_t>(rm / 2);
    p.cost = rm;
  } else {
    // Wrap around: grow the difference by s - rm instead.
    uint64_t d = s - p.remainder;
    p.delta_i = static_cast<int64_t>((d + 1) / 2);
    p.delta_j = -static_cast<int64_t>(d / 2);
    p.cost = d;
  }
  return p;
}

std::vector<EligiblePair> BuildEligiblePairs(const Histogram& hist,
                                             const PairModulus& modulus,
                                             EligibilityRule rule,
                                             uint64_t min_modulus,
                                             uint64_t min_pair_cost) {
  if (min_modulus < 2) min_modulus = 2;
  assert(hist.IsSortedDescending());
  const auto& entries = hist.entries();
  const size_t n = entries.size();
  std::vector<TokenBoundary> bounds = ComputeBoundaries(hist);
  std::vector<EligiblePair> eligible;

  // Cache the inner digest H(R || tk_j) per token: the O(n^2) scan then
  // costs one outer hash per pair instead of two hashes.
  std::vector<Sha256::Digest> inner(n);
  for (size_t j = 0; j < n; ++j) {
    inner[j] = modulus.InnerDigest(entries[j].token);
  }

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      uint64_t s = modulus.ComputeWithInner(entries[i].token, inner[j]);
      if (s < min_modulus) continue;  // s < 2 undefined; below the floor

      EligiblePair plan =
          MakePairPlan(i, j, entries[i].count - entries[j].count, s);
      if (plan.cost < min_pair_cost) continue;  // carries no evidence

      bool ok = false;
      if (rule == EligibilityRule::kPaper) {
        // All four boundaries must be at least ceil(s/2).
        const uint64_t need = (s + 1) / 2;
        auto fits = [need](uint64_t bound) {
          return bound == TokenBoundary::kUnbounded || bound >= need;
        };
        ok = fits(bounds[i].upper) && fits(bounds[i].lower) &&
             fits(bounds[j].upper) && fits(bounds[j].lower);
      } else {
        // Strict rule: the exact deltas must fit within HALF of each shared
        // gap (full slack at the unshared extremes), which provably keeps
        // the ranking for any token-disjoint set of pairs.
        uint64_t up_i = (i == 0) ? TokenBoundary::kUnbounded
                                 : HalfGap(bounds[i].upper);
        uint64_t down_i = (i + 1 == n) ? bounds[i].lower
                                       : HalfGap(bounds[i].lower);
        uint64_t up_j = (j == 0) ? TokenBoundary::kUnbounded
                                 : HalfGap(bounds[j].upper);
        uint64_t down_j = (j + 1 == n) ? bounds[j].lower
                                       : HalfGap(bounds[j].lower);
        ok = DeltaFits(plan.delta_i, up_i, down_i) &&
             DeltaFits(plan.delta_j, up_j, down_j);
      }
      if (ok) eligible.push_back(plan);
    }
  }
  return eligible;
}

}  // namespace freqywm
