#include "core/watermark.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/select.h"
#include "crypto/pair_modulus.h"
#include "stats/similarity.h"

namespace freqywm {

WatermarkGenerator::WatermarkGenerator(GenerateOptions options)
    : options_(options) {}

Status WatermarkGenerator::ValidateOptions() const {
  if (options_.modulus_bound < 2) {
    return Status::InvalidArgument("modulus bound z must be >= 2");
  }
  if (options_.budget_percent < 0 || options_.budget_percent > 100) {
    return Status::InvalidArgument("budget must be in [0, 100] percent");
  }
  if (options_.lambda_bits < 8) {
    return Status::InvalidArgument("security parameter too small");
  }
  if (options_.min_modulus >= options_.modulus_bound) {
    return Status::InvalidArgument(
        "min_modulus must be below the modulus bound z");
  }
  return Status::OK();
}

Result<HistogramGenerateResult> WatermarkGenerator::GenerateFromHistogram(
    const Histogram& original) const {
  return GenerateFromHistogram(original, ExecContext{});
}

Result<HistogramGenerateResult> WatermarkGenerator::GenerateFromHistogram(
    const Histogram& original, const ExecContext& exec) const {
  FREQYWM_RETURN_NOT_OK(ValidateOptions());
  if (original.num_tokens() < 2) {
    return Status::InvalidArgument(
        "need at least two distinct tokens to watermark");
  }
  if (!original.IsSortedDescending()) {
    return Status::InvalidArgument("input histogram must be rank-sorted");
  }

  // Step 2 of Algorithm I: draw the high-entropy secret R.
  WatermarkSecret r =
      GenerateSecret(options_.lambda_bits, options_.seed);
  PairModulus modulus(r, options_.modulus_bound);

  // Steps 3-4: eligible pairs, then optimal/heuristic selection.
  std::vector<EligiblePair> eligible =
      BuildEligiblePairs(original, modulus, options_.eligibility,
                         options_.min_modulus, options_.min_pair_cost, exec);

  Rng rng(options_.seed == 0 ? DigestPrefixU64(Sha256::Hash(
                                   std::string(r.r.begin(), r.r.end())))
                             : options_.seed);
  SelectionResult selection = SelectPairs(original, eligible, options_, rng);
  if (selection.chosen.empty()) {
    return Status::ResourceExhausted(
        "no eligible pair fits the budget; dataset frequencies may be too "
        "uniform to watermark");
  }

  // Step 5: frequency modification (with ranking enforcement).
  std::vector<size_t> applied;
  Histogram watermarked =
      ApplyPairDeltas(original, eligible, selection.chosen, &applied);

  HistogramGenerateResult out{std::move(watermarked), GenerateReport{}};
  out.report.eligible_pairs = eligible.size();
  out.report.chosen_pairs = applied.size();
  out.report.similarity_percent =
      HistogramSimilarityPercent(original, out.watermarked, options_.metric);
  out.report.secrets.r = std::move(r);
  out.report.secrets.z = options_.modulus_bound;
  out.report.secrets.pairs.reserve(applied.size());
  for (size_t idx : applied) {
    const EligiblePair& p = eligible[idx];
    out.report.secrets.pairs.push_back(
        SecretPair{original.entry(p.rank_i).token,
                   original.entry(p.rank_j).token});
    out.report.total_churn += p.cost;
  }
  return out;
}

Result<DatasetGenerateResult> WatermarkGenerator::Generate(
    const Dataset& original) const {
  return Generate(original, Histogram::FromDataset(original));
}

Result<DatasetGenerateResult> WatermarkGenerator::Generate(
    const Dataset& original, const ExecContext& exec) const {
  return Generate(original, exec.BuildHistogram(original), exec);
}

Result<DatasetGenerateResult> WatermarkGenerator::Generate(
    const Dataset& original, const Histogram& hist) const {
  return Generate(original, hist, ExecContext{});
}

Result<DatasetGenerateResult> WatermarkGenerator::Generate(
    const Dataset& original, const Histogram& hist,
    const ExecContext& exec) const {
  FREQYWM_ASSIGN_OR_RETURN(HistogramGenerateResult hist_result,
                           GenerateFromHistogram(hist, exec));
  Rng rng(options_.seed == 0
              ? DigestPrefixU64(Sha256::Hash(
                    hist_result.report.secrets.r.ToHex()))
              : options_.seed + 0x517cc1b727220a95ULL);
  DatasetGenerateResult out{
      TransformDataset(original, hist_result.watermarked, rng),
      std::move(hist_result.report)};
  return out;
}

Histogram ApplyPairDeltas(const Histogram& hist,
                          const std::vector<EligiblePair>& eligible,
                          const std::vector<size_t>& chosen,
                          std::vector<size_t>* applied) {
  Histogram out = hist;
  if (applied) applied->clear();

  for (size_t idx : chosen) {
    const EligiblePair& p = eligible[idx];
    const Token& token_i = hist.entry(p.rank_i).token;
    const Token& token_j = hist.entry(p.rank_j).token;

    // Tentatively apply, then verify the local ordering did not break.
    Status si = out.AddDelta(token_i, p.delta_i);
    Status sj = out.AddDelta(token_j, p.delta_j);
    assert(si.ok() && sj.ok());
    (void)si;
    (void)sj;

    if (!out.IsSortedDescending()) {
      // Rare shared-gap collision under the paper's eligibility rule:
      // revert this pair to keep the Ranking Constraint hard.
      Status ri = out.AddDelta(token_i, -p.delta_i);
      Status rj = out.AddDelta(token_j, -p.delta_j);
      assert(ri.ok() && rj.ok());
      (void)ri;
      (void)rj;
      continue;
    }
    if (applied) applied->push_back(idx);
  }
  return out;
}

Dataset TransformDataset(const Dataset& original, const Histogram& target,
                         Rng& rng) {
  // Per-token count differences between the original data and the target
  // histogram.
  Histogram current = Histogram::FromDataset(original);
  std::unordered_map<Token, int64_t> to_remove;  // positive = remove
  std::vector<Token> additions;
  for (const auto& e : target.entries()) {
    auto cur = current.CountOf(e.token);
    int64_t have = cur ? static_cast<int64_t>(*cur) : 0;
    int64_t want = static_cast<int64_t>(e.count);
    if (want < have) {
      to_remove[e.token] = have - want;
    } else {
      for (int64_t k = 0; k < want - have; ++k) additions.push_back(e.token);
    }
  }

  // Single pass: drop a uniformly random subset of each shrinking token's
  // occurrences. We pick which occurrences to drop via reservoir-free
  // counting: occurrence r of a token with `have` occurrences and `drop`
  // removals is dropped with probability drop/remaining.
  std::unordered_map<Token, std::pair<int64_t, int64_t>> removal_state;
  for (const auto& [token, drop] : to_remove) {
    auto cur = current.CountOf(token);
    removal_state[token] = {static_cast<int64_t>(*cur), drop};
  }

  std::vector<Token> kept;
  kept.reserve(original.size());
  for (const Token& t : original.tokens()) {
    auto it = removal_state.find(t);
    if (it == removal_state.end()) {
      kept.push_back(t);
      continue;
    }
    auto& [remaining, drop] = it->second;
    // Drop this occurrence with probability drop / remaining.
    bool dropped =
        drop > 0 && static_cast<int64_t>(rng.UniformU64(
                        static_cast<uint64_t>(remaining))) < drop;
    if (dropped) {
      --drop;
    } else {
      kept.push_back(t);
    }
    --remaining;
  }

  if (additions.empty()) return Dataset(std::move(kept));

  // Insert additions at uniformly random final positions: choose |adds|
  // distinct slots among the final length, fill them with a shuffled copy
  // of the additions, and stream the kept tokens into the other slots.
  rng.Shuffle(additions);
  const size_t final_size = kept.size() + additions.size();
  std::vector<size_t> slots =
      rng.SampleWithoutReplacement(final_size, additions.size());
  std::sort(slots.begin(), slots.end());

  std::vector<Token> out;
  out.reserve(final_size);
  size_t slot_idx = 0;
  size_t kept_idx = 0;
  for (size_t pos = 0; pos < final_size; ++pos) {
    if (slot_idx < slots.size() && slots[slot_idx] == pos) {
      out.push_back(std::move(additions[slot_idx]));
      ++slot_idx;
    } else {
      out.push_back(std::move(kept[kept_idx]));
      ++kept_idx;
    }
  }
  return Dataset(std::move(out));
}

}  // namespace freqywm
