#include "core/select.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "matching/max_weight_matching.h"
#include "stats/similarity.h"

namespace freqywm {
namespace {

/// Scans `candidate_order` (indices into `eligible`), committing every pair
/// that keeps tokens disjoint and stays within the budget (similarity
/// floor or additive churn capacity, per `options.budget_mode`).
SelectionResult FillBudget(const Histogram& hist,
                           const std::vector<EligiblePair>& eligible,
                           const std::vector<size_t>& candidate_order,
                           const GenerateOptions& options) {
  SelectionResult out;
  IncrementalCosine cosine(hist);
  const double floor_percent = 100.0 - options.budget_percent;
  const uint64_t churn_capacity = static_cast<uint64_t>(
      options.budget_percent / 100.0 *
      static_cast<double>(hist.total_count()));
  uint64_t churn_used = 0;
  std::vector<char> token_used(hist.num_tokens(), 0);

  for (size_t idx : candidate_order) {
    const EligiblePair& p = eligible[idx];
    if (token_used[p.rank_i] || token_used[p.rank_j]) continue;
    if (options.budget_mode == BudgetMode::kSimilarity) {
      double prospective =
          cosine.ProbePairDelta(p.rank_i, p.delta_i, p.rank_j, p.delta_j) *
          100.0;
      if (prospective < floor_percent) continue;
    } else {
      if (churn_used + p.cost > churn_capacity) continue;
      churn_used += p.cost;
    }
    cosine.ApplyDelta(p.rank_i, p.delta_i);
    cosine.ApplyDelta(p.rank_j, p.delta_j);
    token_used[p.rank_i] = 1;
    token_used[p.rank_j] = 1;
    out.chosen.push_back(idx);
  }
  out.similarity_percent = cosine.SimilarityPercent();
  return out;
}

SelectionResult SelectOptimal(const Histogram& hist,
                              const std::vector<EligiblePair>& eligible,
                              const GenerateOptions& options) {
  // Vertices are histogram ranks; edges are eligible pairs. The weight
  // T - rm (or T - cost) makes MWM prefer many low-distortion pairs: with
  // T >= z every edge weight is positive, so a maximum-weight matching is
  // also maximum-cardinality over the cheap edges (§III-B2).
  const int64_t big_t = static_cast<int64_t>(options.modulus_bound);
  std::vector<WeightedEdge> edges;
  edges.reserve(eligible.size());
  for (const auto& p : eligible) {
    int64_t penalty =
        options.weight_formula == WeightFormula::kPaperRemainder
            ? static_cast<int64_t>(p.remainder)
            : static_cast<int64_t>(p.cost);
    edges.push_back(WeightedEdge{static_cast<int>(p.rank_i),
                                 static_cast<int>(p.rank_j),
                                 big_t - penalty});
  }
  std::vector<int> mate =
      MaxWeightMatching(static_cast<int>(hist.num_tokens()), edges);

  // Keep the matched subset of eligible pairs, then fill the budget in
  // ascending-cost order — the equally-valued 0/1 knapsack order.
  std::vector<size_t> matched;
  for (size_t idx = 0; idx < eligible.size(); ++idx) {
    const auto& p = eligible[idx];
    int u = static_cast<int>(p.rank_i);
    int v = static_cast<int>(p.rank_j);
    if (u < static_cast<int>(mate.size()) && mate[u] == v) {
      matched.push_back(idx);
    }
  }
  std::sort(matched.begin(), matched.end(), [&](size_t a, size_t b) {
    if (eligible[a].cost != eligible[b].cost) {
      return eligible[a].cost < eligible[b].cost;
    }
    return a < b;
  });
  return FillBudget(hist, eligible, matched, options);
}

SelectionResult SelectGreedy(const Histogram& hist,
                             const std::vector<EligiblePair>& eligible,
                             const GenerateOptions& options) {
  std::vector<size_t> order(eligible.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // The paper sorts eligible pairs by ascending remainder.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (eligible[a].remainder != eligible[b].remainder) {
      return eligible[a].remainder < eligible[b].remainder;
    }
    return a < b;
  });
  return FillBudget(hist, eligible, order, options);
}

SelectionResult SelectRandom(const Histogram& hist,
                             const std::vector<EligiblePair>& eligible,
                             const GenerateOptions& options, Rng& rng) {
  std::vector<size_t> order(eligible.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  return FillBudget(hist, eligible, order, options);
}

}  // namespace

SelectionResult SelectPairs(const Histogram& hist,
                            const std::vector<EligiblePair>& eligible,
                            const GenerateOptions& options, Rng& rng) {
  switch (options.strategy) {
    case SelectionStrategy::kOptimal:
      return SelectOptimal(hist, eligible, options);
    case SelectionStrategy::kGreedy:
      return SelectGreedy(hist, eligible, options);
    case SelectionStrategy::kRandom:
      return SelectRandom(hist, eligible, options, rng);
  }
  assert(false && "unknown selection strategy");
  return {};
}

}  // namespace freqywm
