#ifndef FREQYWM_CORE_DETECT_H_
#define FREQYWM_CORE_DETECT_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/secrets.h"
#include "data/dataset.h"
#include "data/histogram.h"

namespace freqywm {

/// Outcome of `WmDetect` (Algorithm II).
struct DetectResult {
  /// True when at least `min_pairs` (k) stored pairs were verified.
  bool accepted = false;
  /// Pairs of Lwm whose both tokens were present in the suspect data.
  size_t pairs_found = 0;
  /// Pairs whose residue passed the threshold test.
  size_t pairs_verified = 0;
  /// pairs_verified / |Lwm| (0 when Lwm is empty); the "success rate"
  /// series plotted in Figs. 4 and 5.
  double verified_fraction = 0.0;

  /// Exact equality — the batch detection engine's determinism contract is
  /// element-wise identity with the serial path, fractions included.
  friend bool operator==(const DetectResult& a, const DetectResult& b) {
    return a.accepted == b.accepted && a.pairs_found == b.pairs_found &&
           a.pairs_verified == b.pairs_verified &&
           a.verified_fraction == b.verified_fraction;
  }
  friend bool operator!=(const DetectResult& a, const DetectResult& b) {
    return !(a == b);
  }
};

/// Runs watermark detection on a suspect histogram.
///
/// For each stored pair present in the histogram it re-derives
/// `s_ij = H(tk_i || H(R || tk_j)) mod z` and accepts the pair when
/// `(f_i - f_j) mod s_ij <= t` (one-sided, as in the paper) or additionally
/// when the residue is within `t` of `s_ij` (symmetric option). The dataset
/// is declared watermarked when at least `k` pairs verify.
///
/// The suspect histogram does NOT need to be sorted — only counts are read.
/// Runs in O(|Lwm|) hash evaluations (linear, §I "verify very fast").
DetectResult DetectWatermark(const Histogram& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options);

/// Convenience overload building the histogram from a raw dataset.
DetectResult DetectWatermark(const Dataset& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options);

}  // namespace freqywm

#endif  // FREQYWM_CORE_DETECT_H_
