#ifndef FREQYWM_CORE_DETECT_H_
#define FREQYWM_CORE_DETECT_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "core/secrets.h"
#include "data/dataset.h"
#include "data/histogram.h"

namespace freqywm {

/// Outcome of `WmDetect` (Algorithm II).
struct DetectResult {
  /// True when at least `min_pairs` (k) stored pairs were verified.
  bool accepted = false;
  /// Pairs of Lwm whose both tokens were present in the suspect data.
  size_t pairs_found = 0;
  /// Pairs whose residue passed the threshold test.
  size_t pairs_verified = 0;
  /// pairs_verified / |Lwm| (0 when Lwm is empty); the "success rate"
  /// series plotted in Figs. 4 and 5.
  double verified_fraction = 0.0;

  /// Exact equality — the batch detection engine's determinism contract is
  /// element-wise identity with the serial path, fractions included.
  friend bool operator==(const DetectResult& a, const DetectResult& b) {
    return a.accepted == b.accepted && a.pairs_found == b.pairs_found &&
           a.pairs_verified == b.pairs_verified &&
           a.verified_fraction == b.verified_fraction;
  }
  friend bool operator!=(const DetectResult& a, const DetectResult& b) {
    return !(a == b);
  }
};

/// Key-side detection state derived once per key and reused across any
/// number of suspects (DESIGN.md §8): every stored pair's modulus
/// `s_ij = H(tk_i || H(R || tk_j)) mod z`, plus the key's distinct-token
/// list so detection gathers each token's suspect-side count exactly once
/// even when a token appears in many stored pairs.
///
/// The derivation reuses crypto midstates: one inner digest per distinct
/// `token_j`, one outer-hash midstate per distinct `token_i`, one cloned
/// finish per pair. The table depends only on the key (never on a
/// suspect), is immutable after `Build`, and is safe to share across
/// threads — `BatchDetector` builds one per key so the |suspects| × |keys|
/// matrix derives each modulus exactly once instead of once per cell.
class PairModulusTable {
 public:
  /// One stored pair: indices into `tokens()` plus the derived modulus.
  struct PairEntry {
    uint32_t token_i = 0;
    uint32_t token_j = 0;
    uint64_t s = 0;
  };

  /// Empty, invalid table (detection against it rejects, matching
  /// `DetectWatermark` on malformed secrets).
  PairModulusTable() = default;

  /// Derives the table from `secrets`. Invalid secrets (`z < 2` or no
  /// pairs) yield an invalid table.
  static PairModulusTable Build(const WatermarkSecrets& secrets);

  bool valid() const { return valid_; }
  /// |Lwm| — the denominator of `verified_fraction`.
  size_t num_pairs() const { return pairs_.size(); }
  /// Distinct tokens appearing in any stored pair, in first-seen order.
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<PairEntry>& pairs() const { return pairs_; }

 private:
  std::vector<Token> tokens_;
  std::vector<PairEntry> pairs_;
  bool valid_ = false;
};

/// Runs watermark detection on a suspect histogram.
///
/// For each stored pair present in the histogram it derives
/// `s_ij = H(tk_i || H(R || tk_j)) mod z` and accepts the pair when
/// `(f_i - f_j) mod s_ij <= t` (one-sided, as in the paper) or additionally
/// when the residue is within `t` of `s_ij` (symmetric option). The dataset
/// is declared watermarked when at least `k` pairs verify.
///
/// The suspect histogram does NOT need to be sorted — only counts are read.
/// Runs in O(|Lwm|) hash evaluations (linear, §I "verify very fast");
/// internally builds a `PairModulusTable`, so repeated tokens cost one
/// inner digest instead of one per stored pair.
DetectResult DetectWatermark(const Histogram& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options);

/// Table-backed detection: the hot path of the batch engine. Byte-identical
/// to `DetectWatermark(suspect, secrets, options)` when `table` was built
/// from `secrets` (enforced per scheme by
/// `tests/exec/prepared_detect_test.cc`).
DetectResult DetectWatermark(const Histogram& suspect,
                             const PairModulusTable& table,
                             const DetectOptions& options);

/// Dense-count detection (DESIGN.md §10): the per-suspect count gather is
/// hoisted out entirely. `dense_ids[t]` maps table token `t` into the
/// caller's flat arrays — `counts[dense_ids[t]]` is the suspect count of
/// `table.tokens()[t]`, valid iff `present[dense_ids[t]]` is non-zero. The
/// batch engine scatters each suspect histogram once for *all* keys, so a
/// matrix cell costs zero hash probes. Byte-identical to the histogram
/// overload when the arrays were scattered from the suspect (enforced by
/// `tests/exec/batch_session_test.cc`).
DetectResult DetectWatermark(const PairModulusTable& table,
                             const uint32_t* dense_ids,
                             const uint64_t* counts, const uint8_t* present,
                             const DetectOptions& options);

/// Convenience overload building the histogram from a raw dataset.
DetectResult DetectWatermark(const Dataset& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options);

/// The pre-table reference implementation (PR 2 state): one full
/// `PairModulus::Compute` — two hashes — per stored pair, no caching of
/// any kind. Kept as the identity oracle for the golden tests and as the
/// "before" side of the perf counters in the benches; output is
/// byte-identical to `DetectWatermark`.
DetectResult DetectWatermarkReference(const Histogram& suspect,
                                      const WatermarkSecrets& secrets,
                                      const DetectOptions& options);

}  // namespace freqywm

#endif  // FREQYWM_CORE_DETECT_H_
