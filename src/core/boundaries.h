#ifndef FREQYWM_CORE_BOUNDARIES_H_
#define FREQYWM_CORE_BOUNDARIES_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "data/histogram.h"

namespace freqywm {

/// Per-token frequency slack derived from the sorted histogram (§III-B1).
///
/// `upper` is how much a token's frequency may grow, `lower` how much it may
/// shrink, without passing its rank neighbours. The top token's upper
/// boundary is unbounded (`kUnbounded`); the bottom token's lower boundary
/// is its own frequency minus one (the paper allows removing "so many
/// appearances"; we keep at least one instance so the detection pair can
/// still be found).
struct TokenBoundary {
  static constexpr uint64_t kUnbounded =
      std::numeric_limits<uint64_t>::max();

  uint64_t upper = 0;
  uint64_t lower = 0;
};

/// Computes boundaries for every rank of a descending-sorted histogram:
///   upper_i = f_{i-1} - f_i   (infinite for rank 0)
///   lower_i = f_i - f_{i+1}   (f_i - 1 for the last rank)
///
/// Precondition: `hist.IsSortedDescending()`.
std::vector<TokenBoundary> ComputeBoundaries(const Histogram& hist);

}  // namespace freqywm

#endif  // FREQYWM_CORE_BOUNDARIES_H_
