#include "core/incremental.h"

#include <cmath>

#include "core/boundaries.h"
#include "core/eligible.h"
#include "crypto/pair_modulus.h"

namespace freqywm {
namespace {

/// Signed delta fits within `up`/`down` slack (kUnbounded = infinite).
bool DeltaFits(int64_t delta, uint64_t up, uint64_t down) {
  if (delta >= 0) {
    return up == TokenBoundary::kUnbounded ||
           static_cast<uint64_t>(delta) <= up;
  }
  return static_cast<uint64_t>(-delta) <= down;
}

}  // namespace

Result<RefreshResult> RefreshWatermark(const Histogram& drifted,
                                       const WatermarkSecrets& secrets,
                                       const RefreshOptions& options) {
  if (secrets.z < 2) {
    return Status::InvalidArgument("secrets carry invalid modulus bound");
  }
  if (options.max_churn_percent < 0 || options.max_churn_percent > 100) {
    return Status::InvalidArgument("churn budget must be in [0, 100]");
  }

  RefreshResult out;
  out.refreshed = drifted.Resorted();
  out.secrets.r = secrets.r;
  out.secrets.z = secrets.z;

  PairModulus modulus(secrets.r, secrets.z);
  const uint64_t churn_capacity = static_cast<uint64_t>(
      options.max_churn_percent / 100.0 *
      static_cast<double>(out.refreshed.total_count()));

  // Half-gap slack per rank, frozen at refresh start: since Lwm pairs are
  // token-disjoint, each token consumes only its own half of each shared
  // gap, so simultaneous repairs cannot cross (same argument as
  // EligibilityRule::kStrictHalfGap).
  std::vector<TokenBoundary> bounds = ComputeBoundaries(out.refreshed);
  const size_t n = out.refreshed.num_tokens();
  auto up_slack = [&](size_t rank) {
    return rank == 0 ? TokenBoundary::kUnbounded : bounds[rank].upper / 2;
  };
  auto down_slack = [&](size_t rank) {
    return rank + 1 == n ? bounds[rank].lower : bounds[rank].lower / 2;
  };

  for (const auto& pair : secrets.pairs) {
    ++out.report.pairs_checked;
    auto rank_i = out.refreshed.RankOf(pair.token_i);
    auto rank_j = out.refreshed.RankOf(pair.token_j);
    if (!rank_i || !rank_j) {
      ++out.report.pairs_dropped;
      continue;
    }
    uint64_t fi = out.refreshed.entry(*rank_i).count;
    uint64_t fj = out.refreshed.entry(*rank_j).count;
    uint64_t s = modulus.Compute(pair.token_i, pair.token_j);
    if (s < 2) {
      ++out.report.pairs_dropped;
      continue;
    }

    // The stored order has token_i as the (originally) more frequent one,
    // but drift may have flipped it; plan on the current ordering and map
    // deltas back.
    bool flipped = fj > fi;
    uint64_t hi = flipped ? fj : fi;
    uint64_t lo = flipped ? fi : fj;
    size_t hi_rank = flipped ? *rank_j : *rank_i;
    size_t lo_rank = flipped ? *rank_i : *rank_j;

    EligiblePair plan = MakePairPlan(hi_rank, lo_rank, hi - lo, s);
    if (plan.cost == 0) {
      ++out.report.pairs_intact;
      out.secrets.pairs.push_back(pair);
      continue;
    }
    if (out.report.total_churn + plan.cost > churn_capacity) {
      ++out.report.pairs_dropped;
      continue;
    }
    if (options.preserve_ranking &&
        (!DeltaFits(plan.delta_i, up_slack(hi_rank), down_slack(hi_rank)) ||
         !DeltaFits(plan.delta_j, up_slack(lo_rank), down_slack(lo_rank)))) {
      ++out.report.pairs_dropped;
      continue;
    }

    const Token& hi_token = out.refreshed.entry(hi_rank).token;
    const Token& lo_token = out.refreshed.entry(lo_rank).token;
    Status si = out.refreshed.AddDelta(hi_token, plan.delta_i);
    Status sj = out.refreshed.AddDelta(lo_token, plan.delta_j);
    if (!si.ok() || !sj.ok()) {
      // Roll back whichever half applied; treat as infeasible.
      if (si.ok()) (void)out.refreshed.AddDelta(hi_token, -plan.delta_i);
      if (sj.ok()) (void)out.refreshed.AddDelta(lo_token, -plan.delta_j);
      ++out.report.pairs_dropped;
      continue;
    }
    out.report.total_churn += plan.cost;
    ++out.report.pairs_repaired;
    out.secrets.pairs.push_back(pair);
  }
  return out;
}

}  // namespace freqywm
