#ifndef FREQYWM_CORE_BUCKETIZE_H_
#define FREQYWM_CORE_BUCKETIZE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace freqywm {

/// How raw numeric values map onto bucket tokens (§VI "Challenging
/// datasets"): wide-range values (e.g. sales amounts with decimals) rarely
/// repeat, so FreqyWM first clusters them into buckets and watermarks at
/// the bucket level.
struct BucketizeSpec {
  /// Left edge of the first bucket.
  double origin = 0.0;
  /// Bucket width (> 0).
  double width = 1.0;
  /// Prefix of generated bucket tokens; bucket i is "<prefix><i>".
  std::string token_prefix = "bucket";
};

/// Maps one numeric value to its bucket token.
Token BucketToken(double value, const BucketizeSpec& spec);

/// Converts a column of numeric strings into a bucket-token dataset.
/// Fails with `InvalidArgument` on non-numeric input or non-positive
/// width. Values below `origin` clamp into bucket 0.
Result<Dataset> BucketizeNumericStrings(
    const std::vector<std::string>& values, const BucketizeSpec& spec);

/// Convenience for double inputs.
Dataset BucketizeNumeric(const std::vector<double>& values,
                         const BucketizeSpec& spec);

/// Recovers the inclusive-exclusive value range [lo, hi) a bucket token
/// covers, for documentation/reporting. Fails with `InvalidArgument` when
/// the token was not produced with this spec's prefix.
Result<std::pair<double, double>> BucketRange(const Token& token,
                                              const BucketizeSpec& spec);

}  // namespace freqywm

#endif  // FREQYWM_CORE_BUCKETIZE_H_
