#include "core/multidim.h"

#include "core/detect.h"
#include "crypto/sha256.h"
#include "data/histogram.h"

namespace freqywm {

Result<TableGenerateResult> WatermarkTable(
    const TableDataset& table, const std::vector<std::string>& token_columns,
    const GenerateOptions& options) {
  FREQYWM_ASSIGN_OR_RETURN(Dataset projected,
                           table.ProjectTokens(token_columns));
  Histogram original = Histogram::FromDataset(projected);

  WatermarkGenerator generator(options);
  FREQYWM_ASSIGN_OR_RETURN(HistogramGenerateResult hist_result,
                           generator.GenerateFromHistogram(original));

  Rng rng(options.seed == 0
              ? DigestPrefixU64(
                    Sha256::Hash(hist_result.report.secrets.r.ToHex()))
              : options.seed + 0x2545F4914F6CDD1DULL);

  TableGenerateResult out{table, std::move(hist_result.report)};
  for (const auto& e : hist_result.watermarked.entries()) {
    auto orig_count = original.CountOf(e.token);
    int64_t have = orig_count ? static_cast<int64_t>(*orig_count) : 0;
    int64_t want = static_cast<int64_t>(e.count);
    if (want > have) {
      FREQYWM_RETURN_NOT_OK(out.watermarked.ReplicateTokenRows(
          token_columns, e.token, static_cast<size_t>(want - have), rng));
    } else if (want < have) {
      FREQYWM_ASSIGN_OR_RETURN(
          size_t removed,
          out.watermarked.RemoveTokenRows(
              token_columns, e.token, static_cast<size_t>(have - want), rng));
      if (removed != static_cast<size_t>(have - want)) {
        return Status::Internal("could not remove enough rows for token '" +
                                e.token + "'");
      }
    }
  }
  return out;
}

Result<DetectResult> DetectTableWatermark(
    const TableDataset& table, const std::vector<std::string>& token_columns,
    const WatermarkSecrets& secrets, const DetectOptions& options) {
  FREQYWM_ASSIGN_OR_RETURN(Dataset projected,
                           table.ProjectTokens(token_columns));
  return DetectWatermark(projected, secrets, options);
}

}  // namespace freqywm
