#ifndef FREQYWM_CORE_WATERMARK_H_
#define FREQYWM_CORE_WATERMARK_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/eligible.h"
#include "core/options.h"
#include "core/secrets.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "exec/exec_context.h"

namespace freqywm {

/// Everything `WmGenerate` produces besides the watermarked data itself.
struct GenerateReport {
  /// The owner's secret list `Lsc` — store this; it is the proof key.
  WatermarkSecrets secrets;
  /// |Le|: how many pairs were eligible.
  size_t eligible_pairs = 0;
  /// How many pairs were actually watermarked (|Lwm|).
  size_t chosen_pairs = 0;
  /// Similarity (percent) between original and watermarked histograms.
  double similarity_percent = 100.0;
  /// Total token instances added plus removed.
  uint64_t total_churn = 0;
};

/// Result of watermarking a histogram (histogram-level API).
struct HistogramGenerateResult {
  Histogram watermarked;
  GenerateReport report;
};

/// Result of watermarking a full dataset (row-level API).
struct DatasetGenerateResult {
  Dataset watermarked;
  GenerateReport report;
};

/// The FreqyWM watermark generator (Algorithm I).
///
/// Typical histogram-level use:
/// \code
///   GenerateOptions opts;
///   opts.budget_percent = 2.0;
///   opts.modulus_bound = 1031;
///   opts.seed = 42;                       // deterministic for experiments
///   WatermarkGenerator gen(opts);
///   auto result = gen.GenerateFromHistogram(hist);
///   if (!result.ok()) { ... }
///   // result.value().watermarked  — the watermarked histogram
///   // result.value().report.secrets — Lsc, keep it safe
/// \endcode
///
/// The dataset-level `Generate` additionally performs the Data
/// Transformation step: it inserts new token instances at uniformly random
/// positions and removes surplus instances at random positions (random
/// placement is part of the guess-attack story, §III-B1).
class WatermarkGenerator {
 public:
  explicit WatermarkGenerator(GenerateOptions options);

  /// Watermarks a frequency histogram. Fails with:
  ///  * `InvalidArgument` for malformed options or an unsorted histogram
  ///    (validated here in every build type — `BuildEligiblePairs` on an
  ///    unsorted histogram would silently yield garbage pairs),
  ///  * `ResourceExhausted` when no pair fits the budget (e.g. uniform
  ///    frequencies — the paper's inapplicability case).
  Result<HistogramGenerateResult> GenerateFromHistogram(
      const Histogram& original) const;

  /// Exec-aware variant: when `exec` carries a thread pool, the
  /// eligible-pair scan (the O(n^2) hot path of Algorithm I) is sharded
  /// across it. Output is byte-identical to the serial overload at any
  /// thread count (DESIGN.md §8).
  Result<HistogramGenerateResult> GenerateFromHistogram(
      const Histogram& original, const ExecContext& exec) const;

  /// Watermarks a dataset end-to-end (histogram + data transformation).
  Result<DatasetGenerateResult> Generate(const Dataset& original) const;

  /// Exec-aware end-to-end variant: histogram build AND eligible-pair scan
  /// run through `exec`. Byte-identical to the serial overload.
  Result<DatasetGenerateResult> Generate(const Dataset& original,
                                         const ExecContext& exec) const;

  /// Like `Generate`, but with a caller-prebuilt histogram of `original`
  /// (e.g. the sharded parallel build in `exec/parallel_histogram.h`).
  /// Precondition: `hist` equals `Histogram::FromDataset(original)`; the
  /// output is then identical to `Generate(original)`.
  Result<DatasetGenerateResult> Generate(const Dataset& original,
                                         const Histogram& hist) const;

  /// Prebuilt-histogram variant that also shards the eligible-pair scan.
  Result<DatasetGenerateResult> Generate(const Dataset& original,
                                         const Histogram& hist,
                                         const ExecContext& exec) const;

  const GenerateOptions& options() const { return options_; }

 private:
  Status ValidateOptions() const;

  GenerateOptions options_;
};

/// Applies the exact deltas of `chosen` (indices into `eligible`) to a copy
/// of `hist`. Enforces the Ranking Constraint: pairs whose deltas would
/// break descending order at application time are skipped (possible only
/// in rare shared-gap corner cases under `EligibilityRule::kPaper`; see
/// DESIGN.md §5). Returns the watermarked histogram; `applied` receives the
/// indices actually applied.
Histogram ApplyPairDeltas(const Histogram& hist,
                          const std::vector<EligiblePair>& eligible,
                          const std::vector<size_t>& chosen,
                          std::vector<size_t>* applied);

/// Rewrites `original` so its histogram matches `target`: removes surplus
/// token instances at random positions and inserts missing ones at random
/// positions. Tokens absent from `target` are left untouched.
Dataset TransformDataset(const Dataset& original, const Histogram& target,
                         Rng& rng);

}  // namespace freqywm

#endif  // FREQYWM_CORE_WATERMARK_H_
