#include "core/detect.h"

#include <cmath>
#include <cstdlib>

#include "crypto/pair_modulus.h"

namespace freqywm {

DetectResult DetectWatermark(const Histogram& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options) {
  DetectResult out;
  if (secrets.z < 2 || secrets.pairs.empty()) return out;

  PairModulus modulus(secrets.r, secrets.z);

  for (const auto& pair : secrets.pairs) {
    auto ci = suspect.CountOf(pair.token_i);
    auto cj = suspect.CountOf(pair.token_j);
    if (!ci || !cj) continue;
    ++out.pairs_found;

    double fi = static_cast<double>(*ci);
    double fj = static_cast<double>(*cj);
    if (options.rescale_factor > 0.0) {
      fi = std::llround(fi * options.rescale_factor);
      fj = std::llround(fj * options.rescale_factor);
    }

    uint64_t s = modulus.Compute(pair.token_i, pair.token_j);
    if (s < 2) continue;  // cannot happen for honestly generated pairs

    // The difference may be negative if an attack flipped the pair's
    // order; modular arithmetic on the absolute difference is equivalent
    // under the symmetric option and the honest convention otherwise.
    int64_t diff = static_cast<int64_t>(fi) - static_cast<int64_t>(fj);
    uint64_t residue =
        static_cast<uint64_t>(((diff % static_cast<int64_t>(s)) +
                               static_cast<int64_t>(s)) %
                              static_cast<int64_t>(s));

    bool pass = residue <= options.pair_threshold;
    if (!pass && options.symmetric_residue) {
      pass = (s - residue) <= options.pair_threshold;
    }
    if (pass) ++out.pairs_verified;
  }

  out.verified_fraction =
      static_cast<double>(out.pairs_verified) /
      static_cast<double>(secrets.pairs.size());
  out.accepted = out.pairs_verified >= options.min_pairs;
  return out;
}

DetectResult DetectWatermark(const Dataset& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options) {
  return DetectWatermark(Histogram::FromDataset(suspect), secrets, options);
}

}  // namespace freqywm
