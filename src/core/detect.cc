#include "core/detect.h"

#include <cmath>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <utility>

#include "crypto/pair_modulus.h"

namespace freqywm {

PairModulusTable PairModulusTable::Build(const WatermarkSecrets& secrets) {
  PairModulusTable table;
  if (secrets.z < 2 || secrets.pairs.empty()) return table;

  PairModulus modulus(secrets.r, secrets.z);

  // Intern tokens so every distinct token derives its crypto state once:
  // an inner digest when it appears as token_j, an outer-hash midstate
  // when it appears as token_i. Honest pair lists are token-disjoint, but
  // forged/refreshed/multi-watermark keys repeat tokens freely.
  std::unordered_map<Token, uint32_t> index;
  auto intern = [&](const Token& token) -> uint32_t {
    auto [it, inserted] =
        index.emplace(token, static_cast<uint32_t>(table.tokens_.size()));
    if (inserted) table.tokens_.push_back(token);
    return it->second;
  };

  std::vector<std::optional<Sha256::Digest>> inner;
  std::vector<std::optional<PairModulus::OuterState>> outer;
  table.pairs_.reserve(secrets.pairs.size());
  for (const SecretPair& pair : secrets.pairs) {
    const uint32_t i = intern(pair.token_i);
    const uint32_t j = intern(pair.token_j);
    if (table.tokens_.size() > inner.size()) {
      inner.resize(table.tokens_.size());
      outer.resize(table.tokens_.size());
    }
    if (!outer[i]) outer[i] = modulus.OuterFor(table.tokens_[i]);
    if (!inner[j]) inner[j] = modulus.InnerDigest(table.tokens_[j]);
    table.pairs_.push_back(PairEntry{i, j, outer[i]->Reduce(*inner[j])});
  }
  table.valid_ = true;
  return table;
}

namespace {

/// The shared pair loop of every table-backed detection path. `has(t)` /
/// `count(t)` read the suspect-side presence and count of table token `t`;
/// the histogram and dense-count overloads below differ only in how those
/// lookups resolve, so their arithmetic — and therefore their output — is
/// identical by construction.
template <typename HasCount, typename CountAt>
DetectResult DetectOverTable(const PairModulusTable& table,
                             const HasCount& has, const CountAt& count,
                             const DetectOptions& options) {
  DetectResult out;
  if (!table.valid()) return out;

  for (const PairModulusTable::PairEntry& pair : table.pairs()) {
    if (!has(pair.token_i) || !has(pair.token_j)) continue;
    ++out.pairs_found;

    double fi = static_cast<double>(count(pair.token_i));
    double fj = static_cast<double>(count(pair.token_j));
    if (options.rescale_factor > 0.0) {
      fi = std::llround(fi * options.rescale_factor);
      fj = std::llround(fj * options.rescale_factor);
    }

    const uint64_t s = pair.s;
    if (s < 2) continue;  // cannot happen for honestly generated pairs

    // The difference may be negative if an attack flipped the pair's
    // order; modular arithmetic on the absolute difference is equivalent
    // under the symmetric option and the honest convention otherwise.
    int64_t diff = static_cast<int64_t>(fi) - static_cast<int64_t>(fj);
    uint64_t residue =
        static_cast<uint64_t>(((diff % static_cast<int64_t>(s)) +
                               static_cast<int64_t>(s)) %
                              static_cast<int64_t>(s));

    bool pass = residue <= options.pair_threshold;
    if (!pass && options.symmetric_residue) {
      pass = (s - residue) <= options.pair_threshold;
    }
    if (pass) ++out.pairs_verified;
  }

  out.verified_fraction =
      static_cast<double>(out.pairs_verified) /
      static_cast<double>(table.num_pairs());
  out.accepted = out.pairs_verified >= options.min_pairs;
  return out;
}

}  // namespace

DetectResult DetectWatermark(const Histogram& suspect,
                             const PairModulusTable& table,
                             const DetectOptions& options) {
  if (!table.valid()) return DetectResult{};

  // Gather each distinct token's suspect-side count once per call; the
  // pair loop is then pure arithmetic over the cached counts and the
  // table's precomputed moduli.
  const std::vector<Token>& tokens = table.tokens();
  std::vector<std::optional<uint64_t>> counts(tokens.size());
  for (size_t t = 0; t < tokens.size(); ++t) {
    counts[t] = suspect.CountOf(tokens[t]);
  }

  return DetectOverTable(
      table, [&](uint32_t t) { return counts[t].has_value(); },
      [&](uint32_t t) { return *counts[t]; }, options);
}

DetectResult DetectWatermark(const PairModulusTable& table,
                             const uint32_t* dense_ids,
                             const uint64_t* counts, const uint8_t* present,
                             const DetectOptions& options) {
  return DetectOverTable(
      table, [&](uint32_t t) { return present[dense_ids[t]] != 0; },
      [&](uint32_t t) { return counts[dense_ids[t]]; }, options);
}

DetectResult DetectWatermark(const Histogram& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options) {
  return DetectWatermark(suspect, PairModulusTable::Build(secrets), options);
}

DetectResult DetectWatermark(const Dataset& suspect,
                             const WatermarkSecrets& secrets,
                             const DetectOptions& options) {
  return DetectWatermark(Histogram::FromDataset(suspect), secrets, options);
}

DetectResult DetectWatermarkReference(const Histogram& suspect,
                                      const WatermarkSecrets& secrets,
                                      const DetectOptions& options) {
  DetectResult out;
  if (secrets.z < 2 || secrets.pairs.empty()) return out;

  PairModulus modulus(secrets.r, secrets.z);

  for (const auto& pair : secrets.pairs) {
    auto ci = suspect.CountOf(pair.token_i);
    auto cj = suspect.CountOf(pair.token_j);
    if (!ci || !cj) continue;
    ++out.pairs_found;

    double fi = static_cast<double>(*ci);
    double fj = static_cast<double>(*cj);
    if (options.rescale_factor > 0.0) {
      fi = std::llround(fi * options.rescale_factor);
      fj = std::llround(fj * options.rescale_factor);
    }

    uint64_t s = modulus.Compute(pair.token_i, pair.token_j);
    if (s < 2) continue;  // cannot happen for honestly generated pairs

    int64_t diff = static_cast<int64_t>(fi) - static_cast<int64_t>(fj);
    uint64_t residue =
        static_cast<uint64_t>(((diff % static_cast<int64_t>(s)) +
                               static_cast<int64_t>(s)) %
                              static_cast<int64_t>(s));

    bool pass = residue <= options.pair_threshold;
    if (!pass && options.symmetric_residue) {
      pass = (s - residue) <= options.pair_threshold;
    }
    if (pass) ++out.pairs_verified;
  }

  out.verified_fraction =
      static_cast<double>(out.pairs_verified) /
      static_cast<double>(secrets.pairs.size());
  out.accepted = out.pairs_verified >= options.min_pairs;
  return out;
}

}  // namespace freqywm
