#ifndef FREQYWM_CORE_OPTIONS_H_
#define FREQYWM_CORE_OPTIONS_H_

#include <cstdint>

#include "stats/similarity.h"

namespace freqywm {

/// Pair-selection strategy (§III-B2): the exact MWM+QKP reduction or one of
/// the two heuristics evaluated in Fig. 2 / Table II.
enum class SelectionStrategy {
  /// Maximum Weight Matching + equally-valued knapsack — the paper's
  /// provably optimal selection.
  kOptimal,
  /// Eligible pairs sorted by ascending remainder, taken while the budget
  /// holds and tokens are unused.
  kGreedy,
  /// Like greedy but in random order.
  kRandom,
};

/// Which eligibility test admits a pair into `Le`.
enum class EligibilityRule {
  /// The paper's rule: every boundary (upper and lower, of both tokens) must
  /// be at least ceil(s_ij / 2). Simple, but two pairs adjacent in rank can
  /// in rare corner cases jointly close a gap; the generator repairs such
  /// collisions after selection (see `ApplyPairDeltas`).
  kPaper,
  /// Conservative rule: the pair's *exact* deltas must fit within half of
  /// each shared frequency gap, which provably preserves ranking for any
  /// simultaneous set of token-disjoint pairs. Slightly smaller |Le|.
  kStrictHalfGap,
};

/// How the budget `b` limits selection.
enum class BudgetMode {
  /// Exact semantics: keep `similarity(original, watermarked) >=
  /// (100 - b)%` under `GenerateOptions::metric`, checked incrementally
  /// per candidate pair. With realistic head-heavy histograms this bound
  /// is loose — watermark churn barely moves a cosine.
  kSimilarity,
  /// The additive QKP reading of §III-B2: the summed token churn of the
  /// selected pairs may not exceed `b%` of the dataset's total row count.
  /// This is the binding-capacity regime in which the paper's Fig. 2c
  /// budget sweep has its shape.
  kAdditiveChurn,
};

/// Edge-weight formula for the MWM reduction (ablation in DESIGN.md §5).
enum class WeightFormula {
  /// w = T - ((f_i - f_j) mod s_ij), the formula printed in the paper.
  kPaperRemainder,
  /// w = T - cost, where cost is the actual token-instance churn after the
  /// wrap-around rule, i.e. min(rm, s_ij - rm).
  kEffectiveCost,
};

/// All knobs of watermark generation. Field names follow Table I.
struct GenerateOptions {
  /// Budget `b`: the watermarked histogram must stay at least
  /// (100 - budget_percent)% similar to the original.
  double budget_percent = 2.0;

  /// Modulus bound `z` (per-pair moduli are in [0, z)); must be >= 2.
  uint64_t modulus_bound = 1031;

  /// Minimum admissible per-pair modulus `s_ij`. The paper requires only
  /// `s_ij >= 2`, but tiny moduli make pairs verify *by chance* on any
  /// dataset once the detection threshold `t` approaches `s_ij` (a pair
  /// with s = 2 passes t = 1 always). Raising this floor hardens the
  /// watermark's false-positive behaviour at the cost of fewer eligible
  /// pairs; see the ablation bench and §V-B's "Effect of modulo bases".
  uint64_t min_modulus = 2;

  /// Minimum embedding cost for a pair to be selectable. Pairs whose
  /// frequencies already satisfy `(f_i - f_j) mod s_ij == 0` ("free"
  /// pairs) prove nothing about ownership — they hold on the unmodified
  /// original and would let a re-watermarking attacker's claim verify on
  /// data it never touched. The default of 1 excludes them, matching the
  /// paper's framing that the watermark is *inserted* by modulating
  /// frequencies; set 0 to reproduce the bare selection rule (ablated in
  /// the ablation bench).
  uint64_t min_pair_cost = 1;

  SelectionStrategy strategy = SelectionStrategy::kOptimal;
  BudgetMode budget_mode = BudgetMode::kSimilarity;
  EligibilityRule eligibility = EligibilityRule::kPaper;
  WeightFormula weight_formula = WeightFormula::kPaperRemainder;
  SimilarityMetric metric = SimilarityMetric::kCosine;

  /// Security parameter λ (bits of the secret R).
  size_t lambda_bits = 256;

  /// 0 → draw the secret and all random choices from the OS entropy pool;
  /// non-zero → fully deterministic run (tests, experiments).
  uint64_t seed = 0;
};

/// All knobs of watermark detection (Algorithm II).
struct DetectOptions {
  /// `t`: a stored pair is accepted as watermarked when its residue
  /// (f_i - f_j) mod s_ij is <= t.
  uint64_t pair_threshold = 0;

  /// `k`: minimum number of accepted pairs for the dataset to be declared
  /// watermarked.
  size_t min_pairs = 1;

  /// When true, a residue of s_ij - r with r <= t also passes (the
  /// "symmetric" variant from DESIGN.md §5: an attack can push a residue
  /// just below s_ij, which the one-sided paper rule misses).
  bool symmetric_residue = false;

  /// When > 0, every suspect count is multiplied by this factor before
  /// checking (the §V-B sampling-attack rescale step). 0 disables.
  double rescale_factor = 0.0;
};

}  // namespace freqywm

#endif  // FREQYWM_CORE_OPTIONS_H_
