#include "core/bucketize.h"

#include <cmath>
#include <cstdlib>

namespace freqywm {

Token BucketToken(double value, const BucketizeSpec& spec) {
  double offset = (value - spec.origin) / spec.width;
  long long bucket = offset < 0 ? 0 : static_cast<long long>(offset);
  return spec.token_prefix + std::to_string(bucket);
}

Result<Dataset> BucketizeNumericStrings(
    const std::vector<std::string>& values, const BucketizeSpec& spec) {
  if (spec.width <= 0) {
    return Status::InvalidArgument("bucket width must be positive");
  }
  std::vector<Token> tokens;
  tokens.reserve(values.size());
  for (const auto& v : values) {
    char* end = nullptr;
    double parsed = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || !std::isfinite(parsed)) {
      return Status::InvalidArgument("non-numeric value: '" + v + "'");
    }
    tokens.push_back(BucketToken(parsed, spec));
  }
  return Dataset(std::move(tokens));
}

Dataset BucketizeNumeric(const std::vector<double>& values,
                         const BucketizeSpec& spec) {
  std::vector<Token> tokens;
  tokens.reserve(values.size());
  for (double v : values) tokens.push_back(BucketToken(v, spec));
  return Dataset(std::move(tokens));
}

Result<std::pair<double, double>> BucketRange(const Token& token,
                                              const BucketizeSpec& spec) {
  if (token.rfind(spec.token_prefix, 0) != 0) {
    return Status::InvalidArgument("token does not carry bucket prefix");
  }
  std::string index_part = token.substr(spec.token_prefix.size());
  char* end = nullptr;
  long long bucket = std::strtoll(index_part.c_str(), &end, 10);
  if (end == index_part.c_str() || *end != '\0' || bucket < 0) {
    return Status::InvalidArgument("malformed bucket token: '" + token + "'");
  }
  double lo = spec.origin + static_cast<double>(bucket) * spec.width;
  return std::make_pair(lo, lo + spec.width);
}

}  // namespace freqywm
