#include "core/secrets.h"

#include <fstream>
#include <sstream>

#include "common/hex.h"
#include "common/string_util.h"

namespace freqywm {

namespace {
constexpr char kMagic[] = "freqywm-secrets v1";
}  // namespace

std::string WatermarkSecrets::Serialize() const {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "z " << z << '\n';
  out << "r " << r.ToHex() << '\n';
  out << "pairs " << pairs.size() << '\n';
  for (const auto& p : pairs) {
    out << HexEncode(reinterpret_cast<const uint8_t*>(p.token_i.data()),
                     p.token_i.size())
        << ' '
        << HexEncode(reinterpret_cast<const uint8_t*>(p.token_j.data()),
                     p.token_j.size())
        << '\n';
  }
  return out.str();
}

Result<WatermarkSecrets> WatermarkSecrets::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;

  if (!std::getline(in, line) || StripWhitespace(line) != kMagic) {
    return Status::Corruption("bad magic in secrets file");
  }

  WatermarkSecrets out;
  if (!std::getline(in, line)) return Status::Corruption("missing z line");
  {
    std::vector<std::string> parts = Split(std::string(StripWhitespace(line)), ' ');
    if (parts.size() != 2 || parts[0] != "z" || !IsInteger(parts[1])) {
      return Status::Corruption("malformed z line");
    }
    out.z = std::stoull(parts[1]);
    if (out.z < 2) return Status::Corruption("z must be >= 2");
  }
  if (!std::getline(in, line)) return Status::Corruption("missing r line");
  {
    std::vector<std::string> parts = Split(std::string(StripWhitespace(line)), ' ');
    if (parts.size() != 2 || parts[0] != "r") {
      return Status::Corruption("malformed r line");
    }
    FREQYWM_ASSIGN_OR_RETURN(out.r, WatermarkSecret::FromHex(parts[1]));
  }
  if (!std::getline(in, line)) return Status::Corruption("missing pairs line");
  size_t n_pairs = 0;
  {
    std::vector<std::string> parts = Split(std::string(StripWhitespace(line)), ' ');
    if (parts.size() != 2 || parts[0] != "pairs" || !IsInteger(parts[1])) {
      return Status::Corruption("malformed pairs line");
    }
    n_pairs = std::stoull(parts[1]);
  }
  out.pairs.reserve(n_pairs);
  for (size_t i = 0; i < n_pairs; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption("truncated pair list");
    }
    std::vector<std::string> parts = Split(std::string(StripWhitespace(line)), ' ');
    if (parts.size() != 2) return Status::Corruption("malformed pair line");
    FREQYWM_ASSIGN_OR_RETURN(std::vector<uint8_t> ti, HexDecode(parts[0]));
    FREQYWM_ASSIGN_OR_RETURN(std::vector<uint8_t> tj, HexDecode(parts[1]));
    out.pairs.push_back(SecretPair{Token(ti.begin(), ti.end()),
                                   Token(tj.begin(), tj.end())});
  }
  return out;
}

Status WatermarkSecrets::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << Serialize();
  if (!out) return Status::Internal("write failed for '" + path + "'");
  return Status::OK();
}

Result<WatermarkSecrets> WatermarkSecrets::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return Deserialize(buf.str());
}

}  // namespace freqywm
