#ifndef FREQYWM_EXEC_CANCELLATION_H_
#define FREQYWM_EXEC_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace freqywm {

/// Cooperative cancellation for long-running engine operations
/// (DESIGN.md §13). The model is the usual source/token split:
///
///   - a `CancellationSource` is held by whoever may abort the work
///     (a test, a caller-side watchdog, eventually the RPC layer);
///   - `CancellationToken` copies of it ride on `ExecContext` into the
///     engine, which polls `cancelled()` at shard boundaries.
///
/// Cancellation is a level, not an edge: once requested it stays
/// requested, every token observes it, and there is no reset. Workers
/// never receive signals or exceptions — they notice the flag at the
/// next checkpoint and unwind by returning `Status::Cancelled`. A
/// default-constructed token is "never cancelled" and costs one
/// pointer test to poll, so `ExecContext{}` aggregate initialization
/// keeps working unchanged.
class CancellationToken {
 public:
  /// A token that can never be cancelled.
  CancellationToken() = default;

  /// True once the owning source requested cancellation.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// The requesting side of a cancellation pair. Thread-safe: `Cancel` may
/// race with any number of `cancelled()` polls.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Returns a token observing this source. Tokens stay valid after the
  /// source is destroyed (they share ownership of the flag).
  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation. Idempotent.
  void Cancel() { flag_->store(true, std::memory_order_release); }

  /// True if `Cancel` has been called.
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// An absolute point on the process-wide monotonic clock by which an
/// operation must finish. Stored as raw nanoseconds so the header stays
/// free of clock reads (the single `steady_clock` call lives in
/// cancellation.cc behind the determinism allowlist); a deadline never
/// alters *what* the engine computes, only *whether* it finishes —
/// results produced before expiry are byte-identical to an undeadlined
/// run. Default-constructed is infinite ("no deadline") and `expired()`
/// then costs one bool test, no clock read.
class Deadline {
 public:
  /// No deadline; never expires.
  Deadline() = default;

  /// A deadline `timeout` from now. Non-positive timeouts yield an
  /// already-expired deadline.
  static Deadline After(std::chrono::nanoseconds timeout);

  /// A deadline that is already expired (useful in tests).
  static Deadline Expired() { return After(std::chrono::nanoseconds(0)); }

  /// True if this deadline can ever expire.
  bool finite() const { return finite_; }

  /// True once the monotonic clock passed the deadline. Always false for
  /// the infinite default.
  bool expired() const;

  /// Time remaining until expiry, clamped at zero. Returns
  /// `nanoseconds::max()` for the infinite default.
  std::chrono::nanoseconds remaining() const;

 private:
  Deadline(int64_t when_nanos, bool finite)
      : when_nanos_(when_nanos), finite_(finite) {}

  int64_t when_nanos_ = 0;
  bool finite_ = false;
};

/// The pair every cooperative checkpoint consults, bundled so shard
/// loops take one argument instead of two. `Check()` maps the first
/// observed interruption to its typed status — cancellation wins over
/// deadline expiry when both hold, so a caller that cancels an already
/// late operation sees the status matching its own action.
struct InterruptContext {
  CancellationToken cancel;
  Deadline deadline;

  /// True if either interruption source fired. The common
  /// fully-default case short-circuits without a clock read.
  bool interrupted() const {
    return cancel.cancelled() || deadline.expired();
  }

  /// OK, or the typed status of the first interruption source that
  /// fired.
  Status Check() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("operation cancelled");
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded("deadline expired");
    }
    return Status::OK();
  }
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_CANCELLATION_H_
