#ifndef FREQYWM_EXEC_HEALTH_H_
#define FREQYWM_EXEC_HEALTH_H_

#include <cstddef>
#include <cstdint>

#include "exec/admission.h"
#include "exec/circuit_breaker.h"
#include "exec/prepared_key_cache.h"

namespace freqywm {

/// Point-in-time health of one detection-engine instance (DESIGN.md §14):
/// the admission counters/gauges, the prepared-key cache counters, the
/// circuit-breaker gauges, and the session queue depth — everything an
/// operator (or the `bench_overload` load generator) needs to see
/// overload coming before it becomes memory growth. Pure data; each
/// sub-snapshot is internally consistent (taken under its owner's lock)
/// but the snapshot as a whole is not one atomic cut across components.
struct EngineHealthSnapshot {
  /// Admit/shed counters and in-flight/pending gauges
  /// (`AdmissionController::stats`).
  AdmissionStats admission;

  /// Hit/miss/eviction counters and entry gauge
  /// (`PreparedKeyCache::stats`).
  PreparedKeyCacheStats key_cache;

  /// Quarantine gauges (`KeyCircuitBreaker::stats`).
  CircuitBreakerStats breaker;

  /// Suspects enqueued and not yet drained (`Session::pending_suspects`,
  /// summed over the instance's live sessions).
  size_t session_queue_depth = 0;

  /// Sessions currently open (tenant gauge; 0 when not tenant-scoped).
  size_t open_sessions = 0;

  /// Work units turned away, all shed reasons combined.
  uint64_t total_shed() const { return admission.total_shed(); }
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_HEALTH_H_
