#ifndef FREQYWM_EXEC_HEALTH_H_
#define FREQYWM_EXEC_HEALTH_H_

#include <cstddef>
#include <cstdint>

#include "exec/admission.h"
#include "exec/circuit_breaker.h"
#include "exec/prepared_key_cache.h"

namespace freqywm {

/// WAL / checkpoint gauges of a durable tenant registry (DESIGN.md §15).
/// Pure data, filled from `DurableRegistry::stats`; lives here (not in
/// analysis/) so `EngineHealthSnapshot` stays below the analysis layer in
/// the wmlint DAG. "Checkpoint age" is deliberately clock-free — records
/// and bytes logged since the last checkpoint — so health snapshots stay
/// deterministic under the repo's no-clocks rule.
struct DurabilityGauges {
  /// False when the tenant has no `durable_dir`; every other field is
  /// then zero.
  bool durable = false;

  /// Current WAL file size (magic + frames), and the unsynced window —
  /// what a crash right now could lose under group-commit.
  uint64_t wal_size_bytes = 0;
  uint64_t wal_unsynced_records = 0;
  uint64_t wal_unsynced_bytes = 0;

  /// Clock-free checkpoint age: records/bytes appended since the WAL was
  /// last rotated over a published snapshot.
  uint64_t wal_records_since_checkpoint = 0;
  uint64_t wal_bytes_since_checkpoint = 0;

  /// Auto-checkpoints published / failed over this registry's lifetime.
  /// Failures never fail the triggering `Register` (its record is
  /// already durable in the WAL) — they surface here and the checkpoint
  /// is retried at the next threshold crossing.
  uint64_t checkpoints_published = 0;
  uint64_t checkpoint_failures = 0;

  /// What the last `Open` recovered: WAL records replayed on top of the
  /// snapshot, duplicates skipped idempotently, and whether a torn tail
  /// was truncated.
  uint64_t records_replayed_at_open = 0;
  uint64_t duplicates_skipped_at_open = 0;
  bool torn_tail_truncated_at_open = false;

  /// Parent-directory fsync warnings from checkpoint saves
  /// (`FingerprintRegistry::SaveReport`).
  uint64_t parent_dir_fsync_warnings = 0;
};

/// Point-in-time health of one detection-engine instance (DESIGN.md §14):
/// the admission counters/gauges, the prepared-key cache counters, the
/// circuit-breaker gauges, and the session queue depth — everything an
/// operator (or the `bench_overload` load generator) needs to see
/// overload coming before it becomes memory growth. Pure data; each
/// sub-snapshot is internally consistent (taken under its owner's lock)
/// but the snapshot as a whole is not one atomic cut across components.
struct EngineHealthSnapshot {
  /// Admit/shed counters and in-flight/pending gauges
  /// (`AdmissionController::stats`).
  AdmissionStats admission;

  /// Hit/miss/eviction counters and entry gauge
  /// (`PreparedKeyCache::stats`).
  PreparedKeyCacheStats key_cache;

  /// Quarantine gauges (`KeyCircuitBreaker::stats`).
  CircuitBreakerStats breaker;

  /// Suspects enqueued and not yet drained (`Session::pending_suspects`,
  /// summed over the instance's live sessions).
  size_t session_queue_depth = 0;

  /// Sessions currently open (tenant gauge; 0 when not tenant-scoped).
  size_t open_sessions = 0;

  /// WAL / checkpoint gauges (zeroed with `durable == false` when the
  /// tenant runs in-memory only).
  DurabilityGauges durability;

  /// Work units turned away, all shed reasons combined.
  uint64_t total_shed() const { return admission.total_shed(); }
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_HEALTH_H_
