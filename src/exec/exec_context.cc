#include "exec/exec_context.h"

#include "exec/parallel_histogram.h"
#include "exec/thread_pool.h"

namespace freqywm {

bool ExecContext::parallel() const {
  return pool != nullptr && pool->num_threads() > 0;
}

Histogram ExecContext::BuildHistogram(const Dataset& dataset) const {
  if (parallel()) return BuildHistogramSharded(dataset, *pool);
  return Histogram::FromDataset(dataset);
}

}  // namespace freqywm
