#include "exec/exec_context.h"

#include "exec/parallel_histogram.h"
#include "exec/thread_pool.h"

namespace freqywm {

bool ExecContext::parallel() const {
  return pool != nullptr && pool->num_threads() > 0;
}

Histogram ExecContext::BuildHistogram(const Dataset& dataset) const {
  if (parallel()) return BuildHistogramSharded(dataset, *pool);
  return Histogram::FromDataset(dataset);
}

Result<Histogram> ExecContext::BuildHistogramChecked(
    const Dataset& dataset) const {
  const InterruptContext interrupt = this->interrupt();
  FREQYWM_RETURN_NOT_OK(interrupt.Check());
  if (parallel()) {
    return BuildHistogramShardedChecked(dataset, *pool, interrupt);
  }
  // Serial path: one whole-dataset "shard", interruption checked once at
  // entry above — matching the parallel path's shard-boundary granularity.
  return Histogram::FromDataset(dataset);
}

}  // namespace freqywm
