#ifndef FREQYWM_EXEC_FAULT_INJECTION_H_
#define FREQYWM_EXEC_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace freqywm {

/// Deterministic site-keyed fault injection (DESIGN.md §13).
///
/// Production code plants named fault sites with the `FREQYWM_FAULT_POINT*`
/// macros below; a site is a stable slash-separated string like
/// `"registry_io/fsync"` or `"session/prepare"` (the catalogue lives in
/// DESIGN.md §13, and CONTRIBUTING.md describes how to add one). When the
/// `FREQYWM_FAULT_INJECTION` build knob is OFF the macros compile to
/// nothing, so release binaries carry zero overhead and zero behavioral
/// difference. When ON, each hit consults the process-global
/// `FaultInjector`:
///
///   - disarmed (the default): every check passes — a fault-injection
///     build behaves exactly like a clean one until a test arms faults;
///   - `ArmSeeded(seed, fail_one_in)`: a hit at `site` fails iff
///     `SHA-256(seed || site || hit_index [|| key])` maps into the
///     configured failure rate. Pure data, no clocks, no `rand` — the
///     same seed yields the same fault schedule on every run, thread
///     count, and platform, which is what makes sweep results
///     reproducible and keeps this file wmlint-determinism-clean;
///   - `FailNextHits(site, n)`: force the next `n` hits at one site to
///     fail, for targeted regression tests (e.g. "the second `Prepare`
///     fails").
///
/// Injected failures are always `Status::Unavailable` — the transient,
/// retryable code — with the site name in the message. Code under test
/// must treat them like any other I/O error: propagate a typed status,
/// never crash, hang, or tear shared state.
class FaultInjector {
 public:
  /// The process-wide injector consulted by every fault site.
  static FaultInjector& Global();

  /// Arms seeded pseudo-random faults at every site: a hit fails when
  /// its digest selects 1 of `fail_one_in` outcomes. `fail_one_in == 1`
  /// fails every hit; 0 disarms the seeded mode. Resets hit counters so
  /// each arming starts an independent, reproducible schedule.
  void ArmSeeded(uint64_t seed, uint32_t fail_one_in);

  /// Forces the next `count` hits at exactly `site` to fail, regardless
  /// of the seeded mode. Counts down per hit.
  void FailNextHits(std::string_view site, uint64_t count);

  /// Disables all fault decisions and clears counters/forcings. Tests
  /// call this in teardown so state never leaks across tests.
  void Disarm();

  /// The decision point behind `FREQYWM_FAULT_POINT`. OK unless this hit
  /// is selected to fail.
  Status Check(std::string_view site);

  /// Like `Check` but mixes a caller-provided stable key (a shard index,
  /// a cell index) into the digest, so the fault schedule is a function
  /// of *which* work unit hits the site rather than the order threads
  /// happen to arrive in.
  Status CheckKeyed(std::string_view site, uint64_t key);

 private:
  FaultInjector() = default;

  Status Decide(std::string_view site, bool keyed, uint64_t key)
      REQUIRES(mu_);

  // Fast path: a single relaxed load when nothing is armed.
  std::atomic<bool> armed_{false};

  Mutex mu_;
  uint64_t seed_ GUARDED_BY(mu_) = 0;
  uint32_t fail_one_in_ GUARDED_BY(mu_) = 0;
  // std::map (not unordered) so any future iteration is ordered; keys
  // are site names, values are hits observed since the last arming.
  std::map<std::string, uint64_t> hit_counts_ GUARDED_BY(mu_);
  std::map<std::string, uint64_t> forced_failures_ GUARDED_BY(mu_);
};

}  // namespace freqywm

#if defined(FREQYWM_FAULT_INJECTION)
/// Statement form: propagates an injected fault out of a Status- or
/// Result-returning function. Compiles away when the knob is off.
#define FREQYWM_FAULT_POINT(site)                                     \
  FREQYWM_RETURN_NOT_OK(::freqywm::FaultInjector::Global().Check(site))
#define FREQYWM_FAULT_POINT_KEYED(site, key)                          \
  FREQYWM_RETURN_NOT_OK(                                              \
      ::freqywm::FaultInjector::Global().CheckKeyed(site, key))
/// Expression form: yields the fault decision as a `Status` for sites
/// where failure is recorded rather than returned (per-cell isolation).
#define FREQYWM_FAULT_STATUS(site) \
  ::freqywm::FaultInjector::Global().Check(site)
#define FREQYWM_FAULT_STATUS_KEYED(site, key) \
  ::freqywm::FaultInjector::Global().CheckKeyed(site, key)
#else
#define FREQYWM_FAULT_POINT(site) \
  do {                            \
  } while (false)
#define FREQYWM_FAULT_POINT_KEYED(site, key) \
  do {                                       \
  } while (false)
#define FREQYWM_FAULT_STATUS(site) ::freqywm::Status::OK()
#define FREQYWM_FAULT_STATUS_KEYED(site, key) ::freqywm::Status::OK()
#endif  // FREQYWM_FAULT_INJECTION

#endif  // FREQYWM_EXEC_FAULT_INJECTION_H_
