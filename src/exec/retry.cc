#include "exec/retry.h"

#include <algorithm>
#include <thread>

namespace freqywm {

Status RetryWithBackoff(const RetryPolicy& policy,
                        const InterruptContext& interrupt,
                        const std::function<Status()>& op) {
  const int attempts = std::max(1, policy.max_attempts);
  std::chrono::nanoseconds backoff = policy.initial_backoff;
  for (int attempt = 0;; ++attempt) {
    FREQYWM_RETURN_NOT_OK(interrupt.Check());
    Status last = op();
    if (last.ok()) return last;
    const bool retryable = policy.retryable
                               ? policy.retryable(last)
                               : last.code() == StatusCode::kUnavailable;
    if (!retryable || attempt + 1 >= attempts) return last;
    FREQYWM_RETURN_NOT_OK(interrupt.Check());
    if (backoff.count() > 0) {
      if (policy.sleep) {
        policy.sleep(backoff);
      } else {
        std::this_thread::sleep_for(backoff);
      }
    }
    // Grow the backoff, saturating well below int64 nanoseconds (~292
    // years) so a large multiplier can never overflow into UB.
    constexpr double kMaxBackoffNanos = 9.0e18;
    const double next =
        static_cast<double>(backoff.count()) * policy.multiplier;
    if (next >= kMaxBackoffNanos) {
      backoff = std::chrono::nanoseconds(static_cast<int64_t>(9.0e18));
    } else if (next > 0) {
      backoff = std::chrono::nanoseconds(static_cast<int64_t>(next));
    }
  }
}

}  // namespace freqywm
