#include "exec/retry.h"

#include <algorithm>
#include <thread>

#include "crypto/sha256.h"

namespace freqywm {
namespace {

void AppendU64Le(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

double RetryJitterFactor(const RetryPolicy& policy, int attempt) {
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter == 0.0) return 1.0;
  // Same material shape as the fault injector's decision digest: pure
  // data in, so the factor for (seed, site, attempt) is identical on
  // every run, platform and thread count.
  std::string material;
  material.reserve(policy.jitter_site.size() + 16);
  AppendU64Le(material, policy.jitter_seed);
  material.append(policy.jitter_site);
  AppendU64Le(material, static_cast<uint64_t>(attempt));
  const Sha256::Digest digest = Sha256::Hash(material);
  // u uniform in [0, 1): first 8 digest bytes over 2^64.
  const double u = static_cast<double>(DigestPrefixU64(digest)) /
                   18446744073709551616.0;  // 2^64
  return 1.0 - jitter * u;
}

Status RetryWithBackoff(const RetryPolicy& policy,
                        const InterruptContext& interrupt,
                        const std::function<Status()>& op) {
  const int attempts = std::max(1, policy.max_attempts);
  std::chrono::nanoseconds backoff = policy.initial_backoff;
  for (int attempt = 0;; ++attempt) {
    FREQYWM_RETURN_NOT_OK(interrupt.Check());
    Status last = op();
    if (last.ok()) return last;
    const bool retryable = policy.retryable
                               ? policy.retryable(last)
                               : last.code() == StatusCode::kUnavailable;
    if (!retryable || attempt + 1 >= attempts) return last;
    FREQYWM_RETURN_NOT_OK(interrupt.Check());
    if (backoff.count() > 0) {
      // Scale this sleep (only) by the deterministic jitter factor; the
      // un-jittered `backoff` keeps compounding so jitter never changes
      // the exponential envelope, only where each sleep lands within
      // [1 - jitter, 1] of it.
      const double factor = RetryJitterFactor(policy, attempt);
      const auto jittered = std::chrono::nanoseconds(static_cast<int64_t>(
          static_cast<double>(backoff.count()) * factor));
      if (policy.sleep) {
        policy.sleep(jittered);
      } else {
        std::this_thread::sleep_for(jittered);
      }
    }
    // Grow the backoff, saturating well below int64 nanoseconds (~292
    // years) so a large multiplier can never overflow into UB.
    constexpr double kMaxBackoffNanos = 9.0e18;
    const double next =
        static_cast<double>(backoff.count()) * policy.multiplier;
    if (next >= kMaxBackoffNanos) {
      backoff = std::chrono::nanoseconds(static_cast<int64_t>(9.0e18));
    } else if (next > 0) {
      backoff = std::chrono::nanoseconds(static_cast<int64_t>(next));
    }
  }
}

}  // namespace freqywm
