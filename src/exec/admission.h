#ifndef FREQYWM_EXEC_ADMISSION_H_
#define FREQYWM_EXEC_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/cancellation.h"

namespace freqywm {

/// Configuration of an `AdmissionController` (DESIGN.md §14). Every limit
/// defaults to 0 = "unlimited", so a default-constructed controller admits
/// everything — overload protection is strictly opt-in and the unthrottled
/// paths stay byte-identical.
struct AdmissionOptions {
  /// Maximum work units (suspects) admitted but not yet released. 0 =
  /// unlimited. This is the semaphore bound on in-flight work: the
  /// product of this and per-suspect memory is the engine's working-set
  /// ceiling.
  size_t max_in_flight = 0;

  /// Maximum work units that may sit in blocking `Admit` calls waiting
  /// for capacity. 0 = unlimited. This is the bounded pending-work
  /// budget: once the waiting room is full, further callers are shed
  /// immediately with `kResourceExhausted` instead of queueing without
  /// bound — overload degrades to typed sheds, never to memory growth.
  size_t max_pending = 0;

  /// Token-bucket rate limit in work units per second. 0 = unlimited
  /// rate. Tokens refill continuously up to `burst`.
  double rate_per_unit_time = 0;

  /// Bucket capacity in work units. <= 0 with a positive rate defaults
  /// to one second's worth of tokens (`rate_per_unit_time`, floor 1).
  double burst = 0;

  /// Injectable monotonic clock in nanoseconds — the testing seam, like
  /// `RetryPolicy::sleep`: tests drive a fake clock so token-bucket
  /// decisions are exact and instant. Null → the real monotonic clock
  /// (the single clock read lives in admission.cc behind the
  /// determinism allowlist; admission never alters *what* admitted work
  /// computes, only *whether* work is admitted).
  std::function<int64_t()> clock_nanos;
};

/// Why shed requests were shed, plus the admit counters — the
/// admission half of the engine health snapshot (exec/health.h).
/// Monotonic since construction; gauges (`in_flight`, `pending`) are
/// instantaneous.
struct AdmissionStats {
  /// Work units admitted (sum over all successful Try/Admit calls).
  uint64_t admitted = 0;
  /// Requests shed because the token bucket was empty.
  uint64_t shed_rate = 0;
  /// Requests shed because `max_in_flight` or `max_pending` was reached.
  uint64_t shed_capacity = 0;
  /// Requests shed because their deadline would expire while queued.
  uint64_t shed_deadline = 0;
  /// Work units currently admitted and not yet released.
  size_t in_flight = 0;
  /// Work units currently waiting inside blocking `Admit` calls.
  size_t pending = 0;

  uint64_t total_shed() const {
    return shed_rate + shed_capacity + shed_deadline;
  }
};

/// The admission/backpressure layer between callers and the detection
/// engine (DESIGN.md §14): a semaphore bound on in-flight work, a
/// deterministic token-bucket rate limiter, a bounded waiting-room
/// budget, and deadline-aware admission. Work that is not admitted is
/// *shed* with a typed `kResourceExhausted` status — the graceful
/// degradation contract: under any offered load, memory stays bounded by
/// `max_in_flight + max_pending` units and every rejected caller learns
/// why. Admission never touches admitted work's bytes: verdicts of
/// admitted suspects are identical to an unthrottled run at any thread
/// count (enforced by tests/exec/admission_test.cc and bench_overload).
///
/// Thread-safe: any number of producers may `TryAdmit`/`Admit`
/// concurrently while permits release on other threads.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII lease over admitted work units: releasing (destruction or an
  /// explicit `Release`) returns the units to the in-flight semaphore
  /// and wakes waiting `Admit` callers. Move-only; the controller must
  /// outlive every permit it issued.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept
        : controller_(std::exchange(other.controller_, nullptr)),
          units_(std::exchange(other.units_, 0)) {}
    Permit& operator=(Permit&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = std::exchange(other.controller_, nullptr);
        units_ = std::exchange(other.units_, 0);
      }
      return *this;
    }
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;
    ~Permit() { Release(); }

    /// Returns all units now. Idempotent.
    void Release();

    /// Returns `units` of the lease early (e.g. per drained suspect),
    /// clamped to what the permit still holds.
    void ReleasePartial(size_t units);

    size_t units() const { return units_; }
    bool active() const { return controller_ != nullptr && units_ > 0; }

   private:
    friend class AdmissionController;
    Permit(AdmissionController* controller, size_t units)
        : controller_(controller), units_(units) {}

    AdmissionController* controller_ = nullptr;
    size_t units_ = 0;
  };

  /// Non-blocking admission of `units` work units. Sheds immediately —
  /// typed `kResourceExhausted` — when the token bucket lacks the
  /// tokens, the in-flight semaphore is full, or `deadline` is already
  /// expired (work that would be dead on arrival is never admitted).
  /// `units == 0` is an error (`kInvalidArgument`): an empty admission
  /// would leak a free pass through every limit.
  Result<Permit> TryAdmit(size_t units, const Deadline& deadline = {});

  /// Blocking admission: waits for bucket tokens and in-flight capacity,
  /// honoring `interrupt` (checked once per bounded wait quantum).
  /// Sheds without waiting — typed `kResourceExhausted` — when:
  ///   - the waiting room is full (`max_pending` would be exceeded);
  ///   - `units` can never be admitted (`units > max_in_flight`, or
  ///     `units > burst` with a rate configured);
  ///   - the caller's deadline would expire while queued: the token
  ///     bucket's time-to-`units` exceeds `interrupt.deadline.remaining()`
  ///     — rejected up front instead of timing out after the wait.
  /// Cancellation returns `kCancelled`; a deadline that expires while
  /// waiting on the semaphore (not predictable up front) returns
  /// `kResourceExhausted` too — the work was never admitted, so the
  /// shed taxonomy (DESIGN.md §14) owns the status.
  Result<Permit> Admit(size_t units, const InterruptContext& interrupt);

  /// Point-in-time counters/gauges (one lock, no clock read).
  AdmissionStats stats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  /// Refreshes the token bucket to `now` and returns the current level.
  double RefillLocked(int64_t now) REQUIRES(mu_);
  /// Nanoseconds until the bucket holds `units` tokens (0 when it
  /// already does, or when no rate limit is configured).
  int64_t NanosUntilTokensLocked(double units, int64_t now) REQUIRES(mu_);
  int64_t Now() const;
  void Release(size_t units);

  const AdmissionOptions options_;
  const double effective_burst_;

  mutable Mutex mu_;
  mutable CondVar released_cv_;
  double tokens_ GUARDED_BY(mu_);
  int64_t last_refill_nanos_ GUARDED_BY(mu_) = 0;
  bool bucket_initialized_ GUARDED_BY(mu_) = false;
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  size_t pending_ GUARDED_BY(mu_) = 0;
  uint64_t admitted_ GUARDED_BY(mu_) = 0;
  uint64_t shed_rate_ GUARDED_BY(mu_) = 0;
  uint64_t shed_capacity_ GUARDED_BY(mu_) = 0;
  uint64_t shed_deadline_ GUARDED_BY(mu_) = 0;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_ADMISSION_H_
