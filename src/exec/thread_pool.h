#ifndef FREQYWM_EXEC_THREAD_POOL_H_
#define FREQYWM_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/cancellation.h"

namespace freqywm {

/// A small work-stealing thread pool — the execution substrate of the batch
/// detection engine and the sharded histogram build (DESIGN.md §7).
///
/// Each worker owns a deque; `Submit` distributes tasks round-robin, a
/// worker pops its own deque LIFO (cache-warm) and steals FIFO from the
/// others when empty. `ParallelFor` is the main entry point for data
/// parallelism: the calling thread participates in the loop (claiming
/// indices from the same atomic counter as the workers), so a `ParallelFor`
/// issued from inside a pool task cannot deadlock even when every worker is
/// busy — the caller simply drains the remaining indices itself.
///
/// Tasks must not throw; error handling in this codebase is `Status`-based
/// and parallel bodies communicate failure through their outputs.
///
/// Lock discipline (machine-checked by the CI thread-safety job,
/// DESIGN.md §11): each `TaskQueue::tasks` deque is guarded by its own
/// `TaskQueue::mutex`; `wake_mutex_` guards no data — it exists to pair
/// `wake_cv_` notifies with the wait predicate over the `pending_` and
/// `stop_` atomics, so a submit between "queues empty" and "worker asleep"
/// is never lost.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 → `HardwareThreads()`).
  explicit ThreadPool(size_t num_threads);

  /// Drains all submitted tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (excluding callers helping in `ParallelFor`).
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Runs `body(i)` for every `i` in `[0, n)` across the pool and the
  /// calling thread, returning when all `n` iterations completed. Iteration
  /// order across threads is unspecified; callers that need deterministic
  /// output write results indexed by `i`.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// The fallible, interruptible sibling of `ParallelFor` (DESIGN.md §13):
  /// `body(i)` returns a `Status`, and `interrupt` is polled at every shard
  /// boundary. On the first non-OK body status the loop stops claiming new
  /// indices; already-running iterations complete, then the call returns
  /// the error of the *smallest failing index* — deterministic regardless
  /// of thread count, because index claims form a contiguous prefix, so
  /// the smallest failing index always executes before any stop can mask
  /// it. When the loop is interrupted (cancelled / deadline expired)
  /// before a body error, the matching `kCancelled`/`kDeadlineExceeded`
  /// status is returned instead; body errors win over interruption.
  /// Never hangs: skipped claims count toward completion, so the caller's
  /// wait is bounded by the running iterations. On any non-OK return the
  /// outputs written by `body` are partial and must be discarded.
  [[nodiscard]] Status ParallelForChecked(
      size_t n, const InterruptContext& interrupt,
      const std::function<Status(size_t)>& body);

  /// `std::thread::hardware_concurrency()` with a floor of 1.
  static size_t HardwareThreads();

 private:
  struct TaskQueue {
    Mutex mutex;
    std::deque<std::function<void()>> tasks GUARDED_BY(mutex);
  };

  void WorkerLoop(size_t self);

  /// Pops one task (own queue LIFO, then steals FIFO) and runs it.
  /// Returns false when every queue was empty.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<TaskQueue>> queues_;
  std::vector<std::thread> workers_;

  /// Tasks pushed but not yet popped; the wait predicate reads it so a
  /// submit between "queues empty" and "worker asleep" is never lost.
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
  Mutex wake_mutex_;
  CondVar wake_cv_;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_THREAD_POOL_H_
