#ifndef FREQYWM_EXEC_PREPARED_KEY_CACHE_H_
#define FREQYWM_EXEC_PREPARED_KEY_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/scheme.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace freqywm {

/// Counters of a `PreparedKeyCache` (monotonic since construction or the
/// last `Clear`). `hits + misses` equals the number of lookups (`Get` and
/// `GetOrPrepare` both count).
struct PreparedKeyCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t size = 0;
};

/// A thread-safe, LRU-bounded cache of `PreparedKey` state shared across
/// detection runs (DESIGN.md §10).
///
/// PR 3 made key preparation cheap *within* one `BatchDetector::Run` (the
/// key is parsed and its moduli derived once per run); this cache makes it
/// cheap across a key's *lifetime*: the marketplace front end traces every
/// surfaced suspect batch against the same escrowed buyer keys, and with a
/// shared cache each key pays `WatermarkScheme::Prepare` once, not once
/// per batch. `BatchDetector::Session`, `FingerprintRegistry::
/// TraceSuspects` and any future tenant can share one instance.
///
/// Keying: entries are indexed by `Fingerprint(key)` — a SHA-256 over the
/// scheme tag and payload with length framing, so distinct (scheme,
/// payload) pairs never collide by concatenation. Correctness rests on the
/// `Prepare` contract (api/scheme.h): prepared state is a pure function of
/// the `SchemeKey` — never of the preparing scheme instance's embed
/// configuration — and is immutable and thread-safe after construction.
/// Every in-tree scheme satisfies this (Prepare only parses the payload);
/// out-of-tree schemes joining the factory must too.
///
/// Eviction: strict LRU over a fixed entry capacity. Entries are handed
/// out as `shared_ptr<const PreparedKey>`, so eviction never invalidates a
/// borrower — an evicted entry lives until its last user drops it, and a
/// session that resolved its keys up front is immune to later evictions.
/// Cache state (cold, warm, mid-eviction) never changes detection output,
/// only who pays the preparation cost (enforced by
/// `tests/exec/batch_session_test.cc`).
///
/// Concurrency: lookups and LRU maintenance run under one mutex;
/// `Prepare` itself runs *outside* the lock, so a slow preparation never
/// blocks concurrent hits. Two threads missing the same key concurrently
/// may both prepare it; the first insert wins and both return the winning
/// entry (TSan-covered by `tests/exec/prepared_key_cache_test.cc`).
class PreparedKeyCache {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  /// A cache holding at most `capacity` prepared keys (floor of 1).
  explicit PreparedKeyCache(size_t capacity = kDefaultCapacity);

  PreparedKeyCache(const PreparedKeyCache&) = delete;
  PreparedKeyCache& operator=(const PreparedKeyCache&) = delete;

  /// The cache identity of `key`: SHA-256 over
  /// `len(scheme) || scheme || payload` (length framing keeps
  /// ("ab", "c") and ("a", "bc") distinct). Raw 32-byte digest.
  static std::string Fingerprint(const SchemeKey& key);

  /// The cached entry for `key`, refreshing its recency, or nullptr on a
  /// miss. Never prepares.
  std::shared_ptr<const PreparedKey> Get(const SchemeKey& key);

  /// The cached entry for `key`, preparing and inserting it via
  /// `scheme.Prepare(key)` on a miss. Preparation runs outside the cache
  /// lock; on a concurrent double-miss the first inserted entry wins and
  /// is returned to both callers. Never returns nullptr.
  std::shared_ptr<const PreparedKey> GetOrPrepare(
      const WatermarkScheme& scheme, const SchemeKey& key);

  /// The fallible form of `GetOrPrepare` (DESIGN.md §13): preparation
  /// failures (today only injected at the `prepared_key_cache/prepare`
  /// fault site; tomorrow any out-of-tree scheme whose `Prepare` touches
  /// I/O) surface as a typed error instead of a cache entry. A failed
  /// preparation inserts NOTHING — no tombstone, no negative entry — so
  /// a later call for the same key retries from scratch and a transient
  /// failure never poisons the key for other tenants (regression-tested
  /// under TSan by tests/exec/fault_injection_test.cc). On success the
  /// returned entry is never null.
  Result<std::shared_ptr<const PreparedKey>> TryGetOrPrepare(
      const WatermarkScheme& scheme, const SchemeKey& key);

  /// Drops every entry and resets the counters. Borrowed `shared_ptr`s
  /// stay valid.
  void Clear();

  size_t capacity() const { return capacity_; }
  size_t size() const;
  PreparedKeyCacheStats stats() const;

 private:
  /// LRU order: front = most recently used. The map indexes into the list.
  using Entry = std::pair<std::string, std::shared_ptr<const PreparedKey>>;

  /// Looks up `fingerprint` and, on a hit, counts it and refreshes its
  /// recency; returns nullptr on a miss (counted by the caller, which
  /// knows whether the miss leads to an insert or a prepared retry).
  std::shared_ptr<const PreparedKey> HitLocked(const std::string& fingerprint)
      REQUIRES(mutex_);

  /// Evicts LRU entries until `lru_.size() <= capacity_`.
  void EvictExcessLocked() REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      GUARDED_BY(mutex_);
  const size_t capacity_;
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_PREPARED_KEY_CACHE_H_
