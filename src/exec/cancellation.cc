#include "exec/cancellation.h"

#include <limits>

namespace freqywm {
namespace {

// The only monotonic-clock read in the library (determinism allowlist:
// deadlines gate *whether* work finishes, never *what* it computes).
int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Deadline Deadline::After(std::chrono::nanoseconds timeout) {
  const int64_t now = NowNanos();
  const int64_t ticks = timeout.count();
  // Saturate instead of overflowing for absurd timeouts.
  const int64_t when =
      (ticks > std::numeric_limits<int64_t>::max() - now)
          ? std::numeric_limits<int64_t>::max()
          : now + (ticks > 0 ? ticks : 0);
  return Deadline(when, /*finite=*/true);
}

bool Deadline::expired() const {
  if (!finite_) return false;
  return NowNanos() >= when_nanos_;
}

std::chrono::nanoseconds Deadline::remaining() const {
  if (!finite_) return std::chrono::nanoseconds::max();
  const int64_t left = when_nanos_ - NowNanos();
  return std::chrono::nanoseconds(left > 0 ? left : 0);
}

}  // namespace freqywm
