#include "exec/parallel_histogram.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <utility>
#include <vector>

namespace freqywm {

namespace {

/// Below this row count the per-task maps cost more than they save.
constexpr size_t kMinRowsPerChunk = 1 << 14;

}  // namespace

Histogram BuildHistogramSharded(const Dataset& dataset, ThreadPool& pool) {
  const size_t n = dataset.size();
  const size_t max_parallelism = pool.num_threads() + 1;  // caller helps
  const size_t chunks =
      std::min(max_parallelism, std::max<size_t>(1, n / kMinRowsPerChunk));
  if (chunks <= 1) return Histogram::FromDataset(dataset);
  const size_t num_shards = chunks;

  // Phase 1: one counting task per contiguous chunk (a single hash per
  // row, exactly like the serial build), then the chunk's *distinct*
  // entries are dealt into per-shard buckets by token hash so phase 2 can
  // merge shards independently.
  std::vector<std::vector<std::vector<HistogramEntry>>> buckets(chunks);
  pool.ParallelFor(chunks, [&](size_t c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    std::unordered_map<Token, uint64_t> counts;
    for (size_t i = begin; i < end; ++i) ++counts[dataset[i]];
    std::vector<std::vector<HistogramEntry>> dealt(num_shards);
    std::hash<Token> hasher;
    for (auto& [token, count] : counts) {
      dealt[hasher(token) % num_shards].push_back(
          HistogramEntry{token, count});
    }
    buckets[c] = std::move(dealt);
  });

  // Phase 2: merge each shard across chunks. Shards hold disjoint token
  // sets, so the merged maps concatenate without duplicates.
  std::vector<std::vector<HistogramEntry>> shard_entries(num_shards);
  pool.ParallelFor(num_shards, [&](size_t s) {
    std::unordered_map<Token, uint64_t> merged;
    for (auto& per_chunk : buckets) {
      for (HistogramEntry& e : per_chunk[s]) merged[e.token] += e.count;
    }
    std::vector<HistogramEntry>& out = shard_entries[s];
    out.reserve(merged.size());
    for (auto& [token, count] : merged) {
      out.push_back(HistogramEntry{token, count});
    }
  });

  // Phase 3: concatenate and let the histogram's canonical constructor
  // sort descending (deterministic tie-break), rebuilding ranks exactly
  // as the serial build would.
  size_t distinct = 0;
  for (const auto& entries : shard_entries) distinct += entries.size();
  std::vector<HistogramEntry> all;
  all.reserve(distinct);
  for (auto& entries : shard_entries) {
    std::move(entries.begin(), entries.end(), std::back_inserter(all));
  }
  Result<Histogram> hist = Histogram::FromCounts(std::move(all));
  // Shards are token-disjoint and counts positive, so this cannot fail;
  // keep a serial fallback rather than asserting in release builds.
  if (!hist.ok()) return Histogram::FromDataset(dataset);
  return std::move(hist).value();
}

Result<Histogram> BuildHistogramShardedChecked(
    const Dataset& dataset, ThreadPool& pool,
    const InterruptContext& interrupt) {
  FREQYWM_RETURN_NOT_OK(interrupt.Check());
  const size_t n = dataset.size();
  const size_t max_parallelism = pool.num_threads() + 1;  // caller helps
  const size_t chunks =
      std::min(max_parallelism, std::max<size_t>(1, n / kMinRowsPerChunk));
  if (chunks <= 1) return Histogram::FromDataset(dataset);
  const size_t num_shards = chunks;

  // Same three phases as the unchecked build; each parallel phase runs
  // through ParallelForChecked so a cancellation or deadline expiry is
  // noticed within one chunk/shard of work.
  std::vector<std::vector<std::vector<HistogramEntry>>> buckets(chunks);
  FREQYWM_RETURN_NOT_OK(pool.ParallelForChecked(
      chunks, interrupt, [&](size_t c) {
        const size_t begin = n * c / chunks;
        const size_t end = n * (c + 1) / chunks;
        std::unordered_map<Token, uint64_t> counts;
        for (size_t i = begin; i < end; ++i) ++counts[dataset[i]];
        std::vector<std::vector<HistogramEntry>> dealt(num_shards);
        std::hash<Token> hasher;
        for (auto& [token, count] : counts) {
          dealt[hasher(token) % num_shards].push_back(
              HistogramEntry{token, count});
        }
        buckets[c] = std::move(dealt);
        return Status::OK();
      }));

  std::vector<std::vector<HistogramEntry>> shard_entries(num_shards);
  FREQYWM_RETURN_NOT_OK(pool.ParallelForChecked(
      num_shards, interrupt, [&](size_t s) {
        std::unordered_map<Token, uint64_t> merged;
        for (auto& per_chunk : buckets) {
          for (HistogramEntry& e : per_chunk[s]) merged[e.token] += e.count;
        }
        std::vector<HistogramEntry>& out = shard_entries[s];
        out.reserve(merged.size());
        for (auto& [token, count] : merged) {
          out.push_back(HistogramEntry{token, count});
        }
        return Status::OK();
      }));

  size_t distinct = 0;
  for (const auto& entries : shard_entries) distinct += entries.size();
  std::vector<HistogramEntry> all;
  all.reserve(distinct);
  for (auto& entries : shard_entries) {
    std::move(entries.begin(), entries.end(), std::back_inserter(all));
  }
  Result<Histogram> hist = Histogram::FromCounts(std::move(all));
  if (!hist.ok()) return Histogram::FromDataset(dataset);
  return std::move(hist).value();
}

}  // namespace freqywm
