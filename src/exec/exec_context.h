#ifndef FREQYWM_EXEC_EXEC_CONTEXT_H_
#define FREQYWM_EXEC_EXEC_CONTEXT_H_

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "exec/cancellation.h"

namespace freqywm {

class ThreadPool;

/// Execution resources threaded through dataset-level API calls
/// (DESIGN.md §7). A default-constructed context means "serial"; attach a
/// `ThreadPool` to opt into the sharded parallel paths. The context never
/// owns the pool.
///
/// Determinism contract: every operation taking an `ExecContext` produces
/// output identical to its serial counterpart — parallelism changes wall
/// clock, never bytes. The interruption members refine, not relax, that
/// contract: a run that completes before cancellation/deadline fired is
/// byte-identical to an uninterrupted run; an interrupted run returns a
/// typed `kCancelled`/`kDeadlineExceeded` status and its partial output
/// must be discarded (DESIGN.md §13).
struct ExecContext {
  /// Serial context: no pool, never interrupted.
  ExecContext() = default;

  /// A context running on `pool` (null → serial). Implicit so the
  /// established `ExecContext{&pool}` spelling keeps working now that
  /// the struct has interruption members (aggregate init would warn on
  /// the omitted fields).
  ExecContext(ThreadPool* pool_in) : pool(pool_in) {}  // NOLINT

  ThreadPool* pool = nullptr;

  /// Cooperative cancellation; default token is never cancelled.
  CancellationToken cancel;

  /// Monotonic completion deadline; default is infinite.
  Deadline deadline;

  /// True when a pool with at least one worker is attached.
  bool parallel() const;

  /// True once cancellation was requested or the deadline expired.
  bool interrupted() const { return interrupt().interrupted(); }

  /// OK, or the typed status of the first interruption source that fired
  /// (cancellation wins over deadline). Engine loops call this at shard /
  /// generation boundaries.
  Status CheckInterrupted() const { return interrupt().Check(); }

  /// The interruption pair as the bundled form shard loops consume.
  InterruptContext interrupt() const { return InterruptContext{cancel, deadline}; }

  /// Builds the frequency histogram of `dataset`: sharded across the pool
  /// when `parallel()`, `Histogram::FromDataset` otherwise. Both paths
  /// return the identical histogram. Ignores interruption (kept for the
  /// pre-PR-8 callers that cannot fail); new code uses the checked form.
  Histogram BuildHistogram(const Dataset& dataset) const;

  /// Like `BuildHistogram` but honors cancellation/deadline at shard
  /// boundaries, returning `kCancelled`/`kDeadlineExceeded` instead of a
  /// partial histogram.
  Result<Histogram> BuildHistogramChecked(const Dataset& dataset) const;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_EXEC_CONTEXT_H_
