#ifndef FREQYWM_EXEC_EXEC_CONTEXT_H_
#define FREQYWM_EXEC_EXEC_CONTEXT_H_

#include "data/dataset.h"
#include "data/histogram.h"

namespace freqywm {

class ThreadPool;

/// Execution resources threaded through dataset-level API calls
/// (DESIGN.md §7). A default-constructed context means "serial"; attach a
/// `ThreadPool` to opt into the sharded parallel paths. The context never
/// owns the pool.
///
/// Determinism contract: every operation taking an `ExecContext` produces
/// output identical to its serial counterpart — parallelism changes wall
/// clock, never bytes.
struct ExecContext {
  ThreadPool* pool = nullptr;

  /// True when a pool with at least one worker is attached.
  bool parallel() const;

  /// Builds the frequency histogram of `dataset`: sharded across the pool
  /// when `parallel()`, `Histogram::FromDataset` otherwise. Both paths
  /// return the identical histogram.
  Histogram BuildHistogram(const Dataset& dataset) const;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_EXEC_CONTEXT_H_
