#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/mutex.h"
#include "exec/fault_injection.h"

namespace freqywm {

namespace {

/// Shared state of one `ParallelFor` call. Lives in a `shared_ptr` captured
/// by the helper tasks: a helper that is only dequeued after the loop
/// finished claims an index >= n and exits without touching `body`, so the
/// caller can return as soon as all `n` iterations are done — it never
/// waits for stragglers that hold no work. The mutex guards no data (the
/// counters are atomics); it pairs the completion notify with the caller's
/// wait predicate.
struct ForState {
  size_t n = 0;
  const std::function<void(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  Mutex mutex;
  CondVar cv;
};

/// Claims indices until exhausted. Whoever completes the last iteration
/// wakes the caller; the notify happens with the mutex held so the wakeup
/// cannot race past the caller's predicate check.
void RunForChunk(ForState& state) {
  while (true) {
    size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.n) return;
    (*state.body)(i);
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 == state.n) {
      MutexLock lock(state.mutex);
      state.cv.NotifyAll();
    }
  }
}

/// Shared state of one `ParallelForChecked` call. Same lifecycle as
/// `ForState`; additionally carries the stop latch and the first-error /
/// interruption record. `stop` makes claims cheap to drain after a
/// failure: a claimer that observes it skips the body but still counts
/// its index toward `done`, so the caller's completion wait stays bounded.
struct CheckedForState {
  CheckedForState(size_t n_in, const std::function<Status(size_t)>* body_in,
                  const InterruptContext* interrupt_in)
      : n(n_in), body(body_in), interrupt(interrupt_in) {}

  const size_t n;
  const std::function<Status(size_t)>* body;
  const InterruptContext* interrupt;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::atomic<bool> stop{false};
  Mutex mutex;
  CondVar cv;
  bool has_error GUARDED_BY(mutex) = false;
  size_t error_index GUARDED_BY(mutex) = 0;
  Status error GUARDED_BY(mutex);
  bool interrupted GUARDED_BY(mutex) = false;
  Status interrupt_status GUARDED_BY(mutex);
};

/// Claims indices until exhausted or stopped; mirrors `RunForChunk` with
/// the error/interrupt bookkeeping added.
void RunCheckedForChunk(CheckedForState& state) {
  while (true) {
    const size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.n) return;
    if (!state.stop.load(std::memory_order_acquire)) {
      Status st = state.interrupt->Check();
      const bool was_interrupt = !st.ok();
      if (st.ok()) {
        st = FREQYWM_FAULT_STATUS_KEYED("thread_pool/shard",
                                        static_cast<uint64_t>(i));
        if (st.ok()) st = (*state.body)(i);
      }
      if (!st.ok()) {
        MutexLock lock(state.mutex);
        if (was_interrupt) {
          if (!state.interrupted) {
            state.interrupted = true;
            state.interrupt_status = st;
          }
        } else if (!state.has_error || i < state.error_index) {
          state.has_error = true;
          state.error_index = i;
          state.error = std::move(st);
        }
        state.stop.store(true, std::memory_order_release);
      }
    }
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 == state.n) {
      MutexLock lock(state.mutex);
      state.cv.NotifyAll();
    }
  }
}

}  // namespace

size_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    TaskQueue& queue = *queues_[q];
    MutexLock lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: pairs the notify with the wait predicate so
    // a worker observing pending_ == 0 is guaranteed to see the wakeup.
    MutexLock lock(wake_mutex_);
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    // Own queue: newest first (LIFO) — the classic work-stealing split.
    TaskQueue& own = *queues_[self];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    // Steal oldest-first from the other queues.
    for (size_t k = 1; k < queues_.size() && !task; ++k) {
      TaskQueue& victim = *queues_[(self + k) % queues_.size()];
      MutexLock lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (RunOneTask(self)) continue;
    MutexLock lock(wake_mutex_);
    wake_cv_.Wait(wake_mutex_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = &body;
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { RunForChunk(*state); });
  }
  RunForChunk(*state);  // the caller is a full participant
  MutexLock lock(state->mutex);
  state->cv.Wait(state->mutex, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

Status ThreadPool::ParallelForChecked(
    size_t n, const InterruptContext& interrupt,
    const std::function<Status(size_t)>& body) {
  FREQYWM_RETURN_NOT_OK(interrupt.Check());
  if (n == 0) return Status::OK();
  if (n == 1 || workers_.empty()) {
    // Serial path: in-order execution makes "smallest failing index"
    // trivially the first failure; interruption is still polled per index
    // so a serial context degrades exactly like a single-shard parallel
    // one.
    for (size_t i = 0; i < n; ++i) {
      FREQYWM_RETURN_NOT_OK(interrupt.Check());
      FREQYWM_FAULT_POINT_KEYED("thread_pool/shard",
                                static_cast<uint64_t>(i));
      FREQYWM_RETURN_NOT_OK(body(i));
    }
    return Status::OK();
  }
  auto state = std::make_shared<CheckedForState>(n, &body, &interrupt);
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { RunCheckedForChunk(*state); });
  }
  RunCheckedForChunk(*state);  // the caller is a full participant
  MutexLock lock(state->mutex);
  state->cv.Wait(state->mutex, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->has_error) return state->error;
  if (state->interrupted) return state->interrupt_status;
  return Status::OK();
}

}  // namespace freqywm
