#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

#include "common/mutex.h"

namespace freqywm {

namespace {

/// Shared state of one `ParallelFor` call. Lives in a `shared_ptr` captured
/// by the helper tasks: a helper that is only dequeued after the loop
/// finished claims an index >= n and exits without touching `body`, so the
/// caller can return as soon as all `n` iterations are done — it never
/// waits for stragglers that hold no work. The mutex guards no data (the
/// counters are atomics); it pairs the completion notify with the caller's
/// wait predicate.
struct ForState {
  size_t n = 0;
  const std::function<void(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  Mutex mutex;
  CondVar cv;
};

/// Claims indices until exhausted. Whoever completes the last iteration
/// wakes the caller; the notify happens with the mutex held so the wakeup
/// cannot race past the caller's predicate check.
void RunForChunk(ForState& state) {
  while (true) {
    size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.n) return;
    (*state.body)(i);
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 == state.n) {
      MutexLock lock(state.mutex);
      state.cv.NotifyAll();
    }
  }
}

}  // namespace

size_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareThreads();
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<TaskQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    TaskQueue& queue = *queues_[q];
    MutexLock lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section: pairs the notify with the wait predicate so
    // a worker observing pending_ == 0 is guaranteed to see the wakeup.
    MutexLock lock(wake_mutex_);
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    // Own queue: newest first (LIFO) — the classic work-stealing split.
    TaskQueue& own = *queues_[self];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    // Steal oldest-first from the other queues.
    for (size_t k = 1; k < queues_.size() && !task; ++k) {
      TaskQueue& victim = *queues_[(self + k) % queues_.size()];
      MutexLock lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  while (true) {
    if (RunOneTask(self)) continue;
    MutexLock lock(wake_mutex_);
    wake_cv_.Wait(wake_mutex_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = &body;
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state] { RunForChunk(*state); });
  }
  RunForChunk(*state);  // the caller is a full participant
  MutexLock lock(state->mutex);
  state->cv.Wait(state->mutex, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
}

}  // namespace freqywm
