#ifndef FREQYWM_EXEC_PARALLEL_HISTOGRAM_H_
#define FREQYWM_EXEC_PARALLEL_HISTOGRAM_H_

#include "common/result.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"

namespace freqywm {

/// Parallel `Histogram::FromDataset`: the token→count aggregation is
/// sharded across the pool and merged (DESIGN.md §7).
///
/// Phase 1 splits the dataset into contiguous chunks, one counting task
/// per chunk; each task partitions its counts by token hash into shards so
/// that phase 2 can merge every shard independently (shard-disjoint token
/// sets — no cross-shard synchronization). Phase 3 concatenates the shard
/// entries and applies the histogram's deterministic descending sort.
///
/// The result is identical to `Histogram::FromDataset(dataset)` — same
/// entry order, ranks and total — regardless of thread count; small
/// datasets fall back to the serial build outright.
Histogram BuildHistogramSharded(const Dataset& dataset, ThreadPool& pool);

/// Like `BuildHistogramSharded`, but polls `interrupt` at every chunk and
/// shard boundary (via `ParallelForChecked`) and returns
/// `kCancelled`/`kDeadlineExceeded` instead of a partial histogram. A run
/// that completes is byte-identical to the unchecked build.
Result<Histogram> BuildHistogramShardedChecked(const Dataset& dataset,
                                               ThreadPool& pool,
                                               const InterruptContext& interrupt);

}  // namespace freqywm

#endif  // FREQYWM_EXEC_PARALLEL_HISTOGRAM_H_
