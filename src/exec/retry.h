#ifndef FREQYWM_EXEC_RETRY_H_
#define FREQYWM_EXEC_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "exec/cancellation.h"

namespace freqywm {

/// Policy of a bounded retry loop over a transiently-failing operation
/// (DESIGN.md §13) — registry I/O under a flaky filesystem, eventually
/// any network hop. Deliberately small: exponential backoff with a cap
/// on attempts and deterministic, seeded jitter (site-keyed like fault
/// injection, so concurrent retriers decorrelate without any run-to-run
/// nondeterminism).
struct RetryPolicy {
  /// Total attempts, including the first (floor of 1).
  int max_attempts = 3;

  /// Sleep before the second attempt; multiplied by `multiplier` for
  /// each later one.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double multiplier = 2.0;

  /// Jitter fraction in [0, 1]: each backoff is scaled by a factor in
  /// [1 - jitter, 1] derived from SHA-256(jitter_seed || jitter_site ||
  /// attempt) — pure data, like the fault injector's schedule, so the
  /// exact sleep sequence is reproducible on every run, thread count
  /// and platform, while retriers with distinct (seed, site) pairs
  /// desynchronize instead of hammering a recovering resource in
  /// lockstep. 0 (default) = the exact exponential sequence, unchanged
  /// from PR 8.
  double jitter = 0.0;

  /// The jitter stream identity. `jitter_site` names the call site
  /// (stable slash-separated, e.g. "registry_io/save"); `jitter_seed`
  /// separates concurrent retriers at the same site (a request id, a
  /// shard index). Both default to the zero stream.
  uint64_t jitter_seed = 0;
  std::string jitter_site;

  /// Injectable sleep, the testing seam: tests pass a fake that records
  /// the requested durations and returns immediately, so retry tests
  /// run in microseconds and never depend on wall time. Null → a real
  /// blocking sleep.
  std::function<void(std::chrono::nanoseconds)> sleep;

  /// Which failures are worth retrying. Null → exactly `kUnavailable`
  /// (the transient code; every other code is permanent by contract).
  std::function<bool(const Status&)> retryable;
};

/// The deterministic jitter factor applied to the sleep before attempt
/// `attempt + 1` (0-based, matching the loop in `RetryWithBackoff`):
/// 1.0 when `policy.jitter` is 0, else a value in
/// [1 - jitter, 1] that is a pure function of
/// (jitter_seed, jitter_site, attempt). Exposed so tests can assert the
/// exact backoff sequence rather than a range.
double RetryJitterFactor(const RetryPolicy& policy, int attempt);

/// Runs `op` until it succeeds, exhausts `policy.max_attempts`, fails
/// non-retryably, or `interrupt` fires. Returns the first OK, the last
/// error, or the interruption status — interruption is checked before
/// every attempt and before every sleep, so a cancelled caller never
/// sits out a backoff.
[[nodiscard]] Status RetryWithBackoff(const RetryPolicy& policy,
                                      const InterruptContext& interrupt,
                                      const std::function<Status()>& op);

}  // namespace freqywm

#endif  // FREQYWM_EXEC_RETRY_H_
