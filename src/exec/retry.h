#ifndef FREQYWM_EXEC_RETRY_H_
#define FREQYWM_EXEC_RETRY_H_

#include <chrono>
#include <functional>

#include "common/status.h"
#include "exec/cancellation.h"

namespace freqywm {

/// Policy of a bounded retry loop over a transiently-failing operation
/// (DESIGN.md §13) — registry I/O under a flaky filesystem, eventually
/// any network hop. Deliberately small: exponential backoff with a cap
/// on attempts, no jitter (determinism first; a caller wanting jitter
/// supplies it via `sleep`).
struct RetryPolicy {
  /// Total attempts, including the first (floor of 1).
  int max_attempts = 3;

  /// Sleep before the second attempt; multiplied by `multiplier` for
  /// each later one.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(1);
  double multiplier = 2.0;

  /// Injectable sleep, the testing seam: tests pass a fake that records
  /// the requested durations and returns immediately, so retry tests
  /// run in microseconds and never depend on wall time. Null → a real
  /// blocking sleep.
  std::function<void(std::chrono::nanoseconds)> sleep;

  /// Which failures are worth retrying. Null → exactly `kUnavailable`
  /// (the transient code; every other code is permanent by contract).
  std::function<bool(const Status&)> retryable;
};

/// Runs `op` until it succeeds, exhausts `policy.max_attempts`, fails
/// non-retryably, or `interrupt` fires. Returns the first OK, the last
/// error, or the interruption status — interruption is checked before
/// every attempt and before every sleep, so a cancelled caller never
/// sits out a backoff.
[[nodiscard]] Status RetryWithBackoff(const RetryPolicy& policy,
                                      const InterruptContext& interrupt,
                                      const std::function<Status()>& op);

}  // namespace freqywm

#endif  // FREQYWM_EXEC_RETRY_H_
