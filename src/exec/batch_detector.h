#ifndef FREQYWM_EXEC_BATCH_DETECTOR_H_
#define FREQYWM_EXEC_BATCH_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/factory.h"
#include "api/scheme.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/detect.h"
#include "core/options.h"
#include "data/histogram.h"
#include "exec/cancellation.h"
#include "exec/circuit_breaker.h"
#include "exec/prepared_key_cache.h"
#include "exec/thread_pool.h"

namespace freqywm {

/// One failed matrix cell in a `SessionDrainResult`: detection of key
/// column `key` on suspect row `suspect` did not run to completion.
struct SessionCellError {
  size_t suspect = 0;
  size_t key = 0;
  Status status;
};

/// The result of a failure-aware session drain (DESIGN.md §13). The
/// verdict matrix always has full |suspects| × |keys| shape; the
/// companion fields say which cells actually hold a detection:
///
///   - `key_status[j]` is non-OK when column `j` is poisoned — its key
///     failed `Prepare` (or its scheme tag is unregistered) — and every
///     cell in that column is unevaluated, default-rejected;
///   - `cell_errors` lists individually failed cells (sorted by
///     (suspect, key)), each with its typed status — one bad cell never
///     contaminates its row, column, or the drain;
///   - `evaluated[i * keys + j]` is 1 iff `verdicts[i][j]` is a real
///     detection result;
///   - `status` is the drain-level outcome: OK for a completed drain
///     (even one with poisoned columns or failed cells), or
///     `kCancelled`/`kDeadlineExceeded` when the drain was interrupted —
///     then the evaluated mask marks the partial prefix that finished
///     before the interruption.
struct SessionDrainResult {
  std::vector<std::vector<DetectResult>> verdicts;
  std::vector<Status> key_status;
  std::vector<SessionCellError> cell_errors;
  std::vector<uint8_t> evaluated;
  Status status;
};

/// Configuration of a `BatchDetector` run.
struct BatchDetectOptions {
  /// Total parallelism (worker threads; the submitting thread helps).
  /// 1 → the serial reference path, bit-identical to a hand-written
  /// nested `Detect` loop.
  size_t num_threads = 1;

  /// When true (default), each key is detected under its scheme's
  /// `RecommendedDetectOptions(key)`; when false, `detect_options` applies
  /// to every cell.
  bool use_recommended_options = true;

  /// Fixed per-cell settings, used when `use_recommended_options` is false.
  DetectOptions detect_options;

  /// Optional shared `PreparedKey` cache (DESIGN.md §10). When set, runs
  /// and sessions resolve their keys through it, so preparation is paid
  /// once per key *lifetime* — across batches, sessions and tenants — not
  /// once per `Run`. When null, keys are prepared privately. Cache state
  /// (cold, warm, evicted) never changes detection output.
  std::shared_ptr<PreparedKeyCache> key_cache;

  /// Bounded pending-work budget for the session queue (DESIGN.md §14):
  /// the maximum suspects `TryAddSuspects`/`AddSuspectsBounded` allow to
  /// accumulate between drains. 0 (default) = unbounded — the legacy
  /// `AddSuspect`/`AddSuspects` contract, which never sheds, is
  /// unchanged either way.
  size_t max_pending_suspects = 0;

  /// Optional cooldown circuit breaker over key identities (DESIGN.md
  /// §14). When set, a key whose circuit is open is skipped at
  /// `PrepareKeys` — its column poisoned with the typed quarantine
  /// status — and drain outcomes feed back per column: a prepare
  /// failure or a drained column with cell errors records a failure, a
  /// cleanly evaluated column records a success. Shareable across
  /// sessions (that is the point: repeated failures accumulate).
  std::shared_ptr<KeyCircuitBreaker> circuit_breaker;
};

/// The batch detection engine (DESIGN.md §7, §10): evaluates the full
/// |suspects| × |keys| matrix of `WatermarkScheme::Detect` calls — the
/// marketplace workload where one owner traces many suspect copies against
/// many escrowed keys.
///
/// Scheme instances are created once per distinct key tag and shared
/// across threads (`Detect` is const and stateless for every in-tree
/// scheme; out-of-tree schemes joining the factory must keep it so). Each
/// key is `Prepare`d once up front — through the shared `key_cache` when
/// one is configured — and keys exposing a `TokenVocabulary` run through
/// the dense count gather: the union vocabulary is interned into dense ids,
/// each suspect histogram is scattered into a flat count vector once, and
/// every matrix cell then reads counts by index — zero hash probes per
/// cell (DESIGN.md §10). Keys whose scheme tag is not registered yield a
/// default (rejected) `DetectResult`, matching the serial
/// `FingerprintRegistry::Trace` convention of skipping them.
///
/// Determinism contract: `result[i][j]` depends only on
/// `(suspects[i], keys[j], options)` — never on thread count, schedule,
/// chunking or cache state — so every configuration is element-wise
/// identical to the serial path (enforced for every registered scheme by
/// `tests/exec/batch_detector_test.cc` and
/// `tests/exec/batch_session_test.cc`).
class BatchDetector {
 public:
  explicit BatchDetector(BatchDetectOptions options = {});

  /// A streaming detection session: the key column is fixed once, and
  /// suspect chunks arrive incrementally — the shape of the ROADMAP's
  /// batch-detection service, where escrowed buyer keys are long-lived and
  /// surfaced suspect copies trickle in. The session holds the expensive
  /// state across chunks: the thread pool, the prepared keys (resolved
  /// through the shared `PreparedKeyCache` when configured, so a later
  /// session over the same keys starts warm), and the dense-gather
  /// interner with the per-key dense id maps.
  ///
  /// `Drain` output is element-wise identical to a one-shot `Run` over the
  /// concatenated chunks, for any chunking, thread count and cache state.
  ///
  /// Concurrency: the enqueue side is thread-safe — `AddSuspect`/
  /// `AddSuspects` may be called from many producer threads (the shape of
  /// the ROADMAP's detection service, where request handlers enqueue while
  /// a drainer detects); the pending queue is guarded by `pending_mutex_`
  /// (machine-checked by the CI thread-safety job). Arrival order under
  /// concurrent producers is whatever order the enqueues serialize in —
  /// per-producer order is preserved. `Drain`/`Detect` remain
  /// single-caller: one drainer at a time (the parallelism lives inside
  /// `Drain`). Prepared keys resolved at construction are pinned for the
  /// session's lifetime — cache evictions never invalidate them.
  class Session {
   public:
    /// Creates a session over `keys`, owning a thread pool when
    /// `options.num_threads > 1` (the pool persists across chunks).
    Session(BatchDetectOptions options, std::vector<SchemeKey> keys);

    /// Like above, but borrows `pool` (may be null → serial) instead of
    /// creating one. The pool must outlive the session.
    Session(BatchDetectOptions options, std::vector<SchemeKey> keys,
            ThreadPool* borrowed_pool);

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Enqueues suspects for the next `Drain`, preserving arrival order.
    /// Thread-safe: producers may enqueue concurrently (and while a
    /// `Drain` is running; such suspects land in the *next* drain).
    void AddSuspect(Histogram suspect);
    void AddSuspects(std::vector<Histogram> suspects);

    /// Bounded enqueue, shed mode (DESIGN.md §14): admits `suspects`
    /// only when the whole batch fits in the configured
    /// `max_pending_suspects` budget; otherwise sheds all-or-nothing
    /// with typed `kResourceExhausted` and enqueues NOTHING. With no
    /// budget configured this is `AddSuspects` plus an OK. Thread-safe
    /// like `AddSuspects`.
    [[nodiscard]] Status TryAddSuspects(std::vector<Histogram> suspects);

    /// Bounded enqueue, backpressure mode (DESIGN.md §14): blocks until
    /// the batch fits in the budget (drains free space; the wait rides
    /// the same `pending_cv_` as `WaitForSuspects`, in bounded ~10 ms
    /// quanta), the token is cancelled, or the deadline expires —
    /// returning the interruption status without enqueueing anything. A
    /// batch larger than the whole budget can never fit and is shed
    /// immediately with `kResourceExhausted`. Admitted batches are
    /// byte-equivalent to an `AddSuspects` call: only *whether/when*
    /// suspects enter the queue changes, never what their drain
    /// computes.
    [[nodiscard]] Status AddSuspectsBounded(std::vector<Histogram> suspects,
                                            const InterruptContext& interrupt);

    /// Suspects enqueued since the last `Drain`. Thread-safe.
    size_t pending_suspects() const;

    /// Detects every pending suspect against the key column and clears
    /// the queue. Row order equals arrival order.
    std::vector<std::vector<DetectResult>> Drain();

    /// One-shot detection of `suspects` against the key column, without
    /// touching the pending queue. `Run` is implemented on top of this.
    std::vector<std::vector<DetectResult>> Detect(
        const std::vector<Histogram>& suspects) const;

    /// The failure-aware drain (DESIGN.md §13): claims the pending queue
    /// like `Drain`, but honors `interrupt` at every cell boundary and
    /// isolates per-key / per-cell failures instead of assuming them
    /// away. Claimed suspects are consumed even when the drain is
    /// interrupted — the caller inspects `evaluated` to see which cells
    /// completed. For a clean, uninterrupted run over all-OK keys, the
    /// verdicts are element-wise identical to `Drain()`.
    SessionDrainResult DrainChecked(const InterruptContext& interrupt);

    /// Failure-aware one-shot detection; `DrainChecked` is implemented on
    /// top of this.
    SessionDrainResult DetectChecked(const std::vector<Histogram>& suspects,
                                     const InterruptContext& interrupt) const;

    /// Blocks until at least `min_count` suspects are pending, the token
    /// is cancelled, or the deadline expires — the producer/drainer
    /// handshake of the detection-service shape. Returns OK when the
    /// count is reached, else the interruption status. Uses bounded
    /// `CondVar::WaitFor` sleeps internally, so a waiter blocked on a
    /// notification that never comes still observes cancellation within
    /// one wait quantum (~10 ms).
    Status WaitForSuspects(size_t min_count,
                           const InterruptContext& interrupt) const;

    /// Per-key preparation outcome, fixed at construction: `[j]` is OK
    /// when column `j` is usable, `kNotFound` for an unregistered scheme
    /// tag, or the typed `Prepare` failure that poisoned the column.
    /// Unregistered tags were always skipped silently (`Run`'s
    /// default-rejected convention); this is where that fact became
    /// observable.
    const std::vector<Status>& key_statuses() const { return key_status_; }

    const std::vector<SchemeKey>& keys() const { return keys_; }

    /// Size of the interned union vocabulary (0 when no key exposes one).
    size_t vocabulary_size() const { return vocab_.size(); }

   private:
    void PrepareKeys();
    /// Feeds one drained column's outcome back to the shared circuit
    /// breaker (no-op without one): a column that evaluated at least one
    /// cell cleanly records a success, a column with cell errors records
    /// a failure.
    void RecordColumnOutcomes(const SessionDrainResult& result) const;
    /// Scatters `suspect` into flat per-vocabulary-id arrays, probing
    /// whichever side (suspect histogram vs union vocabulary) is smaller;
    /// both directions fill identical arrays.
    void ScatterSuspect(const Histogram& suspect, uint64_t* counts,
                        uint8_t* present) const;

    BatchDetectOptions options_;
    std::vector<SchemeKey> keys_;
    SchemeCache schemes_;
    std::vector<const WatermarkScheme*> key_scheme_;
    std::vector<DetectOptions> key_options_;
    std::vector<std::shared_ptr<const PreparedKey>> prepared_;
    std::vector<Status> key_status_;
    /// Cache fingerprints of the key column, resolved at construction —
    /// the circuit breaker's key identities. Empty when no breaker is
    /// configured.
    std::vector<std::string> key_fingerprint_;

    /// Dense-gather state: the union of the keys' vocabularies interned
    /// into ids `[0, vocab_.size())`, and per key the map from its
    /// vocabulary index to the dense id (empty → histogram-path key).
    std::vector<Token> vocab_;
    std::unordered_map<Token, uint32_t> vocab_index_;
    std::vector<std::vector<uint32_t>> dense_ids_;

    /// Producer-side state: the only mutable-after-construction session
    /// state, guarded so request handlers can enqueue concurrently. The
    /// CondVar pairs enqueues with `WaitForSuspects` sleepers.
    mutable Mutex pending_mutex_;
    std::vector<Histogram> pending_ GUARDED_BY(pending_mutex_);
    mutable CondVar pending_cv_;

    std::unique_ptr<ThreadPool> owned_pool_;
    ThreadPool* pool_ = nullptr;  // owned or borrowed; null → serial
  };

  /// Runs the matrix: `Run(...)[i][j]` is the detection of `keys[j]` on
  /// `suspects[i]`. Creates a transient pool when `num_threads > 1`.
  /// `keys` is taken by value and moved into the one-chunk session —
  /// callers with a freshly built vector move it in copy-free.
  std::vector<std::vector<DetectResult>> Run(
      const std::vector<Histogram>& suspects,
      std::vector<SchemeKey> keys) const;

  /// Like `Run`, but borrows `pool` (may be null → serial). Lets callers
  /// amortize one pool across many batches.
  std::vector<std::vector<DetectResult>> Run(
      const std::vector<Histogram>& suspects, std::vector<SchemeKey> keys,
      ThreadPool* pool) const;

  const BatchDetectOptions& options() const { return options_; }

 private:
  BatchDetectOptions options_;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_BATCH_DETECTOR_H_
