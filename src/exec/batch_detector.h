#ifndef FREQYWM_EXEC_BATCH_DETECTOR_H_
#define FREQYWM_EXEC_BATCH_DETECTOR_H_

#include <cstddef>
#include <vector>

#include "api/scheme.h"
#include "core/detect.h"
#include "core/options.h"
#include "data/histogram.h"
#include "exec/thread_pool.h"

namespace freqywm {

/// Configuration of a `BatchDetector` run.
struct BatchDetectOptions {
  /// Total parallelism (worker threads; the submitting thread helps).
  /// 1 → the serial reference path, bit-identical to a hand-written
  /// nested `Detect` loop.
  size_t num_threads = 1;

  /// When true (default), each key is detected under its scheme's
  /// `RecommendedDetectOptions(key)`; when false, `detect_options` applies
  /// to every cell.
  bool use_recommended_options = true;

  /// Fixed per-cell settings, used when `use_recommended_options` is false.
  DetectOptions detect_options;
};

/// The batch detection engine (DESIGN.md §7): evaluates the full
/// |suspects| × |keys| matrix of `WatermarkScheme::Detect` calls — the
/// marketplace workload where one owner traces many suspect copies against
/// many escrowed keys.
///
/// Scheme instances are created once per distinct key tag and shared
/// across threads (`Detect` is const and stateless for every in-tree
/// scheme; out-of-tree schemes joining the factory must keep it so). Each
/// key is additionally `Prepare`d once up front — key parsing and keyed
/// modulus derivation (FreqyWM's `PairModulusTable`) are paid |keys|
/// times, not |suspects| × |keys| times (DESIGN.md §8). Keys whose scheme
/// tag is not registered yield a default (rejected) `DetectResult`,
/// matching the serial `FingerprintRegistry::Trace` convention of
/// skipping them.
///
/// Determinism contract: `result[i][j]` depends only on
/// `(suspects[i], keys[j], options)` — never on thread count or schedule —
/// so the parallel output is element-wise identical to the serial path
/// (enforced for every registered scheme by
/// `tests/exec/batch_detector_test.cc`).
class BatchDetector {
 public:
  explicit BatchDetector(BatchDetectOptions options = {});

  /// Runs the matrix: `Run(...)[i][j]` is the detection of `keys[j]` on
  /// `suspects[i]`. Creates a transient pool when `num_threads > 1`.
  std::vector<std::vector<DetectResult>> Run(
      const std::vector<Histogram>& suspects,
      const std::vector<SchemeKey>& keys) const;

  /// Like `Run`, but borrows `pool` (may be null → serial). Lets callers
  /// amortize one pool across many batches.
  std::vector<std::vector<DetectResult>> Run(
      const std::vector<Histogram>& suspects,
      const std::vector<SchemeKey>& keys, ThreadPool* pool) const;

  const BatchDetectOptions& options() const { return options_; }

 private:
  BatchDetectOptions options_;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_BATCH_DETECTOR_H_
