#include "exec/prepared_key_cache.h"

#include <algorithm>

#include "common/mutex.h"
#include "crypto/sha256.h"
#include "exec/fault_injection.h"

namespace freqywm {

PreparedKeyCache::PreparedKeyCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::string PreparedKeyCache::Fingerprint(const SchemeKey& key) {
  // Length framing before the scheme tag makes the digest input injective
  // in (scheme, payload); the payload needs no trailing frame because it
  // runs to the end of the input.
  Sha256 hasher;
  uint64_t scheme_size = key.scheme.size();
  uint8_t frame[8];
  for (int b = 0; b < 8; ++b) {
    frame[b] = static_cast<uint8_t>(scheme_size >> (8 * b));
  }
  hasher.Update(std::string_view(reinterpret_cast<const char*>(frame), 8));
  hasher.Update(key.scheme);
  hasher.Update(key.payload);
  Sha256::Digest digest = hasher.Finish();
  return std::string(reinterpret_cast<const char*>(digest.data()),
                     digest.size());
}

std::shared_ptr<const PreparedKey> PreparedKeyCache::HitLocked(
    const std::string& fingerprint) {
  auto it = index_.find(fingerprint);
  if (it == index_.end()) return nullptr;
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PreparedKeyCache::EvictExcessLocked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const PreparedKey> PreparedKeyCache::Get(
    const SchemeKey& key) {
  const std::string fingerprint = Fingerprint(key);
  MutexLock lock(mutex_);
  std::shared_ptr<const PreparedKey> hit = HitLocked(fingerprint);
  if (hit == nullptr) ++misses_;
  return hit;
}

std::shared_ptr<const PreparedKey> PreparedKeyCache::GetOrPrepare(
    const WatermarkScheme& scheme, const SchemeKey& key) {
  Result<std::shared_ptr<const PreparedKey>> entry =
      TryGetOrPrepare(scheme, key);
  if (entry.ok()) return std::move(entry).value();
  // A transient (injected) preparation failure: honor this API's
  // never-null contract with a private, uncached preparation — the cache
  // simply stays cold for this key and a later lookup retries.
  return scheme.Prepare(key);
}

Result<std::shared_ptr<const PreparedKey>> PreparedKeyCache::TryGetOrPrepare(
    const WatermarkScheme& scheme, const SchemeKey& key) {
  const std::string fingerprint = Fingerprint(key);
  {
    MutexLock lock(mutex_);
    std::shared_ptr<const PreparedKey> hit = HitLocked(fingerprint);
    if (hit != nullptr) return hit;
  }

  // Miss: prepare outside the lock so one slow key never serializes the
  // whole cache. On failure, return without inserting anything — the
  // no-tombstone rule above — after counting the miss so the
  // `hits + misses == lookups` invariant holds on every path.
  Status fault = FREQYWM_FAULT_STATUS("prepared_key_cache/prepare");
  if (!fault.ok()) {
    MutexLock lock(mutex_);
    ++misses_;
    return fault;
  }
  // `Prepare` never returns null (api/scheme.h contract); treat a
  // violation by an out-of-tree scheme as a typed error, not a crash.
  std::shared_ptr<const PreparedKey> prepared = scheme.Prepare(key);
  if (prepared == nullptr) {
    MutexLock lock(mutex_);
    ++misses_;
    return Status::Internal("scheme '" + key.scheme +
                            "' Prepare returned null");
  }

  MutexLock lock(mutex_);
  std::shared_ptr<const PreparedKey> hit = HitLocked(fingerprint);
  if (hit != nullptr) {
    // A concurrent miss beat us to the insert. Keep the incumbent so every
    // borrower shares one object; our duplicate preparation is discarded.
    return hit;
  }
  ++misses_;
  lru_.emplace_front(fingerprint, std::move(prepared));
  index_.emplace(fingerprint, lru_.begin());
  EvictExcessLocked();
  return lru_.front().second;
}

void PreparedKeyCache::Clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  hits_ = misses_ = evictions_ = 0;
}

size_t PreparedKeyCache::size() const {
  MutexLock lock(mutex_);
  return lru_.size();
}

PreparedKeyCacheStats PreparedKeyCache::stats() const {
  MutexLock lock(mutex_);
  PreparedKeyCacheStats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.size = lru_.size();
  return out;
}

}  // namespace freqywm
