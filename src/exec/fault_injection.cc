#include "exec/fault_injection.h"

#include <array>

#include "crypto/sha256.h"

namespace freqywm {
namespace {

void AppendU64Le(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::ArmSeeded(uint64_t seed, uint32_t fail_one_in) {
  MutexLock lock(mu_);
  seed_ = seed;
  fail_one_in_ = fail_one_in;
  hit_counts_.clear();
  armed_.store(fail_one_in != 0 || !forced_failures_.empty(),
               std::memory_order_release);
}

void FaultInjector::FailNextHits(std::string_view site, uint64_t count) {
  MutexLock lock(mu_);
  if (count == 0) {
    forced_failures_.erase(std::string(site));
  } else {
    forced_failures_[std::string(site)] = count;
  }
  armed_.store(fail_one_in_ != 0 || !forced_failures_.empty(),
               std::memory_order_release);
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  seed_ = 0;
  fail_one_in_ = 0;
  hit_counts_.clear();
  forced_failures_.clear();
  armed_.store(false, std::memory_order_release);
}

Status FaultInjector::Check(std::string_view site) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(mu_);
  return Decide(site, /*keyed=*/false, /*key=*/0);
}

Status FaultInjector::CheckKeyed(std::string_view site, uint64_t key) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  MutexLock lock(mu_);
  return Decide(site, /*keyed=*/true, key);
}

Status FaultInjector::Decide(std::string_view site, bool keyed,
                             uint64_t key) {
  const auto forced = forced_failures_.find(std::string(site));
  if (forced != forced_failures_.end()) {
    if (--forced->second == 0) forced_failures_.erase(forced);
    armed_.store(fail_one_in_ != 0 || !forced_failures_.empty(),
                 std::memory_order_release);
    return Status::Unavailable("injected fault at " + std::string(site));
  }
  if (fail_one_in_ == 0) return Status::OK();
  // The decision digest is pure data: seed, site name, and a
  // discriminator — the per-site hit index for plain sites, the
  // caller-supplied work-unit key for keyed ones (so the schedule does
  // not depend on the order threads reach the site). Identical inputs
  // give identical fault schedules on every platform and thread count.
  const uint64_t discriminator =
      keyed ? key : hit_counts_[std::string(site)]++;
  std::string material;
  material.reserve(site.size() + 32);
  AppendU64Le(material, seed_);
  material.append(site.data(), site.size());
  material.push_back(keyed ? '\1' : '\0');
  AppendU64Le(material, discriminator);
  const Sha256::Digest digest = Sha256::Hash(material);
  if (DigestPrefixU64(digest) % fail_one_in_ == 0) {
    return Status::Unavailable("injected fault at " + std::string(site));
  }
  return Status::OK();
}

}  // namespace freqywm
