#include "exec/circuit_breaker.h"

#include <algorithm>

namespace freqywm {
namespace {

// The monotonic-clock read behind the default `CircuitBreakerOptions::
// clock_nanos` (determinism allowlist: the breaker gates *whether* a
// quarantined key is probed, never *what* a probed key computes).
int64_t RealNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

KeyCircuitBreaker::KeyCircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)) {}

int64_t KeyCircuitBreaker::Now() const {
  return options_.clock_nanos ? options_.clock_nanos() : RealNowNanos();
}

Status KeyCircuitBreaker::Allow(std::string_view key) {
  MutexLock lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end() || !it->second.open) return Status::OK();
  if (Now() >= it->second.reopen_at_nanos) {
    // Half-open: this caller probes; the circuit stays open on paper so
    // a concurrent flood cannot all pass — the next Allow before a
    // recorded outcome pushes the probe window forward by one cooldown.
    it->second.reopen_at_nanos = Now() + options_.cooldown.count();
    return Status::OK();
  }
  ++rejections_;
  return Status::Unavailable("circuit open for key (cooldown active after " +
                             std::to_string(it->second.consecutive_failures) +
                             " consecutive failures)");
}

void KeyCircuitBreaker::RecordSuccess(std::string_view key) {
  MutexLock lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return;
  keys_.erase(it);
}

void KeyCircuitBreaker::RecordFailure(std::string_view key) {
  MutexLock lock(mu_);
  auto [it, inserted] = keys_.emplace(std::string(key), KeyState{});
  KeyState& state = it->second;
  ++state.consecutive_failures;
  const uint32_t threshold = std::max(1u, options_.failure_threshold);
  if (state.consecutive_failures >= threshold) {
    if (!state.open) ++trips_;
    state.open = true;
    state.reopen_at_nanos = Now() + options_.cooldown.count();
  }
}

CircuitBreakerStats KeyCircuitBreaker::stats() const {
  MutexLock lock(mu_);
  CircuitBreakerStats out;
  out.trips = trips_;
  out.rejections = rejections_;
  for (const auto& [key, state] : keys_) {
    if (state.open) ++out.open_keys;
  }
  return out;
}

}  // namespace freqywm
