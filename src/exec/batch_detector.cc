#include "exec/batch_detector.h"

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "api/factory.h"

namespace freqywm {

BatchDetector::BatchDetector(BatchDetectOptions options)
    : options_(std::move(options)) {}

std::vector<std::vector<DetectResult>> BatchDetector::Run(
    const std::vector<Histogram>& suspects,
    const std::vector<SchemeKey>& keys) const {
  if (options_.num_threads <= 1) return Run(suspects, keys, nullptr);
  // num_threads is the *total* parallelism; the submitting thread helps
  // inside ParallelFor, so the pool needs one worker fewer.
  ThreadPool pool(options_.num_threads - 1);
  return Run(suspects, keys, &pool);
}

std::vector<std::vector<DetectResult>> BatchDetector::Run(
    const std::vector<Histogram>& suspects,
    const std::vector<SchemeKey>& keys, ThreadPool* pool) const {
  std::vector<std::vector<DetectResult>> results(
      suspects.size(), std::vector<DetectResult>(keys.size()));
  if (suspects.empty() || keys.empty()) return results;

  // One scheme per distinct tag (the same `SchemeCache` the serial
  // registry trace uses), populated up front on the calling thread so the
  // parallel phase only reads. Per-key detection settings and the
  // per-key prepared state (parsed payload, FreqyWM's modulus table) are
  // likewise resolved serially — key parsing and keyed-hash derivation are
  // paid once per key, not once per cell, and stay off the hot loop and
  // deterministic regardless of scheduling.
  SchemeCache cache;
  std::vector<const WatermarkScheme*> key_scheme(keys.size(), nullptr);
  std::vector<DetectOptions> key_options(keys.size());
  std::vector<std::unique_ptr<PreparedKey>> prepared(keys.size());
  for (size_t j = 0; j < keys.size(); ++j) {
    key_scheme[j] = cache.Get(keys[j].scheme);
    if (key_scheme[j] == nullptr) continue;
    key_options[j] = options_.use_recommended_options
                         ? key_scheme[j]->RecommendedDetectOptions(keys[j])
                         : options_.detect_options;
    prepared[j] = key_scheme[j]->Prepare(keys[j]);
  }

  auto detect_cell = [&](size_t i, size_t j) {
    if (key_scheme[j] == nullptr) return;  // unregistered tag → rejected
    results[i][j] = key_scheme[j]->Detect(suspects[i], *prepared[j],
                                          key_options[j]);
  };

  if (pool == nullptr || pool->num_threads() == 0) {
    for (size_t i = 0; i < suspects.size(); ++i) {
      for (size_t j = 0; j < keys.size(); ++j) detect_cell(i, j);
    }
    return results;
  }

  const size_t cells = suspects.size() * keys.size();
  pool->ParallelFor(cells, [&](size_t c) {
    detect_cell(c / keys.size(), c % keys.size());
  });
  return results;
}

}  // namespace freqywm
