#include "exec/batch_detector.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/mutex.h"
#include "exec/fault_injection.h"

namespace freqywm {

BatchDetector::BatchDetector(BatchDetectOptions options)
    : options_(std::move(options)) {}

// ---------------------------------------------------------------- Session

BatchDetector::Session::Session(BatchDetectOptions options,
                                std::vector<SchemeKey> keys)
    : options_(std::move(options)), keys_(std::move(keys)) {
  if (options_.num_threads > 1) {
    // num_threads is the *total* parallelism; the submitting thread helps
    // inside ParallelFor, so the pool needs one worker fewer.
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads - 1);
    pool_ = owned_pool_.get();
  }
  PrepareKeys();
}

BatchDetector::Session::Session(BatchDetectOptions options,
                                std::vector<SchemeKey> keys,
                                ThreadPool* borrowed_pool)
    : options_(std::move(options)), keys_(std::move(keys)),
      pool_(borrowed_pool) {
  PrepareKeys();
}

void BatchDetector::Session::PrepareKeys() {
  // One scheme per distinct tag (the same `SchemeCache` the serial
  // registry trace uses), populated on the constructing thread so `Drain`
  // only reads. Per-key detection settings, prepared state and dense id
  // maps are likewise resolved here — once per session, not per chunk —
  // and stay deterministic regardless of scheduling. Prepared state goes
  // through the shared cache when one is configured, so keys already
  // prepared by an earlier session (or another tenant) cost a lookup.
  key_scheme_.assign(keys_.size(), nullptr);
  key_options_.assign(keys_.size(), DetectOptions{});
  prepared_.assign(keys_.size(), nullptr);
  key_status_.assign(keys_.size(), Status::OK());
  key_fingerprint_.assign(
      options_.circuit_breaker != nullptr ? keys_.size() : 0, std::string());
  dense_ids_.assign(keys_.size(), {});
  for (size_t j = 0; j < keys_.size(); ++j) {
    const WatermarkScheme* scheme = schemes_.Get(keys_[j].scheme);
    key_scheme_[j] = scheme;
    if (scheme == nullptr) {
      // Unregistered tag → rejected cells, now with the reason recorded
      // per column instead of assumed.
      key_status_[j] = Status::NotFound("scheme '" + keys_[j].scheme +
                                        "' not registered");
      continue;
    }
    key_options_[j] = options_.use_recommended_options
                          ? scheme->RecommendedDetectOptions(keys_[j])
                          : options_.detect_options;
    // Quarantined key (DESIGN.md §14): an open circuit poisons the
    // column with the typed cooldown status before any preparation is
    // paid — the breaker's whole point is not re-paying for a key that
    // keeps failing.
    if (options_.circuit_breaker != nullptr) {
      key_fingerprint_[j] = PreparedKeyCache::Fingerprint(keys_[j]);
      Status allowed = options_.circuit_breaker->Allow(key_fingerprint_[j]);
      if (!allowed.ok()) {
        key_status_[j] = std::move(allowed);
        continue;
      }
    }
    // A preparation failure — injected here, or surfaced by the cache —
    // poisons only this column (DESIGN.md §13): prepared_[j] stays null,
    // the typed status is recorded, and every other key proceeds.
    Status prep = FREQYWM_FAULT_STATUS_KEYED("session/prepare",
                                             static_cast<uint64_t>(j));
    if (prep.ok() && options_.key_cache != nullptr) {
      Result<std::shared_ptr<const PreparedKey>> entry =
          options_.key_cache->TryGetOrPrepare(*scheme, keys_[j]);
      if (entry.ok()) {
        prepared_[j] = std::move(entry).value();
      } else {
        prep = entry.status();
      }
    } else if (prep.ok()) {
      prepared_[j] = scheme->Prepare(keys_[j]);
      if (prepared_[j] == nullptr) {
        prep = Status::Internal("scheme '" + keys_[j].scheme +
                                "' Prepare returned null");
      }
    }
    if (!prep.ok()) {
      if (options_.circuit_breaker != nullptr) {
        options_.circuit_breaker->RecordFailure(key_fingerprint_[j]);
      }
      key_status_[j] = std::move(prep);
      continue;
    }

    // Union the key's vocabulary into the session interner. Dense ids are
    // uint32_t; a union beyond 2^32 distinct tokens is far past any
    // realistic registry (it would not fit in memory), but degrade to the
    // histogram path rather than overflow if it ever happens.
    const std::vector<Token>* vocab = prepared_[j]->TokenVocabulary();
    if (vocab == nullptr || vocab->empty()) continue;
    if (vocab_.size() + vocab->size() >
        std::numeric_limits<uint32_t>::max()) {
      continue;
    }
    dense_ids_[j].reserve(vocab->size());
    for (const Token& token : *vocab) {
      auto [it, inserted] =
          vocab_index_.emplace(token, static_cast<uint32_t>(vocab_.size()));
      if (inserted) vocab_.push_back(token);
      dense_ids_[j].push_back(it->second);
    }
  }
}

void BatchDetector::Session::ScatterSuspect(const Histogram& suspect,
                                            uint64_t* counts,
                                            uint8_t* present) const {
  // Either direction fills the same arrays — the intersection of the
  // suspect's tokens with the union vocabulary — so the choice is purely
  // a cost call: one hash probe per token on the smaller side.
  if (suspect.num_tokens() < vocab_.size()) {
    for (const HistogramEntry& entry : suspect.entries()) {
      auto it = vocab_index_.find(entry.token);
      if (it == vocab_index_.end()) continue;
      counts[it->second] = entry.count;
      present[it->second] = 1;
    }
  } else {
    for (size_t id = 0; id < vocab_.size(); ++id) {
      auto count = suspect.CountOf(vocab_[id]);
      if (!count) continue;
      counts[id] = *count;
      present[id] = 1;
    }
  }
}

void BatchDetector::Session::AddSuspect(Histogram suspect) {
  {
    MutexLock lock(pending_mutex_);
    pending_.push_back(std::move(suspect));
  }
  pending_cv_.NotifyAll();
}

void BatchDetector::Session::AddSuspects(std::vector<Histogram> suspects) {
  {
    MutexLock lock(pending_mutex_);
    for (Histogram& suspect : suspects) {
      pending_.push_back(std::move(suspect));
    }
  }
  pending_cv_.NotifyAll();
}

Status BatchDetector::Session::TryAddSuspects(
    std::vector<Histogram> suspects) {
  FREQYWM_FAULT_POINT("session/add_bounded");
  const size_t budget = options_.max_pending_suspects;
  {
    MutexLock lock(pending_mutex_);
    if (budget > 0 && pending_.size() + suspects.size() > budget) {
      return Status::ResourceExhausted(
          "shed: session queue full (" + std::to_string(pending_.size()) +
          " pending + " + std::to_string(suspects.size()) + " offered > " +
          std::to_string(budget) + " budget)");
    }
    for (Histogram& suspect : suspects) {
      pending_.push_back(std::move(suspect));
    }
  }
  pending_cv_.NotifyAll();
  return Status::OK();
}

Status BatchDetector::Session::AddSuspectsBounded(
    std::vector<Histogram> suspects, const InterruptContext& interrupt) {
  FREQYWM_FAULT_POINT("session/add_bounded");
  const size_t budget = options_.max_pending_suspects;
  if (budget > 0 && suspects.size() > budget) {
    // Can never fit; blocking would hang forever.
    return Status::ResourceExhausted(
        "shed: batch of " + std::to_string(suspects.size()) +
        " suspects exceeds the whole pending budget of " +
        std::to_string(budget));
  }
  constexpr std::chrono::milliseconds kWaitQuantum(10);
  {
    MutexLock lock(pending_mutex_);
    while (budget > 0 && pending_.size() + suspects.size() > budget) {
      FREQYWM_RETURN_NOT_OK(interrupt.Check());
      // Producer backpressure: drains notify pending_cv_ after claiming
      // the queue, so space-waiters wake; the bounded quantum caps how
      // long an interruption can go unnoticed if no drain ever runs.
      pending_cv_.WaitFor(pending_mutex_, kWaitQuantum);
    }
    for (Histogram& suspect : suspects) {
      pending_.push_back(std::move(suspect));
    }
  }
  pending_cv_.NotifyAll();
  return Status::OK();
}

Status BatchDetector::Session::WaitForSuspects(
    size_t min_count, const InterruptContext& interrupt) const {
  // Bounded sleeps instead of an open-ended Wait: the quantum caps how
  // long a cancellation or deadline expiry can go unnoticed when no
  // producer ever notifies again.
  constexpr std::chrono::milliseconds kWaitQuantum(10);
  MutexLock lock(pending_mutex_);
  while (pending_.size() < min_count) {
    FREQYWM_RETURN_NOT_OK(interrupt.Check());
    pending_cv_.WaitFor(pending_mutex_, kWaitQuantum);
  }
  return Status::OK();
}

size_t BatchDetector::Session::pending_suspects() const {
  MutexLock lock(pending_mutex_);
  return pending_.size();
}

std::vector<std::vector<DetectResult>> BatchDetector::Session::Drain() {
  // Claim the queue atomically, then detect outside the lock: producers
  // that enqueue while the matrix evaluates land in the next drain instead
  // of blocking on it.
  std::vector<Histogram> batch;
  {
    MutexLock lock(pending_mutex_);
    batch.swap(pending_);
  }
  // The claim freed the whole pending budget: wake any producer blocked
  // in AddSuspectsBounded.
  pending_cv_.NotifyAll();
  return Detect(batch);
}

std::vector<std::vector<DetectResult>> BatchDetector::Session::Detect(
    const std::vector<Histogram>& suspects) const {
  std::vector<std::vector<DetectResult>> results(
      suspects.size(), std::vector<DetectResult>(keys_.size()));
  if (suspects.empty() || keys_.empty()) return results;

  const bool parallel = pool_ != nullptr && pool_->num_threads() > 0;

  // Phase 1 — scatter: each suspect's counts land in one flat array,
  // indexed by dense id, built once for *all* keys (suspects are
  // independent, so the phase shards by suspect). Skipped entirely when no
  // key exposes a vocabulary.
  std::vector<std::vector<uint64_t>> flat_counts(suspects.size());
  std::vector<std::vector<uint8_t>> flat_present(suspects.size());
  if (!vocab_.empty()) {
    auto scatter = [&](size_t i) {
      flat_counts[i].assign(vocab_.size(), 0);
      flat_present[i].assign(vocab_.size(), 0);
      ScatterSuspect(suspects[i], flat_counts[i].data(),
                     flat_present[i].data());
    };
    if (parallel) {
      pool_->ParallelFor(suspects.size(), scatter);
    } else {
      for (size_t i = 0; i < suspects.size(); ++i) scatter(i);
    }
  }

  // Phase 2 — the matrix: vocabulary keys read counts by index (zero hash
  // probes per cell), whole-histogram schemes keep the prepared
  // histogram path. Each cell depends only on (suspect, key, options), so
  // any schedule yields identical results.
  auto detect_cell = [&](size_t i, size_t j) {
    const WatermarkScheme* scheme = key_scheme_[j];
    // Unregistered tag or failed preparation → rejected (the checked
    // path reports the reason via key_statuses()).
    if (scheme == nullptr || prepared_[j] == nullptr) return;
    if (!dense_ids_[j].empty()) {
      DenseSuspectCounts dense{flat_counts[i].data(),
                               flat_present[i].data()};
      results[i][j] = scheme->Detect(dense, dense_ids_[j].data(),
                                     *prepared_[j], key_options_[j]);
    } else {
      results[i][j] =
          scheme->Detect(suspects[i], *prepared_[j], key_options_[j]);
    }
  };

  if (!parallel) {
    for (size_t i = 0; i < suspects.size(); ++i) {
      for (size_t j = 0; j < keys_.size(); ++j) detect_cell(i, j);
    }
    return results;
  }

  const size_t cells = suspects.size() * keys_.size();
  pool_->ParallelFor(cells, [&](size_t c) {
    detect_cell(c / keys_.size(), c % keys_.size());
  });
  return results;
}

SessionDrainResult BatchDetector::Session::DrainChecked(
    const InterruptContext& interrupt) {
  std::vector<Histogram> batch;
  {
    MutexLock lock(pending_mutex_);
    batch.swap(pending_);
  }
  // The claim freed the whole pending budget: wake any producer blocked
  // in AddSuspectsBounded.
  pending_cv_.NotifyAll();
  return DetectChecked(batch, interrupt);
}

SessionDrainResult BatchDetector::Session::DetectChecked(
    const std::vector<Histogram>& suspects,
    const InterruptContext& interrupt) const {
  SessionDrainResult out;
  out.key_status = key_status_;
  out.verdicts.assign(suspects.size(),
                      std::vector<DetectResult>(keys_.size()));
  out.evaluated.assign(suspects.size() * keys_.size(), 0);
  if (suspects.empty() || keys_.empty()) return out;
  out.status = interrupt.Check();
  if (!out.status.ok()) return out;

  const bool parallel = pool_ != nullptr && pool_->num_threads() > 0;

  // Phase 1 — scatter (see Detect). An interruption here yields no
  // evaluated cells: the flat arrays are an all-or-nothing precondition
  // of the matrix phase.
  std::vector<std::vector<uint64_t>> flat_counts(suspects.size());
  std::vector<std::vector<uint8_t>> flat_present(suspects.size());
  if (!vocab_.empty()) {
    auto scatter = [&](size_t i) {
      flat_counts[i].assign(vocab_.size(), 0);
      flat_present[i].assign(vocab_.size(), 0);
      ScatterSuspect(suspects[i], flat_counts[i].data(),
                     flat_present[i].data());
      return Status::OK();
    };
    if (parallel) {
      out.status = pool_->ParallelForChecked(suspects.size(), interrupt,
                                             scatter);
    } else {
      for (size_t i = 0; i < suspects.size() && out.status.ok(); ++i) {
        out.status = interrupt.Check();
        if (out.status.ok()) out.status = scatter(i);
      }
    }
    if (!out.status.ok()) return out;
  }

  // Phase 2 — the matrix, with per-cell isolation (DESIGN.md §13): a
  // failing cell records a typed error under `errors_mutex` and the body
  // returns OK, so one bad cell never aborts the drain; only a
  // cancellation/deadline stops the loop (within one cell's work — the
  // shard quantum of this phase).
  Mutex errors_mutex;
  std::vector<SessionCellError>& cell_errors = out.cell_errors;
  auto detect_cell_checked = [&](size_t c) {
    const size_t i = c / keys_.size();
    const size_t j = c % keys_.size();
    if (!key_status_[j].ok()) return Status::OK();  // poisoned column
    Status cell = FREQYWM_FAULT_STATUS_KEYED("session/detect_cell",
                                             static_cast<uint64_t>(c));
    if (!cell.ok()) {
      MutexLock lock(errors_mutex);
      cell_errors.push_back(SessionCellError{i, j, std::move(cell)});
      return Status::OK();
    }
    const WatermarkScheme* scheme = key_scheme_[j];
    if (!dense_ids_[j].empty()) {
      DenseSuspectCounts dense{flat_counts[i].data(),
                               flat_present[i].data()};
      out.verdicts[i][j] = scheme->Detect(dense, dense_ids_[j].data(),
                                          *prepared_[j], key_options_[j]);
    } else {
      out.verdicts[i][j] =
          scheme->Detect(suspects[i], *prepared_[j], key_options_[j]);
    }
    out.evaluated[c] = 1;
    return Status::OK();
  };

  const size_t cells = suspects.size() * keys_.size();
  if (parallel) {
    out.status = pool_->ParallelForChecked(cells, interrupt,
                                           detect_cell_checked);
  } else {
    for (size_t c = 0; c < cells; ++c) {
      out.status = interrupt.Check();
      if (!out.status.ok()) break;
      out.status = detect_cell_checked(c);
      if (!out.status.ok()) break;
    }
  }

  // Deterministic error report order regardless of which thread recorded
  // which cell first.
  std::sort(out.cell_errors.begin(), out.cell_errors.end(),
            [](const SessionCellError& a, const SessionCellError& b) {
              return a.suspect != b.suspect ? a.suspect < b.suspect
                                            : a.key < b.key;
            });
  RecordColumnOutcomes(out);
  return out;
}

void BatchDetector::Session::RecordColumnOutcomes(
    const SessionDrainResult& result) const {
  if (options_.circuit_breaker == nullptr || keys_.empty()) return;
  const size_t rows =
      keys_.empty() ? 0 : result.evaluated.size() / keys_.size();
  std::vector<uint8_t> column_failed(keys_.size(), 0);
  for (const SessionCellError& error : result.cell_errors) {
    if (error.key < keys_.size()) column_failed[error.key] = 1;
  }
  for (size_t j = 0; j < keys_.size(); ++j) {
    if (!key_status_[j].ok()) continue;  // poisoned/quarantined column
    if (column_failed[j]) {
      options_.circuit_breaker->RecordFailure(key_fingerprint_[j]);
      continue;
    }
    bool evaluated_any = false;
    for (size_t i = 0; i < rows && !evaluated_any; ++i) {
      evaluated_any = result.evaluated[i * keys_.size() + j] != 0;
    }
    // A cleanly evaluated column is end-to-end evidence the key is
    // healthy; an interrupted drain that never reached the column is
    // evidence of nothing.
    if (evaluated_any) {
      options_.circuit_breaker->RecordSuccess(key_fingerprint_[j]);
    }
  }
}

// ------------------------------------------------------------------- Run

std::vector<std::vector<DetectResult>> BatchDetector::Run(
    const std::vector<Histogram>& suspects,
    std::vector<SchemeKey> keys) const {
  Session session(options_, std::move(keys));
  return session.Detect(suspects);
}

std::vector<std::vector<DetectResult>> BatchDetector::Run(
    const std::vector<Histogram>& suspects, std::vector<SchemeKey> keys,
    ThreadPool* pool) const {
  Session session(options_, std::move(keys), pool);
  return session.Detect(suspects);
}

}  // namespace freqywm
