#ifndef FREQYWM_EXEC_CIRCUIT_BREAKER_H_
#define FREQYWM_EXEC_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace freqywm {

/// Configuration of a `KeyCircuitBreaker` (DESIGN.md §14).
struct CircuitBreakerOptions {
  /// Consecutive failures that trip a key's circuit open (floor of 1).
  uint32_t failure_threshold = 3;

  /// How long an open circuit rejects before allowing one probe.
  std::chrono::nanoseconds cooldown = std::chrono::seconds(1);

  /// Injectable monotonic clock in nanoseconds (the testing seam, like
  /// `AdmissionOptions::clock_nanos`). Null → the real monotonic clock,
  /// confined to circuit_breaker.cc behind the determinism allowlist.
  std::function<int64_t()> clock_nanos;
};

/// Counters of a `KeyCircuitBreaker` — the breaker gauges of the engine
/// health snapshot (exec/health.h).
struct CircuitBreakerStats {
  /// Circuits currently open (cooldown not yet elapsed).
  size_t open_keys = 0;
  /// Times any key's circuit tripped open.
  uint64_t trips = 0;
  /// `Allow` calls rejected by an open circuit.
  uint64_t rejections = 0;
};

/// A cooldown circuit breaker over key identities (DESIGN.md §14): keys
/// whose `Prepare` or `Detect` fail repeatedly are quarantined for a
/// cooldown instead of re-failing — and re-paying for — every drain. The
/// marketplace shape: one tenant's poisoned escrow entry (corrupt payload,
/// flaky out-of-tree scheme) keeps burning its preparation budget on
/// every session; the breaker caps that to one probe per cooldown.
///
/// States per key, keyed by any stable identity (the engine uses
/// `PreparedKeyCache::Fingerprint`):
///   - closed (default): `Allow` passes; `RecordFailure` counts
///     consecutive failures and trips the circuit at the threshold;
///   - open: `Allow` rejects with typed `kUnavailable` (the retryable
///     code — the quarantine is transient by construction) until the
///     cooldown elapses;
///   - half-open: after the cooldown one `Allow` passes as a probe; a
///     failure re-trips the full cooldown, a success closes the circuit.
///
/// Determinism: state depends only on the recorded success/failure
/// sequence and the injected clock — never on thread schedule. With the
/// default real clock the breaker gates only *whether* a key is probed;
/// verdict bytes of keys that run remain schedule-independent.
///
/// Thread-safe; one mutex over the key-state map (std::map, not
/// unordered, so any future iteration is ordered).
class KeyCircuitBreaker {
 public:
  explicit KeyCircuitBreaker(CircuitBreakerOptions options = {});

  KeyCircuitBreaker(const KeyCircuitBreaker&) = delete;
  KeyCircuitBreaker& operator=(const KeyCircuitBreaker&) = delete;

  /// OK when `key` may proceed (closed, or half-open probe); typed
  /// `kUnavailable` while the circuit is open.
  [[nodiscard]] Status Allow(std::string_view key);

  /// Resets `key`'s consecutive-failure count and closes its circuit.
  void RecordSuccess(std::string_view key);

  /// Counts a failure; at `failure_threshold` consecutive failures the
  /// circuit trips open for `cooldown` (a half-open probe failure
  /// re-trips immediately).
  void RecordFailure(std::string_view key);

  CircuitBreakerStats stats() const;

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  struct KeyState {
    uint32_t consecutive_failures = 0;
    bool open = false;
    /// When an open circuit next allows a probe (clock nanoseconds).
    int64_t reopen_at_nanos = 0;
  };

  int64_t Now() const;

  const CircuitBreakerOptions options_;
  mutable Mutex mu_;
  std::map<std::string, KeyState, std::less<>> keys_ GUARDED_BY(mu_);
  uint64_t trips_ GUARDED_BY(mu_) = 0;
  uint64_t rejections_ GUARDED_BY(mu_) = 0;
};

}  // namespace freqywm

#endif  // FREQYWM_EXEC_CIRCUIT_BREAKER_H_
