#include "exec/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "exec/fault_injection.h"

namespace freqywm {
namespace {

// The monotonic-clock read behind the default `AdmissionOptions::
// clock_nanos` (determinism allowlist: admission gates *whether* work is
// admitted, never *what* admitted work computes — verdict bytes derive
// only from (suspect, key, options)).
int64_t RealNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kWaitQuantumNanos = 10 * 1000 * 1000;  // 10 ms

double EffectiveBurst(const AdmissionOptions& options) {
  if (options.rate_per_unit_time <= 0) return 0;
  if (options.burst > 0) return options.burst;
  return std::max(1.0, options.rate_per_unit_time);
}

}  // namespace

void AdmissionController::Permit::Release() {
  if (controller_ != nullptr && units_ > 0) {
    controller_->Release(units_);
  }
  controller_ = nullptr;
  units_ = 0;
}

void AdmissionController::Permit::ReleasePartial(size_t units) {
  if (controller_ == nullptr) return;
  const size_t give = std::min(units, units_);
  if (give == 0) return;
  controller_->Release(give);
  units_ -= give;
  if (units_ == 0) controller_ = nullptr;
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)),
      effective_burst_(EffectiveBurst(options_)),
      tokens_(effective_burst_) {}

int64_t AdmissionController::Now() const {
  return options_.clock_nanos ? options_.clock_nanos() : RealNowNanos();
}

double AdmissionController::RefillLocked(int64_t now) {
  if (options_.rate_per_unit_time <= 0) return tokens_;
  if (!bucket_initialized_) {
    // First observation of the clock: the bucket starts full. Anchoring
    // here (not in the constructor) keeps construction clock-free under
    // an injected clock.
    bucket_initialized_ = true;
    last_refill_nanos_ = now;
    return tokens_;
  }
  const int64_t elapsed = now - last_refill_nanos_;
  if (elapsed > 0) {
    tokens_ = std::min(effective_burst_,
                       tokens_ + options_.rate_per_unit_time *
                                     (static_cast<double>(elapsed) / 1e9));
    last_refill_nanos_ = now;
  }
  return tokens_;
}

int64_t AdmissionController::NanosUntilTokensLocked(double units,
                                                    int64_t now) {
  if (options_.rate_per_unit_time <= 0) return 0;
  const double level = RefillLocked(now);
  if (level >= units) return 0;
  const double nanos =
      std::ceil((units - level) / options_.rate_per_unit_time * 1e9);
  constexpr double kMaxNanos = 9.0e18;
  if (nanos >= kMaxNanos) return std::numeric_limits<int64_t>::max();
  return static_cast<int64_t>(nanos);
}

Result<AdmissionController::Permit> AdmissionController::TryAdmit(
    size_t units, const Deadline& deadline) {
  if (units == 0) {
    return Status::InvalidArgument("admission of zero work units");
  }
  FREQYWM_FAULT_POINT("admission/acquire");
  const double want = static_cast<double>(units);
  MutexLock lock(mu_);
  if (deadline.finite() && deadline.expired()) {
    ++shed_deadline_;
    return Status::ResourceExhausted(
        "shed: deadline already expired at admission");
  }
  if (options_.max_in_flight > 0 &&
      in_flight_ + units > options_.max_in_flight) {
    ++shed_capacity_;
    return Status::ResourceExhausted(
        "shed: in-flight capacity exhausted (" +
        std::to_string(in_flight_) + "/" +
        std::to_string(options_.max_in_flight) + " units)");
  }
  if (options_.rate_per_unit_time > 0) {
    if (RefillLocked(Now()) < want) {
      ++shed_rate_;
      return Status::ResourceExhausted("shed: rate limit exceeded");
    }
    tokens_ -= want;
  }
  in_flight_ += units;
  admitted_ += units;
  return Permit(this, units);
}

Result<AdmissionController::Permit> AdmissionController::Admit(
    size_t units, const InterruptContext& interrupt) {
  if (units == 0) {
    return Status::InvalidArgument("admission of zero work units");
  }
  FREQYWM_FAULT_POINT("admission/acquire");
  const double want = static_cast<double>(units);
  MutexLock lock(mu_);

  // Requests that can never be satisfied shed immediately instead of
  // waiting forever.
  if (options_.max_in_flight > 0 && units > options_.max_in_flight) {
    ++shed_capacity_;
    return Status::ResourceExhausted(
        "shed: request of " + std::to_string(units) +
        " units exceeds max_in_flight " +
        std::to_string(options_.max_in_flight));
  }
  if (options_.rate_per_unit_time > 0 && want > effective_burst_) {
    ++shed_rate_;
    return Status::ResourceExhausted(
        "shed: request exceeds token-bucket burst capacity");
  }
  // Bounded waiting room: beyond the pending budget, callers are shed,
  // not queued — this is what caps the memory an overload can pin.
  if (options_.max_pending > 0 && pending_ + units > options_.max_pending) {
    ++shed_capacity_;
    return Status::ResourceExhausted(
        "shed: admission waiting room full (" + std::to_string(pending_) +
        "/" + std::to_string(options_.max_pending) + " units pending)");
  }
  // Deadline-aware admission: if the bucket cannot possibly produce the
  // tokens before the caller's deadline, the work would expire while
  // queued — reject it now so the queue never holds dead work.
  if (interrupt.deadline.finite()) {
    const int64_t wait = NanosUntilTokensLocked(want, Now());
    if (wait > interrupt.deadline.remaining().count()) {
      ++shed_deadline_;
      return Status::ResourceExhausted(
          "shed: deadline would expire while queued for rate tokens");
    }
  }

  pending_ += units;
  Status verdict = Status::OK();
  for (;;) {
    if (interrupt.cancel.cancelled()) {
      verdict = Status::Cancelled("operation cancelled");
      break;
    }
    if (interrupt.deadline.finite() && interrupt.deadline.expired()) {
      // Expired while waiting on in-flight capacity (token waits are
      // pre-screened above): the work was never admitted, so this is a
      // shed, not a deadline failure of running work.
      ++shed_deadline_;
      verdict = Status::ResourceExhausted(
          "shed: deadline expired while queued for capacity");
      break;
    }
    const bool capacity_ok =
        options_.max_in_flight == 0 ||
        in_flight_ + units <= options_.max_in_flight;
    const int64_t token_wait =
        options_.rate_per_unit_time > 0 ? NanosUntilTokensLocked(want, Now())
                                        : 0;
    if (capacity_ok && token_wait == 0) {
      if (options_.rate_per_unit_time > 0) tokens_ -= want;
      in_flight_ += units;
      admitted_ += units;
      break;
    }
    // Bounded sleep: woken early by a release; re-checks interruption at
    // least once per quantum even if no release ever comes. Under an
    // injected clock the token wait is exact, so sleeping the smaller of
    // (quantum, token_wait) never oversleeps a refill.
    int64_t nap = kWaitQuantumNanos;
    if (!capacity_ok) {
      // waiting on a release; quantum only
    } else if (token_wait > 0 && token_wait < nap) {
      nap = token_wait;
    }
    if (options_.clock_nanos) {
      // Fake clock: real sleeping would deadlock a single-threaded test
      // (time only advances when the test advances it). Yield the lock
      // briefly and re-poll.
      released_cv_.WaitFor(mu_, std::chrono::nanoseconds(1));
    } else {
      released_cv_.WaitFor(mu_, std::chrono::nanoseconds(nap));
    }
  }
  pending_ -= units;
  if (!verdict.ok()) return verdict;
  return Permit(this, units);
}

void AdmissionController::Release(size_t units) {
  {
    MutexLock lock(mu_);
    in_flight_ -= std::min(units, in_flight_);
  }
  released_cv_.NotifyAll();
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(mu_);
  AdmissionStats out;
  out.admitted = admitted_;
  out.shed_rate = shed_rate_;
  out.shed_capacity = shed_capacity_;
  out.shed_deadline = shed_deadline_;
  out.in_flight = in_flight_;
  out.pending = pending_;
  return out;
}

}  // namespace freqywm
