#include "baselines/wm_rvs.h"

#include <cassert>
#include <cmath>

#include "crypto/sha256.h"
#include "exec/thread_pool.h"

namespace freqywm {
namespace {

uint64_t KeyedHash(const Token& token, uint64_t key_seed,
                   const char* domain) {
  Sha256 h;
  h.Update(domain);
  h.Update(std::to_string(key_seed));
  h.Update(token);
  return DigestPrefixU64(h.Finish());
}

int64_t Pow10(int p) {
  int64_t v = 1;
  for (int i = 0; i < p; ++i) v *= 10;
  return v;
}

/// The per-token embedding decision, pure in (token, count, key): either
/// "leave alone" (`modify == false`) or the substituted count plus what
/// the side-table needs to reverse it.
struct RvsDecision {
  bool modify = false;
  int64_t modified = 0;
  int digit_position = 0;
  int original_digit = 0;
};

RvsDecision DecideEntry(const HistogramEntry& e, const WmRvsOptions& options) {
  RvsDecision d;
  uint64_t h = KeyedHash(e.token, options.key_seed, "wm-rvs:");
  int pos = static_cast<int>(
      h % static_cast<uint64_t>(options.max_digit_position + 1));
  int bit_index =
      static_cast<int>((h >> 8) % options.watermark_bits.size());
  int bit = options.watermark_bits[static_cast<size_t>(bit_index)];

  int64_t value = static_cast<int64_t>(e.count);
  int64_t scale = Pow10(pos);
  if (value < scale) return d;  // digit position does not exist

  int original_digit = static_cast<int>((value / scale) % 10);
  // Keyed substitution digit carrying the watermark bit: even digits
  // encode 0, odd digits encode 1.
  int candidate = static_cast<int>((h >> 16) % 10);
  if ((candidate % 2) != bit) candidate = (candidate + 1) % 10;

  int64_t modified =
      value + static_cast<int64_t>(candidate - original_digit) * scale;
  if (modified < 1) return d;  // keep counts positive

  d.modify = true;
  d.modified = modified;
  d.digit_position = pos;
  d.original_digit = original_digit;
  return d;
}

}  // namespace

Histogram EmbedWmRvs(const Histogram& original, const WmRvsOptions& options,
                     WmRvsSideTable* side_table) {
  return EmbedWmRvs(original, options, side_table, ExecContext{});
}

Histogram EmbedWmRvs(const Histogram& original, const WmRvsOptions& options,
                     WmRvsSideTable* side_table, const ExecContext& exec) {
  assert(!options.watermark_bits.empty());
  const auto& entries = original.entries();

  // Phase 1 — the keyed-hash decisions, one SHA-256 per entry, written by
  // rank index (pure, so any thread may compute any entry).
  std::vector<RvsDecision> decisions(entries.size());
  auto decide = [&](size_t rank) {
    decisions[rank] = DecideEntry(entries[rank], options);
  };
  if (exec.parallel() && entries.size() >= 256) {
    exec.pool->ParallelFor(entries.size(), decide);
  } else {
    for (size_t rank = 0; rank < entries.size(); ++rank) decide(rank);
  }

  // Phase 2 — serial application in rank order, reproducing the serial
  // path's count mutations and side-table order exactly.
  Histogram out = original;
  if (side_table) side_table->entries.clear();
  for (size_t rank = 0; rank < entries.size(); ++rank) {
    const RvsDecision& d = decisions[rank];
    if (!d.modify) continue;
    Status s = out.SetCount(entries[rank].token,
                            static_cast<uint64_t>(d.modified));
    assert(s.ok());
    (void)s;
    if (side_table) {
      side_table->entries.push_back(WmRvsSideTable::Entry{
          entries[rank].token, d.digit_position, d.original_digit});
    }
  }
  return out;
}

Histogram ReverseWmRvs(const Histogram& watermarked,
                       const WmRvsSideTable& side_table) {
  Histogram out = watermarked;
  for (const auto& entry : side_table.entries) {
    auto count = out.CountOf(entry.token);
    if (!count) continue;
    int64_t value = static_cast<int64_t>(*count);
    int64_t scale = Pow10(entry.digit_position);
    int current_digit = static_cast<int>((value / scale) % 10);
    int64_t restored =
        value +
        static_cast<int64_t>(entry.original_digit - current_digit) * scale;
    Status s = out.SetCount(entry.token, static_cast<uint64_t>(restored));
    assert(s.ok());
    (void)s;
  }
  return out;
}

DetectResult DetectWmRvs(const Histogram& suspect, const WmRvsOptions& options,
                         const DetectOptions& detect) {
  DetectResult result;
  if (options.watermark_bits.empty() || options.max_digit_position < 0) {
    return result;
  }
  for (const auto& e : suspect.entries()) {
    uint64_t h = KeyedHash(e.token, options.key_seed, "wm-rvs:");
    int pos = static_cast<int>(
        h % static_cast<uint64_t>(options.max_digit_position + 1));
    int bit_index =
        static_cast<int>((h >> 8) % options.watermark_bits.size());
    int bit = options.watermark_bits[static_cast<size_t>(bit_index)];

    int64_t value = static_cast<int64_t>(e.count);
    int64_t scale = Pow10(pos);
    if (value < scale) continue;  // digit position does not exist
    ++result.pairs_found;

    // The substitution digit the embedder would have written.
    int candidate = static_cast<int>((h >> 16) % 10);
    if ((candidate % 2) != bit) candidate = (candidate + 1) % 10;
    if (static_cast<int>((value / scale) % 10) == candidate) {
      ++result.pairs_verified;
    }
  }
  if (result.pairs_found > 0) {
    result.verified_fraction = static_cast<double>(result.pairs_verified) /
                               static_cast<double>(result.pairs_found);
  }
  result.accepted = result.pairs_found > 0 &&
                    result.pairs_verified >= detect.min_pairs &&
                    2 * result.pairs_verified > result.pairs_found;
  return result;
}

}  // namespace freqywm
