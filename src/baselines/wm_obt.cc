#include "baselines/wm_obt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "crypto/sha256.h"
#include "exec/thread_pool.h"

namespace freqywm {
namespace {

/// Inclusive delta bounds for one value under the per-value change
/// constraint. The GA precomputes these once per partition; the reference
/// path recomputes them per gene access (kept for the oracle).
struct GeneBounds {
  int64_t lo = 0;
  int64_t hi = 0;
};

GeneBounds BoundsFor(int64_t value, const WmObtOptions& opt) {
  GeneBounds b;
  b.lo = static_cast<int64_t>(
      std::floor(opt.min_change_fraction * static_cast<double>(value)));
  b.hi = static_cast<int64_t>(
      std::floor(opt.max_change_fraction * static_cast<double>(value)));
  b.lo = std::max(b.lo, 1 - value);  // counts must remain >= 1
  if (b.hi < b.lo) b.hi = b.lo;
  return b;
}

/// Distance (in genes) to the next mutated gene: geometric with success
/// probability `rate`, capped at `n` ("no further mutation in this child").
/// One draw replaces a Bernoulli trial per gene — identically distributed,
/// ~1/rate times fewer RNG draws.
size_t GeometricSkip(Rng& rng, double rate, size_t n) {
  if (rate >= 1.0) return 0;
  if (rate <= 0.0) return n;
  const double d = std::log1p(-rng.UniformDouble()) / std::log1p(-rate);
  if (!(d < static_cast<double>(n))) return n;
  return static_cast<size_t>(d);
}

/// Minimum offspring-evaluation work (individuals x genes) before the GA
/// fans a generation's fitness pass out across the pool: the dispatch
/// overhead (one queued task per helper, mutex + wakeup) only amortizes
/// over thousands of sigmoid evaluations. Purely a latency knob: the
/// fitness function is pure, so the threshold never changes output bytes.
constexpr size_t kParallelEvalMinWork = 8192;

/// The WM-OBT genetic optimizer for one partition, restructured for the
/// hot path (DESIGN.md §9):
///  * flat ping-pong population buffers — zero allocation per child/eval;
///  * per-individual running sum / sum-of-squares maintained while genes
///    are written, so each fitness evaluation is one sigmoid pass with
///    O(1) mean/stddev (`HidingStatisticFromMoments`);
///  * crossover bits taken 64 per `NextU64`, mutation sites by geometric
///    skipping — distributionally identical to the reference's per-gene
///    Bernoulli trials;
///  * offspring construction is serial on the partition's RNG stream
///    (deterministic), fitness evaluation of a generation is pure and
///    fans out across `exec` when the partition is large enough.
class WmObtGa {
 public:
  WmObtGa(const std::vector<int64_t>& values, bool maximize,
          const WmObtOptions& opt, Rng& rng, const ExecContext& exec)
      : values_(values),
        maximize_(maximize),
        opt_(opt),
        rng_(rng),
        exec_(exec),
        n_(values.size()),
        pop_(opt.population) {}

  std::vector<int64_t> Run() {
    if (n_ == 0 || pop_ == 0) return {};
    bounds_.resize(n_);
    for (size_t i = 0; i < n_; ++i) bounds_[i] = BoundsFor(values_[i], opt_);

    Buffers cur(pop_, n_), next(pop_, n_);
    for (size_t c = 0; c < pop_; ++c) RandomIndividual(cur, c);
    Evaluate(cur, /*first=*/0);

    for (size_t gen = 0; gen < opt_.generations; ++gen) {
      // Cooperative cancellation at generation boundaries (DESIGN.md
      // §13): an interrupted GA stops evolving and returns its best so
      // far. The caller (WmObtScheme::Embed) re-checks the context after
      // the embed and discards the partial result with a typed status,
      // so early-broken bytes never masquerade as a completed embed.
      if (exec_.interrupted()) break;
      // Elitism: carry the best individual (lowest index on ties) over.
      const size_t best = ArgBest(cur);
      next.CopyFrom(cur, best, /*to=*/0);
      for (size_t c = 1; c < pop_; ++c) MakeChild(cur, next, c);
      Evaluate(next, /*first=*/1);  // slot 0 keeps the elite's fitness
      std::swap(cur, next);
    }

    const size_t best = ArgBest(cur);
    const int64_t* genes = cur.Genes(best);
    return std::vector<int64_t>(genes, genes + n_);
  }

 private:
  /// Flat population storage: `pop` individuals of `n` genes each, plus
  /// their running moments and fitness.
  struct Buffers {
    Buffers(size_t pop, size_t n)
        : stride(n), genes(pop * n), sum(pop), sum_squares(pop),
          fitness(pop) {}

    int64_t* Genes(size_t c) { return genes.data() + c * stride; }
    const int64_t* Genes(size_t c) const {
      return genes.data() + c * stride;
    }

    void CopyFrom(const Buffers& src, size_t from, size_t to) {
      std::copy(src.Genes(from), src.Genes(from) + stride, Genes(to));
      sum[to] = src.sum[from];
      sum_squares[to] = src.sum_squares[from];
      fitness[to] = src.fitness[from];
    }

    size_t stride;
    std::vector<int64_t> genes;
    std::vector<double> sum;
    std::vector<double> sum_squares;
    std::vector<double> fitness;
  };

  size_t ArgBest(const Buffers& b) const {
    size_t best = 0;
    for (size_t c = 1; c < pop_; ++c) {
      if (b.fitness[c] > b.fitness[best]) best = c;
    }
    return best;
  }

  size_t Tournament(const Buffers& b) {
    const size_t a = static_cast<size_t>(rng_.UniformU64(pop_));
    const size_t c = static_cast<size_t>(rng_.UniformU64(pop_));
    return b.fitness[a] >= b.fitness[c] ? a : c;
  }

  void RandomIndividual(Buffers& b, size_t c) {
    int64_t* genes = b.Genes(c);
    double sum = 0, sum_squares = 0;
    for (size_t i = 0; i < n_; ++i) {
      genes[i] = rng_.UniformInt(bounds_[i].lo, bounds_[i].hi);
      const double m = static_cast<double>(values_[i] + genes[i]);
      sum += m;
      sum_squares += m * m;
    }
    b.sum[c] = sum;
    b.sum_squares[c] = sum_squares;
  }

  /// Tournament selection + uniform crossover + per-gene mutation, genes
  /// written straight into `next`'s slot `c` with moments accumulated in
  /// the same pass. Parent genes are already within bounds and mutation
  /// draws within bounds, so no clamp is needed.
  void MakeChild(const Buffers& cur, Buffers& next, size_t c) {
    const int64_t* pa = cur.Genes(Tournament(cur));
    const int64_t* pb = cur.Genes(Tournament(cur));
    int64_t* child = next.Genes(c);
    double sum = 0, sum_squares = 0;
    uint64_t mask = 0;
    size_t mask_bits = 0;
    size_t next_mutation = GeometricSkip(rng_, opt_.mutation_rate, n_);
    for (size_t i = 0; i < n_; ++i) {
      if (mask_bits == 0) {
        mask = rng_.NextU64();
        mask_bits = 64;
      }
      int64_t d = (mask & 1) != 0 ? pa[i] : pb[i];
      mask >>= 1;
      --mask_bits;
      if (i == next_mutation) {
        d = rng_.UniformInt(bounds_[i].lo, bounds_[i].hi);
        const size_t skip = GeometricSkip(rng_, opt_.mutation_rate, n_);
        next_mutation = skip >= n_ - i ? n_ : i + 1 + skip;
      }
      child[i] = d;
      const double m = static_cast<double>(values_[i] + d);
      sum += m;
      sum_squares += m * m;
    }
    next.sum[c] = sum;
    next.sum_squares[c] = sum_squares;
  }

  /// Fitness of individuals [first, pop): pure given the already-written
  /// genes and moments, so the pass fans out across the pool for large
  /// partitions — same doubles at any thread count.
  void Evaluate(Buffers& b, size_t first) {
    const size_t count = pop_ - first;
    auto body = [&](size_t k) {
      const size_t c = first + k;
      const double stat =
          HidingStatisticFromMoments(values_.data(), b.Genes(c), n_, b.sum[c],
                                     b.sum_squares[c], opt_.condition);
      b.fitness[c] = maximize_ ? stat : -stat;
    };
    if (exec_.parallel() && count * n_ >= kParallelEvalMinWork) {
      exec_.pool->ParallelFor(count, body);
    } else {
      for (size_t k = 0; k < count; ++k) body(k);
    }
  }

  const std::vector<int64_t>& values_;
  const bool maximize_;
  const WmObtOptions& opt_;
  Rng& rng_;
  const ExecContext& exec_;
  const size_t n_;
  const size_t pop_;
  std::vector<GeneBounds> bounds_;
};

/// Optimizes the deltas of one partition with the pre-parallel generational
/// GA, kept verbatim as the oracle behind `EmbedWmObtReference`: tournament
/// selection, uniform crossover, per-gene mutation, one shared RNG stream,
/// full-pass statistics and a fresh `modified[]` per evaluation.
std::vector<int64_t> OptimizePartitionReference(
    const std::vector<int64_t>& values, bool maximize,
    const WmObtOptions& opt, Rng& rng) {
  const size_t n = values.size();
  if (n == 0) return {};

  auto delta_bounds = [&](int64_t value) {
    GeneBounds b = BoundsFor(value, opt);
    return std::pair<int64_t, int64_t>(b.lo, b.hi);
  };
  auto clamp_delta = [&](int64_t value, int64_t delta) {
    auto [lo, hi] = delta_bounds(value);
    return std::clamp(delta, lo, hi);
  };
  auto random_delta = [&](int64_t value) {
    auto [lo, hi] = delta_bounds(value);
    return rng.UniformInt(lo, hi);
  };
  auto evaluate = [&](const std::vector<int64_t>& deltas) {
    std::vector<int64_t> modified(n);
    for (size_t i = 0; i < n; ++i) modified[i] = values[i] + deltas[i];
    double s = HidingStatistic(modified, opt.condition);
    return maximize ? s : -s;
  };

  struct Individual {
    std::vector<int64_t> deltas;
    double fitness = 0;
  };
  auto random_individual = [&]() {
    Individual ind;
    ind.deltas.resize(n);
    for (size_t i = 0; i < n; ++i) {
      ind.deltas[i] = random_delta(values[i]);
    }
    ind.fitness = evaluate(ind.deltas);
    return ind;
  };

  std::vector<Individual> pop;
  pop.reserve(opt.population);
  for (size_t i = 0; i < opt.population; ++i) pop.push_back(random_individual());

  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop[rng.UniformU64(pop.size())];
    const Individual& b = pop[rng.UniformU64(pop.size())];
    return a.fitness >= b.fitness ? a : b;
  };

  for (size_t gen = 0; gen < opt.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(opt.population);
    // Elitism: carry the best individual over.
    size_t best = 0;
    for (size_t i = 1; i < pop.size(); ++i) {
      if (pop[i].fitness > pop[best].fitness) best = i;
    }
    next.push_back(pop[best]);

    while (next.size() < opt.population) {
      const Individual& pa = tournament();
      const Individual& pb = tournament();
      Individual child;
      child.deltas.resize(n);
      for (size_t i = 0; i < n; ++i) {
        child.deltas[i] = rng.Bernoulli(0.5) ? pa.deltas[i] : pb.deltas[i];
        if (rng.Bernoulli(opt.mutation_rate)) {
          child.deltas[i] = random_delta(values[i]);
        }
        child.deltas[i] = clamp_delta(values[i], child.deltas[i]);
      }
      child.fitness = evaluate(child.deltas);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }

  size_t best = 0;
  for (size_t i = 1; i < pop.size(); ++i) {
    if (pop[i].fitness > pop[best].fitness) best = i;
  }
  return pop[best].deltas;
}

/// Secret partition of a token: keyed hash mod num_partitions.
size_t PartitionOf(const Token& token, uint64_t key_seed,
                   size_t num_partitions) {
  Sha256 h;
  h.Update("wm-obt-partition:");
  std::string key = std::to_string(key_seed);
  h.Update(key);
  h.Update(token);
  return static_cast<size_t>(DigestPrefixU64(h.Finish()) % num_partitions);
}

/// Groups histogram ranks by secret partition. The per-rank keyed hash is
/// one SHA-256 each, so the assignment pass fans out across `exec`; the
/// grouping itself is serial and rank-ordered either way.
std::vector<std::vector<size_t>> PartitionRanks(const Histogram& hist,
                                                const WmObtOptions& options,
                                                const ExecContext& exec) {
  const auto& entries = hist.entries();
  std::vector<size_t> partition_of(entries.size());
  auto assign = [&](size_t rank) {
    partition_of[rank] = PartitionOf(entries[rank].token, options.key_seed,
                                     options.num_partitions);
  };
  if (exec.parallel() && entries.size() >= 1024) {
    exec.pool->ParallelFor(entries.size(), assign);
  } else {
    for (size_t rank = 0; rank < entries.size(); ++rank) assign(rank);
  }
  std::vector<std::vector<size_t>> partitions(options.num_partitions);
  for (size_t rank = 0; rank < entries.size(); ++rank) {
    partitions[partition_of[rank]].push_back(rank);
  }
  return partitions;
}

}  // namespace

double HidingStatistic(const std::vector<int64_t>& values, double condition) {
  const size_t n = values.size();
  if (n == 0) return 0.0;
  double mean = 0;
  for (int64_t v : values) mean += static_cast<double>(v);
  mean /= static_cast<double>(n);
  double var = 0;
  for (int64_t v : values) {
    var += (static_cast<double>(v) - mean) * (static_cast<double>(v) - mean);
  }
  double sd = std::sqrt(var / static_cast<double>(n));
  if (sd == 0) sd = 1.0;
  double ref = mean + condition * sd;

  double stat = 0;
  for (int64_t v : values) {
    double zscaled = (static_cast<double>(v) - ref) / sd;
    stat += 1.0 / (1.0 + std::exp(-zscaled));
  }
  return stat / static_cast<double>(n);
}

double HidingStatisticFromMoments(const int64_t* values, const int64_t* deltas,
                                  size_t n, double sum, double sum_squares,
                                  double condition) {
  if (n == 0) return 0.0;
  const double inv_n = 1.0 / static_cast<double>(n);
  const double mean = sum * inv_n;
  double var = sum_squares * inv_n - mean * mean;
  if (var < 0) var = 0;  // cancellation on near-constant partitions
  double sd = std::sqrt(var);
  if (sd == 0) sd = 1.0;
  const double ref = mean + condition * sd;
  const double inv_sd = 1.0 / sd;
  double stat = 0;
  for (size_t i = 0; i < n; ++i) {
    const double z =
        (static_cast<double>(values[i] + deltas[i]) - ref) * inv_sd;
    stat += 1.0 / (1.0 + std::exp(-z));
  }
  return stat * inv_n;
}

uint64_t WmObtPartitionStreamSeed(uint64_t key_seed, size_t partition) {
  Sha256 h;
  h.Update("wm-obt-stream:");
  h.Update(std::to_string(key_seed));
  h.Update(":");
  h.Update(std::to_string(partition));
  return DigestPrefixU64(h.Finish());
}

Histogram EmbedWmObt(const Histogram& original, const WmObtOptions& options,
                     const ExecContext& exec, WmObtStats* stats) {
  assert(options.num_partitions > 0 && !options.watermark_bits.empty() &&
         options.population > 0);

  const auto& entries = original.entries();
  std::vector<std::vector<size_t>> partitions =
      PartitionRanks(original, options, exec);

  // Per-partition inputs gathered serially, outputs written by index —
  // each partition's GA then depends only on (key_seed, p, its values),
  // never on thread scheduling or on the other partitions.
  std::vector<std::vector<int64_t>> values(options.num_partitions);
  std::vector<std::vector<int64_t>> deltas(options.num_partitions);
  for (size_t p = 0; p < options.num_partitions; ++p) {
    values[p].reserve(partitions[p].size());
    for (size_t rank : partitions[p]) {
      values[p].push_back(static_cast<int64_t>(entries[rank].count));
    }
  }

  // The outer partition loop saturates the pool whenever there are at
  // least as many partitions as threads; the GA's nested offspring
  // fan-out would then only add queue contention, so it gets the pool
  // only when partitions are scarce. Either way the fitness pass is
  // pure — the choice never changes output bytes.
  const size_t total_threads =
      exec.parallel() ? exec.pool->num_threads() + 1 : 1;
  // When the partition loop already saturates the pool, the nested GA
  // runs serially — but it must keep the caller's cancellation/deadline,
  // so only the pool is stripped, never the whole context.
  ExecContext ga_serial = exec;
  ga_serial.pool = nullptr;
  const ExecContext ga_exec =
      options.num_partitions < total_threads ? exec : ga_serial;
  auto optimize = [&](size_t p) {
    if (values[p].empty()) return;
    // Interrupted: skip the remaining partitions outright (their deltas
    // stay empty). The scheme-level post-check turns this into a typed
    // status before any partial histogram escapes.
    if (exec.interrupted()) return;
    const int bit = options.watermark_bits[p % options.watermark_bits.size()];
    Rng rng(WmObtPartitionStreamSeed(options.key_seed, p));
    WmObtGa ga(values[p], /*maximize=*/bit == 1, options, rng, ga_exec);
    deltas[p] = ga.Run();
  };
  if (exec.parallel()) {
    exec.pool->ParallelFor(options.num_partitions, optimize);
  } else {
    for (size_t p = 0; p < options.num_partitions; ++p) optimize(p);
  }

  Histogram out = original;
  if (stats) {
    stats->partition_statistic.assign(options.num_partitions, 0.0);
    stats->decoded_bits.assign(options.num_partitions, 0);
    stats->decode_threshold = options.decode_threshold;
  }
  std::vector<int64_t> modified;
  for (size_t p = 0; p < options.num_partitions; ++p) {
    const auto& ranks = partitions[p];
    if (ranks.empty()) continue;
    // A degenerate GA (population == 0, asserted above but reachable in
    // release builds) yields no deltas; leave the partition unmodified
    // rather than index past the empty vector.
    if (deltas[p].size() != ranks.size()) continue;
    modified.resize(ranks.size());
    for (size_t i = 0; i < ranks.size(); ++i) {
      modified[i] = values[p][i] + deltas[p][i];
      Status s = out.SetCount(entries[ranks[i]].token,
                              static_cast<uint64_t>(modified[i]));
      assert(s.ok());
      (void)s;
    }
    if (stats) {
      double stat = HidingStatistic(modified, options.condition);
      stats->partition_statistic[p] = stat;
      // Decode: statistic above threshold reads as bit 1.
      stats->decoded_bits[p] = stat >= options.decode_threshold ? 1 : 0;
    }
  }
  return out;
}

Histogram EmbedWmObtReference(const Histogram& original,
                              const WmObtOptions& options, Rng& rng,
                              WmObtStats* stats) {
  assert(options.num_partitions > 0 && !options.watermark_bits.empty());

  std::vector<std::vector<size_t>> partitions =
      PartitionRanks(original, options, ExecContext{});
  const auto& entries = original.entries();

  Histogram out = original;
  if (stats) {
    stats->partition_statistic.assign(options.num_partitions, 0.0);
    stats->decoded_bits.assign(options.num_partitions, 0);
    stats->decode_threshold = options.decode_threshold;
  }

  for (size_t p = 0; p < options.num_partitions; ++p) {
    const auto& ranks = partitions[p];
    if (ranks.empty()) continue;
    int bit = options.watermark_bits[p % options.watermark_bits.size()];

    std::vector<int64_t> values;
    values.reserve(ranks.size());
    for (size_t rank : ranks) {
      values.push_back(static_cast<int64_t>(entries[rank].count));
    }
    std::vector<int64_t> deltas = OptimizePartitionReference(
        values, /*maximize=*/bit == 1, options, rng);

    std::vector<int64_t> modified(values.size());
    for (size_t i = 0; i < ranks.size(); ++i) {
      modified[i] = values[i] + deltas[i];
      Status s = out.SetCount(entries[ranks[i]].token,
                              static_cast<uint64_t>(modified[i]));
      assert(s.ok());
      (void)s;
    }
    if (stats) {
      double stat = HidingStatistic(modified, options.condition);
      stats->partition_statistic[p] = stat;
      // Decode: statistic above threshold reads as bit 1.
      stats->decoded_bits[p] = stat >= options.decode_threshold ? 1 : 0;
    }
  }
  return out;
}

std::vector<double> WmObtPartitionStatistics(const Histogram& suspect,
                                             const WmObtOptions& options) {
  std::vector<std::vector<int64_t>> values(options.num_partitions);
  for (const auto& e : suspect.entries()) {
    values[PartitionOf(e.token, options.key_seed, options.num_partitions)]
        .push_back(static_cast<int64_t>(e.count));
  }
  std::vector<double> stats(options.num_partitions, -1.0);
  for (size_t p = 0; p < options.num_partitions; ++p) {
    if (values[p].empty()) continue;
    stats[p] = HidingStatistic(values[p], options.condition);
  }
  return stats;
}

DetectResult DetectWmObt(const Histogram& suspect, const WmObtOptions& options,
                         const DetectOptions& detect) {
  DetectResult result;
  if (options.num_partitions == 0 || options.watermark_bits.empty()) {
    return result;
  }
  std::vector<double> stats = WmObtPartitionStatistics(suspect, options);
  for (size_t p = 0; p < stats.size(); ++p) {
    if (stats[p] < 0) continue;  // empty partition
    ++result.pairs_found;
    int decoded = stats[p] >= options.decode_threshold ? 1 : 0;
    int expected = options.watermark_bits[p % options.watermark_bits.size()];
    if (decoded == expected) ++result.pairs_verified;
  }
  if (result.pairs_found > 0) {
    result.verified_fraction = static_cast<double>(result.pairs_verified) /
                               static_cast<double>(result.pairs_found);
  }
  size_t mismatched = result.pairs_found - result.pairs_verified;
  result.accepted = result.pairs_found > 0 &&
                    result.pairs_verified >= detect.min_pairs &&
                    mismatched <= detect.pair_threshold;
  return result;
}

}  // namespace freqywm
