#include "baselines/wm_obt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "crypto/sha256.h"

namespace freqywm {
namespace {

/// The hiding statistic of Shehab et al.: a smoothed "fraction of values
/// above the reference point mean + c * stddev". Sigmoid-smoothed so the GA
/// has a gradient to climb.
double HidingStatistic(const std::vector<int64_t>& values, double condition) {
  const size_t n = values.size();
  if (n == 0) return 0.0;
  double mean = 0;
  for (int64_t v : values) mean += static_cast<double>(v);
  mean /= static_cast<double>(n);
  double var = 0;
  for (int64_t v : values) {
    var += (static_cast<double>(v) - mean) * (static_cast<double>(v) - mean);
  }
  double sd = std::sqrt(var / static_cast<double>(n));
  if (sd == 0) sd = 1.0;
  double ref = mean + condition * sd;

  double stat = 0;
  for (int64_t v : values) {
    double zscaled = (static_cast<double>(v) - ref) / sd;
    stat += 1.0 / (1.0 + std::exp(-zscaled));
  }
  return stat / static_cast<double>(n);
}

/// One GA individual: integer deltas for each value of a partition.
struct Individual {
  std::vector<int64_t> deltas;
  double fitness = 0;
};

/// Optimizes the deltas of one partition with a simple generational GA:
/// tournament selection, uniform crossover, per-gene mutation.
std::vector<int64_t> OptimizePartition(const std::vector<int64_t>& values,
                                       bool maximize,
                                       const WmObtOptions& opt, Rng& rng) {
  const size_t n = values.size();
  if (n == 0) return {};

  auto delta_bounds = [&](int64_t value) {
    int64_t lo = static_cast<int64_t>(
        std::floor(opt.min_change_fraction * static_cast<double>(value)));
    int64_t hi = static_cast<int64_t>(
        std::floor(opt.max_change_fraction * static_cast<double>(value)));
    lo = std::max(lo, 1 - value);  // counts must remain >= 1
    if (hi < lo) hi = lo;
    return std::pair<int64_t, int64_t>(lo, hi);
  };
  auto clamp_delta = [&](int64_t value, int64_t delta) {
    auto [lo, hi] = delta_bounds(value);
    return std::clamp(delta, lo, hi);
  };
  auto random_delta = [&](int64_t value) {
    auto [lo, hi] = delta_bounds(value);
    return rng.UniformInt(lo, hi);
  };
  auto evaluate = [&](const std::vector<int64_t>& deltas) {
    std::vector<int64_t> modified(n);
    for (size_t i = 0; i < n; ++i) modified[i] = values[i] + deltas[i];
    double s = HidingStatistic(modified, opt.condition);
    return maximize ? s : -s;
  };
  auto random_individual = [&]() {
    Individual ind;
    ind.deltas.resize(n);
    for (size_t i = 0; i < n; ++i) {
      ind.deltas[i] = random_delta(values[i]);
    }
    ind.fitness = evaluate(ind.deltas);
    return ind;
  };

  std::vector<Individual> pop;
  pop.reserve(opt.population);
  for (size_t i = 0; i < opt.population; ++i) pop.push_back(random_individual());

  auto tournament = [&]() -> const Individual& {
    const Individual& a = pop[rng.UniformU64(pop.size())];
    const Individual& b = pop[rng.UniformU64(pop.size())];
    return a.fitness >= b.fitness ? a : b;
  };

  for (size_t gen = 0; gen < opt.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(opt.population);
    // Elitism: carry the best individual over.
    size_t best = 0;
    for (size_t i = 1; i < pop.size(); ++i) {
      if (pop[i].fitness > pop[best].fitness) best = i;
    }
    next.push_back(pop[best]);

    while (next.size() < opt.population) {
      const Individual& pa = tournament();
      const Individual& pb = tournament();
      Individual child;
      child.deltas.resize(n);
      for (size_t i = 0; i < n; ++i) {
        child.deltas[i] = rng.Bernoulli(0.5) ? pa.deltas[i] : pb.deltas[i];
        if (rng.Bernoulli(opt.mutation_rate)) {
          child.deltas[i] = random_delta(values[i]);
        }
        child.deltas[i] = clamp_delta(values[i], child.deltas[i]);
      }
      child.fitness = evaluate(child.deltas);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }

  size_t best = 0;
  for (size_t i = 1; i < pop.size(); ++i) {
    if (pop[i].fitness > pop[best].fitness) best = i;
  }
  return pop[best].deltas;
}

/// Secret partition of a token: keyed hash mod num_partitions.
size_t PartitionOf(const Token& token, uint64_t key_seed,
                   size_t num_partitions) {
  Sha256 h;
  h.Update("wm-obt-partition:");
  std::string key = std::to_string(key_seed);
  h.Update(key);
  h.Update(token);
  return static_cast<size_t>(DigestPrefixU64(h.Finish()) % num_partitions);
}

}  // namespace

Histogram EmbedWmObt(const Histogram& original, const WmObtOptions& options,
                     Rng& rng, WmObtStats* stats) {
  assert(options.num_partitions > 0 && !options.watermark_bits.empty());

  // Group ranks by secret partition.
  std::vector<std::vector<size_t>> partitions(options.num_partitions);
  const auto& entries = original.entries();
  for (size_t rank = 0; rank < entries.size(); ++rank) {
    partitions[PartitionOf(entries[rank].token, options.key_seed,
                           options.num_partitions)]
        .push_back(rank);
  }

  Histogram out = original;
  if (stats) {
    stats->partition_statistic.assign(options.num_partitions, 0.0);
    stats->decoded_bits.assign(options.num_partitions, 0);
  }

  for (size_t p = 0; p < options.num_partitions; ++p) {
    const auto& ranks = partitions[p];
    if (ranks.empty()) continue;
    int bit = options.watermark_bits[p % options.watermark_bits.size()];

    std::vector<int64_t> values;
    values.reserve(ranks.size());
    for (size_t rank : ranks) {
      values.push_back(static_cast<int64_t>(entries[rank].count));
    }
    std::vector<int64_t> deltas =
        OptimizePartition(values, /*maximize=*/bit == 1, options, rng);

    std::vector<int64_t> modified(values.size());
    for (size_t i = 0; i < ranks.size(); ++i) {
      modified[i] = values[i] + deltas[i];
      Status s = out.SetCount(entries[ranks[i]].token,
                              static_cast<uint64_t>(modified[i]));
      assert(s.ok());
      (void)s;
    }
    if (stats) {
      double stat = HidingStatistic(modified, options.condition);
      stats->partition_statistic[p] = stat;
      // Decode: statistic above threshold reads as bit 1.
      stats->decoded_bits[p] = stat >= stats->decode_threshold ? 1 : 0;
    }
  }
  return out;
}

std::vector<double> WmObtPartitionStatistics(const Histogram& suspect,
                                             const WmObtOptions& options) {
  std::vector<std::vector<int64_t>> values(options.num_partitions);
  for (const auto& e : suspect.entries()) {
    values[PartitionOf(e.token, options.key_seed, options.num_partitions)]
        .push_back(static_cast<int64_t>(e.count));
  }
  std::vector<double> stats(options.num_partitions, -1.0);
  for (size_t p = 0; p < options.num_partitions; ++p) {
    if (values[p].empty()) continue;
    stats[p] = HidingStatistic(values[p], options.condition);
  }
  return stats;
}

DetectResult DetectWmObt(const Histogram& suspect, const WmObtOptions& options,
                         const DetectOptions& detect) {
  DetectResult result;
  if (options.num_partitions == 0 || options.watermark_bits.empty()) {
    return result;
  }
  std::vector<double> stats = WmObtPartitionStatistics(suspect, options);
  for (size_t p = 0; p < stats.size(); ++p) {
    if (stats[p] < 0) continue;  // empty partition
    ++result.pairs_found;
    int decoded = stats[p] >= options.decode_threshold ? 1 : 0;
    int expected = options.watermark_bits[p % options.watermark_bits.size()];
    if (decoded == expected) ++result.pairs_verified;
  }
  if (result.pairs_found > 0) {
    result.verified_fraction = static_cast<double>(result.pairs_verified) /
                               static_cast<double>(result.pairs_found);
  }
  size_t mismatched = result.pairs_found - result.pairs_verified;
  result.accepted = result.pairs_found > 0 &&
                    result.pairs_verified >= detect.min_pairs &&
                    mismatched <= detect.pair_threshold;
  return result;
}

}  // namespace freqywm
