#ifndef FREQYWM_BASELINES_WM_OBT_H_
#define FREQYWM_BASELINES_WM_OBT_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/detect.h"
#include "data/histogram.h"
#include "exec/exec_context.h"

namespace freqywm {

/// WM-OBT: the optimization-based relational watermark of Shehab, Bertino &
/// Ghafoor (TKDE 2008), adapted — as in the paper's §IV-D — to watermark a
/// token *histogram* treated as a numeric table (token = primary key,
/// frequency = attribute). Integer-constrained as required for counts.
///
/// Scheme: tokens are assigned to `num_partitions` secret partitions by a
/// keyed hash. Partition p embeds watermark bit `bits[p % bits.size()]` by
/// *maximizing* (bit 1) or *minimizing* (bit 0) a hiding statistic — the
/// fraction of values above the reference `mean + condition * stddev`,
/// smoothed by a sum of sigmoids — subject to a per-value change constraint
/// `[min_change, max_change]`. The optimizer is a hand-rolled genetic
/// algorithm (the paper's choice).
struct WmObtOptions {
  size_t num_partitions = 20;
  std::vector<int> watermark_bits = {1, 1, 0, 1, 0};
  /// The reference-point multiplier c in mean + c * stddev.
  double condition = 0.75;
  /// Per-value allowed change as *fractions of the value*, matching the
  /// paper's [-0.5, 10] constraint (their WM-OBT run produced mean changes
  /// of 444 on counts around 1000, i.e. multiples of the value, not ±10
  /// absolute). Counts never drop below 1.
  double min_change_fraction = -0.5;
  double max_change_fraction = 10.0;
  /// Genetic algorithm parameters.
  size_t population = 40;
  size_t generations = 60;
  double mutation_rate = 0.08;
  /// Key for the secret partitioning.
  uint64_t key_seed = 0x0b75;
  /// Decoding threshold on the hiding statistic: a partition reads as bit 1
  /// when its statistic is >= this value (the paper's 0.0966).
  double decode_threshold = 0.0966;
};

/// Per-partition decode statistics (used to evaluate the decoding threshold
/// the paper mentions, 0.0966).
struct WmObtStats {
  /// Hiding statistic per partition after embedding.
  std::vector<double> partition_statistic;
  /// Decoded bits using `decode_threshold`.
  std::vector<int> decoded_bits;
  /// The threshold the bits were decoded against — copied from
  /// `WmObtOptions::decode_threshold` at embed time, so embed-side decode
  /// stats always agree with `DetectWmObt` under the same options.
  double decode_threshold = 0.0966;
};

/// The hiding statistic of Shehab et al.: a smoothed "fraction of values
/// above the reference point mean + c * stddev", sigmoid-smoothed so the GA
/// has a gradient to climb. Three-pass reference implementation (mean,
/// variance, sigmoid sum); the GA hot path uses
/// `HidingStatisticFromMoments` instead.
double HidingStatistic(const std::vector<int64_t>& values, double condition);

/// Allocation-free incremental evaluation of the hiding statistic over the
/// modified vector `values[i] + deltas[i]`, given the running sum and
/// sum-of-squares of the modified values (maintained by the GA while a
/// child's genes are written, so mean and stddev cost O(1) here and the
/// whole evaluation is a single in-place sigmoid pass). Agrees with
/// `HidingStatistic` on the materialized vector up to floating-point
/// reassociation of the variance (golden-tested in
/// `tests/exec/parallel_baseline_embed_test.cc`).
double HidingStatisticFromMoments(const int64_t* values, const int64_t* deltas,
                                  size_t n, double sum, double sum_squares,
                                  double condition);

/// The deterministic per-partition RNG stream seed: SHA-256 of
/// `(key_seed, partition_index)`, so partition p's genetic optimization
/// consumes its own stream regardless of which other partitions exist or in
/// which order (or on which thread) they are processed. This is what makes
/// the parallel embed byte-identical at any thread count (DESIGN.md §9).
uint64_t WmObtPartitionStreamSeed(uint64_t key_seed, size_t partition);

/// Embeds WM-OBT into a histogram's counts. Returns the watermarked copy
/// (counts modified in place per partition, never below 1).
///
/// Each partition's genetic optimizer runs on its own deterministic RNG
/// stream (`WmObtPartitionStreamSeed`), so partitions are order-independent
/// and are sharded across `exec` when it carries a thread pool; offspring
/// fitness inside a generation is evaluated in parallel too (evaluation is
/// pure). Output is byte-identical at any thread count, including the
/// default serial context.
Histogram EmbedWmObt(const Histogram& original, const WmObtOptions& options,
                     const ExecContext& exec = ExecContext{},
                     WmObtStats* stats = nullptr);

/// The pre-parallel serial embedding kept verbatim as the oracle/baseline:
/// one caller-provided RNG stream shared across partitions in rank order,
/// full-pass statistics and per-evaluation allocation inside the GA. The
/// parallel path above is *statistically* equivalent (same GA, same
/// operators, different stream layout), not byte-identical — see
/// DESIGN.md §9 for the determinism contract.
Histogram EmbedWmObtReference(const Histogram& original,
                              const WmObtOptions& options, Rng& rng,
                              WmObtStats* stats = nullptr);

/// Recomputes the per-partition hiding statistics of `suspect` under the
/// secret partitioning of `options` — the decode side of the scheme. Empty
/// partitions yield a statistic of -1 (sentinel; real statistics are in
/// [0, 1]).
std::vector<double> WmObtPartitionStatistics(const Histogram& suspect,
                                             const WmObtOptions& options);

/// WM-OBT watermark detection: re-partitions `suspect` with the key,
/// decodes one bit per non-empty partition via `options.decode_threshold`,
/// and compares against `options.watermark_bits`.
///
/// `DetectResult` mapping: a "pair" is a partition. `pairs_found` counts
/// non-empty partitions, `pairs_verified` those whose decoded bit matches
/// the expected bit. Because the scheme carries no per-unit secret residue,
/// the only ownership evidence is agreement of the decoded bit string:
/// detection accepts when at least `detect.min_pairs` partitions verify and
/// at most `detect.pair_threshold` decode wrongly. (`rescale_factor` is
/// ignored — the hiding statistic is scale-invariant.)
DetectResult DetectWmObt(const Histogram& suspect, const WmObtOptions& options,
                         const DetectOptions& detect);

}  // namespace freqywm

#endif  // FREQYWM_BASELINES_WM_OBT_H_
