#ifndef FREQYWM_BASELINES_WM_RVS_H_
#define FREQYWM_BASELINES_WM_RVS_H_

#include <cstdint>
#include <vector>

#include "core/detect.h"
#include "data/histogram.h"
#include "exec/exec_context.h"

namespace freqywm {

/// WM-RVS: the reversible, value-setting relational watermark of Li et al.
/// (TKDE 2022), adapted — as in the paper's §IV-D — to a token histogram
/// and constrained to integers (a frequency count cannot carry decimals).
///
/// Scheme: each value embeds one watermark bit in a low-significance digit.
/// A keyed hash of the token selects which digit position (ones or tens)
/// and which watermark bit applies; the digit is replaced by a keyed
/// substitution digit carrying that bit. Reversibility comes from a
/// side-table of original digits that the embedding returns.
struct WmRvsOptions {
  std::vector<int> watermark_bits = {1, 1, 0, 1, 0};
  /// Highest digit position that may be modified (0 = ones only,
  /// 1 = ones or tens — the paper's "random least significant position").
  int max_digit_position = 1;
  uint64_t key_seed = 0x475;
};

/// The reversibility side-table: original digit per modified token.
struct WmRvsSideTable {
  struct Entry {
    Token token;
    int digit_position = 0;
    int original_digit = 0;
  };
  std::vector<Entry> entries;
};

/// Embeds WM-RVS into a histogram's counts. Returns the watermarked copy;
/// `side_table` (optional) receives what is needed to reverse.
Histogram EmbedWmRvs(const Histogram& original, const WmRvsOptions& options,
                     WmRvsSideTable* side_table = nullptr);

/// Exec-aware variant: the per-token keyed-hash pass (one SHA-256 per
/// entry, the only data-size-bound stage) fans out across `exec`; the
/// substitutions and the side-table are applied serially in rank order, so
/// output and side-table are byte-identical to the serial overload at any
/// thread count.
Histogram EmbedWmRvs(const Histogram& original, const WmRvsOptions& options,
                     WmRvsSideTable* side_table, const ExecContext& exec);

/// Restores the original histogram from a watermarked one and the
/// side-table (the "reversible" property of the scheme).
Histogram ReverseWmRvs(const Histogram& watermarked,
                       const WmRvsSideTable& side_table);

/// WM-RVS watermark detection: for every suspect token the keyed hash
/// re-derives the digit position and the substitution digit the embedder
/// would have written; the token verifies when the suspect count carries
/// exactly that digit.
///
/// `DetectResult` mapping: a "pair" is a token whose keyed digit position
/// exists in its count. On clean or foreign-keyed data a token verifies by
/// chance with probability ~1/10, so detection accepts only when verified
/// tokens reach `detect.min_pairs` AND a strict majority of the found
/// tokens verify. (`pair_threshold` and `rescale_factor` are unused: the
/// digit channel has no residue distance and no meaningful rescaling.)
DetectResult DetectWmRvs(const Histogram& suspect, const WmRvsOptions& options,
                         const DetectOptions& detect);

}  // namespace freqywm

#endif  // FREQYWM_BASELINES_WM_RVS_H_
