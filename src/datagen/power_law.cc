#include "datagen/power_law.h"

#include <cassert>
#include <cmath>

namespace freqywm {

std::vector<double> PowerLawProbabilities(size_t num_tokens, double alpha) {
  std::vector<double> p(num_tokens);
  double total = 0.0;
  for (size_t i = 0; i < num_tokens; ++i) {
    p[i] = std::pow(static_cast<double>(i + 1), -alpha);
    total += p[i];
  }
  for (auto& v : p) v /= total;
  return p;
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n > 0);
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    size_t s = small.back();
    small.pop_back();
    size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  while (!large.empty()) {
    prob_[large.back()] = 1.0;
    large.pop_back();
  }
  while (!small.empty()) {
    prob_[small.back()] = 1.0;  // numerical leftovers
    small.pop_back();
  }
}

size_t AliasSampler::Sample(Rng& rng) const {
  size_t i = static_cast<size_t>(rng.UniformU64(prob_.size()));
  return rng.UniformDouble() < prob_[i] ? i : alias_[i];
}

namespace {

std::vector<Token> MakeTokenNames(const PowerLawSpec& spec) {
  std::vector<Token> names(spec.num_tokens);
  for (size_t i = 0; i < spec.num_tokens; ++i) {
    names[i] = spec.token_prefix + std::to_string(i);
  }
  return names;
}

}  // namespace

Dataset GeneratePowerLawDataset(const PowerLawSpec& spec, Rng& rng) {
  std::vector<Token> names = MakeTokenNames(spec);
  AliasSampler sampler(PowerLawProbabilities(spec.num_tokens, spec.alpha));
  std::vector<Token> rows;
  rows.reserve(spec.sample_size);
  for (size_t i = 0; i < spec.sample_size; ++i) {
    rows.push_back(names[sampler.Sample(rng)]);
  }
  return Dataset(std::move(rows));
}

Histogram GeneratePowerLawHistogram(const PowerLawSpec& spec, Rng& rng) {
  std::vector<Token> names = MakeTokenNames(spec);
  AliasSampler sampler(PowerLawProbabilities(spec.num_tokens, spec.alpha));
  std::vector<uint64_t> counts(spec.num_tokens, 0);
  for (size_t i = 0; i < spec.sample_size; ++i) ++counts[sampler.Sample(rng)];

  std::vector<HistogramEntry> entries;
  entries.reserve(spec.num_tokens);
  for (size_t i = 0; i < spec.num_tokens; ++i) {
    if (counts[i] > 0) entries.push_back({names[i], counts[i]});
  }
  Result<Histogram> h = Histogram::FromCounts(std::move(entries));
  // Cannot fail: tokens are distinct by construction and zero counts are
  // filtered above.
  assert(h.ok());
  return std::move(h).value();
}

}  // namespace freqywm
