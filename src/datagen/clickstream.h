#ifndef FREQYWM_DATAGEN_CLICKSTREAM_H_
#define FREQYWM_DATAGEN_CLICKSTREAM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"

namespace freqywm {

/// One click: a Unix timestamp (seconds) and a URL token.
struct ClickEvent {
  int64_t timestamp = 0;
  Token url;
};

/// Parameters for the timestamped click-stream used by the §VI feature
/// analysis (trend / seasonality / residual, Figs. 6–9).
struct ClickstreamSpec {
  /// Number of distinct URLs (popularity follows a power law).
  size_t num_urls = 2000;
  /// Total number of clicks.
  size_t num_events = 200'000;
  /// Simulated duration in days.
  size_t num_days = 60;
  /// Power-law exponent of URL popularity.
  double alpha = 1.0;
  /// Linear daily traffic growth (fraction of base rate per day).
  double daily_trend = 0.004;
  /// Amplitude of the intra-day (24h) seasonal modulation, in [0, 1).
  double daily_seasonality = 0.5;
  /// Start time of the stream.
  int64_t start_timestamp = 1'700'000'000;
};

/// Generates a click-stream with a built-in trend and daily seasonality so
/// that classical time-series decomposition has structure to find.
/// Events are returned in timestamp order.
std::vector<ClickEvent> GenerateClickstream(const ClickstreamSpec& spec,
                                            Rng& rng);

/// Projects a click-stream onto its URL tokens (order preserved) so it can
/// be watermarked like any other token dataset.
Dataset ClickstreamTokens(const std::vector<ClickEvent>& events);

/// Counts clicks per day; the "browser history" series of Fig. 9.
std::vector<double> DailyClickCounts(const std::vector<ClickEvent>& events,
                                     int64_t start_timestamp, size_t num_days);

}  // namespace freqywm

#endif  // FREQYWM_DATAGEN_CLICKSTREAM_H_
