#ifndef FREQYWM_DATAGEN_POWER_LAW_H_
#define FREQYWM_DATAGEN_POWER_LAW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "data/histogram.h"

namespace freqywm {

/// Parameters of the paper's synthetic workload (§IV-A): `sample_size`
/// draws over `num_tokens` distinct tokens whose popularity follows a
/// bounded power law with skewness `alpha`.
///
/// `alpha = 0` is the uniform distribution (no eligible pairs — FreqyWM by
/// design cannot watermark it); larger `alpha` concentrates mass on the head
/// and produces a long tail of nearly-equal frequencies.
struct PowerLawSpec {
  size_t num_tokens = 1000;
  size_t sample_size = 1'000'000;
  double alpha = 0.5;
  /// Token names are `<token_prefix><rank>`, rank 0 = most popular.
  std::string token_prefix = "tk";
};

/// Returns the rank probabilities `p_i ∝ (i+1)^{-alpha}` for the spec.
std::vector<double> PowerLawProbabilities(size_t num_tokens, double alpha);

/// Samples a full token sequence (`spec.sample_size` rows).
Dataset GeneratePowerLawDataset(const PowerLawSpec& spec, Rng& rng);

/// Samples only the frequency histogram (same distribution as
/// `GeneratePowerLawDataset` but without materializing the row order).
/// Much faster for experiments that never look at token positions.
Histogram GeneratePowerLawHistogram(const PowerLawSpec& spec, Rng& rng);

/// Walker alias table for O(1) categorical sampling; exposed because the
/// datagen stand-ins and the clickstream generator reuse it.
class AliasSampler {
 public:
  /// Builds the table from (not necessarily normalized) weights.
  /// Precondition: at least one strictly positive weight.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws an index in `[0, weights.size())`.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace freqywm

#endif  // FREQYWM_DATAGEN_POWER_LAW_H_
