#include "datagen/clickstream.h"

#include <algorithm>
#include <cmath>

#include "datagen/power_law.h"

namespace freqywm {

std::vector<ClickEvent> GenerateClickstream(const ClickstreamSpec& spec,
                                            Rng& rng) {
  // Sample event times by inverse-transform over a piecewise-constant
  // intensity: hour weight = (1 + trend·day) · (1 + seasonality·sin(2π·h/24)).
  const size_t num_hours = spec.num_days * 24;
  std::vector<double> hour_weights(num_hours);
  for (size_t h = 0; h < num_hours; ++h) {
    double day = static_cast<double>(h) / 24.0;
    double hour_of_day = static_cast<double>(h % 24);
    double trend = 1.0 + spec.daily_trend * day;
    double season =
        1.0 + spec.daily_seasonality *
                  std::sin(2.0 * M_PI * hour_of_day / 24.0);
    hour_weights[h] = trend * season;
  }
  AliasSampler hour_sampler(hour_weights);
  AliasSampler url_sampler(PowerLawProbabilities(spec.num_urls, spec.alpha));

  std::vector<ClickEvent> events;
  events.reserve(spec.num_events);
  for (size_t i = 0; i < spec.num_events; ++i) {
    size_t hour = hour_sampler.Sample(rng);
    int64_t offset = static_cast<int64_t>(hour) * 3600 +
                     static_cast<int64_t>(rng.UniformU64(3600));
    events.push_back(ClickEvent{
        spec.start_timestamp + offset,
        "url" + std::to_string(url_sampler.Sample(rng))});
  }
  std::sort(events.begin(), events.end(),
            [](const ClickEvent& a, const ClickEvent& b) {
              return a.timestamp < b.timestamp;
            });
  return events;
}

Dataset ClickstreamTokens(const std::vector<ClickEvent>& events) {
  std::vector<Token> tokens;
  tokens.reserve(events.size());
  for (const auto& e : events) tokens.push_back(e.url);
  return Dataset(std::move(tokens));
}

std::vector<double> DailyClickCounts(const std::vector<ClickEvent>& events,
                                     int64_t start_timestamp,
                                     size_t num_days) {
  std::vector<double> counts(num_days, 0.0);
  for (const auto& e : events) {
    int64_t day = (e.timestamp - start_timestamp) / 86400;
    if (day >= 0 && static_cast<size_t>(day) < num_days) {
      counts[static_cast<size_t>(day)] += 1.0;
    }
  }
  return counts;
}

}  // namespace freqywm
