#ifndef FREQYWM_DATAGEN_REAL_WORLD_H_
#define FREQYWM_DATAGEN_REAL_WORLD_H_

#include <cstddef>

#include "common/random.h"
#include "data/dataset.h"
#include "data/histogram.h"

namespace freqywm {

/// Synthetic stand-ins for the three real datasets of Table II.
///
/// The actual files (Chicago Taxi trips, the eyeWnder click-stream, UCI
/// Adult) are not available offline, so these generators reproduce the
/// properties that drive FreqyWM's behaviour: the number of distinct tokens,
/// the shape of the frequency distribution (which determines the eligible
/// pair count |Le|), and — for Adult — the multi-attribute structure used by
/// the §IV-C multi-dimensional experiment. See DESIGN.md §2 for the
/// substitution rationale.

/// Chicago Taxi stand-in: trips keyed by Taxi ID.
///
/// 6,573 distinct taxi IDs (paper's count) with lognormal-like activity:
/// most taxis drive a moderate number of trips, a head of fleet taxis drives
/// many. The wide spread of counts yields a large |Le|, matching the paper's
/// 33,308 eligible pairs regime. `sample_size` defaults far below the 9.68 GB
/// original for laptop-scale runs; scale it up to stress generation cost.
Histogram MakeChicagoTaxiLikeHistogram(Rng& rng,
                                       size_t num_taxis = 6573,
                                       size_t sample_size = 2'000'000);

/// eyeWnder stand-in: visited URLs from an ad-detection browser add-on.
///
/// 11,479 distinct domains (paper's count) under a steep power law with a
/// very long tail of rarely visited domains. The flat tail is what makes
/// |Le| small (257 in the paper) despite the large distinct-token count.
Histogram MakeEyeWnderLikeHistogram(Rng& rng,
                                    size_t num_urls = 11479,
                                    size_t sample_size = 1'200'000);

/// eyeWnder stand-in as a full token sequence (needed by attacks/§VI).
Dataset MakeEyeWnderLikeDataset(Rng& rng,
                                size_t num_urls = 11479,
                                size_t sample_size = 1'200'000);

/// Adult census stand-in as a relational table.
///
/// Columns: `Age` (73 distinct values, census-like pyramid), `WorkClass`
/// (9 categories, "Private" dominant), `Education` (16 categories),
/// `HoursPerWeek`. Row count defaults to the UCI dataset's 48,842.
TableDataset MakeAdultLikeTable(Rng& rng, size_t num_rows = 48842);

}  // namespace freqywm

#endif  // FREQYWM_DATAGEN_REAL_WORLD_H_
