#include "datagen/real_world.h"

#include <cassert>
#include <cmath>
#include <string>
#include <vector>

#include "datagen/power_law.h"

namespace freqywm {
namespace {

/// Approximate standard normal via sum of uniforms (Irwin–Hall, 12 terms).
/// Accuracy is ample for shaping synthetic popularity curves.
double ApproxNormal(Rng& rng) {
  double s = 0.0;
  for (int i = 0; i < 12; ++i) s += rng.UniformDouble();
  return s - 6.0;
}

Histogram HistogramFromWeights(const std::vector<double>& weights,
                               const std::string& prefix, size_t sample_size,
                               Rng& rng) {
  AliasSampler sampler(weights);
  std::vector<uint64_t> counts(weights.size(), 0);
  for (size_t i = 0; i < sample_size; ++i) ++counts[sampler.Sample(rng)];
  std::vector<HistogramEntry> entries;
  entries.reserve(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    if (counts[i] > 0) {
      entries.push_back({prefix + std::to_string(i), counts[i]});
    }
  }
  Result<Histogram> h = Histogram::FromCounts(std::move(entries));
  assert(h.ok());
  return std::move(h).value();
}

std::vector<double> EyeWnderWeights(size_t num_urls, Rng& rng) {
  // Steep Zipf head (news/social giants) + multiplicative noise; exponent
  // ~1.05 gives the long flat tail of once-visited domains that keeps the
  // eligible-pair count small.
  std::vector<double> w(num_urls);
  for (size_t i = 0; i < num_urls; ++i) {
    double zipf = std::pow(static_cast<double>(i + 1), -1.05);
    double noise = std::exp(0.35 * ApproxNormal(rng));
    w[i] = zipf * noise;
  }
  return w;
}

}  // namespace

Histogram MakeChicagoTaxiLikeHistogram(Rng& rng, size_t num_taxis,
                                       size_t sample_size) {
  // Lognormal taxi activity: ln(trips) ~ N(mu, sigma). sigma = 0.9 spreads
  // counts over ~2 orders of magnitude, which is what produces the paper's
  // very large eligible-pair count.
  std::vector<double> w(num_taxis);
  for (size_t i = 0; i < num_taxis; ++i) {
    w[i] = std::exp(0.9 * ApproxNormal(rng));
  }
  return HistogramFromWeights(w, "taxi", sample_size, rng);
}

Histogram MakeEyeWnderLikeHistogram(Rng& rng, size_t num_urls,
                                    size_t sample_size) {
  return HistogramFromWeights(EyeWnderWeights(num_urls, rng), "url",
                              sample_size, rng);
}

Dataset MakeEyeWnderLikeDataset(Rng& rng, size_t num_urls,
                                size_t sample_size) {
  std::vector<double> w = EyeWnderWeights(num_urls, rng);
  AliasSampler sampler(w);
  std::vector<Token> rows;
  rows.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    rows.push_back("url" + std::to_string(sampler.Sample(rng)));
  }
  return Dataset(std::move(rows));
}

TableDataset MakeAdultLikeTable(Rng& rng, size_t num_rows) {
  // Age pyramid over 73 distinct ages (17..89), peaked in the mid-30s like
  // the UCI Adult marginal.
  constexpr int kMinAge = 17;
  constexpr int kNumAges = 73;
  std::vector<double> age_w(kNumAges);
  for (int i = 0; i < kNumAges; ++i) {
    double age = kMinAge + i;
    age_w[i] = std::exp(-std::pow((age - 36.0) / 14.0, 2.0) / 2.0) + 0.02;
  }
  AliasSampler age_sampler(age_w);

  const std::vector<std::string> work_classes = {
      "Private",      "Self-emp-not-inc", "Self-emp-inc",
      "Federal-gov",  "Local-gov",        "State-gov",
      "Without-pay",  "Never-worked",     "Unknown"};
  // "Private" dominates the UCI marginal (~69%).
  const std::vector<double> work_w = {69.4, 7.9, 3.5, 2.9, 6.4,
                                      4.1,  0.04, 0.02, 5.7};
  AliasSampler work_sampler(work_w);

  const std::vector<std::string> educations = {
      "Bachelors", "HS-grad",   "11th",        "Masters",     "9th",
      "Some-college", "Assoc-acdm", "Assoc-voc", "7th-8th",   "Doctorate",
      "Prof-school",  "5th-6th",    "10th",      "1st-4th",   "Preschool",
      "12th"};
  const std::vector<double> edu_w = {16.4, 32.3, 3.7, 5.4, 1.6, 22.3, 3.3,
                                     4.2,  2.0,  1.2, 1.7, 1.0, 2.9,  0.5,
                                     0.2,  1.3};
  AliasSampler edu_sampler(edu_w);

  TableDataset table({"Age", "WorkClass", "Education", "HoursPerWeek"});
  for (size_t r = 0; r < num_rows; ++r) {
    int age = kMinAge + static_cast<int>(age_sampler.Sample(rng));
    std::string work = work_classes[work_sampler.Sample(rng)];
    std::string edu = educations[edu_sampler.Sample(rng)];
    // Hours cluster hard at 40.
    int hours = rng.Bernoulli(0.45)
                    ? 40
                    : static_cast<int>(rng.UniformInt(10, 80));
    Status s = table.AppendRow(
        {std::to_string(age), work, edu, std::to_string(hours)});
    assert(s.ok());
    (void)s;
  }
  return table;
}

}  // namespace freqywm
