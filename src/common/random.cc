#include "common/random.h"

#include <numeric>

namespace freqywm {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // A pathological all-zero state cannot occur: SplitMix64 is a bijection and
  // emits 0 for at most one of the four draws.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t universe, size_t n) {
  std::vector<size_t> pool(universe);
  std::iota(pool.begin(), pool.end(), size_t{0});
  if (n > universe) n = universe;
  for (size_t i = 0; i < n; ++i) {
    size_t j = i + static_cast<size_t>(UniformU64(universe - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(n);
  return pool;
}

}  // namespace freqywm
