#include "common/status.h"

namespace freqywm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kNotSupported:
      return "not_supported";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace freqywm
