#ifndef FREQYWM_COMMON_STRING_UTIL_H_
#define FREQYWM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace freqywm {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, char sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` consists of one or more ASCII digits (optionally signed).
bool IsInteger(std::string_view text);

}  // namespace freqywm

#endif  // FREQYWM_COMMON_STRING_UTIL_H_
