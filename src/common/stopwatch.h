#ifndef FREQYWM_COMMON_STOPWATCH_H_
#define FREQYWM_COMMON_STOPWATCH_H_

#include <chrono>

namespace freqywm {

/// Wall-clock stopwatch for the coarse Gen/Detect timings in Table II.
///
/// Microbenchmarks use google-benchmark; this class exists for the
/// end-to-end experiment harnesses where a single run is timed.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last `Reset()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last `Reset()`.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace freqywm

#endif  // FREQYWM_COMMON_STOPWATCH_H_
