#ifndef FREQYWM_COMMON_HEX_H_
#define FREQYWM_COMMON_HEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace freqywm {

/// Encodes `bytes` as lowercase hexadecimal ("deadbeef").
std::string HexEncode(const std::vector<uint8_t>& bytes);

/// Encodes a raw buffer as lowercase hexadecimal.
std::string HexEncode(const uint8_t* data, size_t len);

/// Decodes a hex string (case-insensitive). Fails with `Corruption` on odd
/// length or non-hex characters.
Result<std::vector<uint8_t>> HexDecode(std::string_view hex);

}  // namespace freqywm

#endif  // FREQYWM_COMMON_HEX_H_
