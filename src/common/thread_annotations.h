#ifndef FREQYWM_COMMON_THREAD_ANNOTATIONS_H_
#define FREQYWM_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute shim (DESIGN.md §11).
///
/// These macros attach lock-discipline contracts to code: which mutex
/// guards which member (`GUARDED_BY`), which functions must be called with
/// a mutex held (`REQUIRES`), and which functions acquire/release one
/// (`ACQUIRE`/`RELEASE`). Under clang with `-Wthread-safety` the compiler
/// proves the contracts at build time — the CI `thread-safety` job runs
/// exactly that with `-Werror`, so a data race that is really a
/// lock-discipline bug fails the build instead of waiting for TSan to
/// catch an interleaving. Under every other compiler the macros expand to
/// nothing and serve as checked documentation.
///
/// The std::mutex family carries no capability attributes in libstdc++, so
/// the analysis cannot see through `std::lock_guard`; annotated code locks
/// through the `Mutex`/`MutexLock`/`CondVar` wrappers in `common/mutex.h`
/// instead.
///
/// The macro set follows the LLVM documentation
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) and matches the
/// names used by abseil and Chromium, so the idiom is recognizable.

#if defined(__clang__) && !defined(SWIG)
#define FREQYWM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FREQYWM_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable). Example:
///   class CAPABILITY("mutex") Mutex { ... };
#define CAPABILITY(x) FREQYWM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define SCOPED_CAPABILITY FREQYWM_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) FREQYWM_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected.
#define PT_GUARDED_BY(x) FREQYWM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function may only be called with the capability held;
/// the caller keeps holding it afterwards.
#define REQUIRES(...) \
  FREQYWM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Shared (reader) variant of `REQUIRES`.
#define REQUIRES_SHARED(...) \
  FREQYWM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that a function acquires the capability and does not release
/// it before returning.
#define ACQUIRE(...) \
  FREQYWM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases a capability the caller held.
#define RELEASE(...) \
  FREQYWM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function acquires the capability iff it returns the
/// given value. Example: `bool TryLock() TRY_ACQUIRE(true);`
#define TRY_ACQUIRE(...) \
  FREQYWM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Declares that a function must NOT be called with the capability held
/// (it acquires it itself; calling with it held would deadlock).
#define EXCLUDES(...) FREQYWM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that a function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) FREQYWM_THREAD_ANNOTATION_(lock_returned(x))

/// Opts one function out of the analysis. Every use must carry a comment
/// justifying why the contract cannot be expressed (DESIGN.md §11 budgets
/// these like NOLINTs: approximately zero).
#define NO_THREAD_SAFETY_ANALYSIS \
  FREQYWM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FREQYWM_COMMON_THREAD_ANNOTATIONS_H_
