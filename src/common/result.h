#ifndef FREQYWM_COMMON_RESULT_H_
#define FREQYWM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace freqywm {

/// A value-or-error union, the `Result<T>` idiom from Arrow/absl.
///
/// Exactly one of the two states holds at any time:
///   * OK: carries a `T` (`ok()` is true, `value()` is valid);
///   * error: carries a non-OK `Status` (`value()` must not be called).
///
/// Constructing a `Result` from an OK `Status` is a programming error and is
/// converted into an `Internal` error so that misuse is observable rather
/// than undefined.
///
/// Like `Status`, the class is `[[nodiscard]]` (DESIGN.md §11): dropping a
/// returned `Result` discards both the value and the error, so the
/// compiler rejects it under `-Werror`.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversion from a value (the common success path).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Implicit conversion from a non-OK status (the common error path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  [[nodiscard]] bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Borrow the value. Precondition: `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  /// Move the value out. Precondition: `ok()`.
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in the error state.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `Result`-returning expression to `lhs`, or
/// propagates the error. `lhs` may be a declaration (`auto x`).
#define FREQYWM_ASSIGN_OR_RETURN(lhs, expr)       \
  FREQYWM_ASSIGN_OR_RETURN_IMPL(                  \
      FREQYWM_CONCAT_(_result_, __LINE__), lhs, expr)

#define FREQYWM_CONCAT_INNER_(a, b) a##b
#define FREQYWM_CONCAT_(a, b) FREQYWM_CONCAT_INNER_(a, b)
#define FREQYWM_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

}  // namespace freqywm

#endif  // FREQYWM_COMMON_RESULT_H_
