#ifndef FREQYWM_COMMON_MUTEX_H_
#define FREQYWM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/thread_annotations.h"

namespace freqywm {

/// A `std::mutex` wrapper carrying the clang thread-safety `capability`
/// attribute, so `-Wthread-safety` can prove lock discipline (DESIGN.md
/// §11). libstdc++'s mutex types are unannotated — the analysis cannot see
/// a `std::lock_guard<std::mutex>` acquire anything — so every
/// mutex-holding class in the library locks through this wrapper and
/// `MutexLock`/`CondVar` below instead. Zero-cost: all methods inline to
/// the underlying `std::mutex` calls.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mutex_.lock(); }
  void Unlock() RELEASE() { mutex_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait adopts the raw mutex
  std::mutex mutex_;
};

/// RAII holder of a `Mutex`, annotated so the analysis knows the
/// capability is held for the holder's scope — the `std::lock_guard` of
/// this codebase.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() RELEASE() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable paired with `Mutex`. `Wait` must be called with the
/// mutex held and returns with it held (the internal unlock/relock inside
/// `std::condition_variable::wait` is invisible to callers, exactly like
/// `absl::CondVar`), which is what the `REQUIRES` annotation states.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, reacquires.
  void Wait(Mutex& mutex) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller-visible capability stays held
  }

  /// Waits until `pred()` holds. `pred` runs with the mutex held.
  template <typename Predicate>
  void Wait(Mutex& mutex, Predicate pred) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();  // the caller-visible capability stays held
  }

  /// Like `Wait`, but gives up after `timeout`. Returns true if notified
  /// (or spuriously woken) before the timeout, false on timeout. Either
  /// way the mutex is reacquired before returning. This is what makes a
  /// blocked `Session::Drain` interruptible: waiters bounded by `WaitFor`
  /// can re-check a `CancellationToken`/`Deadline` between sleeps instead
  /// of blocking forever on a notification that may never come.
  bool WaitFor(Mutex& mutex, std::chrono::nanoseconds timeout)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();  // the caller-visible capability stays held
    return st == std::cv_status::no_timeout;
  }

  /// Waits until `pred()` holds or `timeout` elapses; returns the final
  /// value of `pred()`. `pred` runs with the mutex held.
  template <typename Predicate>
  bool WaitFor(Mutex& mutex, std::chrono::nanoseconds timeout,
               Predicate pred) REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();  // the caller-visible capability stays held
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace freqywm

#endif  // FREQYWM_COMMON_MUTEX_H_
