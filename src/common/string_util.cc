#include "common/string_util.h"

namespace freqywm {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\t' || text[b] == '\r' ||
                   text[b] == '\n')) {
    ++b;
  }
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' ||
                   text[e - 1] == '\r' || text[e - 1] == '\n')) {
    --e;
  }
  return text.substr(b, e - b);
}

bool IsInteger(std::string_view text) {
  if (text.empty()) return false;
  size_t i = (text[0] == '+' || text[0] == '-') ? 1 : 0;
  if (i == text.size()) return false;
  for (; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
  }
  return true;
}

}  // namespace freqywm
