#ifndef FREQYWM_COMMON_STATUS_H_
#define FREQYWM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace freqywm {

/// Machine-readable category of a `Status`.
///
/// The set mirrors the error taxonomy used by embedded database libraries
/// (RocksDB / Arrow): callers branch on the code, humans read the message.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument violates a documented precondition.
  kInvalidArgument,
  /// A lookup failed (token, pair, or file not present).
  kNotFound,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
  /// The operation is valid but unsupported in the current configuration.
  kNotSupported,
  /// The operation could not complete because a resource limit was reached
  /// (e.g., watermarking budget exhausted before any pair was selected).
  kResourceExhausted,
  /// Input bytes could not be parsed (corrupt secret file, malformed CSV).
  kCorruption,
  /// The operation was cooperatively cancelled via a `CancellationToken`
  /// before it completed (exec/cancellation.h). Partial side effects are
  /// documented per API; results derived from a cancelled call must be
  /// discarded.
  kCancelled,
  /// The operation's monotonic `Deadline` expired before it completed.
  /// Like `kCancelled`, a cooperative interruption — never an invariant
  /// violation.
  kDeadlineExceeded,
  /// A transient, retryable failure (I/O hiccup, injected fault). The
  /// operation may succeed if retried — see exec/retry.h for the bounded
  /// backoff helper; every other code is permanent.
  kUnavailable,
};

/// Returns a stable lowercase name for `code` ("ok", "invalid_argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic success/error carrier used across all public APIs.
///
/// FreqyWM never throws across public API boundaries; fallible operations
/// return `Status` (or `Result<T>` when they also produce a value). A default
/// constructed `Status` is OK and stores no message.
///
/// The class is `[[nodiscard]]`: any call that returns a `Status` by value
/// and drops it on the floor is a compile error under `-Werror`
/// (DESIGN.md §11) — silently ignoring a failed `Register` or `Deserialize`
/// is how corrupt registries ship. The rare intentional discard is written
/// `(void)expr;` with a comment justifying why failure is acceptable.
///
/// Typical usage:
/// \code
///   Status s = generator.Run(dataset);
///   if (!s.ok()) return s;  // propagate
/// \endcode
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Constructs a status with an explicit code and human-readable message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the status carries no error.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }

  /// The machine-readable code.
  StatusCode code() const { return code_; }

  /// The human-readable message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>" for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Requires the enclosing function
/// to return `Status` (or a type constructible from `Status`).
#define FREQYWM_RETURN_NOT_OK(expr)           \
  do {                                        \
    ::freqywm::Status _st = (expr);           \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace freqywm

#endif  // FREQYWM_COMMON_STATUS_H_
