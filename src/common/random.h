#ifndef FREQYWM_COMMON_RANDOM_H_
#define FREQYWM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace freqywm {

/// SplitMix64: a tiny, high-quality 64-bit mixing generator.
///
/// Used to seed the main generator and for cheap stateless hashing of seeds.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value and advances the state.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// Xoshiro256** — the library's deterministic pseudo-random generator.
///
/// All experiment code takes an explicit seed so every table and figure in
/// EXPERIMENTS.md is bit-reproducible. This is a substrate utility, not a
/// cryptographic primitive: watermarking secrets are derived in
/// `crypto::GenerateSecret` (which mixes this generator into SHA-256 output
/// for high-entropy `R`).
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t NextU64();

  /// Uniform integer in `[0, bound)`. Precondition: `bound > 0`.
  /// Uses Lemire's nearly-divisionless rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in `[lo, hi]` inclusive. Precondition: `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `n` indices uniformly without replacement from `[0, universe)`.
  /// Precondition: `n <= universe`. O(universe) via partial Fisher–Yates.
  std::vector<size_t> SampleWithoutReplacement(size_t universe, size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace freqywm

#endif  // FREQYWM_COMMON_RANDOM_H_
