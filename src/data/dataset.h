#ifndef FREQYWM_DATA_DATASET_H_
#define FREQYWM_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/token.h"

namespace freqywm {

/// The dataset `Do`/`Dw` from the paper: an ordered multiset of tokens.
///
/// Order matters to FreqyWM only for security (added tokens must land at
/// random positions, §III-B1) and for the sequence-analysis experiments in
/// §VI; the watermark itself depends only on the frequency histogram.
class Dataset {
 public:
  Dataset() = default;

  /// Wraps an existing token sequence.
  explicit Dataset(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Number of rows (token occurrences), i.e. the paper's sample size.
  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }

  /// Read access to the token sequence.
  const std::vector<Token>& tokens() const { return tokens_; }
  const Token& operator[](size_t i) const { return tokens_[i]; }

  /// Appends one token occurrence at the end.
  void Append(Token token) { tokens_.push_back(std::move(token)); }

  /// Inserts one occurrence of `token` at a uniformly random position.
  /// Random placement is part of the scheme's guess-attack resistance.
  void InsertAtRandomPosition(Token token, Rng& rng);

  /// Removes up to `count` occurrences of `token`, chosen at uniformly
  /// random positions. Returns the number actually removed.
  size_t RemoveRandomOccurrences(const Token& token, size_t count, Rng& rng);

  /// Counts occurrences of `token` (O(n); use Histogram for bulk queries).
  size_t CountOf(const Token& token) const;

  /// Returns a uniformly random sample (without replacement) of
  /// `sample_size` rows, preserving the original relative order.
  /// Used by the sampling attack (§V-B).
  Dataset SampleRows(size_t sample_size, Rng& rng) const;

 private:
  std::vector<Token> tokens_;
};

/// A multi-dimensional (relational) dataset: rows of attribute values with a
/// shared schema. FreqyWM operates on it by projecting one or more attributes
/// into composite tokens (§IV-C).
class TableDataset {
 public:
  TableDataset() = default;

  /// Creates a table with the given column names.
  explicit TableDataset(std::vector<std::string> column_names)
      : column_names_(std::move(column_names)) {}

  /// Appends a row. Fails with `InvalidArgument` if the arity mismatches.
  Status AppendRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return column_names_.size(); }
  const std::vector<std::string>& column_names() const { return column_names_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Resolves a column name to its index.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Projects the named columns into a single-dimensional token `Dataset`
  /// by joining each row's selected attribute values (paper §IV-C: a token
  /// can be `[Age]` or `[Age, WorkClass]`).
  Result<Dataset> ProjectTokens(
      const std::vector<std::string>& token_columns) const;

  /// Adds `count` new rows whose token columns equal `token` by copying the
  /// non-token attributes from uniformly random existing rows carrying that
  /// token (the paper's "naive solution" for frequency increase, §IV-C).
  /// Fails with `NotFound` if the token has no donor row.
  Status ReplicateTokenRows(const std::vector<std::string>& token_columns,
                            const Token& token, size_t count, Rng& rng);

  /// Removes `count` uniformly random rows whose token columns equal `token`.
  /// Returns the number actually removed.
  Result<size_t> RemoveTokenRows(const std::vector<std::string>& token_columns,
                                 const Token& token, size_t count, Rng& rng);

 private:
  Result<std::vector<size_t>> ResolveColumns(
      const std::vector<std::string>& names) const;

  std::vector<std::string> column_names_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace freqywm

#endif  // FREQYWM_DATA_DATASET_H_
