#ifndef FREQYWM_DATA_IO_H_
#define FREQYWM_DATA_IO_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace freqywm {

/// Reads a single-dimensional token dataset: one token per line.
/// Blank lines are skipped; surrounding whitespace is stripped.
Result<Dataset> ReadTokenFile(const std::string& path);

/// Writes one token per line.
Status WriteTokenFile(const Dataset& dataset, const std::string& path);

/// Reads a simple comma-separated table with a header row. No quoting rules:
/// this loader targets the synthetic datasets produced by `datagen`, whose
/// values never contain commas.
Result<TableDataset> ReadSimpleCsv(const std::string& path);

/// Writes a `TableDataset` as a simple comma-separated file with header.
Status WriteSimpleCsv(const TableDataset& table, const std::string& path);

}  // namespace freqywm

#endif  // FREQYWM_DATA_IO_H_
