#include "data/io.h"

#include <fstream>

#include "common/string_util.h"

namespace freqywm {

Result<Dataset> ReadTokenFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::vector<Token> tokens;
  std::string line;
  while (std::getline(in, line)) {
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    tokens.emplace_back(stripped);
  }
  return Dataset(std::move(tokens));
}

Status WriteTokenFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  for (const Token& t : dataset.tokens()) out << t << '\n';
  if (!out) return Status::Internal("write failed for '" + path + "'");
  return Status::OK();
}

Result<TableDataset> ReadSimpleCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty CSV file '" + path + "'");
  }
  TableDataset table(Split(StripWhitespace(line), ','));
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    Status s = table.AppendRow(Split(stripped, ','));
    if (!s.ok()) {
      return Status::Corruption("row " + std::to_string(line_no) + " of '" +
                                path + "': " + s.message());
    }
  }
  return table;
}

Status WriteSimpleCsv(const TableDataset& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << Join(table.column_names(), ',') << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out << Join(table.row(r), ',') << '\n';
  }
  if (!out) return Status::Internal("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace freqywm
