#ifndef FREQYWM_DATA_HISTOGRAM_H_
#define FREQYWM_DATA_HISTOGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/token.h"

namespace freqywm {

/// One row of a frequency histogram: a distinct token and its count.
struct HistogramEntry {
  Token token;
  uint64_t count = 0;

  friend bool operator==(const HistogramEntry& a, const HistogramEntry& b) {
    return a.token == b.token && a.count == b.count;
  }
};

/// The token frequency histogram `D^hist` from the paper.
///
/// At construction the entries are sorted in descending count order with a
/// deterministic tie-break (ascending token bytes), which makes ranks —
/// and therefore eligibility and every experiment — reproducible.
///
/// Count mutations (`SetCount`, `AddDelta`) intentionally do NOT re-sort:
/// the watermark generator proves it preserves ranking, while attack code
/// deliberately breaks it; `IsSortedDescending()` and `Resorted()` let
/// callers check or restore the invariant explicitly.
class Histogram {
 public:
  Histogram() = default;

  /// Builds the histogram of `dataset`, sorted descending.
  static Histogram FromDataset(const Dataset& dataset);

  /// Builds a histogram from explicit (token, count) pairs. Fails with
  /// `InvalidArgument` on duplicate tokens or zero counts.
  static Result<Histogram> FromCounts(std::vector<HistogramEntry> entries);

  /// Number of distinct tokens.
  size_t num_tokens() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Sum of all counts (the dataset sample size).
  uint64_t total_count() const { return total_; }

  /// Entries in rank order (descending count at construction time).
  const std::vector<HistogramEntry>& entries() const { return entries_; }
  const HistogramEntry& entry(size_t rank) const { return entries_[rank]; }

  /// Count of `token`, or nullopt if absent.
  std::optional<uint64_t> CountOf(const Token& token) const;

  /// Rank (index into `entries()`) of `token`, or nullopt if absent.
  std::optional<size_t> RankOf(const Token& token) const;

  /// Overwrites the count of an existing token (does not re-sort).
  Status SetCount(const Token& token, uint64_t count);

  /// Adds a signed delta to an existing token's count (does not re-sort).
  /// Fails with `InvalidArgument` if the count would go negative.
  Status AddDelta(const Token& token, int64_t delta);

  /// True iff counts are non-increasing in rank order — the paper's
  /// Ranking Constraint on the histogram as currently mutated.
  bool IsSortedDescending() const;

  /// A copy re-sorted descending (deterministic tie-break).
  Histogram Resorted() const;

  /// Multiplies every count by `factor`, rounding to nearest. Used by the
  /// sampling-attack detector to scale a subsample back to the original
  /// size (§V-B).
  void ScaleCounts(double factor);

 private:
  void RebuildIndex();

  std::vector<HistogramEntry> entries_;
  std::unordered_map<Token, size_t> index_;
  uint64_t total_ = 0;
};

}  // namespace freqywm

#endif  // FREQYWM_DATA_HISTOGRAM_H_
