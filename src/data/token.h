#ifndef FREQYWM_DATA_TOKEN_H_
#define FREQYWM_DATA_TOKEN_H_

#include <string>
#include <vector>

namespace freqywm {

/// A token is any repeating value in a dataset (a URL, a taxi id, an age, or
/// a joined combination of attributes). FreqyWM is token-type agnostic, so
/// the library represents every token as an opaque byte string.
using Token = std::string;

/// Separator used when joining several attributes into one composite token
/// (paper §IV-C, e.g. `[Age, WorkClass]`). ASCII Unit Separator never occurs
/// in realistic attribute values, so joins are unambiguous.
inline constexpr char kTokenAttributeSeparator = '\x1f';

/// Joins multi-dimensional attribute values into a single composite token.
Token JoinAttributes(const std::vector<std::string>& attributes);

/// Splits a composite token back into its attribute values.
std::vector<std::string> SplitAttributes(const Token& token);

}  // namespace freqywm

#endif  // FREQYWM_DATA_TOKEN_H_
