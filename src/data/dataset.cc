#include "data/dataset.h"

#include <algorithm>

namespace freqywm {

void Dataset::InsertAtRandomPosition(Token token, Rng& rng) {
  size_t pos = static_cast<size_t>(rng.UniformU64(tokens_.size() + 1));
  tokens_.insert(tokens_.begin() + static_cast<ptrdiff_t>(pos),
                 std::move(token));
}

size_t Dataset::RemoveRandomOccurrences(const Token& token, size_t count,
                                        Rng& rng) {
  if (count == 0) return 0;
  std::vector<size_t> positions;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] == token) positions.push_back(i);
  }
  if (positions.empty()) return 0;
  size_t n = std::min(count, positions.size());
  rng.Shuffle(positions);
  positions.resize(n);
  std::sort(positions.begin(), positions.end());
  // Erase from the back so earlier indices stay valid.
  for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
    tokens_.erase(tokens_.begin() + static_cast<ptrdiff_t>(*it));
  }
  return n;
}

size_t Dataset::CountOf(const Token& token) const {
  return static_cast<size_t>(
      std::count(tokens_.begin(), tokens_.end(), token));
}

Dataset Dataset::SampleRows(size_t sample_size, Rng& rng) const {
  if (sample_size >= tokens_.size()) return *this;
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(tokens_.size(), sample_size);
  std::sort(picked.begin(), picked.end());
  std::vector<Token> out;
  out.reserve(picked.size());
  for (size_t idx : picked) out.push_back(tokens_[idx]);
  return Dataset(std::move(out));
}

Status TableDataset::AppendRow(std::vector<std::string> row) {
  if (row.size() != column_names_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<size_t> TableDataset::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Result<std::vector<size_t>> TableDataset::ResolveColumns(
    const std::vector<std::string>& names) const {
  if (names.empty()) {
    return Status::InvalidArgument("token projection needs >= 1 column");
  }
  std::vector<size_t> idx;
  idx.reserve(names.size());
  for (const auto& n : names) {
    FREQYWM_ASSIGN_OR_RETURN(size_t i, ColumnIndex(n));
    idx.push_back(i);
  }
  return idx;
}

Result<Dataset> TableDataset::ProjectTokens(
    const std::vector<std::string>& token_columns) const {
  FREQYWM_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                           ResolveColumns(token_columns));
  std::vector<Token> tokens;
  tokens.reserve(rows_.size());
  std::vector<std::string> parts(idx.size());
  for (const auto& row : rows_) {
    for (size_t c = 0; c < idx.size(); ++c) parts[c] = row[idx[c]];
    tokens.push_back(JoinAttributes(parts));
  }
  return Dataset(std::move(tokens));
}

Status TableDataset::ReplicateTokenRows(
    const std::vector<std::string>& token_columns, const Token& token,
    size_t count, Rng& rng) {
  FREQYWM_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                           ResolveColumns(token_columns));
  std::vector<size_t> donors;
  std::vector<std::string> parts(idx.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < idx.size(); ++c) parts[c] = rows_[r][idx[c]];
    if (JoinAttributes(parts) == token) donors.push_back(r);
  }
  if (donors.empty()) {
    return Status::NotFound("token has no donor row to replicate");
  }
  for (size_t i = 0; i < count; ++i) {
    size_t donor = donors[rng.UniformU64(donors.size())];
    std::vector<std::string> row = rows_[donor];
    size_t pos = static_cast<size_t>(rng.UniformU64(rows_.size() + 1));
    rows_.insert(rows_.begin() + static_cast<ptrdiff_t>(pos), std::move(row));
    // Donor indices shift after insertion; re-adjust those at/after pos.
    for (auto& d : donors) {
      if (d >= pos) ++d;
    }
  }
  return Status::OK();
}

Result<size_t> TableDataset::RemoveTokenRows(
    const std::vector<std::string>& token_columns, const Token& token,
    size_t count, Rng& rng) {
  FREQYWM_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                           ResolveColumns(token_columns));
  std::vector<size_t> holders;
  std::vector<std::string> parts(idx.size());
  for (size_t r = 0; r < rows_.size(); ++r) {
    for (size_t c = 0; c < idx.size(); ++c) parts[c] = rows_[r][idx[c]];
    if (JoinAttributes(parts) == token) holders.push_back(r);
  }
  size_t n = std::min(count, holders.size());
  rng.Shuffle(holders);
  holders.resize(n);
  std::sort(holders.begin(), holders.end());
  for (auto it = holders.rbegin(); it != holders.rend(); ++it) {
    rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(*it));
  }
  return n;
}

}  // namespace freqywm
