#include "data/histogram.h"

#include <algorithm>
#include <cmath>

namespace freqywm {
namespace {

void SortDescending(std::vector<HistogramEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const HistogramEntry& a, const HistogramEntry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.token < b.token;
            });
}

}  // namespace

Histogram Histogram::FromDataset(const Dataset& dataset) {
  std::unordered_map<Token, uint64_t> counts;
  counts.reserve(dataset.size());
  for (const Token& t : dataset.tokens()) ++counts[t];

  Histogram h;
  h.entries_.reserve(counts.size());
  for (auto& [token, count] : counts) {
    h.entries_.push_back(HistogramEntry{token, count});
  }
  SortDescending(h.entries_);
  h.total_ = dataset.size();
  h.RebuildIndex();
  return h;
}

Result<Histogram> Histogram::FromCounts(std::vector<HistogramEntry> entries) {
  Histogram h;
  h.entries_ = std::move(entries);
  SortDescending(h.entries_);
  uint64_t total = 0;
  for (size_t i = 0; i < h.entries_.size(); ++i) {
    if (h.entries_[i].count == 0) {
      return Status::InvalidArgument("histogram entry with zero count");
    }
    if (i > 0 && h.entries_[i].token == h.entries_[i - 1].token) {
      return Status::InvalidArgument("duplicate token in histogram: " +
                                     h.entries_[i].token);
    }
    total += h.entries_[i].count;
  }
  h.total_ = total;
  h.RebuildIndex();
  return h;
}

void Histogram::RebuildIndex() {
  index_.clear();
  index_.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size(); ++i) index_[entries_[i].token] = i;
}

std::optional<uint64_t> Histogram::CountOf(const Token& token) const {
  auto it = index_.find(token);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].count;
}

std::optional<size_t> Histogram::RankOf(const Token& token) const {
  auto it = index_.find(token);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Status Histogram::SetCount(const Token& token, uint64_t count) {
  auto it = index_.find(token);
  if (it == index_.end()) {
    return Status::NotFound("token not in histogram: " + token);
  }
  total_ -= entries_[it->second].count;
  entries_[it->second].count = count;
  total_ += count;
  return Status::OK();
}

Status Histogram::AddDelta(const Token& token, int64_t delta) {
  auto it = index_.find(token);
  if (it == index_.end()) {
    return Status::NotFound("token not in histogram: " + token);
  }
  uint64_t& count = entries_[it->second].count;
  if (delta < 0 && count < static_cast<uint64_t>(-delta)) {
    return Status::InvalidArgument("delta would make count negative");
  }
  total_ = total_ - count;
  count = static_cast<uint64_t>(static_cast<int64_t>(count) + delta);
  total_ += count;
  return Status::OK();
}

bool Histogram::IsSortedDescending() const {
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count > entries_[i - 1].count) return false;
  }
  return true;
}

Histogram Histogram::Resorted() const {
  Histogram h = *this;
  SortDescending(h.entries_);
  h.RebuildIndex();
  return h;
}

void Histogram::ScaleCounts(double factor) {
  total_ = 0;
  for (auto& e : entries_) {
    e.count = static_cast<uint64_t>(std::llround(
        static_cast<double>(e.count) * factor));
    total_ += e.count;
  }
}

}  // namespace freqywm
