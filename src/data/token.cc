#include "data/token.h"

#include "common/string_util.h"

namespace freqywm {

Token JoinAttributes(const std::vector<std::string>& attributes) {
  return Join(attributes, kTokenAttributeSeparator);
}

std::vector<std::string> SplitAttributes(const Token& token) {
  return Split(token, kTokenAttributeSeparator);
}

}  // namespace freqywm
