/// Fuzz harness for `FingerprintRegistry::Deserialize` (DESIGN.md §11) —
/// the parser hardened in PR 5 (stoull overflow, records-header
/// undercount, signed size fields) finally gets adversarial inputs
/// instead of hand-written regressions.
///
/// Properties checked on every input:
///  * `Deserialize` never crashes, leaks or trips UB — it returns a
///    `Result`, success or failure, for arbitrary bytes;
///  * round-trip fixed point: when an input parses, serializing the
///    parsed registry and parsing it again must reproduce the same bytes
///    and the same record count (a parse that silently drops or invents
///    records is the bug class the PR 5 hardening closed);
///  * `ParseSnapshot` (PR 8, DESIGN.md §13) holds the same properties on
///    the checksum-footed on-disk format, and additionally: whatever it
///    accepts must agree byte-for-byte with `Deserialize` of the payload
///    above the footer — the footer may only ever *reject* inputs, never
///    change what parses. Corpus seeds cover truncated, bit-flipped and
///    checksum-mismatched snapshots (the crash-during-write shapes).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/registry.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  freqywm::Result<freqywm::FingerprintRegistry> parsed =
      freqywm::FingerprintRegistry::Deserialize(text);
  if (!parsed.ok()) return 0;  // rejecting is always fine

  const std::string round = parsed.value().Serialize();
  freqywm::Result<freqywm::FingerprintRegistry> again =
      freqywm::FingerprintRegistry::Deserialize(round);
  if (!again.ok()) {
    std::fprintf(stderr,
                 "round-trip re-parse failed: %s\n",
                 again.status().ToString().c_str());
    std::abort();
  }
  if (again.value().size() != parsed.value().size() ||
      again.value().Serialize() != round) {
    std::fprintf(stderr, "round-trip is not a fixed point (%zu vs %zu records)\n",
                 parsed.value().size(), again.value().size());
    std::abort();
  }

  // Snapshot path: the same bytes through the checksum-verifying parser.
  // Raw fuzz input essentially never carries a valid footer, so also feed
  // it the *well-formed* snapshot of the registry we just parsed — that
  // exercises the accept path — plus the raw bytes for the reject path.
  freqywm::Result<freqywm::FingerprintRegistry> raw_snapshot =
      freqywm::FingerprintRegistry::ParseSnapshot(text);
  if (raw_snapshot.ok() && raw_snapshot.value().Serialize() != round) {
    std::fprintf(stderr, "snapshot parse disagrees with payload parse\n");
    std::abort();
  }
  const std::string snapshot = parsed.value().SerializeSnapshot();
  freqywm::Result<freqywm::FingerprintRegistry> reparsed =
      freqywm::FingerprintRegistry::ParseSnapshot(snapshot);
  if (!reparsed.ok() || reparsed.value().Serialize() != round) {
    std::fprintf(stderr, "snapshot round-trip failed: %s\n",
                 reparsed.ok() ? "bytes differ"
                               : reparsed.status().ToString().c_str());
    std::abort();
  }
  return 0;
}
