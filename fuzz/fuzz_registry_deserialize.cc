/// Fuzz harness for `FingerprintRegistry::Deserialize` (DESIGN.md §11) —
/// the parser hardened in PR 5 (stoull overflow, records-header
/// undercount, signed size fields) finally gets adversarial inputs
/// instead of hand-written regressions.
///
/// Properties checked on every input:
///  * `Deserialize` never crashes, leaks or trips UB — it returns a
///    `Result`, success or failure, for arbitrary bytes;
///  * round-trip fixed point: when an input parses, serializing the
///    parsed registry and parsing it again must reproduce the same bytes
///    and the same record count (a parse that silently drops or invents
///    records is the bug class the PR 5 hardening closed).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/registry.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  freqywm::Result<freqywm::FingerprintRegistry> parsed =
      freqywm::FingerprintRegistry::Deserialize(text);
  if (!parsed.ok()) return 0;  // rejecting is always fine

  const std::string round = parsed.value().Serialize();
  freqywm::Result<freqywm::FingerprintRegistry> again =
      freqywm::FingerprintRegistry::Deserialize(round);
  if (!again.ok()) {
    std::fprintf(stderr,
                 "round-trip re-parse failed: %s\n",
                 again.status().ToString().c_str());
    std::abort();
  }
  if (again.value().size() != parsed.value().size() ||
      again.value().Serialize() != round) {
    std::fprintf(stderr, "round-trip is not a fixed point (%zu vs %zu records)\n",
                 parsed.value().size(), again.value().size());
    std::abort();
  }
  return 0;
}
