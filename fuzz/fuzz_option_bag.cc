/// Fuzz harness for `OptionBag` and the factory builders behind it
/// (DESIGN.md §11): `FromString` parsing, the typed getters (which carry
/// the PR 2 hardening: non-finite doubles and u64 overflow rejected), and
/// `SchemeFactory::Create`, whose per-scheme builders validate every
/// option and reject unknown keys.
///
/// Input layout: byte 0 selects the scheme to build, the rest is the
/// "key=value,key=value" bag text.
///
/// Properties checked on every input:
///  * parsing and building never crash, leak or trip UB;
///  * the typed getters return a value or a `Status` — never throw — for
///    arbitrary entry bytes;
///  * a successfully built scheme reports the name it was built under.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/factory.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  static const std::vector<std::string>* names =
      new std::vector<std::string>(freqywm::SchemeFactory::RegisteredNames());
  const std::string& scheme_name = (*names)[data[0] % names->size()];
  const std::string text(reinterpret_cast<const char*>(data) + 1, size - 1);

  freqywm::Result<freqywm::OptionBag> parsed =
      freqywm::OptionBag::FromString(text);
  if (!parsed.ok()) return 0;  // rejecting is always fine
  const freqywm::OptionBag& bag = parsed.value();

  // The typed getters must parse-or-reject every present value without
  // throwing; fallbacks exercise the absent path on the same keys.
  for (const auto& [key, value] : bag.entries()) {
    (void)value;
    if (freqywm::Result<double> d = bag.GetDouble(key, 0.5); d.ok()) {
      (void)d.value();
    }
    if (freqywm::Result<uint64_t> u = bag.GetU64(key, 7); u.ok()) {
      (void)u.value();
    }
    if (freqywm::Result<std::string> s = bag.GetString(key, "x"); s.ok()) {
      (void)s.value();
    }
  }

  freqywm::Result<std::unique_ptr<freqywm::WatermarkScheme>> built =
      freqywm::SchemeFactory::Create(scheme_name, bag);
  if (!built.ok()) return 0;  // builders may reject any bag
  if (built.value()->name() != scheme_name) {
    std::fprintf(stderr, "scheme built as '%s' reports name '%s'\n",
                 scheme_name.c_str(), built.value()->name().c_str());
    std::abort();
  }
  return 0;
}
