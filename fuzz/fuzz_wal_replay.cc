/// Fuzz harness for WAL open/replay (ISSUE 10, DESIGN.md §15): arbitrary
/// bytes presented as a write-ahead-log image may only ever
///  * parse to a valid prefix with the tail classified torn (what a
///    crash mid-append legitimately leaves), or
///  * be rejected with typed `Corruption` (bad magic, or a damaged frame
///    that intact frames follow),
/// and the scanner must NEVER crash, over-allocate from hostile length
/// fields, or parse past a bad checksum.
///
/// Properties checked on every input:
///  * `Scan` returns; any records it yields re-encode (magic + frames)
///    to exactly the valid prefix it claimed — the scanner neither
///    invents, reorders, nor reinterprets bytes;
///  * `valid_bytes` never exceeds the input and `torn_tail` is set iff
///    `valid_bytes < size` (for inputs long enough to carry the magic);
///  * a scan of the valid prefix alone is clean (truncate-at-tail is a
///    fixed point — recovery after recovery changes nothing);
///  * record payloads that `DecodeRegistration` accepts survive an
///    encode/decode round trip (replay applies exactly what was logged).
///
/// Corpus seeds cover a well-formed multi-record log, torn tails at
/// several cut points, a bit-flipped final frame (truncates) and a
/// bit-flipped interior frame (Corruption).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "analysis/durable_registry.h"
#include "analysis/wal.h"
#include "common/status.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  freqywm::Result<freqywm::WalScanResult> scan =
      freqywm::WriteAheadLog::Scan(bytes);
  if (!scan.ok()) {
    if (scan.status().code() != freqywm::StatusCode::kCorruption) {
      std::fprintf(stderr, "non-Corruption rejection: %s\n",
                   scan.status().ToString().c_str());
      std::abort();
    }
    return 0;  // typed rejection is always fine
  }

  const freqywm::WalScanResult& result = scan.value();
  if (result.valid_bytes > size) {
    std::fprintf(stderr, "valid_bytes %zu > input %zu\n", result.valid_bytes,
                 size);
    std::abort();
  }
  if (result.torn_tail != (result.valid_bytes < size)) {
    std::fprintf(stderr, "torn_tail flag disagrees with valid_bytes\n");
    std::abort();
  }

  // Re-encoding the accepted records must reproduce the valid prefix
  // byte for byte — the frames the scanner accepted are exactly the
  // frames on disk, nothing skipped, nothing reinterpreted.
  std::string reencoded;
  if (result.valid_bytes > 0) {
    reencoded.assign(freqywm::kWalMagic, freqywm::kWalMagicLen);
  }
  for (const std::string& payload : result.records) {
    reencoded += freqywm::WriteAheadLog::EncodeFrame(payload);
  }
  if (reencoded != bytes.substr(0, result.valid_bytes)) {
    std::fprintf(stderr, "re-encoded prefix differs from input prefix\n");
    std::abort();
  }

  // Truncate-at-tail is a fixed point: scanning the valid prefix alone
  // is clean and yields the same records.
  freqywm::Result<freqywm::WalScanResult> again =
      freqywm::WriteAheadLog::Scan(bytes.substr(0, result.valid_bytes));
  if (!again.ok() || again.value().torn_tail ||
      again.value().records != result.records) {
    std::fprintf(stderr, "recovery is not a fixed point\n");
    std::abort();
  }

  // Replay layer: payloads either decode (and round-trip) or reject
  // typed Corruption — never crash, never half-apply.
  for (const std::string& payload : result.records) {
    freqywm::Result<freqywm::FingerprintRecord> decoded =
        freqywm::DecodeRegistration(payload);
    if (!decoded.ok()) {
      if (decoded.status().code() != freqywm::StatusCode::kCorruption) {
        std::fprintf(stderr, "non-Corruption decode rejection: %s\n",
                     decoded.status().ToString().c_str());
        std::abort();
      }
      continue;
    }
    const std::string reencoded_record = freqywm::EncodeRegistration(
        decoded.value().buyer_id, decoded.value().key);
    if (reencoded_record != payload) {
      std::fprintf(stderr, "registration decode/encode is not identity\n");
      std::abort();
    }
  }
  return 0;
}
