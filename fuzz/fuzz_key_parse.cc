/// Fuzz harness for the scheme-key parsing stack (DESIGN.md §11):
/// `SchemeKey::Deserialize` plus, when the blob parses, the per-scheme
/// payload parsers reached through `WatermarkScheme::Prepare` and the
/// detect path (`ParseKeyFields`, `ParseBitString`, secrets parsing, ...).
///
/// Properties checked on every input:
///  * the parsers never crash, leak or trip UB on arbitrary bytes;
///  * `Prepare` never returns null, malformed payloads included
///    (api/scheme.h contract);
///  * prepared-path identity: `Detect(hist, *Prepare(key), opts)` equals
///    `Detect(hist, key, opts)` bit-exactly — for hostile keys too, the
///    contract `tests/exec/prepared_detect_test.cc` enforces on
///    well-formed ones.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/factory.h"
#include "api/scheme.h"
#include "data/histogram.h"

namespace {

/// A tiny fixed suspect histogram, built once: detection cost stays
/// bounded no matter what the fuzzer feeds the key parser.
const freqywm::Histogram& SuspectHistogram() {
  static const freqywm::Histogram* hist = [] {
    std::vector<freqywm::HistogramEntry> entries;
    for (uint64_t t = 0; t < 32; ++t) {
      entries.push_back(freqywm::HistogramEntry{
          freqywm::Token("tok" + std::to_string(t)), 1000 - 7 * t});
    }
    auto built = freqywm::Histogram::FromCounts(std::move(entries));
    return new freqywm::Histogram(std::move(built).value());
  }();
  return *hist;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  freqywm::Result<freqywm::SchemeKey> parsed =
      freqywm::SchemeKey::Deserialize(text);
  if (!parsed.ok()) return 0;  // rejecting is always fine
  const freqywm::SchemeKey& key = parsed.value();

  static freqywm::SchemeCache* schemes = new freqywm::SchemeCache();
  const freqywm::WatermarkScheme* scheme = schemes->Get(key.scheme);
  if (scheme == nullptr) return 0;  // unregistered tag — nothing to probe

  std::unique_ptr<freqywm::PreparedKey> prepared = scheme->Prepare(key);
  if (prepared == nullptr) {
    std::fprintf(stderr, "Prepare returned null for scheme %s\n",
                 key.scheme.c_str());
    std::abort();
  }

  const freqywm::DetectOptions options =
      scheme->RecommendedDetectOptions(key);
  const freqywm::DetectResult via_key =
      scheme->Detect(SuspectHistogram(), key, options);
  const freqywm::DetectResult via_prepared =
      scheme->Detect(SuspectHistogram(), *prepared, options);
  if (!(via_key == via_prepared)) {
    std::fprintf(stderr, "prepared-path detection diverges for scheme %s\n",
                 key.scheme.c_str());
    std::abort();
  }
  return 0;
}
