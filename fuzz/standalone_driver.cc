/// Corpus-replay driver for builds without libFuzzer (gcc, MSVC): links
/// against the same `LLVMFuzzerTestOneInput` entry point as the real
/// engine and replays every file under the given paths, optionally
/// followed by deterministic mutations of each seed. This keeps the
/// harness logic exercised on every toolchain — the coverage-guided
/// exploration itself runs in the clang `fuzz-smoke` CI job
/// (DESIGN.md §11).
///
/// Usage: driver [--mutations=N] <file-or-dir>...
///
/// Mutations are reproducible: the RNG is seeded from an FNV-1a hash of
/// the seed bytes, never from time or address randomness, so a failing
/// mutation index can be replayed bit-exactly.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xorshift64* — tiny, deterministic, good enough to perturb seeds.
uint64_t NextRand(uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1DULL;
}

/// One deterministic mutation: byte flips, truncation, duplication or an
/// insertion, chosen by the RNG.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed,
                            uint64_t& state) {
  std::vector<uint8_t> out = seed;
  switch (NextRand(state) % 4) {
    case 0: {  // flip up to 4 bytes
      if (out.empty()) break;
      size_t flips = 1 + NextRand(state) % 4;
      for (size_t f = 0; f < flips; ++f) {
        out[NextRand(state) % out.size()] ^=
            static_cast<uint8_t>(NextRand(state));
      }
      break;
    }
    case 1: {  // truncate
      if (out.empty()) break;
      out.resize(NextRand(state) % out.size());
      break;
    }
    case 2: {  // duplicate a slice onto the end
      if (out.empty()) break;
      size_t begin = NextRand(state) % out.size();
      size_t len = 1 + NextRand(state) % (out.size() - begin);
      out.insert(out.end(), out.begin() + static_cast<ptrdiff_t>(begin),
                 out.begin() + static_cast<ptrdiff_t>(begin + len));
      break;
    }
    default: {  // insert a random byte
      size_t pos = out.empty() ? 0 : NextRand(state) % (out.size() + 1);
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos),
                 static_cast<uint8_t>(NextRand(state)));
      break;
    }
  }
  return out;
}

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutations = 0;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mutations=", 12) == 0) {
      mutations = static_cast<size_t>(std::strtoull(argv[i] + 12, nullptr, 10));
      continue;
    }
    std::filesystem::path p(argv[i]);
    if (std::filesystem::is_directory(p)) {
      for (const auto& entry : std::filesystem::directory_iterator(p)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
    } else if (std::filesystem::is_regular_file(p)) {
      inputs.push_back(p);
    } else {
      std::fprintf(stderr, "no such input: %s\n", argv[i]);
      return 2;
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "usage: %s [--mutations=N] <file-or-dir>...\n",
                 argv[0]);
    return 2;
  }
  std::sort(inputs.begin(), inputs.end());  // deterministic replay order

  size_t execs = 0;
  for (const auto& path : inputs) {
    const std::vector<uint8_t> seed = ReadFile(path);
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++execs;
    uint64_t state = Fnv1a(seed) | 1;  // never zero (xorshift fixpoint)
    for (size_t m = 0; m < mutations; ++m) {
      const std::vector<uint8_t> mutated = Mutate(seed, state);
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
      ++execs;
    }
  }
  std::printf("standalone fuzz driver: %zu inputs, %zu execs, no crashes\n",
              inputs.size(), execs);
  return 0;
}
