// Multi-dimensional watermarking (§IV-C): watermark a census-style
// relational table through the composite token [Age, WorkClass], then
// verify (a) the watermark detects, (b) added rows replicate donor rows so
// no impossible attribute combination is invented, and (c) the marginal
// statistics a downstream analyst would use are preserved.
//
//   $ ./examples/census_multidim

#include <cstdio>
#include <set>
#include <string>

#include "core/multidim.h"
#include "datagen/real_world.h"
#include "stats/similarity.h"

using namespace freqywm;

int main() {
  Rng rng(3);
  TableDataset census = MakeAdultLikeTable(rng, 48842);
  const std::vector<std::string> token_cols = {"Age", "WorkClass"};

  auto before = census.ProjectTokens(token_cols);
  if (!before.ok()) return 1;
  Histogram hist_before = Histogram::FromDataset(before.value());
  std::printf("census table: %zu rows, %zu distinct [Age, WorkClass] "
              "tokens (paper: 481)\n",
              census.num_rows(), hist_before.num_tokens());

  GenerateOptions options;
  options.budget_percent = 2.0;
  options.modulus_bound = 131;
  options.seed = 8;
  auto result = WatermarkTable(census, token_cols, options);
  if (!result.ok()) {
    std::printf("watermarking failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  std::printf("embedded %zu pairs, similarity %.4f%%, rows now %zu\n",
              result.value().report.chosen_pairs,
              result.value().report.similarity_percent,
              result.value().watermarked.num_rows());

  // (a) Detection through re-projection.
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = result.value().report.chosen_pairs;
  auto dr = DetectTableWatermark(result.value().watermarked, token_cols,
                                 result.value().report.secrets, d);
  std::printf("detection: %s\n",
              dr.ok() && dr.value().accepted ? "watermark verified"
                                             : "FAILED");

  // (b) No invented rows: every watermarked row's full attribute vector
  // must already exist in the original table.
  std::set<std::string> combos;
  for (size_t i = 0; i < census.num_rows(); ++i) {
    std::string key;
    for (const auto& v : census.row(i)) key += v + "\x1f";
    combos.insert(key);
  }
  size_t invented = 0;
  for (size_t i = 0; i < result.value().watermarked.num_rows(); ++i) {
    std::string key;
    for (const auto& v : result.value().watermarked.row(i)) key += v + "\x1f";
    if (!combos.count(key)) ++invented;
  }
  std::printf("semantic audit: %zu invented attribute combinations\n",
              invented);

  // (c) Downstream-marginal check: the Education distribution (not part of
  // the token) is statistically untouched.
  auto edu_before = census.ProjectTokens({"Education"});
  auto edu_after = result.value().watermarked.ProjectTokens({"Education"});
  if (edu_before.ok() && edu_after.ok()) {
    double sim = HistogramSimilarityPercent(
        Histogram::FromDataset(edu_before.value()),
        Histogram::FromDataset(edu_after.value()));
    std::printf("education marginal similarity: %.4f%%\n", sim);
  }
  return (dr.ok() && dr.value().accepted && invented == 0) ? 0 : 1;
}
