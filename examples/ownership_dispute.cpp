// Ownership dispute: the §V-D re-watermarking scenario end-to-end. A
// pirate buys (or steals) a watermarked dataset, embeds its OWN watermark
// on top, and claims ownership with a perfectly valid-looking proof. A
// judge runs both parties' secrets against both parties' datasets and
// identifies the true owner from the asymmetry: the first watermark left a
// trace in the pirate's copy, while the pirate's pairs verify nowhere on
// data it never modified.
//
//   $ ./examples/ownership_dispute

#include <cstdio>

#include "attacks/rewatermark.h"
#include "core/watermark.h"
#include "datagen/power_law.h"

using namespace freqywm;

int main() {
  // The honest owner watermarks a 1K-token dataset.
  Rng rng(11);
  PowerLawSpec spec;
  spec.num_tokens = 1000;
  spec.sample_size = 1'000'000;
  spec.alpha = 0.5;
  Histogram original = GeneratePowerLawHistogram(spec, rng);

  GenerateOptions owner_opts;
  owner_opts.budget_percent = 2.0;
  owner_opts.modulus_bound = 131;
  owner_opts.seed = 1;  // the owner's private randomness
  auto owner = WatermarkGenerator(owner_opts).GenerateFromHistogram(original);
  if (!owner.ok()) return 1;
  std::printf("owner embedded %zu pairs\n",
              owner.value().report.chosen_pairs);

  // The pirate re-watermarks the purchased copy with fresh secrets.
  GenerateOptions pirate_opts = owner_opts;
  pirate_opts.seed = 31337;
  auto pirate = ReWatermarkAttack(owner.value().watermarked, pirate_opts);
  if (!pirate.ok()) return 1;
  std::printf("pirate embedded %zu pairs on top and claims ownership\n\n",
              pirate.value().report.chosen_pairs);

  // Both parties present (dataset, secrets) to the judge.
  DetectOptions policy;
  policy.pair_threshold = 0;
  policy.min_pairs =
      std::max<size_t>(1, owner.value().report.chosen_pairs / 2);
  JudgeReport report = ArbitrateOwnership(
      owner.value().watermarked, owner.value().report.secrets,
      pirate.value().watermarked, pirate.value().report.secrets, policy);

  std::printf("judge's four detections (verified pairs):\n");
  std::printf("  owner secret  on owner data:  %zu\n",
              report.a_on_a.pairs_verified);
  std::printf("  owner secret  on pirate data: %zu   <- first watermark "
              "survives\n",
              report.a_on_b.pairs_verified);
  std::printf("  pirate secret on owner data:  %zu   <- nothing to find\n",
              report.b_on_a.pairs_verified);
  std::printf("  pirate secret on pirate data: %zu\n\n",
              report.b_on_b.pairs_verified);

  switch (report.verdict) {
    case JudgeVerdict::kPartyA:
      std::printf("verdict: party A (the honest owner) wins the dispute\n");
      return 0;
    case JudgeVerdict::kPartyB:
      std::printf("verdict: party B?! the pirate fooled the judge\n");
      return 1;
    case JudgeVerdict::kInconclusive:
      std::printf("verdict: inconclusive\n");
      return 1;
  }
  return 1;
}
