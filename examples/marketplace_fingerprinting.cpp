// Marketplace fingerprinting: the leak-tracing use case from the paper's
// introduction. A data seller embeds a DIFFERENT watermark for every buyer
// and records each secret in an (immutable) index. When a pirated copy
// surfaces — here disguised by the pirate with random frequency noise —
// the seller looks it up against the index and identifies which buyer
// leaked it.
//
// Parameter note: fingerprinting needs pairs whose moduli comfortably
// exceed both the pirate's noise and the detection threshold, otherwise
// every buyer's pairs verify by chance and nothing discriminates. The
// setup below (s in [16, 67), symmetric t = 3) keeps the true buyer near
// 80% verified pairs and innocent buyers near the ~(2t+1)/s chance floor.
//
//   $ ./examples/marketplace_fingerprinting

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/destroy.h"
#include "core/detect.h"
#include "core/watermark.h"
#include "datagen/real_world.h"

using namespace freqywm;

namespace {

/// One row of the seller's escrow index (a blockchain in the paper; a
/// vector here).
struct BuyerRecord {
  std::string buyer;
  WatermarkSecrets secrets;
  size_t chosen_pairs;
};

}  // namespace

int main() {
  // The asset: a taxi-trip style dataset (token = taxi id).
  Rng rng(2023);
  Histogram master = MakeChicagoTaxiLikeHistogram(rng, 1200, 800'000);
  std::printf("master dataset: %llu rows, %zu distinct taxis\n",
              static_cast<unsigned long long>(master.total_count()),
              master.num_tokens());

  // Sell three copies, each with its own fingerprint.
  GenerateOptions base;
  base.budget_percent = 2.0;
  base.modulus_bound = 67;
  base.min_modulus = 16;
  // Every fingerprint pair must have required a real frequency change
  // well beyond the detection threshold, so other buyers' copies cannot
  // verify it by proximity.
  base.min_pair_cost = 8;
  const char* buyers[] = {"acme-analytics", "hedgefund-42", "adtech-co"};
  std::vector<BuyerRecord> index;
  std::vector<Histogram> delivered;

  for (size_t i = 0; i < 3; ++i) {
    GenerateOptions o = base;
    o.seed = 1000 + i;  // per-buyer secret
    auto r = WatermarkGenerator(o).GenerateFromHistogram(master);
    if (!r.ok()) {
      std::printf("generation for %s failed: %s\n", buyers[i],
                  r.status().ToString().c_str());
      return 1;
    }
    std::printf("delivered to %-16s %zu fingerprint pairs, similarity "
                "%.4f%%\n",
                buyers[i], r.value().report.chosen_pairs,
                r.value().report.similarity_percent);
    index.push_back(BuyerRecord{buyers[i],
                                std::move(r.value().report.secrets),
                                r.value().report.chosen_pairs});
    delivered.push_back(std::move(r.value().watermarked));
  }

  // A pirated copy appears on another marketplace: buyer #2's copy,
  // disguised with random frequency noise (4% of each token's rank
  // boundary — the §V-C1 destroy attack a cautious pirate would mount).
  Rng pirate_rng(555);
  Histogram pirated =
      DestroyAttackPercentOfBoundary(delivered[1], 4.0, pirate_rng);
  std::printf("\npirated (noise-disguised) copy found: %llu rows\n",
              static_cast<unsigned long long>(pirated.total_count()));

  // Trace: run every escrowed secret against the pirated copy. The true
  // origin verifies far above the chance floor; innocents stay below k.
  std::printf("\n%-16s %-12s %-10s\n", "buyer", "verified", "verdict");
  const BuyerRecord* culprit = nullptr;
  double best_fraction = 0;
  for (const auto& record : index) {
    DetectOptions d;
    d.pair_threshold = 3;        // covers the pirate's noise
    d.symmetric_residue = true;  // noise drifts residues both ways
    d.min_pairs = std::max<size_t>(1, record.chosen_pairs / 2);
    DetectResult r = DetectWatermark(pirated, record.secrets, d);
    std::printf("%-16s %zu/%-9zu %-10s\n", record.buyer.c_str(),
                r.pairs_verified, record.chosen_pairs,
                r.accepted ? "MATCH" : "-");
    if (r.accepted && r.verified_fraction > best_fraction) {
      best_fraction = r.verified_fraction;
      culprit = &record;
    }
  }
  if (culprit) {
    std::printf("\nleak traced to: %s (%.0f%% of fingerprint pairs "
                "verified)\n",
                culprit->buyer.c_str(), best_fraction * 100);
  } else {
    std::printf("\nno buyer matched — copy may predate fingerprinting\n");
  }
  return culprit ? 0 : 1;
}
