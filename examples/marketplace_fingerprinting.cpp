// Marketplace fingerprinting: the leak-tracing use case from the paper's
// introduction. A data seller embeds a DIFFERENT watermark for every buyer
// and records each scheme-tagged key in an (immutable) index — here the
// library's `FingerprintRegistry`. When a pirated copy surfaces — disguised
// by the pirate with random frequency noise — `Trace` runs every escrowed
// key against it through the `WatermarkScheme` interface and identifies
// which buyer leaked it.
//
// Parameter note: fingerprinting needs pairs whose moduli comfortably
// exceed both the pirate's noise and the detection threshold, otherwise
// every buyer's pairs verify by chance and nothing discriminates. The
// setup below (s in [16, 67), symmetric t = 3) keeps the true buyer near
// 80% verified pairs and innocent buyers near the ~(2t+1)/s chance floor.
//
// Act two drives the same screening workload through the engine's
// multi-tenant front door (DESIGN.md §14): buyer keys escrowed into a
// quota-bounded `TenantContext`, surfaced copies submitted through a
// `TenantSession` whose admission controller sheds overload with TYPED
// `kResourceExhausted` statuses (never silent drops, never unbounded
// queues), verdicts collected with `DrainChecked`, and a second tenant
// shown untouched by the first tenant's traffic.
//
// Act three makes the escrow ledger itself crash-proof (DESIGN.md §15):
// the same tenant, re-opened durable, write-ahead-logs every
// registration before acknowledging it. We then simulate a hard crash —
// process state gone, a half-written record torn at the log's tail —
// and show recovery replaying exactly the acknowledged escrows and the
// recovered ledger still tracing the leak.
//
//   $ ./examples/marketplace_fingerprinting

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/durable_registry.h"
#include "analysis/registry.h"
#include "analysis/tenant.h"
#include "analysis/wal.h"
#include "api/attack.h"
#include "api/factory.h"
#include "core/secrets.h"
#include "datagen/real_world.h"
#include "exec/cancellation.h"

using namespace freqywm;

int main() {
  // The asset: a taxi-trip style dataset (token = taxi id).
  Rng rng(2023);
  Histogram master = MakeChicagoTaxiLikeHistogram(rng, 1200, 800'000);
  std::printf("master dataset: %llu rows, %zu distinct taxis\n",
              static_cast<unsigned long long>(master.total_count()),
              master.num_tokens());

  // Sell three copies, each with its own fingerprint. The embedding knobs
  // travel as a generic option bag; only the per-buyer seed varies.
  //
  // min_pair_cost=8 is fingerprint hygiene: every pair must have required
  // a real frequency change well beyond the detection threshold, so other
  // buyers' copies cannot verify it by proximity.
  const char* buyers[] = {"acme-analytics", "hedgefund-42", "adtech-co"};
  FingerprintRegistry registry;
  std::vector<SchemeKey> keys;  // escrowed again into the tenant in act two
  std::vector<Histogram> delivered;
  size_t min_fingerprint_pairs = 0;

  for (size_t i = 0; i < 3; ++i) {
    OptionBag bag;
    bag.Set("budget", "2.0");
    bag.Set("z", "67");
    bag.Set("min_modulus", "16");
    bag.Set("min_pair_cost", "8");
    bag.Set("seed", std::to_string(1000 + i));  // per-buyer secret
    auto scheme = SchemeFactory::Create("freqywm", bag);
    if (!scheme.ok()) {
      std::printf("factory failed: %s\n",
                  scheme.status().ToString().c_str());
      return 1;
    }
    auto r = scheme.value()->Embed(master);
    if (!r.ok()) {
      std::printf("generation for %s failed: %s\n", buyers[i],
                  r.status().ToString().c_str());
      return 1;
    }
    std::printf("delivered to %-16s %zu fingerprint pairs, similarity "
                "%.4f%%\n",
                buyers[i], r.value().report.embedded_units,
                r.value().report.similarity_percent);
    if (min_fingerprint_pairs == 0 ||
        r.value().report.embedded_units < min_fingerprint_pairs) {
      min_fingerprint_pairs = r.value().report.embedded_units;
    }
    keys.push_back(r.value().key);
    if (Status s = registry.Register(buyers[i], std::move(r.value().key));
        !s.ok()) {
      std::printf("escrow failed: %s\n", s.ToString().c_str());
      return 1;
    }
    delivered.push_back(std::move(r.value().watermarked));
  }

  // A pirated copy appears on another marketplace: buyer #2's copy,
  // disguised with random frequency noise (4% of each token's rank
  // boundary — the §V-C1 destroy attack a cautious pirate would mount).
  Rng pirate_rng(555);
  Histogram pirated =
      MakePercentOfBoundaryAttack(4.0)->Apply(delivered[1], pirate_rng);
  std::printf("\npirated (noise-disguised) copy found: %llu rows\n",
              static_cast<unsigned long long>(pirated.total_count()));

  // Trace: the registry runs every escrowed key against the pirated copy
  // through its scheme's Detect — no per-buyer plumbing here. The true
  // origin verifies far above the chance floor; innocents stay below k.
  DetectOptions d;
  d.pair_threshold = 3;        // covers the pirate's noise
  d.symmetric_residue = true;  // noise drifts residues both ways
  d.min_pairs = std::max<size_t>(1, min_fingerprint_pairs / 2);
  std::vector<TraceMatch> matches = registry.Trace(pirated, d);

  std::printf("\n%-16s %-10s %-12s\n", "buyer", "scheme", "verified");
  for (const TraceMatch& match : matches) {
    std::printf("%-16s %-10s %zu/%zu (%.0f%%)\n", match.buyer_id.c_str(),
                match.scheme.c_str(), match.detection.pairs_verified,
                match.detection.pairs_found,
                match.detection.verified_fraction * 100);
  }
  if (!matches.empty()) {
    std::printf("\nleak traced to: %s (%.0f%% of fingerprint pairs "
                "verified)\n",
                matches[0].buyer_id.c_str(),
                matches[0].detection.verified_fraction * 100);
  } else {
    std::printf("\nno buyer matched — copy may predate fingerprinting\n");
  }

  // ---- Act two: routine screening through the multi-tenant engine ----
  // The seller's marketplace instance is one tenant of the detection
  // engine. Quotas size its slice: how many keys it may escrow, how much
  // screening work may be queued, how many sessions it may hold open.
  TenantQuotas quotas;
  quotas.max_escrowed_keys = 3;
  quotas.max_concurrent_sessions = 1;
  quotas.max_in_flight_suspects = 4;  // admitted-but-undrained budget
  quotas.max_pending_suspects = 4;    // session queue budget
  TenantContext seller("marketplace-eu", quotas);
  for (size_t i = 0; i < 3; ++i) {
    if (Status s = seller.Escrow(buyers[i], keys[i]); !s.ok()) {
      std::printf("tenant escrow failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // A fourth fingerprint does not fit the plan — the quota rejection is
  // typed, so the caller can distinguish "upgrade your plan" from a bug.
  if (Status s = seller.Escrow("late-buyer", keys[0]);
      s.code() == StatusCode::kResourceExhausted) {
    std::printf("\nescrow for late-buyer rejected (typed): %s\n",
                s.ToString().c_str());
  } else {
    std::printf("\nexpected a typed escrow-quota rejection, got: %s\n",
                s.ToString().c_str());
    return 1;
  }

  // Screen a crawl's worth of surfaced copies — the three legitimate
  // deliveries plus the pirated copy, over and over. Offered load (12
  // copies) deliberately exceeds the in-flight budget (4): the admission
  // controller sheds the overflow with typed `kResourceExhausted`, the
  // caller drains and re-offers. Nothing is silently dropped and the
  // queue never outgrows its budget.
  auto session = seller.OpenSession(/*num_threads=*/2);
  if (!session.ok()) {
    std::printf("open session failed: %s\n",
                session.status().ToString().c_str());
    return 1;
  }
  std::vector<Histogram> crawl;
  for (size_t i = 0; i < 12; ++i) {
    crawl.push_back(i % 4 == 3 ? pirated : delivered[i % 4]);
  }

  std::printf("\nscreening %zu surfaced copies (in-flight budget %zu)\n",
              crawl.size(), quotas.max_in_flight_suspects);
  size_t screened = 0;
  size_t sheds = 0;
  std::vector<std::vector<DetectResult>> verdicts;
  size_t next = 0;
  while (next < crawl.size()) {
    Status s = session.value()->TrySubmit({crawl[next]});
    if (s.ok()) {
      ++next;
      continue;
    }
    if (s.code() != StatusCode::kResourceExhausted) {
      std::printf("unexpected submit failure: %s\n", s.ToString().c_str());
      return 1;
    }
    ++sheds;  // typed shed: budget full — drain, then re-offer this copy
    SessionDrainResult drained = session.value()->DrainChecked({});
    if (!drained.status.ok()) {
      std::printf("drain failed: %s\n", drained.status.ToString().c_str());
      return 1;
    }
    screened += drained.verdicts.size();
    for (auto& row : drained.verdicts) verdicts.push_back(std::move(row));
  }
  SessionDrainResult tail = session.value()->DrainChecked({});
  screened += tail.verdicts.size();
  for (auto& row : tail.verdicts) verdicts.push_back(std::move(row));

  std::printf("screened %zu/%zu copies, %zu typed shed(s) handled\n",
              screened, crawl.size(), sheds);
  if (screened != crawl.size()) {
    std::printf("admitted work went missing — screened != offered\n");
    return 1;
  }
  std::printf("%-28s", "copy");
  for (const char* buyer : buyers) std::printf(" %-16s", buyer);
  std::printf("\n");
  for (size_t i = 0; i < verdicts.size(); ++i) {
    std::printf("%-28s",
                (i % 4 == 3 ? "pirated (noised)"
                            : (std::string("delivery to ") + buyers[i % 4])
                                  .c_str()));
    for (size_t j = 0; j < verdicts[i].size(); ++j) {
      std::printf(" %-16s", verdicts[i][j].accepted ? "MATCH" : "-");
    }
    std::printf("\n");
  }
  std::printf("(routine screening runs each key's recommended thresholds —\n"
              " it flags verbatim redistributions; the noise-disguised copy\n"
              " is what the tuned trace above exists for)\n");

  // Tenant isolation: a sibling tenant (another region's marketplace)
  // shares NOTHING with the EU tenant — not the registry, not the key
  // cache, not the admission counters. The EU crawl left no trace here.
  TenantContext sibling("marketplace-us", quotas);
  EngineHealthSnapshot eu = seller.Health();
  EngineHealthSnapshot us = sibling.Health();
  std::printf("\ntenant health        %-16s %-16s\n", "marketplace-eu",
              "marketplace-us");
  std::printf("  admitted           %-16llu %-16llu\n",
              static_cast<unsigned long long>(eu.admission.admitted),
              static_cast<unsigned long long>(us.admission.admitted));
  std::printf("  shed (typed)       %-16llu %-16llu\n",
              static_cast<unsigned long long>(eu.total_shed()),
              static_cast<unsigned long long>(us.total_shed()));
  std::printf("  cache hits/misses  %llu/%-14llu %llu/%-14llu\n",
              static_cast<unsigned long long>(eu.key_cache.hits),
              static_cast<unsigned long long>(eu.key_cache.misses),
              static_cast<unsigned long long>(us.key_cache.hits),
              static_cast<unsigned long long>(us.key_cache.misses));
  if (us.admission.admitted != 0 || us.total_shed() != 0 ||
      us.key_cache.hits + us.key_cache.misses != 0) {
    std::printf("tenant isolation violated — sibling saw traffic\n");
    return 1;
  }

  // ---- Act three: durable escrow and crash recovery (DESIGN.md §15) ----
  // The escrow ledger IS the business: lose it and every delivered copy
  // becomes untraceable. A durable tenant appends each registration to a
  // write-ahead log and fsyncs BEFORE acknowledging (fsync=every), so a
  // crash — even one that tears a record in half mid-write — costs at
  // most work that was never acknowledged.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string durable_dir =
      std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
      "/marketplace_escrow";
  std::remove(DurableRegistry::SnapshotPath(durable_dir).c_str());
  std::remove(DurableRegistry::WalPath(durable_dir).c_str());
  ::rmdir(durable_dir.c_str());
  ::mkdir(durable_dir.c_str(), 0755);

  TenantQuotas durable_quotas = quotas;
  durable_quotas.durable_dir = durable_dir;
  {
    auto durable = TenantContext::Open("marketplace-eu", durable_quotas);
    if (!durable.ok()) {
      std::printf("durable tenant open failed: %s\n",
                  durable.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < 3; ++i) {
      if (Status s = durable.value()->Escrow(buyers[i], keys[i]); !s.ok()) {
        std::printf("durable escrow failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    EngineHealthSnapshot live = durable.value()->Health();
    std::printf("\ndurable escrow: 3 registrations acknowledged, WAL %llu "
                "bytes (fsync=every)\n",
                static_cast<unsigned long long>(
                    live.durability.wal_size_bytes));
  }  // <- simulated crash: every in-memory structure is gone; the WAL is not

  // The crash also interrupted a FOURTH registration mid-append: append
  // the first half of a real frame, exactly what a dying process leaves.
  {
    const std::string torn =
        WriteAheadLog::EncodeFrame(EncodeRegistration("late-buyer", keys[0]));
    std::FILE* wal =
        std::fopen(DurableRegistry::WalPath(durable_dir).c_str(), "ab");
    if (wal == nullptr) return 1;
    std::fwrite(torn.data(), 1, torn.size() / 2, wal);
    std::fclose(wal);
  }

  auto recovered = TenantContext::Open("marketplace-eu", durable_quotas);
  if (!recovered.ok()) {
    std::printf("recovery failed: %s\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  EngineHealthSnapshot after = recovered.value()->Health();
  std::printf("crash + recovery: %llu record(s) replayed from the WAL, "
              "torn tail %s (the unacknowledged half-record, discarded)\n",
              static_cast<unsigned long long>(
                  after.durability.records_replayed_at_open),
              after.durability.torn_tail_truncated_at_open ? "truncated"
                                                           : "absent");
  if (after.durability.records_replayed_at_open != 3 ||
      !after.durability.torn_tail_truncated_at_open) {
    std::printf("recovery did not match the acknowledged prefix\n");
    return 1;
  }

  // The recovered ledger still traces the pirated copy to the same buyer.
  std::vector<TraceMatch> retrace =
      recovered.value()->durable_registry()->Snapshot().Trace(pirated, d);
  if (retrace.empty() || matches.empty() ||
      retrace[0].buyer_id != matches[0].buyer_id) {
    std::printf("recovered ledger failed to re-trace the leak\n");
    return 1;
  }
  std::printf("recovered ledger re-traces the leak to: %s (%.0f%% "
              "verified)\n",
              retrace[0].buyer_id.c_str(),
              retrace[0].detection.verified_fraction * 100);

  std::remove(DurableRegistry::SnapshotPath(durable_dir).c_str());
  std::remove(DurableRegistry::WalPath(durable_dir).c_str());
  ::rmdir(durable_dir.c_str());

  return matches.empty() ? 1 : 0;
}
