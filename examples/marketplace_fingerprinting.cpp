// Marketplace fingerprinting: the leak-tracing use case from the paper's
// introduction. A data seller embeds a DIFFERENT watermark for every buyer
// and records each scheme-tagged key in an (immutable) index — here the
// library's `FingerprintRegistry`. When a pirated copy surfaces — disguised
// by the pirate with random frequency noise — `Trace` runs every escrowed
// key against it through the `WatermarkScheme` interface and identifies
// which buyer leaked it.
//
// Parameter note: fingerprinting needs pairs whose moduli comfortably
// exceed both the pirate's noise and the detection threshold, otherwise
// every buyer's pairs verify by chance and nothing discriminates. The
// setup below (s in [16, 67), symmetric t = 3) keeps the true buyer near
// 80% verified pairs and innocent buyers near the ~(2t+1)/s chance floor.
//
//   $ ./examples/marketplace_fingerprinting

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/registry.h"
#include "api/attack.h"
#include "api/factory.h"
#include "core/secrets.h"
#include "datagen/real_world.h"

using namespace freqywm;

int main() {
  // The asset: a taxi-trip style dataset (token = taxi id).
  Rng rng(2023);
  Histogram master = MakeChicagoTaxiLikeHistogram(rng, 1200, 800'000);
  std::printf("master dataset: %llu rows, %zu distinct taxis\n",
              static_cast<unsigned long long>(master.total_count()),
              master.num_tokens());

  // Sell three copies, each with its own fingerprint. The embedding knobs
  // travel as a generic option bag; only the per-buyer seed varies.
  //
  // min_pair_cost=8 is fingerprint hygiene: every pair must have required
  // a real frequency change well beyond the detection threshold, so other
  // buyers' copies cannot verify it by proximity.
  const char* buyers[] = {"acme-analytics", "hedgefund-42", "adtech-co"};
  FingerprintRegistry registry;
  std::vector<Histogram> delivered;
  size_t min_fingerprint_pairs = 0;

  for (size_t i = 0; i < 3; ++i) {
    OptionBag bag;
    bag.Set("budget", "2.0");
    bag.Set("z", "67");
    bag.Set("min_modulus", "16");
    bag.Set("min_pair_cost", "8");
    bag.Set("seed", std::to_string(1000 + i));  // per-buyer secret
    auto scheme = SchemeFactory::Create("freqywm", bag);
    if (!scheme.ok()) {
      std::printf("factory failed: %s\n",
                  scheme.status().ToString().c_str());
      return 1;
    }
    auto r = scheme.value()->Embed(master);
    if (!r.ok()) {
      std::printf("generation for %s failed: %s\n", buyers[i],
                  r.status().ToString().c_str());
      return 1;
    }
    std::printf("delivered to %-16s %zu fingerprint pairs, similarity "
                "%.4f%%\n",
                buyers[i], r.value().report.embedded_units,
                r.value().report.similarity_percent);
    if (min_fingerprint_pairs == 0 ||
        r.value().report.embedded_units < min_fingerprint_pairs) {
      min_fingerprint_pairs = r.value().report.embedded_units;
    }
    if (Status s = registry.Register(buyers[i], std::move(r.value().key));
        !s.ok()) {
      std::printf("escrow failed: %s\n", s.ToString().c_str());
      return 1;
    }
    delivered.push_back(std::move(r.value().watermarked));
  }

  // A pirated copy appears on another marketplace: buyer #2's copy,
  // disguised with random frequency noise (4% of each token's rank
  // boundary — the §V-C1 destroy attack a cautious pirate would mount).
  Rng pirate_rng(555);
  Histogram pirated =
      MakePercentOfBoundaryAttack(4.0)->Apply(delivered[1], pirate_rng);
  std::printf("\npirated (noise-disguised) copy found: %llu rows\n",
              static_cast<unsigned long long>(pirated.total_count()));

  // Trace: the registry runs every escrowed key against the pirated copy
  // through its scheme's Detect — no per-buyer plumbing here. The true
  // origin verifies far above the chance floor; innocents stay below k.
  DetectOptions d;
  d.pair_threshold = 3;        // covers the pirate's noise
  d.symmetric_residue = true;  // noise drifts residues both ways
  d.min_pairs = std::max<size_t>(1, min_fingerprint_pairs / 2);
  std::vector<TraceMatch> matches = registry.Trace(pirated, d);

  std::printf("\n%-16s %-10s %-12s\n", "buyer", "scheme", "verified");
  for (const TraceMatch& match : matches) {
    std::printf("%-16s %-10s %zu/%zu (%.0f%%)\n", match.buyer_id.c_str(),
                match.scheme.c_str(), match.detection.pairs_verified,
                match.detection.pairs_found,
                match.detection.verified_fraction * 100);
  }
  if (!matches.empty()) {
    std::printf("\nleak traced to: %s (%.0f%% of fingerprint pairs "
                "verified)\n",
                matches[0].buyer_id.c_str(),
                matches[0].detection.verified_fraction * 100);
  } else {
    std::printf("\nno buyer matched — copy may predate fingerprinting\n");
  }
  return matches.empty() ? 1 : 0;
}
