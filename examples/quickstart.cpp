// Quickstart: watermark a click-stream-style token dataset, store the
// owner's secrets, and verify a suspected copy.
//
//   $ ./examples/quickstart
//
// Walks the full owner workflow of the paper's Fig. 1 on a synthetic URL
// dataset: histogram -> eligible pairs -> optimal selection -> frequency
// modification -> data transformation -> detection.

#include <cstdio>

#include "core/detect.h"
#include "core/watermark.h"
#include "datagen/power_law.h"
#include "stats/similarity.h"

using namespace freqywm;

int main() {
  // 1. The owner's original dataset: 100k visits over 500 domains with a
  //    realistic power-law popularity curve.
  Rng data_rng(7);
  PowerLawSpec spec;
  spec.num_tokens = 500;
  spec.sample_size = 100'000;
  spec.alpha = 0.8;
  spec.token_prefix = "domain";
  Dataset original = GeneratePowerLawDataset(spec, data_rng);
  std::printf("original dataset: %zu rows, %zu distinct tokens\n",
              original.size(),
              Histogram::FromDataset(original).num_tokens());

  // 2. Watermark it. The budget bounds the histogram distortion at 2%;
  //    z bounds the per-pair moduli; the seed makes this run repeatable
  //    (omit it in production to draw a fresh random secret).
  GenerateOptions options;
  options.budget_percent = 2.0;
  options.modulus_bound = 131;
  options.seed = 42;
  WatermarkGenerator generator(options);
  auto generated = generator.Generate(original);
  if (!generated.ok()) {
    std::printf("generation failed: %s\n",
                generated.status().ToString().c_str());
    return 1;
  }
  const GenerateReport& report = generated.value().report;
  std::printf("watermarked: %zu pairs embedded (of %zu eligible), "
              "similarity %.4f%%, %llu rows churned\n",
              report.chosen_pairs, report.eligible_pairs,
              report.similarity_percent,
              static_cast<unsigned long long>(report.total_churn));

  // 3. Persist the secrets (Lsc). This file IS the proof of ownership —
  //    store it like a private key.
  const std::string secrets_path = "/tmp/freqywm_quickstart_secrets.txt";
  if (Status s = report.secrets.SaveToFile(secrets_path); !s.ok()) {
    std::printf("cannot save secrets: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("secrets saved to %s\n", secrets_path.c_str());

  // 4. Later: a suspected copy appears. Reload the secrets and detect.
  auto secrets = WatermarkSecrets::LoadFromFile(secrets_path);
  if (!secrets.ok()) return 1;

  DetectOptions detect;
  detect.pair_threshold = 0;  // strict: exact modular matches only
  detect.min_pairs = report.chosen_pairs / 2;
  DetectResult verdict =
      DetectWatermark(generated.value().watermarked, secrets.value(), detect);
  std::printf("suspect copy: %zu/%zu pairs verified -> %s\n",
              verdict.pairs_verified, report.chosen_pairs,
              verdict.accepted ? "WATERMARK DETECTED" : "not detected");

  // 5. Sanity: an unrelated dataset does not trip detection.
  Rng other_rng(99);
  Dataset unrelated = GeneratePowerLawDataset(spec, other_rng);
  DetectResult innocent = DetectWatermark(unrelated, secrets.value(), detect);
  std::printf("unrelated data: %zu/%zu pairs verified -> %s\n",
              innocent.pairs_verified, report.chosen_pairs,
              innocent.accepted ? "FALSE POSITIVE?!" : "correctly rejected");
  return verdict.accepted && !innocent.accepted ? 0 : 1;
}
