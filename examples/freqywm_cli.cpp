// freqywm_cli: command-line front end for the library, so datasets can be
// watermarked and verified without writing C++.
//
//   freqywm_cli generate <tokens-in> <tokens-out> <key-out>
//               [--scheme NAME] [--opt k=v,...]
//               [--budget B] [--z Z] [--min-modulus M] [--strategy S]
//               [--seed N] [--threads N]
//   freqywm_cli detect   <tokens-in> <key-in> [--t T] [--k K]
//               [--symmetric] [--original-size N]
//   freqywm_cli schemes
//
// `--threads N` (N > 1) runs the embed with the histogram build sharded
// across a thread pool (src/exec/); the output is bit-identical to the
// serial run.
//
// Schemes are selected at runtime through the `SchemeFactory`; `--opt`
// passes scheme-specific options as a generic bag (see `schemes` for the
// registered names). The legacy FreqyWM flags (--budget, --z, ...) remain
// as shorthands for the equivalent bag entries. `detect` reads both the
// scheme-tagged key files this tool now writes and legacy FreqyWM secrets
// files.
//
// Token files are one token per line (data/io.h).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/factory.h"
#include "api/scheme.h"
#include "common/string_util.h"
#include "core/secrets.h"
#include "data/io.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"

using namespace freqywm;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  freqywm_cli generate <in> <out> <key> [--scheme NAME]\n"
      "              [--opt k=v,...] [--budget B] [--z Z]\n"
      "              [--min-modulus M] [--strategy optimal|greedy|random]\n"
      "              [--seed N] [--threads N]\n"
      "  freqywm_cli detect <in> <key> [--t T] [--k K] [--symmetric]\n"
      "              [--original-size N]\n"
      "  freqywm_cli schemes\n");
}

bool ParseFlag(int argc, char** argv, int& i, const char* name,
               std::string* value) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", name);
    std::exit(2);
  }
  *value = argv[++i];
  return true;
}

/// Strict numeric flag parsing: the whole token must be digits ("12abc",
/// " -5" and overflowing values are rejected instead of silently wrapped).
uint64_t ParseU64Value(const char* flag, const std::string& text) {
  errno = 0;
  unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
  if (!IsInteger(text) || text[0] == '-' || errno == ERANGE) {
    std::fprintf(stderr, "%s: '%s' is not a non-negative integer\n", flag,
                 text.c_str());
    std::exit(2);
  }
  return v;
}

int RunGenerate(int argc, char** argv) {
  if (argc < 5) {
    Usage();
    return 2;
  }
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  const std::string key_path = argv[4];

  std::string scheme_name = "freqywm";
  uint64_t num_threads = 1;
  OptionBag bag;
  for (int i = 5; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, i, "--scheme", &v)) {
      scheme_name = v;
    } else if (ParseFlag(argc, argv, i, "--threads", &v)) {
      num_threads = ParseU64Value("--threads", v);
      if (num_threads == 0) num_threads = ThreadPool::HardwareThreads();
    } else if (ParseFlag(argc, argv, i, "--opt", &v)) {
      auto parsed = OptionBag::FromString(v);
      if (!parsed.ok()) {
        std::fprintf(stderr, "bad --opt: %s\n",
                     parsed.status().ToString().c_str());
        return 2;
      }
      for (const auto& [key, value] : parsed.value().entries()) {
        bag.Set(key, value);
      }
    } else if (ParseFlag(argc, argv, i, "--budget", &v)) {
      bag.Set("budget", v);
    } else if (ParseFlag(argc, argv, i, "--z", &v)) {
      bag.Set("z", v);
    } else if (ParseFlag(argc, argv, i, "--min-modulus", &v)) {
      bag.Set("min_modulus", v);
    } else if (ParseFlag(argc, argv, i, "--seed", &v)) {
      bag.Set("seed", v);
    } else if (ParseFlag(argc, argv, i, "--strategy", &v)) {
      bag.Set("strategy", v);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }
  // Historical CLI default: z = 131 unless the caller picks one.
  if (scheme_name == "freqywm" && !bag.Has("z")) bag.Set("z", "131");

  auto scheme = SchemeFactory::Create(scheme_name, bag);
  if (!scheme.ok()) {
    std::fprintf(stderr, "cannot create scheme '%s': %s\n",
                 scheme_name.c_str(), scheme.status().ToString().c_str());
    return 2;
  }

  auto dataset = ReadTokenFile(in_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", in_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  // The pool is optional and the outcome identical either way; --threads
  // only changes how fast the histogram aggregation runs. N is the total
  // parallelism — this thread participates, so N-1 workers.
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads - 1);
  ExecContext exec{pool.get()};
  auto result = scheme.value()->EmbedDataset(dataset.value(), exec);
  if (!result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteTokenFile(result.value().watermarked, out_path);
      !s.ok()) {
    std::fprintf(stderr, "cannot write '%s': %s\n", out_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (Status s = result.value().key.SaveToFile(key_path); !s.ok()) {
    std::fprintf(stderr, "cannot write key: %s\n", s.ToString().c_str());
    return 1;
  }
  const EmbedReport& report = result.value().report;
  std::printf("scheme %s: embedded %zu units (of %zu eligible), "
              "similarity %.4f%%, churn %llu rows\n",
              scheme_name.c_str(), report.embedded_units,
              report.eligible_units, report.similarity_percent,
              static_cast<unsigned long long>(report.total_churn));
  std::printf("watermarked tokens -> %s\nscheme key -> %s (keep private!)\n",
              out_path.c_str(), key_path.c_str());
  return 0;
}

/// Reads a scheme-tagged key file, falling back to a legacy FreqyWM
/// secrets file (the format this CLI wrote before the API redesign).
Result<SchemeKey> LoadKey(const std::string& path) {
  auto key = SchemeKey::LoadFromFile(path);
  if (key.ok() || key.status().code() == StatusCode::kNotFound) return key;
  auto secrets = WatermarkSecrets::LoadFromFile(path);
  if (!secrets.ok()) return key.status();  // report the key error
  return SchemeKey{"freqywm", secrets.value().Serialize()};
}

int RunDetect(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string in_path = argv[2];
  const std::string key_path = argv[3];

  auto key = LoadKey(key_path);
  if (!key.ok()) {
    std::fprintf(stderr, "cannot read key: %s\n",
                 key.status().ToString().c_str());
    return 1;
  }
  auto scheme = SchemeFactory::Create(key.value().scheme);
  if (!scheme.ok()) {
    std::fprintf(stderr, "key is for scheme '%s': %s\n",
                 key.value().scheme.c_str(),
                 scheme.status().ToString().c_str());
    return 1;
  }

  DetectOptions options =
      scheme.value()->RecommendedDetectOptions(key.value());
  uint64_t original_size = 0;
  for (int i = 4; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, i, "--t", &v)) {
      options.pair_threshold = ParseU64Value("--t", v);
    } else if (ParseFlag(argc, argv, i, "--k", &v)) {
      options.min_pairs = ParseU64Value("--k", v);
    } else if (ParseFlag(argc, argv, i, "--original-size", &v)) {
      original_size = ParseU64Value("--original-size", v);
    } else if (std::strcmp(argv[i], "--symmetric") == 0) {
      options.symmetric_residue = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  auto dataset = ReadTokenFile(in_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", in_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  if (original_size > 0 && dataset.value().size() > 0) {
    options.rescale_factor = static_cast<double>(original_size) /
                             static_cast<double>(dataset.value().size());
  }

  DetectResult result =
      scheme.value()->Detect(dataset.value(), key.value(), options);
  std::printf("scheme %s: units found %zu, verified %zu (%.1f%%)\n",
              key.value().scheme.c_str(), result.pairs_found,
              result.pairs_verified, result.verified_fraction * 100);
  std::printf("verdict: %s\n",
              result.accepted ? "WATERMARK DETECTED" : "not detected");
  return result.accepted ? 0 : 3;
}

int RunSchemes() {
  std::printf("registered schemes:\n");
  for (const std::string& name : SchemeFactory::RegisteredNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(argc, argv);
  if (std::strcmp(argv[1], "detect") == 0) return RunDetect(argc, argv);
  if (std::strcmp(argv[1], "schemes") == 0) return RunSchemes();
  Usage();
  return 2;
}
