// freqywm_cli: command-line front end for the library, so datasets can be
// watermarked and verified without writing C++.
//
//   freqywm_cli generate <tokens-in> <tokens-out> <secrets-out>
//               [--budget B] [--z Z] [--min-modulus M] [--strategy S]
//               [--seed N]
//   freqywm_cli detect   <tokens-in> <secrets-in> [--t T] [--k K]
//               [--symmetric] [--original-size N]
//
// Token files are one token per line (data/io.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/detect.h"
#include "core/watermark.h"
#include "data/io.h"

using namespace freqywm;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  freqywm_cli generate <in> <out> <secrets> [--budget B] [--z Z]\n"
      "              [--min-modulus M] [--strategy optimal|greedy|random]\n"
      "              [--seed N]\n"
      "  freqywm_cli detect <in> <secrets> [--t T] [--k K] [--symmetric]\n"
      "              [--original-size N]\n");
}

bool ParseFlag(int argc, char** argv, int& i, const char* name,
               std::string* value) {
  if (std::strcmp(argv[i], name) != 0) return false;
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", name);
    std::exit(2);
  }
  *value = argv[++i];
  return true;
}

int RunGenerate(int argc, char** argv) {
  if (argc < 5) {
    Usage();
    return 2;
  }
  const std::string in_path = argv[2];
  const std::string out_path = argv[3];
  const std::string secrets_path = argv[4];

  GenerateOptions options;
  options.modulus_bound = 131;
  for (int i = 5; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, i, "--budget", &v)) {
      options.budget_percent = std::atof(v.c_str());
    } else if (ParseFlag(argc, argv, i, "--z", &v)) {
      options.modulus_bound = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argc, argv, i, "--min-modulus", &v)) {
      options.min_modulus = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argc, argv, i, "--seed", &v)) {
      options.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argc, argv, i, "--strategy", &v)) {
      if (v == "optimal") {
        options.strategy = SelectionStrategy::kOptimal;
      } else if (v == "greedy") {
        options.strategy = SelectionStrategy::kGreedy;
      } else if (v == "random") {
        options.strategy = SelectionStrategy::kRandom;
      } else {
        std::fprintf(stderr, "unknown strategy '%s'\n", v.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  auto dataset = ReadTokenFile(in_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", in_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto result = WatermarkGenerator(options).Generate(dataset.value());
  if (!result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteTokenFile(result.value().watermarked, out_path);
      !s.ok()) {
    std::fprintf(stderr, "cannot write '%s': %s\n", out_path.c_str(),
                 s.ToString().c_str());
    return 1;
  }
  if (Status s = result.value().report.secrets.SaveToFile(secrets_path);
      !s.ok()) {
    std::fprintf(stderr, "cannot write secrets: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  const GenerateReport& report = result.value().report;
  std::printf("embedded %zu pairs (|Le| = %zu), similarity %.4f%%, "
              "churn %llu rows\n",
              report.chosen_pairs, report.eligible_pairs,
              report.similarity_percent,
              static_cast<unsigned long long>(report.total_churn));
  std::printf("watermarked tokens -> %s\nsecrets -> %s (keep private!)\n",
              out_path.c_str(), secrets_path.c_str());
  return 0;
}

int RunDetect(int argc, char** argv) {
  if (argc < 4) {
    Usage();
    return 2;
  }
  const std::string in_path = argv[2];
  const std::string secrets_path = argv[3];
  DetectOptions options;
  uint64_t original_size = 0;
  bool k_given = false;
  for (int i = 4; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argc, argv, i, "--t", &v)) {
      options.pair_threshold = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argc, argv, i, "--k", &v)) {
      options.min_pairs = std::strtoull(v.c_str(), nullptr, 10);
      k_given = true;
    } else if (ParseFlag(argc, argv, i, "--original-size", &v)) {
      original_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--symmetric") == 0) {
      options.symmetric_residue = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    }
  }

  auto dataset = ReadTokenFile(in_path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot read '%s': %s\n", in_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  auto secrets = WatermarkSecrets::LoadFromFile(secrets_path);
  if (!secrets.ok()) {
    std::fprintf(stderr, "cannot read secrets: %s\n",
                 secrets.status().ToString().c_str());
    return 1;
  }
  if (!k_given) {
    options.min_pairs = std::max<size_t>(1, secrets.value().pairs.size() / 2);
  }
  if (original_size > 0 && dataset.value().size() > 0) {
    options.rescale_factor = static_cast<double>(original_size) /
                             static_cast<double>(dataset.value().size());
  }

  DetectResult result =
      DetectWatermark(dataset.value(), secrets.value(), options);
  std::printf("pairs found %zu, verified %zu of %zu (%.1f%%)\n",
              result.pairs_found, result.pairs_verified,
              secrets.value().pairs.size(),
              result.verified_fraction * 100);
  std::printf("verdict: %s\n",
              result.accepted ? "WATERMARK DETECTED" : "not detected");
  return result.accepted ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(argc, argv);
  if (std::strcmp(argv[1], "detect") == 0) return RunDetect(argc, argv);
  Usage();
  return 2;
}
