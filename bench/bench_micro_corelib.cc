// Micro-benchmarks (google-benchmark) for the core library primitives and
// the Gen/Detect costs behind Table II's timing columns: SHA-256, pair
// modulus derivation, eligible-pair construction, the three selection
// strategies, end-to-end generation, and detection.

#include <benchmark/benchmark.h>

#include "core/detect.h"
#include "core/eligible.h"
#include "core/select.h"
#include "core/watermark.h"
#include "crypto/pair_modulus.h"
#include "crypto/sha256.h"
#include "datagen/power_law.h"

namespace freqywm {
namespace {

Histogram MakeHist(size_t tokens, size_t samples, double alpha,
                   uint64_t seed) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = tokens;
  spec.sample_size = samples;
  spec.alpha = alpha;
  return GeneratePowerLawHistogram(spec, rng);
}

void BM_Sha256_64B(benchmark::State& state) {
  std::string data(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  std::string data(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_PairModulus(benchmark::State& state) {
  WatermarkSecret secret = GenerateSecret(256, 1);
  PairModulus pm(secret, 1031);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pm.Compute("token" + std::to_string(i++ % 100), "other"));
  }
}
BENCHMARK(BM_PairModulus);

void BM_BuildEligiblePairs(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Histogram hist = MakeHist(tokens, tokens * 1000, 0.7, 2);
  WatermarkSecret secret = GenerateSecret(256, 3);
  PairModulus pm(secret, 131);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildEligiblePairs(hist, pm, EligibilityRule::kPaper));
  }
  state.SetComplexityN(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_BuildEligiblePairs)->Arg(100)->Arg(300)->Arg(1000)
    ->Complexity(benchmark::oNSquared);

void BM_Selection(benchmark::State& state, SelectionStrategy strategy) {
  Histogram hist = MakeHist(500, 500000, 0.7, 4);
  WatermarkSecret secret = GenerateSecret(256, 5);
  PairModulus pm(secret, 131);
  auto eligible = BuildEligiblePairs(hist, pm, EligibilityRule::kPaper, 2, 1);
  GenerateOptions o;
  o.strategy = strategy;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectPairs(hist, eligible, o, rng));
  }
}
BENCHMARK_CAPTURE(BM_Selection, optimal, SelectionStrategy::kOptimal);
BENCHMARK_CAPTURE(BM_Selection, greedy, SelectionStrategy::kGreedy);
BENCHMARK_CAPTURE(BM_Selection, random, SelectionStrategy::kRandom);

void BM_WmGenerate(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Histogram hist = MakeHist(tokens, tokens * 1000, 0.7, 7);
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = 8;
  WatermarkGenerator gen(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.GenerateFromHistogram(hist));
  }
}
BENCHMARK(BM_WmGenerate)->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_WmDetect(benchmark::State& state) {
  Histogram hist = MakeHist(1000, 1'000'000, 0.7, 9);
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = 10;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(hist);
  if (!r.ok()) {
    state.SkipWithError("generation failed");
    return;
  }
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetectWatermark(r.value().watermarked, r.value().report.secrets, d));
  }
}
BENCHMARK(BM_WmDetect);

void BM_HistogramFromDataset(benchmark::State& state) {
  Rng rng(11);
  PowerLawSpec spec;
  spec.num_tokens = 1000;
  spec.sample_size = static_cast<size_t>(state.range(0));
  spec.alpha = 0.7;
  Dataset data = GeneratePowerLawDataset(spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Histogram::FromDataset(data));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HistogramFromDataset)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace freqywm

BENCHMARK_MAIN();
