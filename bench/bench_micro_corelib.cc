// Micro-benchmarks (google-benchmark) for the core library primitives and
// the Gen/Detect costs behind Table II's timing columns: SHA-256, pair
// modulus derivation (full re-hash vs midstate reduce), eligible-pair
// construction (unpruned reference vs the pruned midstate scan), the three
// selection strategies, end-to-end generation, and detection (uncached
// reference vs the per-key modulus table).
//
// After the google-benchmark run, main() executes the pair-enumeration
// acceptance harness (ISSUE 3): BuildEligiblePairsReference vs
// BuildEligiblePairs at 10k tokens, serial and sharded at 2/4/8 threads,
// with a byte-identity check, and writes the machine-readable
// BENCH_pair_enum.json perf baseline. Exit status is non-zero iff an
// identity check fails — never because of timing. The harness costs two
// full 50M-hash reference scans, so it only runs when FREQYWM_PERF_SMOKE
// (CI) or FREQYWM_BENCH_JSON_DIR (baseline regeneration) is set — plain
// google-benchmark invocations stay cheap.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/detect.h"
#include "core/eligible.h"
#include "core/select.h"
#include "core/watermark.h"
#include "crypto/pair_modulus.h"
#include "crypto/sha256.h"
#include "datagen/power_law.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"

namespace freqywm {
namespace {

Histogram MakeHist(size_t tokens, size_t samples, double alpha,
                   uint64_t seed) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = tokens;
  spec.sample_size = samples;
  spec.alpha = alpha;
  return GeneratePowerLawHistogram(spec, rng);
}

void BM_Sha256_64B(benchmark::State& state) {
  std::string data(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_Sha256_64B);

void BM_Sha256_4KiB(benchmark::State& state) {
  std::string data(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Sha256_4KiB);

void BM_PairModulus(benchmark::State& state) {
  WatermarkSecret secret = GenerateSecret(256, 1);
  PairModulus pm(secret, 1031);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pm.Compute("token" + std::to_string(i++ % 100), "other"));
  }
}
BENCHMARK(BM_PairModulus);

// Before/after counter for the per-pair derivation: the bulk-scan shape
// (one outer token against many inner digests), full re-hash vs one
// midstate clone per reduction.
void BM_PairModulusInnerLoop_Rehash(benchmark::State& state) {
  WatermarkSecret secret = GenerateSecret(256, 1);
  PairModulus pm(secret, 1031);
  std::vector<Sha256::Digest> inner;
  for (int j = 0; j < 64; ++j) {
    inner.push_back(pm.InnerDigest("token" + std::to_string(j)));
  }
  size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pm.ComputeWithInner("outer-token", inner[j++ % inner.size()]));
  }
}
BENCHMARK(BM_PairModulusInnerLoop_Rehash);

void BM_PairModulusInnerLoop_Midstate(benchmark::State& state) {
  WatermarkSecret secret = GenerateSecret(256, 1);
  PairModulus pm(secret, 1031);
  std::vector<Sha256::Digest> inner;
  for (int j = 0; j < 64; ++j) {
    inner.push_back(pm.InnerDigest("token" + std::to_string(j)));
  }
  PairModulus::OuterState outer = pm.OuterFor("outer-token");
  size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(outer.Reduce(inner[j++ % inner.size()]));
  }
}
BENCHMARK(BM_PairModulusInnerLoop_Midstate);

// "Before": the unpruned one-hash-per-pair scan shipped by PR 2.
void BM_BuildEligiblePairs_Reference(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Histogram hist = MakeHist(tokens, tokens * 1000, 0.7, 2);
  WatermarkSecret secret = GenerateSecret(256, 3);
  PairModulus pm(secret, 131);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildEligiblePairsReference(
        hist, pm, EligibilityRule::kPaper, 2, 1));
  }
  state.SetComplexityN(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_BuildEligiblePairs_Reference)->Arg(100)->Arg(300)->Arg(1000)
    ->Complexity(benchmark::oNSquared);

// "After": midstate reuse + dead-token / freq-diff pruning (serial).
void BM_BuildEligiblePairs(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Histogram hist = MakeHist(tokens, tokens * 1000, 0.7, 2);
  WatermarkSecret secret = GenerateSecret(256, 3);
  PairModulus pm(secret, 131);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildEligiblePairs(hist, pm, EligibilityRule::kPaper, 2, 1));
  }
  state.SetComplexityN(static_cast<int64_t>(tokens));
}
BENCHMARK(BM_BuildEligiblePairs)->Arg(100)->Arg(300)->Arg(1000)
    ->Complexity(benchmark::oNSquared);

void BM_Selection(benchmark::State& state, SelectionStrategy strategy) {
  Histogram hist = MakeHist(500, 500000, 0.7, 4);
  WatermarkSecret secret = GenerateSecret(256, 5);
  PairModulus pm(secret, 131);
  auto eligible = BuildEligiblePairs(hist, pm, EligibilityRule::kPaper, 2, 1);
  GenerateOptions o;
  o.strategy = strategy;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectPairs(hist, eligible, o, rng));
  }
}
BENCHMARK_CAPTURE(BM_Selection, optimal, SelectionStrategy::kOptimal);
BENCHMARK_CAPTURE(BM_Selection, greedy, SelectionStrategy::kGreedy);
BENCHMARK_CAPTURE(BM_Selection, random, SelectionStrategy::kRandom);

void BM_WmGenerate(benchmark::State& state) {
  const size_t tokens = static_cast<size_t>(state.range(0));
  Histogram hist = MakeHist(tokens, tokens * 1000, 0.7, 7);
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = 8;
  WatermarkGenerator gen(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.GenerateFromHistogram(hist));
  }
}
BENCHMARK(BM_WmGenerate)->Arg(100)->Arg(500)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Detection fixture shared by the three BM_WmDetect counters.
struct DetectFixture {
  Histogram watermarked;
  WatermarkSecrets secrets;
  DetectOptions options;
  bool ok = false;
};

DetectFixture MakeDetectFixture() {
  DetectFixture f;
  Histogram hist = MakeHist(1000, 1'000'000, 0.7, 9);
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = 10;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(hist);
  if (!r.ok()) return f;
  f.watermarked = r.value().watermarked;
  f.secrets = r.value().report.secrets;
  f.options.pair_threshold = 0;
  f.options.min_pairs = 1;
  f.ok = true;
  return f;
}

// "Before": two hashes per stored pair, every call.
void BM_WmDetect_Reference(benchmark::State& state) {
  DetectFixture f = MakeDetectFixture();
  if (!f.ok) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetectWatermarkReference(f.watermarked, f.secrets, f.options));
  }
}
BENCHMARK(BM_WmDetect_Reference);

// "After", serial shape: the table is rebuilt per call (inner digests and
// outer midstates still dedupe across pairs).
void BM_WmDetect(benchmark::State& state) {
  DetectFixture f = MakeDetectFixture();
  if (!f.ok) {
    state.SkipWithError("generation failed");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetectWatermark(f.watermarked, f.secrets, f.options));
  }
}
BENCHMARK(BM_WmDetect);

// "After", batch shape: one PairModulusTable reused across calls — the
// per-suspect cost of the batch engine's hot loop (zero hashes).
void BM_WmDetect_TableReuse(benchmark::State& state) {
  DetectFixture f = MakeDetectFixture();
  if (!f.ok) {
    state.SkipWithError("generation failed");
    return;
  }
  PairModulusTable table = PairModulusTable::Build(f.secrets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DetectWatermark(f.watermarked, table, f.options));
  }
}
BENCHMARK(BM_WmDetect_TableReuse);

void BM_HistogramFromDataset(benchmark::State& state) {
  Rng rng(11);
  PowerLawSpec spec;
  spec.num_tokens = 1000;
  spec.sample_size = static_cast<size_t>(state.range(0));
  spec.alpha = 0.7;
  Dataset data = GeneratePowerLawDataset(spec, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Histogram::FromDataset(data));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HistogramFromDataset)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------------
// Pair-enumeration acceptance harness (runs after the google-benchmark
// pass): before/after wall clock at 10k tokens + identity checks +
// BENCH_pair_enum.json.

int RunPairEnumAcceptance() {
  if (!bench::PerfSmoke() &&
      std::getenv("FREQYWM_BENCH_JSON_DIR") == nullptr) {
    std::printf("\n(pair-enumeration acceptance harness skipped; set "
                "FREQYWM_PERF_SMOKE=1 or FREQYWM_BENCH_JSON_DIR to run "
                "it)\n");
    return 0;
  }
  struct Workload {
    const char* name;
    size_t tokens;
    size_t samples;
  };
  // eyewnder_like mirrors the paper's URL histogram shape (~100 samples
  // per token: long tie-heavy tail, where dead-token pruning bites);
  // dense_tail is the harder case for pruning (~1000 samples per token).
  const Workload workloads[] = {
      {"eyewnder_like_10k", 10000, 1'000'000},
      {"dense_tail_10k", 10000, 10'000'000},
  };
  const int reps = bench::PerfSmoke() ? 1 : 2;
  const uint64_t z = 1031;
  bench::IdentityGate gate;

  std::printf("\npair enumeration at 10k tokens: reference (PR 2) vs "
              "midstate+pruning (z=%llu, kPaper, min_pair_cost=1)\n",
              static_cast<unsigned long long>(z));
  std::ostringstream json;
  json << "{\n  \"bench\": \"pair_enum\",\n  \"z\": " << z
       << ",\n  \"reps\": " << reps << ",\n  \"workloads\": [\n";

  for (size_t w = 0; w < 2; ++w) {
    const Workload& load = workloads[w];
    Histogram hist = MakeHist(load.tokens, load.samples, 0.7, 21);
    WatermarkSecret secret = GenerateSecret(256, 22);
    PairModulus pm(secret, z);

    std::vector<EligiblePair> reference;
    double ref_seconds = bench::BestOfReps(reps, [&] {
      reference = BuildEligiblePairsReference(hist, pm,
                                              EligibilityRule::kPaper, 2, 1);
    });
    std::vector<EligiblePair> optimized;
    double serial_seconds = bench::BestOfReps(reps, [&] {
      optimized =
          BuildEligiblePairs(hist, pm, EligibilityRule::kPaper, 2, 1);
    });
    bool serial_identical = gate.Check(
        std::string(load.name) + ": serial scan vs reference",
        optimized == reference);

    std::printf("\n[%s] tokens=%zu samples=%zu |Le|=%zu\n", load.name,
                load.tokens, load.samples, reference.size());
    std::printf("%16s  %10.3fs  %8s\n", "reference", ref_seconds, "1.00x");
    std::printf("%16s  %10.3fs  %7.2fx  %s\n", "serial", serial_seconds,
                ref_seconds / serial_seconds,
                serial_identical ? "identical" : "MISMATCH");

    json << "    {\"name\": \"" << load.name << "\", \"tokens\": "
         << load.tokens << ", \"samples\": " << load.samples
         << ", \"eligible_pairs\": " << reference.size()
         << ",\n     \"reference_seconds\": " << ref_seconds
         << ", \"serial_seconds\": " << serial_seconds
         << ", \"serial_speedup\": " << ref_seconds / serial_seconds
         << ", \"serial_identical\": "
         << (serial_identical ? "true" : "false")
         << ",\n     \"parallel\": [";

    bool first_row = true;
    for (size_t threads : {2, 4, 8}) {
      ThreadPool pool(threads - 1);
      ExecContext exec{&pool};
      std::vector<EligiblePair> parallel;
      double seconds = bench::BestOfReps(reps, [&] {
        parallel = BuildEligiblePairs(hist, pm, EligibilityRule::kPaper, 2,
                                      1, exec);
      });
      bool identical = gate.Check(
          std::string(load.name) + " @" + std::to_string(threads) +
              " threads vs reference",
          parallel == reference);
      std::printf("%9zu thread  %10.3fs  %7.2fx  %s\n", threads, seconds,
                  ref_seconds / seconds,
                  identical ? "identical" : "MISMATCH");
      json << (first_row ? "" : ", ") << "{\"threads\": " << threads
           << ", \"seconds\": " << seconds << ", \"speedup_vs_reference\": "
           << ref_seconds / seconds << ", \"identical\": "
           << (identical ? "true" : "false") << "}";
      first_row = false;
    }
    json << "]}" << (w + 1 < 2 ? "," : "") << "\n";
  }
  json << "  ],\n  \"all_identical\": "
       << (gate.all_identical() ? "true" : "false") << "\n}\n";
  bench::WriteJsonFile(bench::JsonOutputPath("BENCH_pair_enum.json"),
                       json.str());
  return gate.Finish();
}

}  // namespace
}  // namespace freqywm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return freqywm::RunPairEnumAcceptance();
}
