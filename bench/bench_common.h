#ifndef FREQYWM_BENCH_BENCH_COMMON_H_
#define FREQYWM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/watermark.h"
#include "datagen/power_law.h"

namespace freqywm::bench {

/// Paper-scale synthetic histogram (§IV-A): 1K tokens, 1M samples.
inline Histogram MakeSynthetic(double alpha, uint64_t seed,
                               size_t tokens = 1000,
                               size_t samples = 1'000'000) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = tokens;
  spec.sample_size = samples;
  spec.alpha = alpha;
  return GeneratePowerLawHistogram(spec, rng);
}

/// Standard generation options used across the experiment harnesses.
inline GenerateOptions MakeOptions(double budget, uint64_t z,
                                   SelectionStrategy strategy,
                                   uint64_t seed) {
  GenerateOptions o;
  o.budget_percent = budget;
  o.modulus_bound = z;
  o.strategy = strategy;
  o.seed = seed;
  return o;
}

inline const char* StrategyName(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kOptimal:
      return "optimal";
    case SelectionStrategy::kGreedy:
      return "greedy";
    case SelectionStrategy::kRandom:
      return "random";
  }
  return "?";
}

/// Number of chosen pairs averaged over `reps` seeds; 0 pairs when the
/// generator reports the (legitimate) inapplicable case.
inline double MeanChosenPairs(const Histogram& hist, GenerateOptions options,
                              int reps) {
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    options.seed = options.seed * 31 + static_cast<uint64_t>(r) + 1;
    auto result = WatermarkGenerator(options).GenerateFromHistogram(hist);
    if (result.ok()) {
      total += static_cast<double>(result.value().report.chosen_pairs);
    }
  }
  return total / reps;
}

inline void PrintBanner(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

}  // namespace freqywm::bench

#endif  // FREQYWM_BENCH_BENCH_COMMON_H_
