#ifndef FREQYWM_BENCH_BENCH_COMMON_H_
#define FREQYWM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "api/factory.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/watermark.h"
#include "datagen/power_law.h"

namespace freqywm::bench {

/// Paper-scale synthetic histogram (§IV-A): 1K tokens, 1M samples.
inline Histogram MakeSynthetic(double alpha, uint64_t seed,
                               size_t tokens = 1000,
                               size_t samples = 1'000'000) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = tokens;
  spec.sample_size = samples;
  spec.alpha = alpha;
  return GeneratePowerLawHistogram(spec, rng);
}

/// Standard generation options used across the experiment harnesses.
inline GenerateOptions MakeOptions(double budget, uint64_t z,
                                   SelectionStrategy strategy,
                                   uint64_t seed) {
  GenerateOptions o;
  o.budget_percent = budget;
  o.modulus_bound = z;
  o.strategy = strategy;
  o.seed = seed;
  return o;
}

inline const char* StrategyName(SelectionStrategy s) {
  switch (s) {
    case SelectionStrategy::kOptimal:
      return "optimal";
    case SelectionStrategy::kGreedy:
      return "greedy";
    case SelectionStrategy::kRandom:
      return "random";
  }
  return "?";
}

/// Number of chosen pairs averaged over `reps` seeds; 0 pairs when the
/// generator reports the (legitimate) inapplicable case.
inline double MeanChosenPairs(const Histogram& hist, GenerateOptions options,
                              int reps) {
  double total = 0;
  for (int r = 0; r < reps; ++r) {
    options.seed = options.seed * 31 + static_cast<uint64_t>(r) + 1;
    auto result = WatermarkGenerator(options).GenerateFromHistogram(hist);
    if (result.ok()) {
      total += static_cast<double>(result.value().report.chosen_pairs);
    }
  }
  return total / reps;
}

/// Scheme-API sibling of `MeanChosenPairs`: embedded units averaged over
/// `reps` seeds through `SchemeFactory`, using the same seed recurrence so
/// harnesses converted off the free functions keep comparable numbers.
inline double MeanEmbeddedUnits(const Histogram& hist,
                                const std::string& scheme_name,
                                OptionBag options, uint64_t base_seed,
                                int reps) {
  double total = 0;
  uint64_t seed = base_seed;
  for (int r = 0; r < reps; ++r) {
    seed = seed * 31 + static_cast<uint64_t>(r) + 1;
    options.Set("seed", std::to_string(seed));
    auto scheme = SchemeFactory::Create(scheme_name, options);
    if (!scheme.ok()) continue;
    auto outcome = scheme.value()->Embed(hist);
    if (outcome.ok()) {
      total += static_cast<double>(outcome.value().report.embedded_units);
    }
  }
  return total / reps;
}

inline void PrintBanner(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("================================================================\n");
}

/// Best (minimum) wall clock of `reps` runs of `fn` — the standard timing
/// rule of the hand-rolled perf harnesses.
inline double BestOfReps(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

/// True when the CI perf-smoke job is driving the bench: sizes stay the
/// same (the identity checks and speedup ratios are the payload) but
/// repetitions drop to one.
inline bool PerfSmoke() {
  const char* env = std::getenv("FREQYWM_PERF_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Where a bench writes its machine-readable BENCH_*.json: the directory
/// in $FREQYWM_BENCH_JSON_DIR when set, the working directory otherwise.
inline std::string JsonOutputPath(const std::string& filename) {
  const char* dir = std::getenv("FREQYWM_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return filename;
  return std::string(dir) + "/" + filename;
}

/// The shared identity gate (DESIGN.md §12): every bench that emits a
/// BENCH_*.json artifact routes its optimized-vs-reference comparisons
/// through one of these, so CI's "fail on identity mismatch, never on
/// timing" policy has a single auditable implementation — enforced by
/// wmlint's `identity_gate` check. `Check` prints per-comparison
/// verdicts; `Finish` prints the verdict line and returns the process
/// exit status.
class IdentityGate {
 public:
  /// Records one comparison. Returns `identical` so call sites can keep
  /// feeding section-local flags into their JSON report.
  bool Check(const std::string& what, bool identical) {
    ++checks_;
    if (!identical) {
      failed_ = true;
      std::printf("IDENTITY MISMATCH: %s\n", what.c_str());
    }
    return identical;
  }

  bool all_identical() const { return !failed_; }
  size_t checks() const { return checks_; }

  /// Prints the final verdict; 0 when every `Check` passed, 1 otherwise.
  int Finish() const {
    if (failed_) {
      std::printf("\nidentity gate: FAIL (%zu comparison(s) run)\n", checks_);
      return 1;
    }
    std::printf("\nidentity gate: OK (%zu comparison(s) run)\n", checks_);
    return 0;
  }

 private:
  size_t checks_ = 0;
  bool failed_ = false;
};

/// Writes `content` to `path`, reporting success on stdout so CI logs show
/// where the artifact landed.
inline bool WriteJsonFile(const std::string& path,
                          const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAILED to write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace freqywm::bench

#endif  // FREQYWM_BENCH_BENCH_COMMON_H_
