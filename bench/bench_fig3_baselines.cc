// Reproduces §IV-D / Fig. 3: FreqyWM vs WM-OBT (Shehab et al.) vs WM-RVS
// (Li et al.) on the alpha = 0.5 synthetic histogram — similarity of the
// watermarked histogram to the original and number of rank positions
// changed.
//
// Paper numbers: FreqyWM 99.9998% similarity / 0 rank changes;
// WM-OBT 54.28% / 998 of 1000 ranks changed; WM-RVS 96% / 987 changed.
//
// Runs entirely through the `WatermarkScheme` interface: every scheme is
// one (name, option-bag) row, and adding a scheme to the `SchemeFactory`
// adds it to this comparison without touching the loop. The redesign also
// buys a column the seed could not produce: self-detection through each
// scheme's own Detect path (the seed had no WM-OBT/WM-RVS detection).

#include "api/factory.h"
#include "bench_common.h"
#include "stats/decomposition.h"
#include "stats/rank.h"
#include "stats/similarity.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

struct SchemeRow {
  const char* scheme;   // SchemeFactory id
  const char* options;  // OptionBag::FromString input
};

void RunScheme(const Histogram& original, const SchemeRow& row) {
  auto bag = OptionBag::FromString(row.options);
  if (!bag.ok()) {
    std::printf("%-10s bad options: %s\n", row.scheme,
                bag.status().ToString().c_str());
    return;
  }
  auto scheme = SchemeFactory::Create(row.scheme, bag.value());
  if (!scheme.ok()) {
    std::printf("%-10s unavailable: %s\n", row.scheme,
                scheme.status().ToString().c_str());
    return;
  }
  auto outcome = scheme.value()->Embed(original);
  if (!outcome.ok()) {
    std::printf("%-10s embedding failed: %s\n", row.scheme,
                outcome.status().ToString().c_str());
    return;
  }
  const Histogram& watermarked = outcome.value().watermarked;

  RankComparison ranks = CompareRankings(original, watermarked);
  std::vector<double> deltas;
  for (const auto& e : original.entries()) {
    auto c = watermarked.CountOf(e.token);
    if (c) {
      deltas.push_back(static_cast<double>(*c) -
                       static_cast<double>(e.count));
    }
  }
  DetectResult self = scheme.value()->Detect(
      watermarked, outcome.value().key,
      scheme.value()->RecommendedDetectOptions(outcome.value().key));
  std::printf("%-10s %-14.4f %-12zu %-10zu %-12.2f %-12.2f %-10.3f\n",
              row.scheme,
              HistogramSimilarityPercent(original, watermarked),
              ranks.changed, ranks.compared, Mean(deltas), StdDev(deltas),
              self.verified_fraction);
}

}  // namespace

int main() {
  fb::PrintBanner("Fig. 3 / §IV-D — baseline comparison",
                  "ICDE'24 FreqyWM §IV-D (alpha=0.5, 1K tokens, 1M rows)");
  Histogram original = fb::MakeSynthetic(0.5, 42);

  std::printf("%-10s %-14s %-12s %-10s %-12s %-12s %-10s\n", "scheme",
              "similarity%", "ranks-chg", "compared", "mean-delta",
              "std-delta", "self-det");

  const SchemeRow rows[] = {
      // FreqyWM, b = 2, z = 131.
      {"freqywm", "budget=2.0,z=131,seed=17"},
      // WM-OBT: 20 partitions, bits 11010, GA optimization.
      {"wm-obt", "partitions=20,seed=17"},
      // WM-RVS: reversible digit modification.
      {"wm-rvs", ""},
  };
  for (const SchemeRow& row : rows) RunScheme(original, row);

  std::printf("\npaper reference: freqywm 99.9998%% / 0 changed; wm-obt "
              "54.28%% / 998; wm-rvs 96%% / 987 (of 1000)\n");
  return 0;
}
