// Reproduces §IV-D / Fig. 3: FreqyWM vs WM-OBT (Shehab et al.) vs WM-RVS
// (Li et al.) on the alpha = 0.5 synthetic histogram — similarity of the
// watermarked histogram to the original and number of rank positions
// changed.
//
// Paper numbers: FreqyWM 99.9998% similarity / 0 rank changes;
// WM-OBT 54.28% / 998 of 1000 ranks changed; WM-RVS 96% / 987 changed.

#include "baselines/wm_obt.h"
#include "baselines/wm_rvs.h"
#include "bench_common.h"
#include "stats/decomposition.h"
#include "stats/rank.h"
#include "stats/similarity.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

void Report(const char* name, const Histogram& original,
            const Histogram& watermarked) {
  RankComparison ranks = CompareRankings(original, watermarked);
  std::vector<double> deltas;
  for (const auto& e : original.entries()) {
    auto c = watermarked.CountOf(e.token);
    if (c) {
      deltas.push_back(static_cast<double>(*c) -
                       static_cast<double>(e.count));
    }
  }
  std::printf("%-10s %-14.4f %-12zu %-10zu %-12.2f %-12.2f\n", name,
              HistogramSimilarityPercent(original, watermarked),
              ranks.changed, ranks.compared, Mean(deltas), StdDev(deltas));
}

}  // namespace

int main() {
  fb::PrintBanner("Fig. 3 / §IV-D — baseline comparison",
                  "ICDE'24 FreqyWM §IV-D (alpha=0.5, 1K tokens, 1M rows)");
  Histogram original = fb::MakeSynthetic(0.5, 42);

  std::printf("%-10s %-14s %-12s %-10s %-12s %-12s\n", "scheme",
              "similarity%", "ranks-chg", "compared", "mean-delta",
              "std-delta");

  // FreqyWM, b = 2, z = 131.
  GenerateOptions o =
      fb::MakeOptions(2.0, 131, SelectionStrategy::kOptimal, 17);
  auto fw = WatermarkGenerator(o).GenerateFromHistogram(original);
  if (fw.ok()) Report("freqywm", original, fw.value().watermarked);

  // WM-OBT: 20 partitions, bits 11010, GA optimization.
  WmObtOptions obt;
  obt.num_partitions = 20;
  Rng obt_rng(17);
  Report("wm-obt", original, EmbedWmObt(original, obt, obt_rng));

  // WM-RVS: reversible digit modification.
  Report("wm-rvs", original, EmbedWmRvs(original, WmRvsOptions()));

  std::printf("\npaper reference: freqywm 99.9998%% / 0 changed; wm-obt "
              "54.28%% / 998; wm-rvs 96%% / 987 (of 1000)\n");
  return 0;
}
