// Reproduces §VI Figs. 6–9: the multi-watermark study. Ten successive
// FreqyWM embeddings (b = 2 each) on an eyeWnder-like click-stream, then:
//   (1) discrepancy — similarity of the final histogram to the original
//       (paper: 0.003% distortion, not 10 x 2%);
//   (2) feature analysis — trend / seasonality / residual decomposition of
//       the hourly click series before vs after (Figs. 6-8);
//   (3) browser-history analysis — daily click counts (Fig. 9);
//   (4) ML accuracy — next-URL predictor accuracy before vs after (paper:
//       82.33% vs 82.34% with an LSTM; here a bigram Markov model, see
//       DESIGN.md substitutions).
//
// Converted to the exec-aware path and the `WatermarkScheme` API (ISSUE 4
// bench-conversion backlog): each layer's eligible-pair scan runs through
// an `ExecContext` pool, and every layer's secrets are verified back as a
// portable `SchemeKey` through `WatermarkScheme::Detect`.

#include <unordered_map>

#include "analysis/multiwatermark.h"
#include "analysis/ngram_model.h"
#include "bench_common.h"
#include "datagen/clickstream.h"
#include "exec/thread_pool.h"
#include "stats/decomposition.h"

namespace fb = freqywm::bench;
using namespace freqywm;

int main() {
  fb::PrintBanner("§VI Figs. 6-9 — multi-watermarks on a click-stream",
                  "ICDE'24 FreqyWM §VI (10 layers, b=2 each)");
  Rng rng(21);
  ClickstreamSpec spec;
  spec.num_urls = 2000;
  spec.num_events = 400'000;
  spec.num_days = 30;
  auto events = GenerateClickstream(spec, rng);
  Dataset original = ClickstreamTokens(events);
  Histogram original_hist = Histogram::FromDataset(original);

  GenerateOptions o =
      fb::MakeOptions(2.0, 131, SelectionStrategy::kGreedy, 77);
  // Layers are inherently sequential; the pool parallelizes each layer's
  // eligible-pair scan (byte-identical to the serial path). At least one
  // worker: ThreadPool(0) would auto-size rather than mean "none".
  ThreadPool pool(std::max<size_t>(1, ThreadPool::HardwareThreads() - 1));
  ExecContext exec{&pool};
  auto multi = ApplySuccessiveWatermarks(original_hist, 10, o, exec);
  if (!multi.ok()) {
    std::printf("multi-watermarking failed: %s\n",
                multi.status().ToString().c_str());
    return 1;
  }

  std::printf("layers embedded: %zu (threads: %zu)\n",
              multi.value().layers_embedded,
              pool.num_threads() + 1);
  std::printf("\n-- discrepancy (similarity to ORIGINAL after each layer) --\n");
  for (size_t i = 0; i < multi.value().similarity_to_original.size(); ++i) {
    std::printf("layer %2zu: %.6f%%  (distortion %.6f%%)\n", i + 1,
                multi.value().similarity_to_original[i],
                100.0 - multi.value().similarity_to_original[i]);
  }

  // Every layer's secrets, carried as a portable `SchemeKey` and verified
  // back through the scheme interface: the provenance use case — the
  // newest layer verifies perfectly, older layers degrade gracefully.
  std::printf("\n-- per-layer verification (WatermarkScheme::Detect) --\n");
  {
    auto scheme = SchemeFactory::Create("freqywm");
    if (!scheme.ok()) return 1;
    DetectOptions d;
    d.pair_threshold = 4;  // later layers perturb earlier ones slightly
    d.min_pairs = 1;
    for (size_t i = 0; i < multi.value().layers.size(); ++i) {
      SchemeKey key{"freqywm", multi.value().layers[i].Serialize()};
      DetectResult r =
          scheme.value()->Detect(multi.value().final_histogram, key, d);
      std::printf("layer %2zu: verified %zu/%zu (%.3f) %s\n", i + 1,
                  r.pairs_verified, r.pairs_found, r.verified_fraction,
                  r.accepted ? "accepted" : "REJECTED");
    }
  }

  // Rebuild a concrete *timestamped* stream carrying all 10 layers: apply
  // the per-token count deltas at the event level — removals drop random
  // occurrences, additions clone the timestamp of a random existing event
  // of the stream (the temporal analogue of "insert at random positions").
  Rng transform_rng(22);
  std::vector<ClickEvent> watermarked_events;
  watermarked_events.reserve(events.size());
  {
    Histogram original_hist_counts = Histogram::FromDataset(original);
    // Per-token removal quota.
    std::unordered_map<Token, int64_t> to_remove;
    std::vector<Token> additions;
    for (const auto& e : multi.value().final_histogram.entries()) {
      auto have = original_hist_counts.CountOf(e.token);
      int64_t before = have ? static_cast<int64_t>(*have) : 0;
      int64_t after = static_cast<int64_t>(e.count);
      if (after < before) {
        to_remove[e.token] = before - after;
      } else {
        for (int64_t k = 0; k < after - before; ++k) {
          additions.push_back(e.token);
        }
      }
    }
    for (const auto& ev : events) {
      auto it = to_remove.find(ev.url);
      if (it != to_remove.end() && it->second > 0 &&
          transform_rng.Bernoulli(0.01)) {
        --it->second;  // drop this occurrence
        continue;
      }
      watermarked_events.push_back(ev);
    }
    for (const auto& token : additions) {
      const ClickEvent& donor =
          events[transform_rng.UniformU64(events.size())];
      watermarked_events.push_back(ClickEvent{donor.timestamp, token});
    }
  }

  // Hourly series before/after for trend / seasonality / residual.
  auto hourly_counts = [&](const std::vector<ClickEvent>& evs) {
    std::vector<double> hourly(spec.num_days * 24, 0.0);
    for (const auto& e : evs) {
      int64_t hour = (e.timestamp - spec.start_timestamp) / 3600;
      if (hour >= 0 && static_cast<size_t>(hour) < hourly.size()) {
        hourly[static_cast<size_t>(hour)] += 1.0;
      }
    }
    return hourly;
  };
  std::vector<double> hourly_before = hourly_counts(events);
  std::vector<double> hourly_after = hourly_counts(watermarked_events);
  Dataset watermarked = ClickstreamTokens(watermarked_events);
  auto dec_before = DecomposeAdditive(hourly_before, 24);
  auto dec_after = DecomposeAdditive(hourly_after, 24);

  std::printf("\n-- feature analysis (RMS difference, Figs. 6-8) --\n");
  std::printf("trend       rms-diff: %.4f (series mean %.1f)\n",
              RootMeanSquaredDifference(dec_before.trend, dec_after.trend),
              Mean(hourly_before));
  std::printf("seasonality rms-diff: %.4f (seasonal sd %.1f)\n",
              RootMeanSquaredDifference(dec_before.seasonal,
                                        dec_after.seasonal),
              StdDev(dec_before.seasonal));
  std::printf("residual    sd before %.2f vs after %.2f\n",
              StdDev(dec_before.residual), StdDev(dec_after.residual));

  std::printf("\n-- browser history (daily counts, Fig. 9) --\n");
  auto daily_before = DailyClickCounts(events, spec.start_timestamp,
                                       spec.num_days);
  double daily_scale = static_cast<double>(watermarked.size()) /
                       static_cast<double>(original.size());
  std::printf("total clicks before %zu after %zu (x%.6f)\n",
              original.size(), watermarked.size(), daily_scale);
  std::printf("first week daily counts before:");
  for (size_t d = 0; d < 7; ++d) std::printf(" %.0f", daily_before[d]);
  std::printf("\n");

  std::printf("\n-- sequence-model accuracy (paper: 82.33%% vs 82.34%%) --\n");
  double acc_before = TrainTestAccuracy(original, 0.8);
  double acc_after = TrainTestAccuracy(watermarked, 0.8);
  std::printf("bigram accuracy original:    %.4f\n", acc_before);
  std::printf("bigram accuracy watermarked: %.4f\n", acc_after);
  std::printf("delta: %+.4f\n", acc_after - acc_before);
  return 0;
}
