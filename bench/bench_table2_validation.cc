// Reproduces Table II: validation on (stand-ins for) the three real-world
// datasets — Chicago Taxi, eyeWnder, Adult — reporting distinct tokens,
// |Le|, chosen pairs per strategy, and generation/detection wall-clock,
// all through the unified `WatermarkScheme` API (embed via
// `SchemeFactory::Create("freqywm", ...)`, detect via the scheme's
// key-based `Detect` — the same call path the CLI and the batch engine
// use, so the timed costs include key handling).
//
// Scale note: the real Chicago Taxi file is 9.68 GB with 6,573 taxis and
// the eyeWnder crawl has 11,479 URLs; this harness defaults to reduced
// token universes so the full optimal matching finishes in seconds on a
// laptop (set FREQYWM_TABLE2_FULL=1 for the paper-sized universes). The
// comparison target is the *relationship* between columns (|Le| drives
// chosen pairs; heuristics within a few % of optimal; detection orders of
// magnitude faster than generation), not the absolute counts.

#include <cstdlib>

#include "api/factory.h"
#include "api/scheme.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "datagen/real_world.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

struct Row {
  const char* name;
  const char* token;
  Histogram hist;
};

const char* kStrategies[3] = {"optimal", "greedy", "random"};

void RunRow(const Row& row) {
  const int kReps = 3;
  double chosen[3] = {0, 0, 0};
  double gen_seconds = 0;
  double detect_seconds = 0;
  size_t eligible = 0;
  for (int s = 0; s < 3; ++s) {
    for (int rep = 0; rep < kReps; ++rep) {
      OptionBag bag;
      bag.Set("budget", "2.0");
      bag.Set("z", "131");
      bag.Set("strategy", kStrategies[s]);
      bag.Set("seed", std::to_string(4000 + rep));
      auto scheme = SchemeFactory::Create("freqywm", bag);
      if (!scheme.ok()) continue;
      Stopwatch watch;
      auto outcome = scheme.value()->Embed(row.hist);
      double elapsed = watch.ElapsedSeconds();
      if (!outcome.ok()) continue;
      chosen[s] += static_cast<double>(outcome.value().report.embedded_units);
      eligible = outcome.value().report.eligible_units;
      if (s == 0) {
        gen_seconds += elapsed;
        DetectOptions d;
        d.pair_threshold = 0;
        d.min_pairs = outcome.value().report.embedded_units;
        Stopwatch dwatch;
        DetectResult dr = scheme.value()->Detect(
            outcome.value().watermarked, outcome.value().key, d);
        detect_seconds += dwatch.ElapsedSeconds();
        if (!dr.accepted) std::printf("WARNING: detection failed!\n");
      }
    }
    chosen[s] /= kReps;
  }
  std::printf("%-14s %-10s %-9zu %-9zu %-9.1f %-9.1f %-9.1f %-10.3f %-10.4f\n",
              row.name, row.token, row.hist.num_tokens(), eligible,
              chosen[0], chosen[1], chosen[2], gen_seconds / kReps,
              detect_seconds / kReps);
}

}  // namespace

int main() {
  fb::PrintBanner("Table II — validation on real-world dataset stand-ins",
                  "ICDE'24 FreqyWM Table II (z=131, b=2, mean of 3 runs)");
  const bool full = std::getenv("FREQYWM_TABLE2_FULL") != nullptr;

  Rng rng(7);
  std::vector<Row> rows;
  rows.push_back({"chicago-taxi", "TaxiID",
                  MakeChicagoTaxiLikeHistogram(rng, full ? 6573 : 1500,
                                               full ? 8'000'000 : 1'500'000)});
  rows.push_back({"eyewnder", "URL",
                  MakeEyeWnderLikeHistogram(rng, full ? 11479 : 3000,
                                            full ? 1'200'000 : 600'000)});
  TableDataset adult = MakeAdultLikeTable(rng, 48842);
  auto ages = adult.ProjectTokens({"Age"});
  rows.push_back({"adult", "Age", Histogram::FromDataset(ages.value())});

  std::printf("%-14s %-10s %-9s %-9s %-9s %-9s %-9s %-10s %-10s\n",
              "dataset", "token", "distinct", "|Le|", "optimal", "greedy",
              "random", "gen(s)", "detect(s)");
  for (const auto& row : rows) RunRow(row);

  std::printf(
      "\npaper reference (full data): taxi 6573 tokens |Le|=33308 "
      "opt=805 gre=770 ran=773; eyewnder 11479 tokens |Le|=257 opt=38 "
      "gre=33 ran=31; adult 73 tokens |Le|=72 opt=21 gre=20 ran=17\n");
  return 0;
}
