// Reproduces Fig. 2b: number of chosen pairs vs the modulus bound z
// (alpha = 0.7, b = 2) — through the unified `WatermarkScheme` API
// (scheme "freqywm" via `SchemeFactory`), like every other converted
// harness; `MeanEmbeddedUnits` keeps the pre-API seed recurrence so the
// series stay comparable.
//
// Expected shape: small z -> small remainders -> many selectable pairs,
// with all three strategies close together; larger z widens the
// optimal-vs-heuristic gap and shrinks pair counts.

#include "bench_common.h"

namespace fb = freqywm::bench;
using freqywm::Histogram;
using freqywm::OptionBag;

int main() {
  fb::PrintBanner("Fig. 2b — chosen pairs vs modulus bound z",
                  "ICDE'24 FreqyWM Figure 2b (alpha=0.7, b=2)");
  const uint64_t kZs[] = {10, 131, 523, 1031, 2063};
  const char* kStrategies[] = {"optimal", "greedy", "random"};
  const int kReps = 3;

  Histogram hist = fb::MakeSynthetic(0.7, 42);
  std::printf("%-8s %-10s %-10s %-10s\n", "z", "optimal", "greedy",
              "random");
  for (uint64_t z : kZs) {
    double counts[3];
    for (int s = 0; s < 3; ++s) {
      OptionBag options;
      options.Set("budget", "2.0");
      options.Set("z", std::to_string(z));
      options.Set("strategy", kStrategies[s]);
      counts[s] = fb::MeanEmbeddedUnits(hist, "freqywm", options,
                                        2000 + s, kReps);
    }
    std::printf("%-8llu %-10.1f %-10.1f %-10.1f\n",
                static_cast<unsigned long long>(z), counts[0], counts[1],
                counts[2]);
  }
  return 0;
}
