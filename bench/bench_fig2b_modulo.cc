// Reproduces Fig. 2b: number of chosen pairs vs the modulus bound z
// (alpha = 0.7, b = 2). Expected shape: small z -> small remainders ->
// many selectable pairs, with all three strategies close together; larger
// z widens the optimal-vs-heuristic gap and shrinks pair counts.

#include "bench_common.h"

namespace fb = freqywm::bench;
using freqywm::GenerateOptions;
using freqywm::Histogram;
using freqywm::SelectionStrategy;

int main() {
  fb::PrintBanner("Fig. 2b — chosen pairs vs modulus bound z",
                  "ICDE'24 FreqyWM Figure 2b (alpha=0.7, b=2)");
  const uint64_t kZs[] = {10, 131, 523, 1031, 2063};
  const SelectionStrategy kStrategies[] = {SelectionStrategy::kOptimal,
                                           SelectionStrategy::kGreedy,
                                           SelectionStrategy::kRandom};
  const int kReps = 3;

  Histogram hist = fb::MakeSynthetic(0.7, 42);
  std::printf("%-8s %-10s %-10s %-10s\n", "z", "optimal", "greedy",
              "random");
  for (uint64_t z : kZs) {
    double counts[3];
    for (int s = 0; s < 3; ++s) {
      GenerateOptions o = fb::MakeOptions(2.0, z, kStrategies[s], 2000 + s);
      counts[s] = fb::MeanChosenPairs(hist, o, kReps);
    }
    std::printf("%-8llu %-10.1f %-10.1f %-10.1f\n",
                static_cast<unsigned long long>(z), counts[0], counts[1],
                counts[2]);
  }
  return 0;
}
