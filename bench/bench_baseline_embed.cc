// bench_baseline_embed: the ISSUE 4 acceptance harness for the parallel,
// allocation-lean baseline embedding paths (DESIGN.md §9).
//
// Sections:
//   1. WM-OBT single embed — the §VII baseline-comparison hot path. The
//      "before" side is `EmbedWmObtReference` (serial shared-Rng GA with
//      full-pass statistics and per-evaluation allocation); the "after"
//      side is `EmbedWmObt` with deterministic per-partition RNG streams,
//      incremental moments-based fitness and partition sharding at
//      1/2/4/8 threads. Byte-identity is checked between every threaded
//      run and the 1-thread run of the same path (the determinism
//      contract; the reference path is a *different*, statistically
//      equivalent stream layout — see DESIGN.md §9 — so it is compared on
//      time, not bytes).
//   2. WM-RVS embed — serial vs the parallel keyed-hash pass, byte- and
//      side-table-identity enforced.
//   3. Multi-watermark layering — 5 FreqyWM layers serial vs exec-aware,
//      byte-identity of final histogram and every layer's secrets.
//
// The process exits non-zero on any identity mismatch, never on timing.
// Speedups depend on the machine (the JSON records hardware_threads so a
// 1-core CI runner's numbers are interpretable); identity must hold
// everywhere.

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/multiwatermark.h"
#include "baselines/wm_obt.h"
#include "baselines/wm_rvs.h"
#include "bench_common.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

int Reps() { return fb::PerfSmoke() ? 1 : 5; }

bool SameEntries(const Histogram& a, const Histogram& b) {
  return a.entries() == b.entries();
}

}  // namespace

int main() {
  fb::PrintBanner(
      "baseline embed hot paths: WM-OBT parallel GA, WM-RVS, multi-WM",
      "system scale-out of the paper's §IV-D/§VI baselines (ISSUE 4)");

  fb::IdentityGate gate;
  std::ostringstream json;
  json << "{\n  \"bench\": \"baseline_embed\",\n  \"reps\": " << Reps()
       << ",\n  \"hardware_threads\": " << ThreadPool::HardwareThreads()
       << ",\n";

  // ------------------------------------------------ WM-OBT single embed
  Histogram hist = fb::MakeSynthetic(0.5, 42, 2000, 2'000'000);
  WmObtOptions obt;  // paper defaults: 20 partitions, pop 40, 60 generations
  std::printf("WM-OBT embed: %zu tokens, %zu partitions, population %zu, "
              "%zu generations\n\n",
              hist.num_tokens(), obt.num_partitions, obt.population,
              obt.generations);

  Histogram reference;
  double ref_best = fb::BestOfReps(Reps(), [&] {
    Rng rng(obt.key_seed);
    reference = EmbedWmObtReference(hist, obt, rng);
  });
  std::printf("%-28s %12.4f s  %9s\n", "reference (PR 3 serial GA)",
              ref_best, "1.00x");

  Histogram serial;
  double serial_best = fb::BestOfReps(Reps(), [&] {
    serial = EmbedWmObt(hist, obt);
  });
  std::printf("%-28s %12.4f s  %8.2fx   (single-thread win: incremental "
              "fitness + stream layout)\n",
              "incremental, 1 thread", serial_best, ref_best / serial_best);

  json << "  \"wm_obt\": {\"tokens\": " << hist.num_tokens()
       << ", \"partitions\": " << obt.num_partitions
       << ", \"population\": " << obt.population
       << ", \"generations\": " << obt.generations
       << ", \"reference_seconds\": " << ref_best
       << ", \"incremental_serial_seconds\": " << serial_best
       << ", \"single_thread_speedup\": " << ref_best / serial_best
       << ", \"rows\": [";

  double best_speedup_vs_reference = ref_best / serial_best;
  bool first_row = true;
  for (size_t threads : {2, 4, 8}) {
    // `threads` is total parallelism: this thread helps, so threads-1
    // workers.
    ThreadPool pool(threads - 1);
    ExecContext exec{&pool};
    Histogram parallel;
    double best = fb::BestOfReps(Reps(), [&] {
      parallel = EmbedWmObt(hist, obt, exec);
    });
    bool identical = gate.Check(
        "WM-OBT @" + std::to_string(threads) + " threads vs 1-thread",
        SameEntries(parallel, serial));
    best_speedup_vs_reference =
        std::max(best_speedup_vs_reference, ref_best / best);
    std::printf("%9zu threads             %12.4f s  %8.2fx   vs reference "
                "%.2fx  %s\n",
                threads, best, serial_best / best, ref_best / best,
                identical ? "identical to 1-thread" : "MISMATCH");
    json << (first_row ? "" : ", ") << "{\"threads\": " << threads
         << ", \"seconds\": " << best << ", \"speedup_vs_serial\": "
         << serial_best / best << ", \"speedup_vs_reference\": "
         << ref_best / best << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
    first_row = false;
  }
  json << "], \"best_speedup_vs_reference\": " << best_speedup_vs_reference
       << "},\n";

  // --------------------------------------------------- WM-RVS embed
  Histogram rvs_hist = fb::MakeSynthetic(0.6, 7, 200'000, 4'000'000);
  WmRvsOptions rvs;
  std::printf("\nWM-RVS embed: %zu tokens (one keyed SHA-256 each)\n",
              rvs_hist.num_tokens());

  WmRvsSideTable rvs_serial_side;
  Histogram rvs_serial;
  double rvs_serial_best = fb::BestOfReps(Reps(), [&] {
    rvs_serial = EmbedWmRvs(rvs_hist, rvs, &rvs_serial_side);
  });
  std::printf("%-28s %12.4f s  %9s\n", "serial", rvs_serial_best, "1.00x");
  json << "  \"wm_rvs\": {\"tokens\": " << rvs_hist.num_tokens()
       << ", \"serial_seconds\": " << rvs_serial_best << ", \"rows\": [";
  first_row = true;
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads - 1);
    ExecContext exec{&pool};
    WmRvsSideTable side;
    Histogram parallel;
    double best = fb::BestOfReps(Reps(), [&] {
      parallel = EmbedWmRvs(rvs_hist, rvs, &side, exec);
    });
    bool identical = SameEntries(parallel, rvs_serial) &&
                     side.entries.size() == rvs_serial_side.entries.size();
    for (size_t i = 0; identical && i < side.entries.size(); ++i) {
      identical = side.entries[i].token == rvs_serial_side.entries[i].token &&
                  side.entries[i].digit_position ==
                      rvs_serial_side.entries[i].digit_position &&
                  side.entries[i].original_digit ==
                      rvs_serial_side.entries[i].original_digit;
    }
    identical = gate.Check(
        "WM-RVS @" + std::to_string(threads) + " threads vs serial",
        identical);
    std::printf("%9zu threads             %12.4f s  %8.2fx   %s\n", threads,
                best, rvs_serial_best / best,
                identical ? "identical to serial" : "MISMATCH");
    json << (first_row ? "" : ", ") << "{\"threads\": " << threads
         << ", \"seconds\": " << best << ", \"speedup\": "
         << rvs_serial_best / best << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
    first_row = false;
  }
  json << "]},\n";

  // ------------------------------------------- multi-watermark layering
  Histogram mwm_hist = fb::MakeSynthetic(0.5, 21, 2000, 2'000'000);
  GenerateOptions mwm =
      fb::MakeOptions(2.0, 131, SelectionStrategy::kGreedy, 77);
  constexpr size_t kLayers = 5;
  std::printf("\nmulti-watermark: %zu FreqyWM layers on %zu tokens\n",
              kLayers, mwm_hist.num_tokens());

  Result<MultiWatermarkResult> mwm_serial = Status::Internal("not yet run");
  double mwm_serial_best = fb::BestOfReps(Reps(), [&] {
    mwm_serial = ApplySuccessiveWatermarks(mwm_hist, kLayers, mwm);
  });
  if (!mwm_serial.ok()) {
    std::printf("multi-watermarking failed: %s\n",
                mwm_serial.status().ToString().c_str());
    return 1;
  }
  std::printf("%-28s %12.4f s  %9s\n", "serial", mwm_serial_best, "1.00x");
  json << "  \"multiwatermark\": {\"layers\": " << kLayers
       << ", \"tokens\": " << mwm_hist.num_tokens()
       << ", \"serial_seconds\": " << mwm_serial_best << ", \"rows\": [";
  first_row = true;
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads - 1);
    ExecContext exec{&pool};
    Result<MultiWatermarkResult> parallel = Status::Internal("not yet run");
    double best = fb::BestOfReps(Reps(), [&] {
      parallel = ApplySuccessiveWatermarks(mwm_hist, kLayers, mwm, exec);
    });
    bool identical =
        parallel.ok() &&
        SameEntries(parallel.value().final_histogram,
                    mwm_serial.value().final_histogram) &&
        parallel.value().layers == mwm_serial.value().layers;
    identical = gate.Check(
        "multi-watermark @" + std::to_string(threads) + " threads vs serial",
        identical);
    std::printf("%9zu threads             %12.4f s  %8.2fx   %s\n", threads,
                best, mwm_serial_best / best,
                identical ? "identical to serial" : "MISMATCH");
    json << (first_row ? "" : ", ") << "{\"threads\": " << threads
         << ", \"seconds\": " << best << ", \"speedup\": "
         << mwm_serial_best / best << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
    first_row = false;
  }
  json << "]},\n  \"all_identical\": "
       << (gate.all_identical() ? "true" : "false") << "\n}\n";

  fb::WriteJsonFile(fb::JsonOutputPath("BENCH_baseline_embed.json"),
                    json.str());
  return gate.Finish();
}
