// Reproduces §V-D: the re-watermarking (false-claim) attack and the judge
// arbitration protocol. The attacker watermarks the owner's watermarked
// data and presents its own (valid-looking) secrets; the judge runs both
// secrets against both datasets.
//
// Paper reference: the first watermark is still detected on the attacker's
// dataset (92% of pairs at t = 0), and only the rightful owner's secret
// verifies on both datasets.

#include "attacks/rewatermark.h"
#include "bench_common.h"

namespace fb = freqywm::bench;
using namespace freqywm;

int main() {
  fb::PrintBanner("§V-D — re-watermarking attack + judge protocol",
                  "ICDE'24 FreqyWM §V-D");
  Histogram original = fb::MakeSynthetic(0.5, 42);

  GenerateOptions owner_opts =
      fb::MakeOptions(2.0, 131, SelectionStrategy::kOptimal, 42);
  auto owner = WatermarkGenerator(owner_opts).GenerateFromHistogram(original);
  if (!owner.ok()) return 1;

  GenerateOptions attacker_opts = owner_opts;
  attacker_opts.seed = 666;
  auto attacker =
      ReWatermarkAttack(owner.value().watermarked, attacker_opts);
  if (!attacker.ok()) return 1;

  std::printf("owner pairs: %zu, attacker pairs: %zu\n\n",
              owner.value().report.chosen_pairs,
              attacker.value().report.chosen_pairs);

  std::printf("%-6s %-22s %-22s\n", "t", "owner-on-attacker-data",
              "attacker-on-owner-data");
  for (uint64_t t : {0ull, 1ull, 2ull, 4ull}) {
    DetectOptions d;
    d.pair_threshold = t;
    d.min_pairs = 1;
    double a_on_b = DetectWatermark(attacker.value().watermarked,
                                    owner.value().report.secrets, d)
                        .verified_fraction;
    double b_on_a = DetectWatermark(owner.value().watermarked,
                                    attacker.value().report.secrets, d)
                        .verified_fraction;
    std::printf("%-6llu %-22.3f %-22.3f\n",
                static_cast<unsigned long long>(t), a_on_b, b_on_a);
  }

  DetectOptions judge;
  judge.pair_threshold = 0;
  judge.min_pairs =
      std::max<size_t>(1, owner.value().report.chosen_pairs / 2);
  JudgeReport report = ArbitrateOwnership(
      owner.value().watermarked, owner.value().report.secrets,
      attacker.value().watermarked, attacker.value().report.secrets, judge);
  const char* verdict =
      report.verdict == JudgeVerdict::kPartyA
          ? "party A (honest owner)"
          : report.verdict == JudgeVerdict::kPartyB ? "party B (attacker!)"
                                                    : "inconclusive";
  std::printf("\njudge verdict: %s\n", verdict);
  std::printf("  A on A: %zu/%zu  A on B: %zu/%zu  B on A: %zu/%zu  "
              "B on B: %zu/%zu\n",
              report.a_on_a.pairs_verified, owner.value().report.chosen_pairs,
              report.a_on_b.pairs_verified, owner.value().report.chosen_pairs,
              report.b_on_a.pairs_verified,
              attacker.value().report.chosen_pairs,
              report.b_on_b.pairs_verified,
              attacker.value().report.chosen_pairs);
  std::printf("\npaper reference: first watermark detected at 92%% (t=0) on "
              "the re-watermarked data; only the owner verifies on both\n");
  return 0;
}
