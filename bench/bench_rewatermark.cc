// Reproduces §V-D: the re-watermarking (false-claim) attack and the judge
// arbitration protocol, driven through the `WatermarkScheme` API (ISSUE 4
// bench-conversion backlog): the attacker simply embeds its own watermark
// on the owner's watermarked data — through the same `Embed` call path —
// and presents its (valid-looking) `SchemeKey`; the judge runs both keys
// against both datasets through `Detect`.
//
// Paper reference: the first watermark is still detected on the attacker's
// dataset (92% of pairs at t = 0), and only the rightful owner's key
// verifies on both datasets.

#include <memory>

#include "api/scheme.h"
#include "bench_common.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

std::unique_ptr<WatermarkScheme> MakeFreqyWm(uint64_t seed) {
  OptionBag bag;
  bag.Set("budget", "2.0");
  bag.Set("z", "131");
  bag.Set("strategy", "optimal");
  bag.Set("seed", std::to_string(seed));
  auto scheme = SchemeFactory::Create("freqywm", bag);
  if (!scheme.ok()) {
    std::printf("scheme creation failed: %s\n",
                scheme.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(scheme).value();
}

}  // namespace

int main() {
  fb::PrintBanner("§V-D — re-watermarking attack + judge protocol",
                  "ICDE'24 FreqyWM §V-D (WatermarkScheme API)");
  Histogram original = fb::MakeSynthetic(0.5, 42);

  auto owner_scheme = MakeFreqyWm(42);
  auto owner = owner_scheme->Embed(original);
  if (!owner.ok()) return 1;

  // The attack through the scheme interface: watermark the watermarked.
  auto attacker_scheme = MakeFreqyWm(666);
  auto attacker = attacker_scheme->Embed(owner.value().watermarked);
  if (!attacker.ok()) return 1;

  std::printf("owner pairs: %zu, attacker pairs: %zu\n\n",
              owner.value().report.embedded_units,
              attacker.value().report.embedded_units);

  std::printf("%-6s %-22s %-22s\n", "t", "owner-on-attacker-data",
              "attacker-on-owner-data");
  for (uint64_t t : {0ull, 1ull, 2ull, 4ull}) {
    DetectOptions d;
    d.pair_threshold = t;
    d.min_pairs = 1;
    double a_on_b = owner_scheme
                        ->Detect(attacker.value().watermarked,
                                 owner.value().key, d)
                        .verified_fraction;
    double b_on_a = attacker_scheme
                        ->Detect(owner.value().watermarked,
                                 attacker.value().key, d)
                        .verified_fraction;
    std::printf("%-6llu %-22.3f %-22.3f\n",
                static_cast<unsigned long long>(t), a_on_b, b_on_a);
  }

  // The judge runs each party's key against each party's dataset through
  // the scheme interface; the party whose key verifies on BOTH datasets
  // watermarked first (§V-D chronology argument).
  DetectOptions judge =
      owner_scheme->RecommendedDetectOptions(owner.value().key);
  DetectResult a_on_a = owner_scheme->Detect(owner.value().watermarked,
                                             owner.value().key, judge);
  DetectResult a_on_b = owner_scheme->Detect(attacker.value().watermarked,
                                             owner.value().key, judge);
  DetectResult b_on_a = attacker_scheme->Detect(
      owner.value().watermarked, attacker.value().key,
      attacker_scheme->RecommendedDetectOptions(attacker.value().key));
  DetectResult b_on_b = attacker_scheme->Detect(
      attacker.value().watermarked, attacker.value().key,
      attacker_scheme->RecommendedDetectOptions(attacker.value().key));

  // Verdict mirrors `ArbitrateOwnership` (§V-D), fed from the scheme-API
  // detections: primary rule — only the rightful owner's key verifies on
  // BOTH datasets; tie-break — cross-verification strength with a clear
  // 2x margin (a re-watermarker's pairs verify nowhere on data it never
  // touched, while the first watermark leaves a partial trace).
  bool a_claims_both = a_on_a.accepted && a_on_b.accepted;
  bool b_claims_both = b_on_a.accepted && b_on_b.accepted;
  const char* verdict = "inconclusive";
  if (a_claims_both && !b_claims_both) {
    verdict = "party A (honest owner)";
  } else if (b_claims_both && !a_claims_both) {
    verdict = "party B (attacker!)";
  } else if (a_on_a.accepted &&
             a_on_b.verified_fraction > 2.0 * b_on_a.verified_fraction &&
             a_on_b.verified_fraction > 0.05) {
    verdict = "party A (honest owner, by cross-verification margin)";
  } else if (b_on_b.accepted &&
             b_on_a.verified_fraction > 2.0 * a_on_b.verified_fraction &&
             b_on_a.verified_fraction > 0.05) {
    verdict = "party B (attacker!, by cross-verification margin)";
  }
  std::printf("\njudge verdict: %s\n", verdict);
  std::printf("  A on A: %zu/%zu  A on B: %zu/%zu  B on A: %zu/%zu  "
              "B on B: %zu/%zu\n",
              a_on_a.pairs_verified, owner.value().report.embedded_units,
              a_on_b.pairs_verified, owner.value().report.embedded_units,
              b_on_a.pairs_verified, attacker.value().report.embedded_units,
              b_on_b.pairs_verified, attacker.value().report.embedded_units);
  std::printf("\npaper reference: first watermark detected at 92%% (t=0) on "
              "the re-watermarked data; only the owner verifies on both\n");
  return 0;
}
