// bench_durability: cost of durability for the fingerprint registry
// (DESIGN.md §15, ISSUE 10). Two questions, three fsync policies:
//
//  1. Escrow throughput — registrations/sec through the tenant Escrow
//     path into a DurableRegistry under fsync=every (one fsync per
//     ack), fsync=group (bounded unsynced window) and fsync=none
//     (crash-durability delegated to the OS), against the in-memory
//     registry as the zero-durability baseline.
//
//  2. Recovery time — wall clock for DurableRegistry::Open at 10k,
//     100k and 1M escrowed keys, both from a pure WAL replay (no
//     checkpoint ever ran) and from a published snapshot (replay of an
//     empty log). Perf-smoke runs the 10k/100k points only.
//
// The identity section routes every correctness claim through the
// shared `bench::IdentityGate` (wmlint's identity_gate contract):
// recovery after every policy and every scale must reproduce exactly
// the acknowledged key set, byte for byte, and the replay/duplicate
// counters must account for every record. The process exits non-zero
// on any mismatch, never on timing. Results land in
// BENCH_durability.json.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/durable_registry.h"
#include "analysis/registry.h"
#include "analysis/tenant.h"
#include "bench_common.h"
#include "common/stopwatch.h"

using namespace freqywm;

namespace {

/// A scratch directory under TempDir-equivalent space, recreated from
/// empty on every use so reruns never replay a stale WAL.
std::string ScratchDir(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = std::string(base != nullptr && base[0] != '\0' ? base
                                                                   : "/tmp") +
                    "/freqywm_bench_durability_" + name;
  std::remove(DurableRegistry::SnapshotPath(dir).c_str());
  std::remove(DurableRegistry::WalPath(dir).c_str());
  ::rmdir(dir.c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveScratch(const std::string& dir) {
  std::remove(DurableRegistry::SnapshotPath(dir).c_str());
  std::remove(DurableRegistry::WalPath(dir).c_str());
  ::rmdir(dir.c_str());
}

SchemeKey KeyFor(size_t i) {
  return SchemeKey{"wm-custom", "bench-payload-" + std::to_string(i)};
}

std::string BuyerFor(size_t i) { return "buyer-" + std::to_string(i); }

const char* PolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kEveryRecord:
      return "every";
    case WalSyncPolicy::kGroupCommit:
      return "group";
    case WalSyncPolicy::kNone:
      return "none";
  }
  return "?";
}

struct ThroughputPoint {
  std::string policy;
  size_t registrations = 0;
  double elapsed_s = 0;
  double ops_per_s = 0;
  bool recovered_identical = false;
};

/// Escrow throughput through the tenant path for one fsync policy; the
/// recovery check reopens the directory and compares the full key set
/// against what was acknowledged.
ThroughputPoint RunEscrowThroughput(WalSyncPolicy policy, size_t count,
                                    bench::IdentityGate& gate) {
  ThroughputPoint point;
  point.policy = PolicyName(policy);
  point.registrations = count;
  const std::string dir = ScratchDir(std::string("escrow_") + point.policy);

  {
    TenantQuotas quotas;
    quotas.max_escrowed_keys = count;
    quotas.durable_dir = dir;
    quotas.durable_sync_policy = policy;
    auto tenant = TenantContext::Open("bench-durability", quotas);
    if (!tenant.ok()) {
      gate.Check("open durable tenant (" + point.policy + ")", false);
      return point;
    }
    Stopwatch wall;
    size_t acked = 0;
    for (size_t i = 0; i < count; ++i) {
      if (tenant.value()->Escrow(BuyerFor(i), KeyFor(i)).ok()) ++acked;
    }
    point.elapsed_s = wall.ElapsedSeconds();
    point.ops_per_s = point.elapsed_s > 0
                          ? static_cast<double>(acked) / point.elapsed_s
                          : 0;
    gate.Check("escrow (" + point.policy + "): every registration acked",
               acked == count);
  }

  auto recovered = DurableRegistry::Open(dir);
  bool identical = recovered.ok() && recovered.value()->size() == count;
  if (identical) {
    const FingerprintRegistry snapshot = recovered.value()->Snapshot();
    std::unordered_map<std::string, SchemeKey> by_buyer;
    by_buyer.reserve(snapshot.size());
    for (const FingerprintRecord& record : snapshot.records()) {
      by_buyer.emplace(record.buyer_id, record.key);
    }
    for (size_t i = 0; i < count && identical; ++i) {
      auto it = by_buyer.find(BuyerFor(i));
      identical = it != by_buyer.end() && it->second == KeyFor(i);
    }
  }
  point.recovered_identical = gate.Check(
      "escrow (" + point.policy + "): recovery reproduces the acked set",
      identical);
  RemoveScratch(dir);
  return point;
}

struct RecoveryPoint {
  size_t keys = 0;
  double wal_replay_s = 0;
  double snapshot_load_s = 0;
  bool identical = false;
};

/// Recovery time at `count` keys: Open from a WAL that was never
/// checkpointed (pure replay), then checkpoint and Open again (pure
/// snapshot load, empty log).
RecoveryPoint RunRecoveryAtScale(size_t count, bench::IdentityGate& gate) {
  RecoveryPoint point;
  point.keys = count;
  const std::string dir =
      ScratchDir("recovery_" + std::to_string(count));

  DurableRegistryOptions options;
  options.wal.sync_policy = WalSyncPolicy::kNone;  // populate fast
  // No auto-checkpoint: keep the whole population in the WAL so the
  // first reopen measures replay, not snapshot load.
  options.checkpoint_threshold_bytes = ~uint64_t{0};
  {
    auto populated = DurableRegistry::Open(dir, options);
    if (!populated.ok()) {
      gate.Check("populate @ " + std::to_string(count) + " keys", false);
      return point;
    }
    for (size_t i = 0; i < count; ++i) {
      (void)populated.value()->Register(BuyerFor(i), KeyFor(i));
    }
  }

  bool replay_ok = false;
  {
    Stopwatch wall;
    auto reopened = DurableRegistry::Open(dir, options);
    point.wal_replay_s = wall.ElapsedSeconds();
    replay_ok = reopened.ok() && reopened.value()->size() == count &&
                reopened.value()->open_stats().records_replayed == count &&
                !reopened.value()->open_stats().snapshot_loaded;
    gate.Check("WAL replay @ " + std::to_string(count) +
                   " keys: exact acked set, counters account for all",
               replay_ok);
    if (reopened.ok()) (void)reopened.value()->Checkpoint();
  }

  bool snapshot_ok = false;
  {
    Stopwatch wall;
    auto reopened = DurableRegistry::Open(dir, options);
    point.snapshot_load_s = wall.ElapsedSeconds();
    snapshot_ok = reopened.ok() && reopened.value()->size() == count &&
                  reopened.value()->open_stats().snapshot_loaded &&
                  reopened.value()->open_stats().records_replayed == 0;
    gate.Check("snapshot load @ " + std::to_string(count) +
                   " keys: exact acked set, empty log",
               snapshot_ok);
  }
  point.identical = replay_ok && snapshot_ok;
  RemoveScratch(dir);
  return point;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "bench_durability: WAL fsync policies and recovery at scale",
      "DESIGN.md SS15 (ISSUE 10) - durable registry");

  bench::IdentityGate gate;

  // fsync=every pays one fsync per ack; keep its count small enough
  // that the bench stays interactive on laptop-class disks.
  const size_t every_count = bench::PerfSmoke() ? 200 : 2000;
  const size_t buffered_count = bench::PerfSmoke() ? 2000 : 20000;

  std::printf("\n-- escrow throughput per fsync policy --\n");
  std::vector<ThroughputPoint> throughput;
  throughput.push_back(
      RunEscrowThroughput(WalSyncPolicy::kEveryRecord, every_count, gate));
  throughput.push_back(
      RunEscrowThroughput(WalSyncPolicy::kGroupCommit, buffered_count, gate));
  throughput.push_back(
      RunEscrowThroughput(WalSyncPolicy::kNone, buffered_count, gate));
  for (const ThroughputPoint& p : throughput) {
    std::printf("fsync=%-5s  %7zu escrows in %8.3f s  ->  %10.0f ops/s\n",
                p.policy.c_str(), p.registrations, p.elapsed_s, p.ops_per_s);
  }

  std::printf("\n-- recovery time at scale --\n");
  std::vector<size_t> scales{10'000, 100'000};
  if (!bench::PerfSmoke()) scales.push_back(1'000'000);
  std::vector<RecoveryPoint> recovery;
  for (size_t count : scales) {
    RecoveryPoint point = RunRecoveryAtScale(count, gate);
    recovery.push_back(point);
    std::printf(
        "%8zu keys   WAL replay %8.3f s   snapshot load %8.3f s\n",
        point.keys, point.wal_replay_s, point.snapshot_load_s);
  }

  std::ostringstream json;
  json << "{\n  \"bench\": \"durability\",\n  \"escrow_throughput\": [\n";
  for (size_t i = 0; i < throughput.size(); ++i) {
    const ThroughputPoint& p = throughput[i];
    json << "    {\"fsync\": \"" << p.policy
         << "\", \"registrations\": " << p.registrations
         << ", \"elapsed_s\": " << p.elapsed_s
         << ", \"ops_per_s\": " << p.ops_per_s << ", \"recovered\": "
         << (p.recovered_identical ? "true" : "false") << "}"
         << (i + 1 < throughput.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"recovery\": [\n";
  for (size_t i = 0; i < recovery.size(); ++i) {
    const RecoveryPoint& p = recovery[i];
    json << "    {\"keys\": " << p.keys
         << ", \"wal_replay_s\": " << p.wal_replay_s
         << ", \"snapshot_load_s\": " << p.snapshot_load_s << "}"
         << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"identity_checks\": " << gate.checks()
       << ",\n  \"all_identical\": "
       << (gate.all_identical() ? "true" : "false") << "\n}\n";
  bench::WriteJsonFile(bench::JsonOutputPath("BENCH_durability.json"),
                       json.str());

  return gate.Finish();
}
