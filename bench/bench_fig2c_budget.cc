// Reproduces Fig. 2c: chosen pairs for greedy and random relative to the
// optimal, as the budget b grows (alpha = 0.7, z = 1031). Expected shape:
// with larger budgets the heuristics converge toward the optimal because
// even optimal selection saturates at the matching size.
//
// Budget semantics: the exact cosine constraint is never binding at this
// scale (a full watermark moves a 1M-row histogram's cosine by < 0.01%),
// so this sweep uses BudgetMode::kAdditiveChurn — the QKP reading of
// §III-B2 where the summed churn of the chosen pairs is capped at b% of
// the rows. Both modes are reported in EXPERIMENTS.md.

#include "bench_common.h"

namespace fb = freqywm::bench;
using freqywm::BudgetMode;
using freqywm::GenerateOptions;
using freqywm::Histogram;
using freqywm::SelectionStrategy;

int main() {
  fb::PrintBanner("Fig. 2c — heuristics vs optimal as budget b grows",
                  "ICDE'24 FreqyWM Figure 2c (alpha=0.7, z=1031)");
  const double kBudgets[] = {0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0};
  const int kReps = 3;

  Histogram hist = fb::MakeSynthetic(0.7, 42);
  std::printf("%-8s %-10s %-10s %-10s %-14s %-14s\n", "b(%)", "optimal",
              "greedy", "random", "greedy/opt", "random/opt");
  for (double b : kBudgets) {
    double counts[3];
    const SelectionStrategy strategies[3] = {SelectionStrategy::kOptimal,
                                             SelectionStrategy::kGreedy,
                                             SelectionStrategy::kRandom};
    for (int s = 0; s < 3; ++s) {
      GenerateOptions o =
          fb::MakeOptions(b, 1031, strategies[s], 3000 + s);
      o.budget_mode = BudgetMode::kAdditiveChurn;
      counts[s] = fb::MeanChosenPairs(hist, o, kReps);
    }
    std::printf("%-8.2f %-10.1f %-10.1f %-10.1f %-14.3f %-14.3f\n", b,
                counts[0], counts[1], counts[2],
                counts[0] > 0 ? counts[1] / counts[0] : 0.0,
                counts[0] > 0 ? counts[2] / counts[0] : 0.0);
  }
  return 0;
}
