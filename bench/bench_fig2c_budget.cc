// Reproduces Fig. 2c: chosen pairs for greedy and random relative to the
// optimal, as the budget b grows (alpha = 0.7, z = 1031). Expected shape:
// with larger budgets the heuristics converge toward the optimal because
// even optimal selection saturates at the matching size. Runs through the
// unified `WatermarkScheme` API (`SchemeFactory::Create("freqywm", ...)`),
// the same configuration surface the CLI exposes.
//
// Budget semantics: the exact cosine constraint is never binding at this
// scale (a full watermark moves a 1M-row histogram's cosine by < 0.01%),
// so this sweep uses budget_mode=additive-churn — the QKP reading of
// §III-B2 where the summed churn of the chosen pairs is capped at b% of
// the rows. Both modes are reported in EXPERIMENTS.md.

#include "bench_common.h"

namespace fb = freqywm::bench;
using freqywm::Histogram;
using freqywm::OptionBag;

int main() {
  fb::PrintBanner("Fig. 2c — heuristics vs optimal as budget b grows",
                  "ICDE'24 FreqyWM Figure 2c (alpha=0.7, z=1031)");
  const double kBudgets[] = {0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0};
  const int kReps = 3;
  const char* kStrategies[3] = {"optimal", "greedy", "random"};

  Histogram hist = fb::MakeSynthetic(0.7, 42);
  std::printf("%-8s %-10s %-10s %-10s %-14s %-14s\n", "b(%)", "optimal",
              "greedy", "random", "greedy/opt", "random/opt");
  for (double b : kBudgets) {
    double counts[3];
    for (int s = 0; s < 3; ++s) {
      OptionBag bag;
      bag.Set("budget", std::to_string(b));
      bag.Set("z", "1031");
      bag.Set("strategy", kStrategies[s]);
      bag.Set("budget_mode", "additive-churn");
      counts[s] = fb::MeanEmbeddedUnits(hist, "freqywm", bag,
                                        3000 + static_cast<uint64_t>(s),
                                        kReps);
    }
    std::printf("%-8.2f %-10.1f %-10.1f %-10.1f %-14.3f %-14.3f\n", b,
                counts[0], counts[1], counts[2],
                counts[0] > 0 ? counts[1] / counts[0] : 0.0,
                counts[0] > 0 ? counts[2] / counts[0] : 0.0);
  }
  return 0;
}
