// Reproduces Fig. 2a: number of chosen pairs vs dataset skewness alpha for
// the optimal, greedy, and random selection strategies (b = 2, z = 1031,
// 1K tokens, 1M samples) — through the unified `WatermarkScheme` API
// (scheme "freqywm" via `SchemeFactory`), like every other converted
// harness; `MeanEmbeddedUnits` keeps the pre-API seed recurrence so the
// series stay comparable.
//
// Expected shape (paper): few pairs at alpha ~ 0 (near-uniform, no slack),
// a rise through mid skewness, a drop after alpha ~ 0.7 as the tail turns
// uniform; optimal above both heuristics (gap ~20%), heuristics within a
// hair of each other.

#include "bench_common.h"

namespace fb = freqywm::bench;
using freqywm::Histogram;
using freqywm::OptionBag;

int main() {
  fb::PrintBanner("Fig. 2a — chosen pairs vs skewness alpha",
                  "ICDE'24 FreqyWM Figure 2a (b=2, z=1031)");
  const double kAlphas[] = {0.05, 0.2, 0.5, 0.7, 0.9, 1.0};
  const char* kStrategies[] = {"optimal", "greedy", "random"};
  const int kReps = 3;

  std::printf("%-8s %-10s %-10s %-10s\n", "alpha", "optimal", "greedy",
              "random");
  for (double alpha : kAlphas) {
    Histogram hist = fb::MakeSynthetic(alpha, 42);
    double counts[3];
    for (int s = 0; s < 3; ++s) {
      OptionBag options;
      options.Set("budget", "2.0");
      options.Set("z", "1031");
      options.Set("strategy", kStrategies[s]);
      counts[s] = fb::MeanEmbeddedUnits(hist, "freqywm", options,
                                        1000 + s, kReps);
    }
    std::printf("%-8.2f %-10.1f %-10.1f %-10.1f\n", alpha, counts[0],
                counts[1], counts[2]);
  }
  return 0;
}
