// Reproduces Fig. 5: percentage of verified pairs vs detection threshold t
// for (1) the untouched watermarked dataset D_w, (2) a non-watermarked
// dataset D_non with alpha = 0.7 over the same token space, (3) D_w after
// the random-within-boundaries destroy attack, (4) D_w after the ±1%
// destroy attack.
//
// Expected shapes: D_w pinned at 100%; the 1% attack near ~90% already at
// t = 0; the full-boundary attack rising from ~35% at t = 0 toward ~90% by
// t = 10; D_non rising with t (the false-positive wall) — usable (t, k)
// settings live between the attack curves and the D_non curve.

#include "attacks/destroy.h"
#include "core/detect.h"
#include "bench_common.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

void RunPanel(const Histogram& original, const Histogram& non_watermarked,
              uint64_t min_modulus) {
  GenerateOptions o =
      fb::MakeOptions(2.0, 131, SelectionStrategy::kOptimal, 42);
  o.min_modulus = min_modulus;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(original);
  if (!r.ok()) {
    std::printf("generation failed: %s\n", r.status().ToString().c_str());
    return;
  }
  const Histogram& wm = r.value().watermarked;
  const auto& secrets = r.value().report.secrets;
  std::printf("min_modulus = %llu, watermarked pairs: %zu (paper: 139)\n",
              static_cast<unsigned long long>(min_modulus),
              r.value().report.chosen_pairs);

  const int kAttackReps = 10;
  std::printf("%-6s %-10s %-10s %-14s %-14s\n", "t", "Dw", "Dnon",
              "Dw-rand-attack", "Dw-1pct-attack");
  for (uint64_t t : {0ull, 1ull, 2ull, 4ull, 6ull, 8ull, 10ull}) {
    DetectOptions d;
    d.pair_threshold = t;
    d.min_pairs = 1;
    double clean = DetectWatermark(wm, secrets, d).verified_fraction;
    double non = DetectWatermark(non_watermarked, secrets, d)
                     .verified_fraction;
    double rand_attack = 0, pct_attack = 0;
    for (int rep = 0; rep < kAttackReps; ++rep) {
      Rng rng_a(100 + static_cast<uint64_t>(rep));
      Rng rng_b(200 + static_cast<uint64_t>(rep));
      rand_attack += DetectWatermark(
                         DestroyAttackWithinBoundaries(wm, rng_a), secrets, d)
                         .verified_fraction;
      pct_attack +=
          DetectWatermark(DestroyAttackPercentOfBoundary(wm, 1.0, rng_b),
                          secrets, d)
              .verified_fraction;
    }
    std::printf("%-6llu %-10.3f %-10.3f %-14.3f %-14.3f\n",
                static_cast<unsigned long long>(t), clean, non,
                rand_attack / kAttackReps, pct_attack / kAttackReps);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  fb::PrintBanner("Fig. 5 — destroy attacks without re-ordering",
                  "ICDE'24 FreqyWM Figure 5 (alpha=0.5, z=131, b=2)");
  Histogram original = fb::MakeSynthetic(0.5, 42);
  Histogram non_watermarked = fb::MakeSynthetic(0.7, 314159);

  std::printf("-- paper profile (s >= 2): cheap pairs dominate, Dnon high --\n");
  RunPanel(original, non_watermarked, 2);
  std::printf("-- hardened profile (s >= 16): Dnon collapses, the (t, k) "
              "corridor between Dnon and the attack curves opens up --\n");
  RunPanel(original, non_watermarked, 16);

  std::printf("paper reference: 1%%-attack ~90%% at t=0; random attack "
              "~35%% at t=0 rising to ~90%% at t=10; Dnon below the attack "
              "curves\n");
  return 0;
}
