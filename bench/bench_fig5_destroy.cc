// Reproduces Fig. 5: percentage of verified pairs vs detection threshold t
// for (1) the untouched watermarked dataset D_w, (2) a non-watermarked
// dataset D_non with alpha = 0.7 over the same token space, (3) D_w after
// the random-within-boundaries destroy attack, (4) D_w after the ±1%
// destroy attack.
//
// Expected shapes: D_w pinned at 100%; the 1% attack near ~90% already at
// t = 0; the full-boundary attack rising from ~35% at t = 0 toward ~90% by
// t = 10; D_non rising with t (the false-positive wall) — usable (t, k)
// settings live between the attack curves and the D_non curve.
//
// Converted to the unified API: embedding/detection go through
// `WatermarkScheme` ("freqywm" from the factory) and the two destroy
// attacks are `Attack` adapters — the attack columns are data, not code.

#include <memory>
#include <vector>

#include "api/attack.h"
#include "api/factory.h"
#include "bench_common.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

void RunPanel(const Histogram& original, const Histogram& non_watermarked,
              uint64_t min_modulus) {
  OptionBag bag;
  bag.Set("budget", "2.0");
  bag.Set("z", "131");
  bag.Set("seed", "42");
  bag.Set("min_modulus", std::to_string(min_modulus));
  auto scheme = SchemeFactory::Create("freqywm", bag);
  if (!scheme.ok()) {
    std::printf("factory failed: %s\n", scheme.status().ToString().c_str());
    return;
  }
  auto r = scheme.value()->Embed(original);
  if (!r.ok()) {
    std::printf("generation failed: %s\n", r.status().ToString().c_str());
    return;
  }
  const Histogram& wm = r.value().watermarked;
  const SchemeKey& key = r.value().key;
  std::printf("min_modulus = %llu, watermarked pairs: %zu (paper: 139)\n",
              static_cast<unsigned long long>(min_modulus),
              r.value().report.embedded_units);

  std::vector<std::unique_ptr<Attack>> attacks;
  attacks.push_back(MakeWithinBoundariesAttack());
  attacks.push_back(MakePercentOfBoundaryAttack(1.0));

  const int kAttackReps = 10;
  std::printf("%-6s %-10s %-10s %-14s %-14s\n", "t", "Dw", "Dnon",
              "Dw-rand-attack", "Dw-1pct-attack");
  for (uint64_t t : {0ull, 1ull, 2ull, 4ull, 6ull, 8ull, 10ull}) {
    DetectOptions d;
    d.pair_threshold = t;
    d.min_pairs = 1;
    double clean = scheme.value()->Detect(wm, key, d).verified_fraction;
    double non = scheme.value()
                     ->Detect(non_watermarked, key, d)
                     .verified_fraction;
    std::vector<double> attacked(attacks.size(), 0.0);
    for (int rep = 0; rep < kAttackReps; ++rep) {
      for (size_t a = 0; a < attacks.size(); ++a) {
        Rng rng(100 * (a + 1) + static_cast<uint64_t>(rep));
        attacked[a] += scheme.value()
                           ->Detect(attacks[a]->Apply(wm, rng), key, d)
                           .verified_fraction;
      }
    }
    std::printf("%-6llu %-10.3f %-10.3f %-14.3f %-14.3f\n",
                static_cast<unsigned long long>(t), clean, non,
                attacked[0] / kAttackReps, attacked[1] / kAttackReps);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  fb::PrintBanner("Fig. 5 — destroy attacks without re-ordering",
                  "ICDE'24 FreqyWM Figure 5 (alpha=0.5, z=131, b=2)");
  Histogram original = fb::MakeSynthetic(0.5, 42);
  Histogram non_watermarked = fb::MakeSynthetic(0.7, 314159);

  std::printf("-- paper profile (s >= 2): cheap pairs dominate, Dnon high --\n");
  RunPanel(original, non_watermarked, 2);
  std::printf("-- hardened profile (s >= 16): Dnon collapses, the (t, k) "
              "corridor between Dnon and the attack curves opens up --\n");
  RunPanel(original, non_watermarked, 16);

  std::printf("paper reference: 1%%-attack ~90%% at t=0; random attack "
              "~35%% at t=0 rising to ~90%% at t=10; Dnon below the attack "
              "curves\n");
  return 0;
}
