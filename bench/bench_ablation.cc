// Ablation bench for the design decisions called out in DESIGN.md §5:
//   (1) wrap-around rule on/off — per-pair embedding cost;
//   (2) MWM weight formula T - rm (paper) vs T - min(rm, s - rm);
//   (3) min_pair_cost 0 (paper-bare) vs 1 (default) — evidence strength:
//       verified fraction of the owner's ORIGINAL data and of unrelated
//       data at t = 0 (lower is better for both);
//   (4) min_modulus 2 (paper) vs 16 (hardened) — false-positive wall vs
//       pair-count cost;
//   (5) one-sided vs symmetric residue detection under a downward attack.
//
// Each profile is an `OptionBag` handed to the "freqywm" factory entry, so
// the ablation grid is a table of option strings and the lifecycle runs
// through the `WatermarkScheme` interface.

#include "api/factory.h"
#include "bench_common.h"
#include "core/eligible.h"
#include "core/secrets.h"

namespace fb = freqywm::bench;
using namespace freqywm;

namespace {

struct Profile {
  const char* name;
  const char* options;  // OptionBag::FromString input
};

void RunProfile(const Histogram& original, const Histogram& unrelated,
                const Profile& profile) {
  auto bag = OptionBag::FromString(profile.options);
  if (!bag.ok()) {
    std::printf("%-24s bad options: %s\n", profile.name,
                bag.status().ToString().c_str());
    return;
  }
  auto scheme = SchemeFactory::Create("freqywm", bag.value());
  if (!scheme.ok()) {
    std::printf("%-24s factory failed: %s\n", profile.name,
                scheme.status().ToString().c_str());
    return;
  }
  auto r = scheme.value()->Embed(original);
  if (!r.ok()) {
    std::printf("%-24s generation failed: %s\n", profile.name,
                r.status().ToString().c_str());
    return;
  }
  const SchemeKey& key = r.value().key;
  DetectOptions strict;
  strict.pair_threshold = 0;
  strict.min_pairs = 1;
  double on_orig =
      scheme.value()->Detect(original, key, strict).verified_fraction;
  double on_unrelated =
      scheme.value()->Detect(unrelated, key, strict).verified_fraction;
  DetectOptions relaxed = strict;
  relaxed.pair_threshold = 4;
  double on_unrelated_t4 =
      scheme.value()->Detect(unrelated, key, relaxed).verified_fraction;
  std::printf("%-24s %-8zu %-8llu %-12.3f %-12.3f %-12.3f %-10.4f\n",
              profile.name, r.value().report.embedded_units,
              static_cast<unsigned long long>(r.value().report.total_churn),
              on_orig, on_unrelated, on_unrelated_t4,
              r.value().report.similarity_percent);
}

}  // namespace

int main() {
  fb::PrintBanner("Ablations — wrap rule, weights, evidence filters",
                  "DESIGN.md §5 (not in the paper; design-space study)");
  Histogram original = fb::MakeSynthetic(0.5, 42);
  Histogram unrelated = fb::MakeSynthetic(0.7, 314159);

  std::printf("-- (1) wrap-around rule: per-pair cost distribution --\n");
  uint64_t with_wrap = 0, without_wrap = 0;
  const uint64_t s = 100;
  for (uint64_t diff = 0; diff < 1000; ++diff) {
    EligiblePair p = MakePairPlan(0, 1, diff, s);
    with_wrap += p.cost;
    without_wrap += diff % s;  // pre-wrap rule: always eliminate rm
  }
  std::printf("mean cost with wrap rule:    %.1f\n", with_wrap / 1000.0);
  std::printf("mean cost without wrap rule: %.1f  (2x worse)\n\n",
              without_wrap / 1000.0);

  std::printf("-- (2)-(4) generation profiles --\n");
  std::printf("%-24s %-8s %-8s %-12s %-12s %-12s %-10s\n", "profile",
              "chosen", "churn", "orig@t0", "unrel@t0", "unrel@t4",
              "sim%");
  const Profile profiles[] = {
      {"paper-bare",
       "budget=2.0,z=131,seed=42,min_modulus=2,min_pair_cost=0"},
      {"default(cost>=1)",
       "budget=2.0,z=131,seed=42,min_modulus=2,min_pair_cost=1"},
      {"effective-cost-weight",
       "budget=2.0,z=131,seed=42,min_modulus=2,min_pair_cost=1,"
       "weight=effective-cost"},
      {"hardened(s>=16)",
       "budget=2.0,z=131,seed=42,min_modulus=16,min_pair_cost=1"},
      {"hardened(s>=32)",
       "budget=2.0,z=131,seed=42,min_modulus=32,min_pair_cost=1"},
  };
  for (const auto& p : profiles) RunProfile(original, unrelated, p);

  std::printf("\n-- (5) one-sided vs symmetric residue detection --\n");
  OptionBag bag;
  bag.Set("budget", "2.0");
  bag.Set("z", "131");
  bag.Set("seed", "43");
  bag.Set("min_modulus", "8");
  auto scheme = SchemeFactory::Create("freqywm", bag);
  auto r = scheme.ok() ? scheme.value()->Embed(original)
                       : Result<EmbedOutcome>(scheme.status());
  if (r.ok()) {
    // Downward drift: every watermarked token loses a tiny fraction. The
    // drift targets come from the key payload — owner-side introspection.
    auto secrets = WatermarkSecrets::Deserialize(r.value().key.payload);
    Histogram drifted = r.value().watermarked;
    if (secrets.ok()) {
      for (const auto& pair : secrets.value().pairs) {
        (void)drifted.AddDelta(pair.token_i, -1);
      }
    }
    for (uint64_t t : {1ull, 2ull}) {
      DetectOptions one;
      one.pair_threshold = t;
      one.min_pairs = 1;
      DetectOptions sym = one;
      sym.symmetric_residue = true;
      std::printf("t=%llu one-sided %.3f vs symmetric %.3f\n",
                  static_cast<unsigned long long>(t),
                  scheme.value()
                      ->Detect(drifted, r.value().key, one)
                      .verified_fraction,
                  scheme.value()
                      ->Detect(drifted, r.value().key, sym)
                      .verified_fraction);
    }
  }
  return 0;
}
