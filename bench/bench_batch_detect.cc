// bench_batch_detect: throughput of the batch detection engine
// (src/exec/batch_detector.h) against the serial per-cell loop, plus the
// sharded parallel histogram build behind the parallel embed path.
//
// Workload: the paper's marketplace threat model — one owner escrowed a
// fingerprint key per buyer (mixed schemes) and screens a batch of
// surfaced suspect copies against all of them, a |suspects| x |keys|
// matrix of `WatermarkScheme::Detect` calls.
//
// Reported: cells/second serial vs parallel at several thread counts, the
// speedup, and an element-wise identity check between the two paths (the
// determinism contract; also enforced by tests/exec/batch_detector_test.cc).
// Speedups depend on the machine — on >= 4 physical cores the 4-thread row
// is expected to exceed 2x.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "api/factory.h"
#include "api/scheme.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "datagen/power_law.h"
#include "exec/batch_detector.h"
#include "exec/parallel_histogram.h"
#include "exec/thread_pool.h"

using namespace freqywm;

namespace {

constexpr size_t kNumBuyers = 24;
constexpr size_t kNumSuspects = 16;
constexpr size_t kSuspectTokens = 4000;
constexpr size_t kSuspectSamples = 400000;
constexpr int kReps = 5;

/// Embeds one fingerprint per buyer, schemes round-robin, on a shared
/// original histogram; returns the escrowed keys and the buyers'
/// watermarked copies.
std::pair<std::vector<SchemeKey>, std::vector<Histogram>> MakeEscrow(
    const Histogram& original) {
  std::vector<std::string> names = SchemeFactory::RegisteredNames();
  std::vector<SchemeKey> keys;
  std::vector<Histogram> copies;
  for (size_t b = 0; b < kNumBuyers; ++b) {
    const std::string& name = names[b % names.size()];
    OptionBag bag;
    bag.Set("seed", std::to_string(1000 + b));
    // Keep the embed side cheap at this histogram size; detection cost is
    // what this bench measures and it is strategy-independent.
    if (name == "freqywm") bag.Set("strategy", "greedy");
    auto scheme = SchemeFactory::Create(name, bag);
    if (!scheme.ok()) continue;
    auto outcome = scheme.value()->Embed(original);
    if (!outcome.ok()) continue;
    keys.push_back(outcome.value().key);
    copies.push_back(std::move(outcome).value().watermarked);
  }
  return {std::move(keys), std::move(copies)};
}

/// Suspect pool: leaked buyer copies (each matching exactly one escrowed
/// key) interleaved with clean histograms, so the matrix holds both hits
/// and misses.
std::vector<Histogram> MakeSuspects(const std::vector<Histogram>& copies) {
  std::vector<Histogram> suspects;
  for (size_t s = 0; s < kNumSuspects; ++s) {
    if (s % 3 == 2 || copies.empty()) {
      suspects.push_back(bench::MakeSynthetic(0.6, 500 + s, kSuspectTokens,
                                              kSuspectSamples));
    } else {
      suspects.push_back(copies[s % copies.size()]);
    }
  }
  return suspects;
}

double BestOfReps(const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < kReps; ++r) {
    Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "batch detection engine: serial vs parallel (suspects x keys)",
      "system scale-out of the paper's \"verify very fast\" claim (§I)");

  Histogram original =
      bench::MakeSynthetic(0.6, 42, kSuspectTokens, kSuspectSamples);
  auto [keys, copies] = MakeEscrow(original);
  std::vector<Histogram> suspects = MakeSuspects(copies);
  const size_t cells = suspects.size() * keys.size();
  std::printf("matrix: %zu suspects x %zu keys = %zu detect cells "
              "(histograms: %zu tokens)\n\n",
              suspects.size(), keys.size(), cells, kSuspectTokens);

  BatchDetectOptions serial_opts;  // num_threads = 1 → serial reference
  BatchDetector serial(serial_opts);
  std::vector<std::vector<DetectResult>> reference;
  double serial_best = BestOfReps([&] {
    reference = serial.Run(suspects, keys);
  });
  std::printf("%8s  %12s  %10s  %9s\n", "threads", "seconds", "cells/s",
              "speedup");
  std::printf("%8d  %12.4f  %10.0f  %9s\n", 1, serial_best,
              cells / serial_best, "1.00x");

  for (size_t threads : {2, 4, 8}) {
    BatchDetectOptions opts;
    opts.num_threads = threads;
    BatchDetector parallel(opts);
    // threads = total parallelism: this thread helps, so threads-1 workers.
    ThreadPool pool(threads - 1);
    std::vector<std::vector<DetectResult>> results;
    double best = BestOfReps([&] {
      results = parallel.Run(suspects, keys, &pool);
    });
    bool identical = results == reference;
    std::printf("%8zu  %12.4f  %10.0f  %8.2fx  %s\n", threads, best,
                cells / best, serial_best / best,
                identical ? "identical to serial" : "MISMATCH");
  }

  std::printf("\nsharded histogram build (parallel embed front end):\n");
  Rng rng(7);
  PowerLawSpec spec;
  spec.num_tokens = 50000;
  spec.sample_size = 4'000'000;
  spec.alpha = 0.6;
  Dataset dataset = GeneratePowerLawDataset(spec, rng);
  Histogram serial_hist;
  double build_serial = BestOfReps([&] {
    serial_hist = Histogram::FromDataset(dataset);
  });
  std::printf("%8s  %12.4f  %10.1f Mrows/s  %9s\n", "serial", build_serial,
              dataset.size() / build_serial / 1e6, "1.00x");
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads - 1);
    Histogram sharded;
    double best = BestOfReps([&] {
      sharded = BuildHistogramSharded(dataset, pool);
    });
    bool identical = sharded.entries() == serial_hist.entries() &&
                     sharded.total_count() == serial_hist.total_count();
    std::printf("%7zut  %12.4f  %10.1f Mrows/s  %8.2fx  %s\n", threads,
                best, dataset.size() / best / 1e6, build_serial / best,
                identical ? "identical to serial" : "MISMATCH");
  }
  return 0;
}
