// bench_batch_detect: throughput of the batch detection engine
// (src/exec/batch_detector.h) against the serial per-cell loop, plus the
// sharded parallel histogram build behind the parallel embed path and the
// key-prepared detection acceptance run (ISSUE 3).
//
// Workload: the paper's marketplace threat model — one owner escrowed a
// fingerprint key per buyer (mixed schemes) and screens a batch of
// surfaced suspect copies against all of them, a |suspects| x |keys|
// matrix of `WatermarkScheme::Detect` calls.
//
// Reported: cells/second serial vs parallel at several thread counts, the
// speedup, and an element-wise identity check between the two paths (the
// determinism contract; also enforced by tests/exec/batch_detector_test.cc
// and tests/exec/prepared_detect_test.cc). The 32-suspect x 8-key FreqyWM
// section compares the PR 2 per-cell path (key parsed and every modulus
// re-derived per cell) against the prepared-key engine, the before/after
// counter behind the BENCH_batch_detect.json perf baseline.
//
// The streaming section (ISSUE 5) measures the same 32 x 8 acceptance
// matrix through `BatchDetector::Session`: the PR 3 prepared-key loop
// (per-cell count gather by hashing into the suspect histogram) is the
// "before" side; the dense-gather session with a shared `PreparedKeyCache`
// (cold, then warm) is the "after". Chunked streams (1 and 8 suspects per
// drain) must match the one-shot matrix element-wise; the results land in
// BENCH_batch_detect_stream.json. Speedups depend on the machine;
// identity must hold everywhere — the process exits non-zero on any
// mismatch (never on timing).

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/factory.h"
#include "api/scheme.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "datagen/power_law.h"
#include "exec/batch_detector.h"
#include "exec/parallel_histogram.h"
#include "exec/thread_pool.h"

using namespace freqywm;

namespace {

constexpr size_t kNumBuyers = 24;
constexpr size_t kNumSuspects = 16;
constexpr size_t kSuspectTokens = 4000;
constexpr size_t kSuspectSamples = 400000;

// The ISSUE 3 acceptance matrix: FreqyWM keys only, so the per-key
// modulus table carries the whole before/after difference.
constexpr size_t kAcceptSuspects = 32;
constexpr size_t kAcceptKeys = 8;

int Reps() { return bench::PerfSmoke() ? 1 : 5; }

/// Embeds one fingerprint per buyer on a shared original histogram;
/// returns the escrowed keys and the buyers' watermarked copies.
/// `scheme_names` cycles round-robin (pass a single name for a
/// single-scheme escrow).
std::pair<std::vector<SchemeKey>, std::vector<Histogram>> MakeEscrow(
    const Histogram& original, const std::vector<std::string>& scheme_names,
    size_t num_buyers) {
  std::vector<SchemeKey> keys;
  std::vector<Histogram> copies;
  for (size_t b = 0; b < num_buyers; ++b) {
    const std::string& name = scheme_names[b % scheme_names.size()];
    OptionBag bag;
    bag.Set("seed", std::to_string(1000 + b));
    // Keep the embed side cheap at this histogram size; detection cost is
    // what this bench measures and it is strategy-independent.
    if (name == "freqywm") bag.Set("strategy", "greedy");
    auto scheme = SchemeFactory::Create(name, bag);
    if (!scheme.ok()) continue;
    auto outcome = scheme.value()->Embed(original);
    if (!outcome.ok()) continue;
    keys.push_back(outcome.value().key);
    copies.push_back(std::move(outcome).value().watermarked);
  }
  return {std::move(keys), std::move(copies)};
}

/// Suspect pool: leaked buyer copies (each matching exactly one escrowed
/// key) interleaved with clean histograms, so the matrix holds both hits
/// and misses.
std::vector<Histogram> MakeSuspects(const std::vector<Histogram>& copies,
                                    size_t num_suspects) {
  std::vector<Histogram> suspects;
  for (size_t s = 0; s < num_suspects; ++s) {
    if (s % 3 == 2 || copies.empty()) {
      suspects.push_back(bench::MakeSynthetic(0.6, 500 + s, kSuspectTokens,
                                              kSuspectSamples));
    } else {
      suspects.push_back(copies[s % copies.size()]);
    }
  }
  return suspects;
}

double BestOfReps(const std::function<void()>& fn) {
  return bench::BestOfReps(Reps(), fn);
}

/// The PR 2 per-cell path: per-key schemes and options resolved up front
/// (as the old engine did), then every cell parses the key payload and
/// re-derives every pair modulus from scratch. This is the "before" side
/// of the acceptance counter.
std::vector<std::vector<DetectResult>> UnpreparedSerialMatrix(
    const std::vector<Histogram>& suspects,
    const std::vector<SchemeKey>& keys) {
  SchemeCache cache;
  std::vector<const WatermarkScheme*> key_scheme(keys.size(), nullptr);
  std::vector<DetectOptions> key_options(keys.size());
  for (size_t j = 0; j < keys.size(); ++j) {
    key_scheme[j] = cache.Get(keys[j].scheme);
    if (key_scheme[j] == nullptr) continue;
    key_options[j] = key_scheme[j]->RecommendedDetectOptions(keys[j]);
  }
  std::vector<std::vector<DetectResult>> results(
      suspects.size(), std::vector<DetectResult>(keys.size()));
  for (size_t i = 0; i < suspects.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      if (key_scheme[j] == nullptr) continue;
      results[i][j] =
          key_scheme[j]->Detect(suspects[i], keys[j], key_options[j]);
    }
  }
  return results;
}

/// The PR 3 engine loop kept verbatim as the streaming section's "before"
/// side: every key `Prepare`d once per run, then every cell runs the
/// prepared *histogram-path* detect — one hash probe into the suspect per
/// key token per cell. The dense-gather session replaces exactly this.
std::vector<std::vector<DetectResult>> Pr3PreparedSerialMatrix(
    const std::vector<Histogram>& suspects,
    const std::vector<SchemeKey>& keys) {
  SchemeCache cache;
  std::vector<const WatermarkScheme*> key_scheme(keys.size(), nullptr);
  std::vector<DetectOptions> key_options(keys.size());
  std::vector<std::unique_ptr<PreparedKey>> prepared(keys.size());
  for (size_t j = 0; j < keys.size(); ++j) {
    key_scheme[j] = cache.Get(keys[j].scheme);
    if (key_scheme[j] == nullptr) continue;
    key_options[j] = key_scheme[j]->RecommendedDetectOptions(keys[j]);
    prepared[j] = key_scheme[j]->Prepare(keys[j]);
  }
  std::vector<std::vector<DetectResult>> results(
      suspects.size(), std::vector<DetectResult>(keys.size()));
  for (size_t i = 0; i < suspects.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      if (key_scheme[j] == nullptr) continue;
      results[i][j] = key_scheme[j]->Detect(suspects[i], *prepared[j],
                                            key_options[j]);
    }
  }
  return results;
}

/// Streams the suspects through a session `chunk` at a time and
/// concatenates the drained rows.
std::vector<std::vector<DetectResult>> StreamChunked(
    BatchDetector::Session& session, const std::vector<Histogram>& suspects,
    size_t chunk) {
  std::vector<std::vector<DetectResult>> all;
  for (size_t start = 0; start < suspects.size(); start += chunk) {
    for (size_t i = start; i < std::min(start + chunk, suspects.size());
         ++i) {
      session.AddSuspect(suspects[i]);
    }
    auto rows = session.Drain();
    for (auto& row : rows) all.push_back(std::move(row));
  }
  return all;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "batch detection engine: serial vs parallel (suspects x keys)",
      "system scale-out of the paper's \"verify very fast\" claim (§I)");

  bench::IdentityGate gate;
  std::ostringstream json;
  json << "{\n  \"bench\": \"batch_detect\",\n  \"reps\": " << Reps()
       << ",\n";

  // ---------------------------------------------- mixed-scheme matrix
  Histogram original =
      bench::MakeSynthetic(0.6, 42, kSuspectTokens, kSuspectSamples);
  auto [keys, copies] =
      MakeEscrow(original, SchemeFactory::RegisteredNames(), kNumBuyers);
  std::vector<Histogram> suspects = MakeSuspects(copies, kNumSuspects);
  const size_t cells = suspects.size() * keys.size();
  std::printf("matrix: %zu suspects x %zu keys = %zu detect cells "
              "(histograms: %zu tokens)\n\n",
              suspects.size(), keys.size(), cells, kSuspectTokens);

  BatchDetectOptions serial_opts;  // num_threads = 1 → serial reference
  BatchDetector serial(serial_opts);
  std::vector<std::vector<DetectResult>> reference;
  double serial_best = BestOfReps([&] {
    reference = serial.Run(suspects, keys);
  });
  std::printf("%8s  %12s  %10s  %9s\n", "threads", "seconds", "cells/s",
              "speedup");
  std::printf("%8d  %12.4f  %10.0f  %9s\n", 1, serial_best,
              cells / serial_best, "1.00x");
  json << "  \"mixed_matrix\": {\"suspects\": " << suspects.size()
       << ", \"keys\": " << keys.size()
       << ", \"serial_seconds\": " << serial_best << ", \"rows\": [";

  bool first_row = true;
  for (size_t threads : {2, 4, 8}) {
    BatchDetectOptions opts;
    opts.num_threads = threads;
    BatchDetector parallel(opts);
    // threads = total parallelism: this thread helps, so threads-1 workers.
    ThreadPool pool(threads - 1);
    std::vector<std::vector<DetectResult>> results;
    double best = BestOfReps([&] {
      results = parallel.Run(suspects, keys, &pool);
    });
    bool identical = gate.Check(
        "mixed matrix @" + std::to_string(threads) + " threads vs serial",
        results == reference);
    std::printf("%8zu  %12.4f  %10.0f  %8.2fx  %s\n", threads, best,
                cells / best, serial_best / best,
                identical ? "identical to serial" : "MISMATCH");
    json << (first_row ? "" : ", ") << "{\"threads\": " << threads
         << ", \"seconds\": " << best << ", \"speedup\": "
         << serial_best / best << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
    first_row = false;
  }
  json << "]},\n";

  // ------------------------- ISSUE 3 acceptance: 32 x 8 FreqyWM keys,
  // per-cell key parsing + modulus re-derivation vs the prepared engine.
  std::printf("\nkey-prepared detection (32 suspects x 8 freqywm keys):\n");
  auto [fw_keys, fw_copies] =
      MakeEscrow(original, {"freqywm"}, kAcceptKeys);
  std::vector<Histogram> fw_suspects =
      MakeSuspects(fw_copies, kAcceptSuspects);
  const size_t fw_cells = fw_suspects.size() * fw_keys.size();

  std::vector<std::vector<DetectResult>> fw_reference;
  double before_best = BestOfReps([&] {
    fw_reference = UnpreparedSerialMatrix(fw_suspects, fw_keys);
  });
  std::printf("%16s  %12.4f  %10.0f  %9s\n", "before (PR 2)", before_best,
              fw_cells / before_best, "1.00x");
  json << "  \"freqywm_prepared\": {\"suspects\": " << fw_suspects.size()
       << ", \"keys\": " << fw_keys.size()
       << ", \"before_seconds\": " << before_best << ", \"rows\": [";

  double best_speedup = 0.0;
  first_row = true;
  for (size_t threads : {1, 2, 4, 8}) {
    BatchDetectOptions opts;
    opts.num_threads = threads;
    BatchDetector engine(opts);
    std::vector<std::vector<DetectResult>> results;
    double best = BestOfReps([&] { results = engine.Run(fw_suspects, fw_keys); });
    bool identical = gate.Check(
        "prepared engine @" + std::to_string(threads) + " threads vs PR 2",
        results == fw_reference);
    best_speedup = std::max(best_speedup, before_best / best);
    std::printf("%9zu thread  %12.4f  %10.0f  %8.2fx  %s\n", threads, best,
                fw_cells / best, before_best / best,
                identical ? "identical to before" : "MISMATCH");
    json << (first_row ? "" : ", ") << "{\"threads\": " << threads
         << ", \"seconds\": " << best << ", \"speedup_vs_before\": "
         << before_best / best << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
    first_row = false;
  }
  json << "], \"best_speedup\": " << best_speedup << "},\n";

  // ------------------- ISSUE 5 acceptance: streaming session over the
  // same 32 x 8 matrix — dense count gather + PreparedKeyCache vs the
  // PR 3 prepared-key loop, single-core first (the acceptance counter),
  // then across thread counts, chunkings and cache temperatures.
  std::printf("\nstreaming session, dense gather + key cache "
              "(32 suspects x 8 freqywm keys):\n");
  std::vector<std::vector<DetectResult>> pr3_matrix;
  double pr3_best = BestOfReps([&] {
    pr3_matrix = Pr3PreparedSerialMatrix(fw_suspects, fw_keys);
  });
  bool pr3_identical =
      gate.Check("PR 3 prepared loop vs PR 2 reference",
                 pr3_matrix == fw_reference);
  // Section-local accumulator: the stream JSON must report *this*
  // section's identity, not inherit a mismatch from the earlier matrices.
  bool stream_identical = pr3_identical;
  std::printf("%22s  %12.4f  %10.0f  %9s  %s\n", "before (PR 3 prepared)",
              pr3_best, fw_cells / pr3_best, "1.00x",
              pr3_identical ? "identical" : "MISMATCH");

  std::ostringstream stream_json;
  // hardware_threads contextualizes the thread rows: on a 1-core runner
  // the >1-thread rows measure pool overhead, and the single-core speedup
  // is the acceptance payload.
  stream_json << "{\n  \"bench\": \"batch_detect_stream\",\n  \"reps\": "
              << Reps() << ",\n  \"hardware_threads\": "
              << ThreadPool::HardwareThreads()
              << ",\n  \"suspects\": " << fw_suspects.size()
              << ",\n  \"keys\": " << fw_keys.size()
              << ",\n  \"pr3_prepared_seconds\": " << pr3_best << ",\n";

  // Cold vs warm: the cold session pays Prepare through the cache, the
  // warm ones find every key already prepared. Output must not notice.
  auto shared_cache = std::make_shared<PreparedKeyCache>();
  {
    BatchDetectOptions opts;
    opts.key_cache = shared_cache;
    BatchDetector::Session cold_session(opts, fw_keys);
    std::printf("%22s  vocabulary: %zu dense tokens, cache misses: %llu\n",
                "session setup (cold)", cold_session.vocabulary_size(),
                static_cast<unsigned long long>(
                    shared_cache->stats().misses));
    stream_json << "  \"vocabulary\": " << cold_session.vocabulary_size()
                << ",\n";
  }

  double stream_best_speedup = 0.0;
  stream_json << "  \"rows\": [";
  first_row = true;
  for (size_t threads : {1, 2, 4, 8}) {
    BatchDetectOptions opts;
    opts.num_threads = threads;
    opts.key_cache = shared_cache;  // warm from here on
    std::vector<std::vector<DetectResult>> one_shot;
    double warm_best = BestOfReps([&] {
      BatchDetector::Session session(opts, fw_keys);
      one_shot = session.Detect(fw_suspects);
    });
    bool identical = one_shot == fw_reference;

    // Chunked streams through one persistent session: byte-identical to
    // the one-shot matrix at any chunk size.
    BatchDetector::Session session(opts, fw_keys);
    bool chunks_identical = true;
    for (size_t chunk : {size_t{1}, size_t{8}}) {
      chunks_identical = chunks_identical &&
                         StreamChunked(session, fw_suspects, chunk) ==
                             fw_reference;
    }
    identical = gate.Check(
        "streaming session @" + std::to_string(threads) +
            " threads (one-shot + chunked 1/8) vs PR 2",
        identical && chunks_identical);
    stream_identical = stream_identical && identical;
    if (threads == 1) {
      stream_best_speedup = pr3_best / warm_best;
    }
    std::printf("%15zu thread  %12.4f  %10.0f  %8.2fx  %s\n", threads,
                warm_best, fw_cells / warm_best, pr3_best / warm_best,
                identical ? "identical (one-shot + chunked 1/8)"
                          : "MISMATCH");
    stream_json << (first_row ? "" : ", ") << "{\"threads\": " << threads
                << ", \"warm_seconds\": " << warm_best
                << ", \"speedup_vs_pr3\": " << pr3_best / warm_best
                << ", \"chunked_identical\": "
                << (chunks_identical ? "true" : "false")
                << ", \"identical\": " << (identical ? "true" : "false")
                << "}";
    first_row = false;
  }
  PreparedKeyCacheStats cache_stats = shared_cache->stats();
  std::printf("%22s  single-core speedup vs PR 3: %.2fx  "
              "(cache: %llu hits / %llu misses)\n", "",
              stream_best_speedup,
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));
  stream_json << "],\n  \"single_core_speedup_vs_pr3\": "
              << stream_best_speedup
              << ",\n  \"cache_hits\": " << cache_stats.hits
              << ",\n  \"cache_misses\": " << cache_stats.misses
              << ",\n  \"all_identical\": "
              << (stream_identical ? "true" : "false") << "\n}\n";
  bench::WriteJsonFile(
      bench::JsonOutputPath("BENCH_batch_detect_stream.json"),
      stream_json.str());

  // ------------------------------------------ sharded histogram build
  std::printf("\nsharded histogram build (parallel embed front end):\n");
  Rng rng(7);
  PowerLawSpec spec;
  spec.num_tokens = 50000;
  spec.sample_size = 4'000'000;
  spec.alpha = 0.6;
  Dataset dataset = GeneratePowerLawDataset(spec, rng);
  Histogram serial_hist;
  double build_serial = BestOfReps([&] {
    serial_hist = Histogram::FromDataset(dataset);
  });
  std::printf("%8s  %12.4f  %10.1f Mrows/s  %9s\n", "serial", build_serial,
              dataset.size() / build_serial / 1e6, "1.00x");
  json << "  \"sharded_histogram\": {\"rows\": " << dataset.size()
       << ", \"serial_seconds\": " << build_serial << ", \"parallel\": [";
  first_row = true;
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads - 1);
    Histogram sharded;
    double best = BestOfReps([&] {
      sharded = BuildHistogramSharded(dataset, pool);
    });
    bool identical = gate.Check(
        "sharded histogram @" + std::to_string(threads) +
            " threads vs serial",
        sharded.entries() == serial_hist.entries() &&
            sharded.total_count() == serial_hist.total_count());
    std::printf("%7zut  %12.4f  %10.1f Mrows/s  %8.2fx  %s\n", threads,
                best, dataset.size() / best / 1e6, build_serial / best,
                identical ? "identical to serial" : "MISMATCH");
    json << (first_row ? "" : ", ") << "{\"threads\": " << threads
         << ", \"seconds\": " << best << ", \"speedup\": "
         << build_serial / best << ", \"identical\": "
         << (identical ? "true" : "false") << "}";
    first_row = false;
  }
  json << "]},\n  \"all_identical\": "
       << (gate.all_identical() ? "true" : "false") << "\n}\n";

  bench::WriteJsonFile(bench::JsonOutputPath("BENCH_batch_detect.json"),
                       json.str());
  return gate.Finish();
}
