// bench_overload: load generator for the admission/tenancy layer
// (DESIGN.md §14). Drives a tenant-fronted detection session at offered
// loads of roughly 1x, 2x and 10x its capacity quotas and reports the
// graceful-degradation curve: goodput (drained rows/sec), shed rate,
// and p50/p99 submit-call latency per load point. Under any offered
// load the invariants are the ISSUE 9 acceptance criteria — pending
// work bounded by the budget, every shed typed kResourceExhausted (or
// kDeadlineExceeded/kCancelled for interrupted waits), and admitted
// work byte-identical to the unthrottled serial reference.
//
// The identity section re-runs the acceptance matrix through tenant
// sessions at 1/2/4/8 threads and routes every comparison through the
// shared `bench::IdentityGate` (wmlint's identity_gate contract): the
// process exits non-zero on any verdict mismatch, never on timing.
// Results land in BENCH_overload.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/tenant.h"
#include "api/factory.h"
#include "bench_common.h"
#include "common/stopwatch.h"
#include "exec/batch_detector.h"
#include "exec/cancellation.h"

using namespace freqywm;

namespace {

constexpr size_t kNumKeys = 4;
constexpr size_t kProducers = 4;
constexpr size_t kInFlightQuota = 16;
constexpr size_t kPendingQuota = 16;

size_t BaseOffersPerProducer() { return bench::PerfSmoke() ? 8 : 40; }

struct Workload {
  std::vector<SchemeKey> keys;
  std::vector<Histogram> suspects;  // [0] doubles as the load suspect
  std::vector<std::vector<DetectResult>> reference;  // unthrottled serial
};

Workload MakeWorkload() {
  Workload w;
  Histogram original = bench::MakeSynthetic(0.6, 4242, 1000, 200000);
  for (size_t b = 0; b < kNumKeys; ++b) {
    OptionBag bag;
    bag.Set("seed", std::to_string(9000 + b));
    bag.Set("strategy", "greedy");
    auto scheme = SchemeFactory::Create("freqywm", bag);
    if (!scheme.ok()) continue;
    auto outcome = scheme.value()->Embed(original);
    if (!outcome.ok()) continue;
    w.keys.push_back(outcome.value().key);
    w.suspects.push_back(outcome.value().watermarked);
  }
  w.suspects.push_back(original);

  BatchDetector::Session session(BatchDetectOptions{}, w.keys);
  session.AddSuspects(w.suspects);
  w.reference = session.Drain();
  return w;
}

TenantQuotas LoadQuotas() {
  TenantQuotas quotas;
  quotas.max_in_flight_suspects = kInFlightQuota;
  quotas.max_pending_suspects = kPendingQuota;
  return quotas;
}

double PercentileMillis(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const size_t idx = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[idx];
}

struct LoadPoint {
  size_t multiplier = 0;
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t drained = 0;
  double elapsed_s = 0;
  double goodput_rows_per_s = 0;
  double shed_fraction = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t peak_pending = 0;
  bool all_typed = true;
  uint64_t identity_violations = 0;
};

/// One load point: `kProducers` threads each offer
/// `multiplier * BaseOffersPerProducer()` single-suspect submissions as
/// fast as they can against the fixed quotas; a drainer keeps the
/// session moving and checks every evaluated cell against the clean
/// reference row.
LoadPoint RunLoadPoint(const Workload& w, size_t multiplier) {
  LoadPoint point;
  point.multiplier = multiplier;

  TenantContext tenant("bench-load", LoadQuotas());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    Status escrowed = tenant.Escrow("buyer-" + std::to_string(i), w.keys[i]);
    if (!escrowed.ok()) std::printf("escrow failed: %s\n", escrowed.message().c_str());
  }
  auto session = tenant.OpenSession(2);
  if (!session.ok()) return point;
  TenantSession& ts = *session.value();

  const size_t per_producer = multiplier * BaseOffersPerProducer();
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<bool> all_typed{true};
  std::atomic<bool> done{false};
  std::vector<std::vector<double>> latencies(kProducers);

  Stopwatch wall;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      latencies[p].reserve(per_producer);
      for (size_t i = 0; i < per_producer; ++i) {
        std::vector<Histogram> batch{w.suspects[0]};
        Stopwatch call;
        Status status;
        if (p % 2 == 0) {
          status = ts.TrySubmit(std::move(batch));
        } else {
          status = ts.Submit(
              std::move(batch),
              InterruptContext{
                  CancellationToken(),
                  Deadline::After(std::chrono::milliseconds(5))});
        }
        latencies[p].push_back(call.ElapsedSeconds() * 1e3);
        if (status.ok()) {
          admitted.fetch_add(1);
        } else {
          shed.fetch_add(1);
          if (status.code() != StatusCode::kResourceExhausted &&
              status.code() != StatusCode::kDeadlineExceeded &&
              status.code() != StatusCode::kCancelled) {
            all_typed.store(false);
          }
        }
      }
    });
  }

  uint64_t drained = 0;
  uint64_t violations = 0;
  size_t peak_pending = 0;
  auto drain_once = [&] {
    peak_pending = std::max(peak_pending, ts.pending_suspects());
    SessionDrainResult result = ts.DrainChecked(InterruptContext{});
    for (size_t i = 0; i < result.verdicts.size(); ++i) {
      for (size_t j = 0; j < w.keys.size(); ++j) {
        if (result.evaluated[i * w.keys.size() + j] &&
            !(result.verdicts[i][j] == w.reference[0][j])) {
          ++violations;
        }
      }
    }
    drained += result.verdicts.size();
  };
  std::thread drainer([&] {
    while (!done.load()) drain_once();
  });
  for (auto& t : producers) t.join();
  done.store(true);
  drainer.join();
  drain_once();
  point.elapsed_s = wall.ElapsedSeconds();

  std::vector<double> all_ms;
  for (const auto& per_thread : latencies) {
    all_ms.insert(all_ms.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all_ms.begin(), all_ms.end());

  point.offered = kProducers * per_producer;
  point.admitted = admitted.load();
  point.shed = shed.load();
  point.drained = drained;
  point.goodput_rows_per_s =
      point.elapsed_s > 0 ? static_cast<double>(drained) / point.elapsed_s : 0;
  point.shed_fraction =
      point.offered > 0
          ? static_cast<double>(point.shed) / static_cast<double>(point.offered)
          : 0;
  point.p50_ms = PercentileMillis(all_ms, 0.50);
  point.p99_ms = PercentileMillis(all_ms, 0.99);
  point.peak_pending = peak_pending;
  point.all_typed = all_typed.load();
  point.identity_violations = violations;
  return point;
}

/// The identity section: the full suspect set through tenant sessions
/// at several thread counts, compared cell-for-cell against the
/// unthrottled serial reference.
bool IdentityAcrossThreadCounts(const Workload& w, bench::IdentityGate& gate) {
  bool all_ok = true;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    TenantQuotas quotas;
    quotas.max_in_flight_suspects = w.suspects.size();
    quotas.max_pending_suspects = w.suspects.size();
    TenantContext tenant("bench-identity", quotas);
    for (size_t i = 0; i < w.keys.size(); ++i) {
      (void)tenant.Escrow("buyer-" + std::to_string(i), w.keys[i]);
    }
    auto session = tenant.OpenSession(threads);
    if (!session.ok()) {
      all_ok = gate.Check("open tenant session", false) && all_ok;
      continue;
    }
    Status submitted =
        session.value()->Submit(w.suspects, InterruptContext{});
    if (!submitted.ok()) {
      all_ok = gate.Check("submit within quota", false) && all_ok;
      continue;
    }
    SessionDrainResult result =
        session.value()->DrainChecked(InterruptContext{});
    bool identical = result.status.ok() &&
                     result.verdicts.size() == w.reference.size();
    if (identical) {
      for (size_t i = 0; i < w.reference.size(); ++i) {
        for (size_t j = 0; j < w.keys.size(); ++j) {
          if (!(result.verdicts[i][j] == w.reference[i][j])) {
            identical = false;
          }
        }
      }
    }
    all_ok = gate.Check("tenant session verdicts @ " +
                            std::to_string(threads) + " threads",
                        identical) &&
             all_ok;
  }
  return all_ok;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "bench_overload: admission, shedding and goodput under load spikes",
      "DESIGN.md SS14 (ISSUE 9) - overload-safe detection engine");

  Workload w = MakeWorkload();
  if (w.keys.size() != kNumKeys) {
    std::printf("workload construction failed (%zu/%zu keys)\n",
                w.keys.size(), kNumKeys);
    return 1;
  }

  bench::IdentityGate gate;
  std::vector<LoadPoint> points;
  for (size_t multiplier : {1u, 2u, 10u}) {
    LoadPoint point = RunLoadPoint(w, multiplier);
    points.push_back(point);
    std::printf(
        "\nload %2zux: offered %llu  admitted %llu  shed %llu (%.1f%%)\n"
        "         goodput %.0f rows/s  p50 %.3f ms  p99 %.3f ms\n"
        "         peak pending %zu (budget %zu)\n",
        point.multiplier, static_cast<unsigned long long>(point.offered),
        static_cast<unsigned long long>(point.admitted),
        static_cast<unsigned long long>(point.shed),
        100.0 * point.shed_fraction, point.goodput_rows_per_s, point.p50_ms,
        point.p99_ms, point.peak_pending, kPendingQuota);
    gate.Check("load " + std::to_string(multiplier) +
                   "x: all sheds typed",
               point.all_typed);
    gate.Check("load " + std::to_string(multiplier) +
                   "x: admitted == drained",
               point.admitted == point.drained);
    gate.Check("load " + std::to_string(multiplier) +
                   "x: pending bounded by budget",
               point.peak_pending <= kPendingQuota);
    gate.Check("load " + std::to_string(multiplier) +
                   "x: admitted verdicts byte-identical",
               point.identity_violations == 0);
  }

  std::printf("\n-- identity: tenant sessions vs unthrottled serial --\n");
  IdentityAcrossThreadCounts(w, gate);

  std::ostringstream json;
  json << "{\n  \"bench\": \"overload\",\n  \"load_points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    json << "    {\"multiplier\": " << p.multiplier
         << ", \"offered\": " << p.offered
         << ", \"admitted\": " << p.admitted << ", \"shed\": " << p.shed
         << ", \"goodput_rows_per_s\": " << p.goodput_rows_per_s
         << ", \"shed_fraction\": " << p.shed_fraction
         << ", \"p50_ms\": " << p.p50_ms << ", \"p99_ms\": " << p.p99_ms
         << ", \"peak_pending\": " << p.peak_pending << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"identity_checks\": " << gate.checks()
       << ",\n  \"all_identical\": "
       << (gate.all_identical() ? "true" : "false") << "\n}\n";
  bench::WriteJsonFile(bench::JsonOutputPath("BENCH_overload.json"),
                       json.str());

  return gate.Finish();
}
