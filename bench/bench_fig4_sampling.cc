// Reproduces §V-B / Fig. 4: the sampling attack. The pirate keeps x% of
// the watermarked rows; the owner rescales and detects with thresholds
// t in {0, 1, 2, 4, 10}.
//
// Expected shapes: (a) for samples above a few multiples of the distinct-
// token count the verified fraction is flat in sample size and grows with
// t (paper: ~36% at t=0 to ~99.5% at t=10; >90% detection on a 20% sample);
// (b) below ~2x the token count (Fig. 4) detection decays rapidly because
// the sample no longer contains the watermarked tokens at all.
//
// Converted to the unified API: embedding and detection go through
// `WatermarkScheme` ("freqywm" from the factory). The §V-B rescale step
// (`DetectOnSample`) is `DetectOptions::rescale_factor` — the owner knows
// the original total from metadata and scales the sample's counts back up.

#include "attacks/sampling.h"
#include "bench_common.h"

namespace fb = freqywm::bench;
using namespace freqywm;

int main() {
  fb::PrintBanner("Fig. 4 / §V-B — sampling attack",
                  "ICDE'24 FreqyWM Figure 4 (alpha=0.5, z=131, b=2)");
  Histogram original = fb::MakeSynthetic(0.5, 42);
  OptionBag bag;
  bag.Set("budget", "2.0");
  bag.Set("z", "131");
  bag.Set("strategy", "optimal");
  bag.Set("seed", "42");
  auto scheme = SchemeFactory::Create("freqywm", bag);
  if (!scheme.ok()) {
    std::printf("factory failed: %s\n", scheme.status().ToString().c_str());
    return 1;
  }
  auto r = scheme.value()->Embed(original);
  if (!r.ok()) {
    std::printf("generation failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const Histogram& wm = r.value().watermarked;
  const SchemeKey& key = r.value().key;
  std::printf("watermarked pairs: %zu (paper: 139)\n\n",
              r.value().report.embedded_units);

  // The §V-B owner-side rescale: suspect counts are multiplied by
  // original/sample before the residue test (0 disables when the sample
  // is empty).
  auto rescale = [&wm](const Histogram& sample) {
    if (sample.total_count() == 0) return 0.0;
    return static_cast<double>(wm.total_count()) /
           static_cast<double>(sample.total_count());
  };

  const uint64_t kThresholds[] = {0, 1, 2, 4, 10};

  std::printf("-- regular sample sizes (fraction of 1M rows) --\n");
  std::printf("%-10s", "sample%");
  for (uint64_t t : kThresholds) std::printf(" t=%-8llu",
                                             (unsigned long long)t);
  std::printf("\n");
  for (double pct : {1.0, 5.0, 10.0, 20.0, 50.0, 90.0}) {
    Rng rng(static_cast<uint64_t>(pct * 100) + 5);
    Histogram sample = SamplingAttackHistogram(
        wm, static_cast<size_t>(wm.total_count() * pct / 100.0), rng);
    std::printf("%-10.2f", pct);
    for (uint64_t t : kThresholds) {
      DetectOptions d;
      d.pair_threshold = t;
      d.min_pairs = 1;
      d.rescale_factor = rescale(sample);
      DetectResult dr = scheme.value()->Detect(sample, key, d);
      std::printf(" %-10.3f", dr.verified_fraction);
    }
    std::printf("\n");
  }

  std::printf("\n-- extreme sub-sampling (Fig. 4 regime, 1K distinct tokens) --\n");
  std::printf("%-10s %-10s", "sample%", "tokens");
  for (uint64_t t : kThresholds) std::printf(" t=%-8llu",
                                             (unsigned long long)t);
  std::printf("\n");
  for (double pct : {0.0007, 0.002, 0.005, 0.01, 0.05, 0.1, 0.5}) {
    Rng rng(static_cast<uint64_t>(pct * 1e6) + 9);
    Histogram sample = SamplingAttackHistogram(
        wm, static_cast<size_t>(wm.total_count() * pct / 100.0), rng);
    std::printf("%-10.4f %-10zu", pct, sample.num_tokens());
    for (uint64_t t : kThresholds) {
      DetectOptions d;
      d.pair_threshold = t;
      d.min_pairs = 1;
      d.rescale_factor = rescale(sample);
      DetectResult dr = scheme.value()->Detect(sample, key, d);
      std::printf(" %-10.3f", dr.verified_fraction);
    }
    std::printf("\n");
  }
  std::printf("\npaper reference: ~36%% at t=0, 72%%->99.5%% for t=1..10; "
              ">90%% detection on 20%% samples; decay below ~2x token "
              "count\n");
  return 0;
}
