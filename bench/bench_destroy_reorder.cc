// Reproduces §V-C2: the destroy attack WITH re-ordering. Frequencies move
// by up to ±p% of their own value for p in {10,30,50,60,80,90}; detection
// uses t = 4.
//
// Paper reference: success rates {94, 88, 82, 79, 78, 76}% — even 90%
// noise leaves three quarters of the pairs verifiable, while the data's
// own utility (similarity, ranking) is destroyed long before the
// watermark is.

#include "attacks/destroy.h"
#include "core/detect.h"
#include "bench_common.h"
#include "stats/rank.h"
#include "stats/similarity.h"

namespace fb = freqywm::bench;
using namespace freqywm;

int main() {
  fb::PrintBanner("§V-C2 — destroy attack with re-ordering (t = 4)",
                  "ICDE'24 FreqyWM §V-C2");
  Histogram original = fb::MakeSynthetic(0.5, 42);
  const int kReps = 10;

  for (uint64_t min_modulus : {2ull, 6ull, 16ull}) {
    GenerateOptions o =
        fb::MakeOptions(2.0, 131, SelectionStrategy::kOptimal, 42);
    o.min_modulus = min_modulus;
    auto r = WatermarkGenerator(o).GenerateFromHistogram(original);
    if (!r.ok()) continue;
    const Histogram& wm = r.value().watermarked;
    const auto& secrets = r.value().report.secrets;

    std::printf("\n-- min_modulus = %llu (%zu pairs) --\n",
                static_cast<unsigned long long>(min_modulus),
                r.value().report.chosen_pairs);
    std::printf("%-8s %-12s %-14s %-14s\n", "noise%", "verified",
                "similarity%", "ranks-changed");
    for (double pct : {10.0, 30.0, 50.0, 60.0, 80.0, 90.0}) {
      double verified = 0, similarity = 0, rank_changed = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        Rng rng(static_cast<uint64_t>(pct) * 100 + rep);
        Histogram attacked = DestroyAttackWithReordering(wm, pct, rng);
        DetectOptions d;
        d.pair_threshold = 4;
        d.min_pairs = 1;
        verified += DetectWatermark(attacked, secrets, d).verified_fraction;
        similarity += HistogramSimilarityPercent(wm, attacked);
        rank_changed +=
            static_cast<double>(CompareRankings(wm, attacked).changed);
      }
      std::printf("%-8.0f %-12.3f %-14.2f %-14.0f\n", pct, verified / kReps,
                  similarity / kReps, rank_changed / kReps);
    }
  }
  std::printf("\npaper reference: success rates 94/88/82/79/78/76%% for "
              "10/30/50/60/80/90%% noise; note how utility (similarity, "
              "ranking) is wrecked long before the watermark dies\n");
  return 0;
}
