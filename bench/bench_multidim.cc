// Reproduces §IV-C: watermarking the Adult dataset through the composite
// token [Age, WorkClass] (paper: 481 distinct tokens, 20 pairs chosen at
// z = 131, b = 2) and verifying that frequency increases replicate donor
// rows rather than inventing attribute combinations.
//
// Partially converted to the unified API: verification goes through
// `WatermarkScheme::Detect` with a portable `SchemeKey` — the owner's
// proof artifact is the same blob whether the claim is histogram- or
// table-level. Embedding stays on `WatermarkTable` because the scheme
// interface has no composite-token table path yet (ROADMAP residual).

#include <set>

#include "bench_common.h"
#include "core/multidim.h"
#include "datagen/real_world.h"

namespace fb = freqywm::bench;
using namespace freqywm;

int main() {
  fb::PrintBanner("§IV-C — multi-dimensional tokens on Adult-like data",
                  "ICDE'24 FreqyWM §IV-C (z=131, b=2)");
  Rng rng(11);
  TableDataset adult = MakeAdultLikeTable(rng, 48842);

  auto scheme = SchemeFactory::Create("freqywm");
  if (!scheme.ok()) {
    std::printf("factory failed: %s\n", scheme.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::vector<std::string>> token_defs = {
      {"Age"}, {"Age", "WorkClass"}, {"Age", "WorkClass", "Education"}};

  std::printf("%-28s %-10s %-8s %-8s %-12s %-10s\n", "token", "distinct",
              "|Le|", "chosen", "similarity", "verified");
  for (const auto& cols : token_defs) {
    auto projected = adult.ProjectTokens(cols);
    if (!projected.ok()) continue;
    Histogram hist = Histogram::FromDataset(projected.value());

    GenerateOptions o =
        fb::MakeOptions(2.0, 131, SelectionStrategy::kOptimal, 99);
    auto r = WatermarkTable(adult, cols, o);
    std::string name;
    for (const auto& c : cols) name += (name.empty() ? "" : "+") + c;
    if (!r.ok()) {
      std::printf("%-28s %-10zu inapplicable (%s)\n", name.c_str(),
                  hist.num_tokens(), r.status().ToString().c_str());
      continue;
    }

    // The owner's claim artifact: the table embed's secrets packaged as a
    // portable SchemeKey, verified by re-projecting the suspect table's
    // token columns and running scheme-level detection.
    SchemeKey key{"freqywm", r.value().report.secrets.Serialize()};
    auto suspect_rows = r.value().watermarked.ProjectTokens(cols);
    if (!suspect_rows.ok()) {
      std::printf("%-28s projection failed (%s)\n", name.c_str(),
                  suspect_rows.status().ToString().c_str());
      continue;
    }
    DetectOptions d;
    d.pair_threshold = 0;
    d.min_pairs = r.value().report.chosen_pairs;
    DetectResult dr = scheme.value()->Detect(
        Histogram::FromDataset(suspect_rows.value()), key, d);
    std::printf("%-28s %-10zu %-8zu %-8zu %-12.4f %-10s\n", name.c_str(),
                hist.num_tokens(), r.value().report.eligible_pairs,
                r.value().report.chosen_pairs,
                r.value().report.similarity_percent,
                dr.accepted ? "yes" : "NO");

    // Semantic-consistency audit: no invented attribute combination.
    std::set<std::string> combos;
    for (size_t i = 0; i < adult.num_rows(); ++i) {
      std::string key_str;
      for (const auto& v : adult.row(i)) key_str += v + "|";
      combos.insert(key_str);
    }
    size_t invented = 0;
    for (size_t i = 0; i < r.value().watermarked.num_rows(); ++i) {
      std::string key_str;
      for (const auto& v : r.value().watermarked.row(i)) key_str += v + "|";
      if (!combos.count(key_str)) ++invented;
    }
    std::printf("  -> invented attribute combinations after transform: %zu\n",
                invented);
  }
  std::printf("\npaper reference: [Age, WorkClass] had 481 distinct tokens "
              "and 20 chosen pairs\n");
  return 0;
}
