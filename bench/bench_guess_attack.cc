// Reproduces §V-A: the guess (brute-force) attack. The adversary forges
// random secrets R* and random pair subsets, hoping detection accepts.
// Expected: success frequency indistinguishable from the analytical
// chance bound and zero for strict thresholds — the negligible-in-lambda
// claim made measurable.
//
// Converted to the unified API: the victim watermark is embedded through
// `WatermarkScheme` ("freqywm" from the factory); the attack itself stays
// a core-level primitive because the adversary by definition has no key.

#include "attacks/guess.h"
#include "bench_common.h"

namespace fb = freqywm::bench;
using namespace freqywm;

int main() {
  fb::PrintBanner("§V-A — guess (brute force) attack",
                  "ICDE'24 FreqyWM §V-A");
  Histogram original = fb::MakeSynthetic(0.5, 42);
  OptionBag bag;
  bag.Set("budget", "2.0");
  bag.Set("z", "131");
  bag.Set("strategy", "optimal");
  bag.Set("seed", "42");
  auto scheme = SchemeFactory::Create("freqywm", bag);
  if (!scheme.ok()) return 1;
  auto r = scheme.value()->Embed(original);
  if (!r.ok()) return 1;

  std::printf("%-8s %-6s %-6s %-10s %-12s %-16s\n", "attempts", "k", "t",
              "successes", "rate", "per-pair-chance");
  struct Cell {
    size_t k;
    uint64_t t;
  };
  for (const Cell& cell : {Cell{1, 10}, Cell{2, 10}, Cell{5, 10},
                           Cell{5, 4}, Cell{10, 4}, Cell{10, 0}}) {
    GuessAttackSpec spec;
    spec.attempts = 2000;
    spec.claimed_pairs = std::max<size_t>(cell.k, 10);
    spec.min_pairs = cell.k;
    spec.pair_threshold = cell.t;
    Rng rng(cell.k * 1000 + cell.t);
    GuessAttackResult result =
        RunGuessAttack(r.value().watermarked, spec, rng);
    std::printf("%-8zu %-6zu %-6llu %-10zu %-12.5f %-16.5f\n",
                result.attempts, cell.k,
                static_cast<unsigned long long>(cell.t), result.successes,
                result.success_rate, result.per_pair_probability);
  }
  std::printf("\npaper reference: success probability negligible in lambda "
              "for all practical (k, t)\n");
  return 0;
}
