// Reproduces the §III-B4 false-positive analysis: the survival probability
// P(S_n >= k) of the Poisson–Binomial pair-acceptance count for n = 50
// stored pairs, computed exactly via the DFT of the characteristic
// function, next to Markov's upper bound mu/k.
//
// Expected shape: P(S_n >= k) = 1 at k = 0, collapses to 0 as k -> n; the
// collapse point moves left as the per-pair threshold t shrinks.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "stats/poisson_binomial.h"

namespace fb = freqywm::bench;
using freqywm::MarkovSurvivalBound;
using freqywm::PairFalsePositiveProbability;
using freqywm::PoissonBinomial;

int main() {
  fb::PrintBanner("False-positive survival P(S_n >= k), n = 50",
                  "ICDE'24 FreqyWM §III-B4 analysis figure");

  const size_t n = 50;
  // Per-pair probabilities for several thresholds t under z = 131-style
  // moduli: p_m = (t+1)/s_m with s_m spread over [2, 131).
  for (uint64_t t : {0ull, 1ull, 4ull, 10ull}) {
    std::vector<double> ps(n);
    for (size_t m = 0; m < n; ++m) {
      uint64_t s = 2 + (m * 129) / n;  // deterministic spread of moduli
      ps[m] = PairFalsePositiveProbability(t, s);
    }
    PoissonBinomial pb(ps);
    std::printf("\nt = %llu  (mean pair count mu = %.2f)\n",
                static_cast<unsigned long long>(t), pb.Mean());
    std::printf("%-6s %-14s %-14s\n", "k", "P(Sn>=k)", "Markov mu/k");
    for (size_t k : {0ull, 1ull, 2ull, 5ull, 10ull, 20ull, 30ull, 40ull,
                     45ull, 50ull}) {
      std::printf("%-6zu %-14.6g %-14.6g\n", k, pb.Survival(k),
                  MarkovSurvivalBound(pb.Mean(), k));
    }
  }

  // The paper's uniform-p_m variant: p_m spread uniformly over (0, 1).
  std::printf("\nuniform p_m over (0,1) — the paper's n = 50 example\n");
  std::vector<double> uniform(n);
  for (size_t m = 0; m < n; ++m) {
    uniform[m] = static_cast<double>(m + 1) / static_cast<double>(n + 1);
  }
  PoissonBinomial pb(uniform);
  std::printf("%-6s %-14s %-14s\n", "k", "P(Sn>=k)", "Markov mu/k");
  for (size_t k = 0; k <= n; k += 5) {
    std::printf("%-6zu %-14.6g %-14.6g\n", k, pb.Survival(k),
                MarkovSurvivalBound(pb.Mean(), k));
  }
  return 0;
}
