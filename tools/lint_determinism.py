#!/usr/bin/env python3
"""Determinism lint for the result-producing layers (DESIGN.md §11).

The library's central promise is byte-identical output for a fixed
configuration — at any thread count, chunking or cache state. This lint
makes the promise's preconditions grep-able: the result-producing
directories (src/core, src/exec, src/api) must not reach for ambient
nondeterminism (wall clocks, global RNGs, hardware entropy) and must not
iterate hash-ordered containers in a way that can leak iteration order
into output.

Checks
------
1. Banned tokens: `rand(`/`srand(` (global C RNG), `std::random_device`
   (hardware entropy; deterministic code draws from `common/random.h`
   seeded by configuration), `time(`/`clock(`/`gettimeofday(` and the
   std::chrono clocks (timestamps must never steer results; timing lives
   in bench/, not in the scanned layers).
2. Range-for loops over variables declared as `std::unordered_map` /
   `std::unordered_set` in the same file. Iteration order is
   implementation-defined, so any such loop in a result-producing layer
   is flagged; loops whose output provably does not depend on order
   (commutative merges, re-sorted downstream) are allowlisted with a
   written justification in tools/determinism_allowlist.txt.

Allowlist format: `path:identifier` (for loop findings) or
`path:token` (for banned-token findings), `#` comments and blank lines
ignored. Paths are repo-relative with forward slashes. An allowlist entry
that matches nothing fails the lint, so entries cannot outlive the code
they excuse.

Exit status: 0 clean, 1 findings (or stale allowlist entries).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCAN_DIRS = ["src/core", "src/exec", "src/api"]
ALLOWLIST = REPO / "tools" / "determinism_allowlist.txt"

# Token name -> (regex, reason shown in the report).
BANNED = {
    "rand": (re.compile(r"(?<![\w:.])s?rand\s*\("),
             "global C RNG; use a seeded common/random.h Rng"),
    "random_device": (re.compile(r"std::random_device"),
                      "hardware entropy; results must derive from the key"),
    "time": (re.compile(r"(?<![\w:.])(time|clock|gettimeofday)\s*\("),
             "wall/CPU clock in a result-producing layer"),
    "chrono_clock": (re.compile(
        r"std::chrono::(system|steady|high_resolution)_clock"),
        "clock reads must never steer results (timing lives in bench/)"),
}

UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}()]*>\s*&?\s*(\w+)\s*[;={(]")
RANGE_FOR = re.compile(r"for\s*\(\s*[^;)]*?:\s*\*?&?([A-Za-z_]\w*)\s*\)")


def strip_comments(text: str) -> str:
    """Blanks comments and string literals, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        else:
            if state == "line" and c == "\n":
                state = None
                out.append(c)
            elif state == "block" and c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 1
            elif state in "\"'" and c == "\\":
                out.append("  ")
                i += 1
            elif state in "\"'" and c == state:
                state = None
                out.append(c)
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_allowlist():
    entries = {}
    if ALLOWLIST.exists():
        for raw in ALLOWLIST.read_text().splitlines():
            line = raw.split("#", 1)[0].strip()
            if line:
                entries[line] = 0
    return entries


def main() -> int:
    allow = load_allowlist()
    findings = []

    for scan_dir in SCAN_DIRS:
        for path in sorted((REPO / scan_dir).rglob("*")):
            if path.suffix not in {".h", ".cc"}:
                continue
            rel = path.relative_to(REPO).as_posix()
            code = strip_comments(path.read_text())
            lines = code.splitlines()

            for token, (pattern, reason) in BANNED.items():
                for idx, line in enumerate(lines, 1):
                    if pattern.search(line):
                        key = f"{rel}:{token}"
                        if key in allow:
                            allow[key] += 1
                        else:
                            findings.append(
                                f"{rel}:{idx}: banned token '{token}' "
                                f"({reason})")

            hash_ordered = set(UNORDERED_DECL.findall(code))
            for idx, line in enumerate(lines, 1):
                for var in RANGE_FOR.findall(line):
                    if var in hash_ordered:
                        key = f"{rel}:{var}"
                        if key in allow:
                            allow[key] += 1
                        else:
                            findings.append(
                                f"{rel}:{idx}: range-for over hash-ordered "
                                f"'{var}' — iteration order may leak into "
                                f"output; sort, or allowlist with a "
                                f"justification")

    stale = [entry for entry, hits in allow.items() if hits == 0]
    for entry in stale:
        findings.append(
            f"{ALLOWLIST.relative_to(REPO).as_posix()}: stale allowlist "
            f"entry '{entry}' matches nothing — remove it")

    if findings:
        print("determinism lint: FAIL")
        for f in findings:
            print("  " + f)
        return 1
    scanned = ", ".join(SCAN_DIRS)
    print(f"determinism lint: OK ({scanned}; "
          f"{len(allow)} allowlisted exception(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
