#include "wmlint/config.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace wmlint {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  std::istringstream in(s);
  std::string w;
  while (in >> w) words.push_back(w);
  return words;
}

void ConfigError(const std::string& path, int line, const std::string& msg,
                 std::vector<Finding>* findings) {
  findings->push_back({"config", path, line, "", msg});
}

}  // namespace

bool FindingLess(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.check != b.check) return a.check < b.check;
  if (a.key != b.key) return a.key < b.key;
  return a.message < b.message;
}

Allowlist Allowlist::Parse(const std::string& path,
                           const std::string& content,
                           std::vector<Finding>* findings) {
  Allowlist out;
  out.path_ = path;
  std::istringstream in(content);
  std::string raw;
  int lineno = 0;
  // A rationale "block" is the run of comment lines since the last
  // blank line; an entry inherits it, or carries its own inline `#`.
  bool block_has_comment = false;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = Trim(raw);
    if (line.empty()) {
      block_has_comment = false;
      continue;
    }
    if (line[0] == '#') {
      block_has_comment = true;
      continue;
    }
    size_t hash = line.find('#');
    bool inline_comment = hash != std::string::npos;
    std::string entry = Trim(inline_comment ? line.substr(0, hash) : line);
    if (entry.empty()) continue;
    if (!inline_comment && !block_has_comment) {
      ConfigError(path, lineno,
                  "allowlist entry '" + entry +
                      "' has no rationale — add a comment block above it "
                      "or an inline '# why' (DESIGN.md §12)",
                  findings);
    }
    if (!out.entries_.emplace(entry, Entry{lineno, false}).second) {
      ConfigError(path, lineno, "duplicate allowlist entry '" + entry + "'",
                  findings);
    }
  }
  return out;
}

bool Allowlist::Claim(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  it->second.used = true;
  return true;
}

void Allowlist::ReportStale(std::vector<Finding>* findings) const {
  for (const auto& [key, entry] : entries_) {
    if (!entry.used) {
      findings->push_back(
          {"config", path_, entry.line, "",
           "stale allowlist entry '" + key +
               "' matches nothing — remove it (entries must not outlive "
               "the code they excuse)"});
    }
  }
}

LayerConfig LayerConfig::Parse(const std::string& path,
                               const std::string& content,
                               std::vector<Finding>* findings) {
  LayerConfig out;
  out.path_ = path;
  std::istringstream in(content);
  std::string raw;
  int lineno = 0;

  auto require_layer = [&](const std::string& name) {
    if (!out.layers_.count(name)) {
      ConfigError(path, lineno, "undeclared layer '" + name + "'", findings);
      return false;
    }
    return true;
  };

  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = raw;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;

    if (words[0] == "layer" && words.size() == 2) {
      if (!out.layers_.insert(words[1]).second) {
        ConfigError(path, lineno, "duplicate layer '" + words[1] + "'",
                    findings);
      }
      out.stratum_of_.emplace(words[1], words[1]);
    } else if (words[0] == "stratum" && words.size() >= 3) {
      for (size_t i = 1; i < words.size(); ++i) {
        if (require_layer(words[i])) out.stratum_of_[words[i]] = words[1];
      }
    } else if ((words[0] == "allow" || words[0] == "forbid") &&
               words.size() == 4 && words[2] == "->") {
      if (!require_layer(words[1]) || !require_layer(words[3])) continue;
      auto edge = std::make_pair(words[1], words[3]);
      if (words[0] == "allow") {
        if (out.stratum_of_[words[1]] == out.stratum_of_[words[3]]) {
          ConfigError(path, lineno,
                      "allow " + words[1] + " -> " + words[3] +
                          " is implicit (same layer or stratum); remove it",
                      findings);
          continue;
        }
        if (!out.allow_.emplace(edge, AllowEdge{lineno, false}).second) {
          ConfigError(path, lineno,
                      "duplicate allow " + words[1] + " -> " + words[3],
                      findings);
        }
      } else {
        out.forbid_.emplace(edge, lineno);
      }
    } else {
      ConfigError(path, lineno, "unparsable layers.txt statement: '" +
                                    Trim(raw) + "'",
                  findings);
    }
  }

  // allow/forbid conflicts are config errors, not tie-breaks.
  for (const auto& [edge, line] : out.forbid_) {
    if (out.allow_.count(edge)) {
      ConfigError(path, line,
                  "edge " + edge.first + " -> " + edge.second +
                      " is both allowed and forbidden",
                  findings);
    }
  }

  // Acyclicity of the declared allow edges (DFS 3-coloring): a cycle
  // among `allow` statements means the config no longer describes a
  // layering and is rejected at parse time. Mutual dependence is legal
  // only inside a declared `stratum` — strata are the explicit,
  // documented carve-out, never an emergent property of allow edges.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, unused] : out.allow_) {
    (void)unused;
    adj[edge.first].insert(edge.second);
  }
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  bool cyclic = false;
  std::function<void(const std::string&)> dfs = [&](const std::string& n) {
    color[n] = 1;
    for (const auto& m : adj[n]) {
      if (color[m] == 1) cyclic = true;
      if (color[m] == 0) dfs(m);
    }
    color[n] = 2;
  };
  for (const auto& [n, unused] : adj) {
    (void)unused;
    if (color[n] == 0) dfs(n);
  }
  if (cyclic) {
    ConfigError(path, 0,
                "allow edges form a cycle across strata — declare the knot "
                "as a 'stratum' or remove an edge",
                findings);
  }

  out.loaded_ = true;
  return out;
}

std::string LayerConfig::JudgeEdge(const std::string& from,
                                   const std::string& to) {
  if (from == to) return "";
  if (!layers_.count(to)) {
    return "include target layer '" + to + "' is not declared in " + path_;
  }
  if (!layers_.count(from)) {
    return "source layer '" + from + "' is not declared in " + path_;
  }
  auto edge = std::make_pair(from, to);
  auto forbidden = forbid_.find(edge);
  if (forbidden != forbid_.end()) {
    return "forbidden include edge " + from + " -> " + to + " (" + path_ +
           ":" + std::to_string(forbidden->second) + ")";
  }
  if (stratum_of_.at(from) == stratum_of_.at(to)) return "";
  auto it = allow_.find(edge);
  if (it == allow_.end()) {
    return "undeclared include edge " + from + " -> " + to +
           " — add 'allow " + from + " -> " + to + "' to " + path_ +
           " with a rationale, or break the dependency";
  }
  it->second.used = true;
  return "";
}

void LayerConfig::ReportStale(std::vector<Finding>* findings) const {
  for (const auto& [edge, info] : allow_) {
    if (!info.used) {
      findings->push_back(
          {"config", path_, info.line, "",
           "stale allow edge " + edge.first + " -> " + edge.second +
               " — no include uses it; remove it"});
    }
  }
}

}  // namespace wmlint
