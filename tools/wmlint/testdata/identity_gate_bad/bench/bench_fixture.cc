#include <cstdio>
#include <string>

// Emits a BENCH_*.json artifact but never routes its comparisons through
// the shared IdentityGate — the check must flag the file.
int main() {
  bool identical = true;
  std::string json = "{\"identical\": true}";
  std::printf("writing %s\n", "BENCH_fixture.json");
  return identical ? 0 : 1;
}
