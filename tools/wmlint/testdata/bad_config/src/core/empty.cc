namespace fixture {

// Intentionally clean file: every finding in this fixture must come from
// the config itself (stale entry, missing rationale).
int Nothing() { return 0; }

}  // namespace fixture
