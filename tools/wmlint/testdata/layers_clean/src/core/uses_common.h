#ifndef FIXTURE_CORE_USES_COMMON_H_
#define FIXTURE_CORE_USES_COMMON_H_

#include <vector>

#include "common/result.h"
#include "core/sibling.h"

namespace fixture {

inline int CoreThing() { return 1; }

}  // namespace fixture

#endif  // FIXTURE_CORE_USES_COMMON_H_
