#include <cstdlib>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

// rand() in a result-producing layer.
int Jitter() { return rand() % 7; }

// Range-for over a hash-ordered container declared in this file.
std::vector<int> Walk() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  std::vector<int> out;
  for (const auto& kv : counts) {
    out.push_back(kv.second);
  }
  return out;
}

// Pointer-keyed ordered container: iteration order follows allocation
// addresses, not a stable id.
int Score(Node* a, Node* b) {
  std::map<Node*, int> scores;
  scores[a] = 1;
  scores[b] = 2;
  int total = 0;
  for (const auto& kv : scores) total += kv.second;
  return total;
}

}  // namespace fixture
