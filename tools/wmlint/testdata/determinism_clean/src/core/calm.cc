#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fixture {

// The iteration below is order-insensitive (sum) and allowlisted; the
// sorted output path is the idiomatic alternative.
int Total() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}

std::vector<int> Sorted() {
  std::vector<int> keys = {3, 1, 2};
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace fixture
