#ifndef FIXTURE_CORE_USES_API_H_
#define FIXTURE_CORE_USES_API_H_

#include "api/scheme.h"

namespace fixture {

inline int CoreThing() { return 1; }

}  // namespace fixture

#endif  // FIXTURE_CORE_USES_API_H_
