#ifndef FIXTURE_EXEC_WIDGET_H_
#define FIXTURE_EXEC_WIDGET_H_

#include "common/mutex.h"

namespace fixture {

// Mutex-owning class with one annotated and one naked mutable member —
// the naked one must be flagged.
class Widget {
 public:
  int Get() const;
  void Bump();

 private:
  Mutex mu_;
  int annotated_ GUARDED_BY(mu_) = 0;
  int count_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_EXEC_WIDGET_H_
