#include <cstdio>
#include <string>

#include "bench_common.h"

// Routes its comparisons through the shared IdentityGate before writing
// the BENCH_*.json artifact.
int main() {
  fixture::IdentityGate gate;
  gate.Check("a vs b", true);
  std::printf("writing %s\n", "BENCH_fixture.json");
  return gate.Finish();
}
