#ifndef FIXTURE_EXEC_ENGINE_H_
#define FIXTURE_EXEC_ENGINE_H_

#include "exec/exec_context.h"

namespace fixture {

// Parallel-only entry point: no `ComputeReference` sibling and no serial
// overload — nothing can certify its output.
int Compute(int input, const ExecContext& exec);

// Has a serial overload, but neither name is referenced from tests/.
int Shard(int input, const ExecContext& exec);
int Shard(int input);

}  // namespace fixture

#endif  // FIXTURE_EXEC_ENGINE_H_
