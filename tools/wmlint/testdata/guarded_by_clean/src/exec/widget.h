#ifndef FIXTURE_EXEC_WIDGET_H_
#define FIXTURE_EXEC_WIDGET_H_

#include "common/mutex.h"

namespace fixture {

// Every mutable member is either annotated or allowlisted; statics,
// constants and atomics are exempt by rule.
class Widget {
 public:
  int Get() const;
  void Bump();

 private:
  static constexpr int kLimit = 8;
  Mutex mu_;
  std::atomic<int> hits_{0};
  int annotated_ GUARDED_BY(mu_) = 0;
  int excused_ = 0;
};

}  // namespace fixture

#endif  // FIXTURE_EXEC_WIDGET_H_
