#ifndef FIXTURE_EXEC_ENGINE_H_
#define FIXTURE_EXEC_ENGINE_H_

#include "exec/exec_context.h"

namespace fixture {

// Reference-sibling pattern: the oracle is a distinct function.
int Compute(int input, const ExecContext& exec);
int ComputeReference(int input);

// Serial-overload pattern: the serial overload is the oracle.
int Shard(int input, const ExecContext& exec);
int Shard(int input);

}  // namespace fixture

#endif  // FIXTURE_EXEC_ENGINE_H_
