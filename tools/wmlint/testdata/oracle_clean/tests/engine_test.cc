#include "exec/engine.h"

namespace fixture {

// Exercises both oracles so the contract check sees them referenced.
void IdentityHarness() {
  ComputeReference(7);
  Shard(7);
}

}  // namespace fixture
