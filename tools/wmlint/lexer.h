#ifndef FREQYWM_TOOLS_WMLINT_LEXER_H_
#define FREQYWM_TOOLS_WMLINT_LEXER_H_

#include <string>
#include <vector>

namespace wmlint {

/// Token kinds of the wmlint lexer. The lexer is a real C++ scanner —
/// line and block comments, plain/char/raw string literals and
/// preprocessor directives are recognized structurally, never by regex —
/// so checks operate on code tokens only and a `rand(` inside a comment
/// or a string can never produce a finding (DESIGN.md §12).
enum class TokKind {
  kIdentifier,  // [A-Za-z_][A-Za-z0-9_]*
  kNumber,      // digit-led literal, including 1'000'000 / 0x1f / 1e-9
  kString,      // "..." or R"delim(...)delim"; text() is the *contents*
  kChar,        // '...'
  kPunct,       // one operator/punctuator; "::" and "->" fuse to one token
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;
};

/// One `#include` directive. `path` is the include target; `angled`
/// distinguishes `<...>` (system, ignored by the layering check) from
/// `"..."` (first-party, resolved against `src/`).
struct IncludeDirective {
  std::string path;
  bool angled = false;
  int line = 0;
};

/// A lexed source file. `path` is repo-relative with forward slashes.
/// Preprocessor directive lines (including continuations) are consumed
/// whole: `#include` targets land in `includes`, every other directive
/// (guards, macro definitions, pragmas) contributes no tokens — so the
/// GUARDED_BY audit never mistakes a macro *definition* for a member
/// declaration.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
};

/// Lexes `content` (the bytes of the file at repo-relative `path`).
LexedFile LexSource(const std::string& path, const std::string& content);

}  // namespace wmlint

#endif  // FREQYWM_TOOLS_WMLINT_LEXER_H_
