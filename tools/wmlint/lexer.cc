#include "wmlint/lexer.h"

#include <cctype>
#include <cstddef>

namespace wmlint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Cursor over the file bytes with line accounting.
struct Cursor {
  const std::string& text;
  size_t i = 0;
  int line = 1;

  bool done() const { return i >= text.size(); }
  char peek(size_t ahead = 0) const {
    return i + ahead < text.size() ? text[i + ahead] : '\0';
  }
  char take() {
    char c = text[i++];
    if (c == '\n') ++line;
    return c;
  }
};

/// Consumes a // or /* */ comment (the leading '/' already peeked).
/// Returns false when the cursor is not at a comment.
bool SkipComment(Cursor& cur) {
  if (cur.peek() != '/') return false;
  if (cur.peek(1) == '/') {
    while (!cur.done() && cur.peek() != '\n') cur.take();
    return true;
  }
  if (cur.peek(1) == '*') {
    cur.take();
    cur.take();
    while (!cur.done()) {
      if (cur.peek() == '*' && cur.peek(1) == '/') {
        cur.take();
        cur.take();
        return true;
      }
      cur.take();
    }
    return true;  // unterminated: EOF closes it
  }
  return false;
}

/// Consumes a plain "..." / '...' literal (opening quote not yet taken)
/// and returns its contents, escapes left as written.
std::string TakeQuoted(Cursor& cur, char quote) {
  cur.take();  // opening quote
  std::string contents;
  while (!cur.done()) {
    char c = cur.peek();
    if (c == '\\') {
      contents.push_back(cur.take());
      if (!cur.done()) contents.push_back(cur.take());
      continue;
    }
    if (c == quote || c == '\n') {  // newline: unterminated, recover
      if (c == quote) cur.take();
      break;
    }
    contents.push_back(cur.take());
  }
  return contents;
}

/// Consumes R"delim( ... )delim" (cursor on the opening '"' after R) and
/// returns the raw contents.
std::string TakeRawString(Cursor& cur) {
  cur.take();  // opening quote
  std::string delim;
  while (!cur.done() && cur.peek() != '(' && cur.peek() != '\n') {
    delim.push_back(cur.take());
  }
  if (cur.peek() == '(') cur.take();
  const std::string closer = ")" + delim + "\"";
  std::string contents;
  while (!cur.done()) {
    if (cur.text.compare(cur.i, closer.size(), closer) == 0) {
      for (size_t k = 0; k < closer.size(); ++k) cur.take();
      break;
    }
    contents.push_back(cur.take());
  }
  return contents;
}

/// Consumes one preprocessor directive (cursor on '#'), including
/// backslash-continued lines and trailing comments; records `#include`
/// targets. Directive bodies contribute no tokens.
void TakeDirective(Cursor& cur, LexedFile* out) {
  const int start_line = cur.line;
  cur.take();  // '#'
  while (!cur.done() && (cur.peek() == ' ' || cur.peek() == '\t')) cur.take();
  std::string name;
  while (!cur.done() && IsIdentChar(cur.peek())) name.push_back(cur.take());

  if (name == "include") {
    while (!cur.done() && (cur.peek() == ' ' || cur.peek() == '\t')) {
      cur.take();
    }
    if (cur.peek() == '"') {
      out->includes.push_back({TakeQuoted(cur, '"'), false, start_line});
    } else if (cur.peek() == '<') {
      cur.take();
      std::string path;
      while (!cur.done() && cur.peek() != '>' && cur.peek() != '\n') {
        path.push_back(cur.take());
      }
      if (cur.peek() == '>') cur.take();
      out->includes.push_back({path, true, start_line});
    }
  }

  // Drain the rest of the directive: to end of line, honoring backslash
  // continuations, comments and string literals (a quote in a #define
  // body must not leak into the code token stream).
  while (!cur.done()) {
    char c = cur.peek();
    if (c == '\n') {
      cur.take();
      return;
    }
    if (c == '\\' && (cur.peek(1) == '\n' ||
                      (cur.peek(1) == '\r' && cur.peek(2) == '\n'))) {
      cur.take();  // backslash
      while (!cur.done() && cur.peek() != '\n') cur.take();
      if (!cur.done()) cur.take();  // continued: keep draining
      continue;
    }
    if (SkipComment(cur)) continue;
    if (c == '"') {
      if (cur.i > 0 && cur.text[cur.i - 1] == 'R') {
        TakeRawString(cur);
      } else {
        TakeQuoted(cur, '"');
      }
      continue;
    }
    if (c == '\'') {
      TakeQuoted(cur, '\'');
      continue;
    }
    cur.take();
  }
}

}  // namespace

LexedFile LexSource(const std::string& path, const std::string& content) {
  LexedFile out;
  out.path = path;
  Cursor cur{content};
  bool at_line_start = true;  // only whitespace seen on this line so far

  while (!cur.done()) {
    char c = cur.peek();

    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
        c == '\v') {
      if (c == '\n') at_line_start = true;
      cur.take();
      continue;
    }
    if (SkipComment(cur)) continue;

    if (c == '#' && at_line_start) {
      TakeDirective(cur, &out);
      at_line_start = true;
      continue;
    }
    at_line_start = false;

    const int line = cur.line;
    if (c == '"') {
      out.tokens.push_back({TokKind::kString, TakeQuoted(cur, '"'), line});
      continue;
    }
    if (c == '\'') {
      out.tokens.push_back({TokKind::kChar, TakeQuoted(cur, '\''), line});
      continue;
    }
    if (IsIdentStart(c)) {
      std::string ident;
      while (!cur.done() && IsIdentChar(cur.peek())) {
        ident.push_back(cur.take());
      }
      // Raw / prefixed string literal: R"...", u8"...", L'...', ...
      if (cur.peek() == '"' &&
          (ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
           ident == "LR")) {
        out.tokens.push_back({TokKind::kString, TakeRawString(cur), line});
        continue;
      }
      if ((cur.peek() == '"' || cur.peek() == '\'') &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        char quote = cur.peek();
        out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                              TakeQuoted(cur, quote), line});
        continue;
      }
      out.tokens.push_back({TokKind::kIdentifier, std::move(ident), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      while (!cur.done() &&
             (IsIdentChar(cur.peek()) || cur.peek() == '\'' ||
              cur.peek() == '.' ||
              ((cur.peek() == '+' || cur.peek() == '-') && !num.empty() &&
               (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
                num.back() == 'P')))) {
        num.push_back(cur.take());
      }
      out.tokens.push_back({TokKind::kNumber, std::move(num), line});
      continue;
    }
    // Punctuation. Fuse "::" and "->" — the qualification shapes the
    // determinism and oracle checks key on; every other operator is one
    // character (so ">>" closes two template lists, as the angle-balanced
    // scans require).
    std::string punct(1, cur.take());
    if ((punct == ":" && cur.peek() == ':') ||
        (punct == "-" && cur.peek() == '>')) {
      punct.push_back(cur.take());
    }
    out.tokens.push_back({TokKind::kPunct, std::move(punct), line});
  }
  return out;
}

}  // namespace wmlint
