#ifndef FREQYWM_TOOLS_WMLINT_CHECKS_H_
#define FREQYWM_TOOLS_WMLINT_CHECKS_H_

#include <string>
#include <vector>

#include "wmlint/config.h"
#include "wmlint/finding.h"
#include "wmlint/lexer.h"

namespace wmlint {

/// The five project-invariant checks (DESIGN.md §12). Each takes the
/// lexed tree, claims entries from its allowlist (the driver reports
/// stale entries afterwards), and appends findings.

/// layers: every first-party `#include` in src/ + bench/ must follow an
/// edge of the layer DAG in layers.txt. Angled includes and same-
/// directory includes (no '/') are out of scope; `forbid` edges beat
/// everything; unused `allow` edges are reported stale by the config.
void CheckLayers(const std::vector<LexedFile>& code, LayerConfig* layers,
                 std::vector<Finding>* findings);

/// guarded_by: a class owning a `Mutex` must annotate every mutable
/// member with GUARDED_BY/PT_GUARDED_BY, or allowlist it
/// (`file:Class::member`). Exempt by construction: the Mutex/CondVar
/// members themselves, `std::atomic` members (self-synchronizing),
/// `const` non-pointer members, and static/constexpr/using/typedef/
/// friend/enum/function declarations.
void CheckGuardedBy(const std::vector<LexedFile>& code, Allowlist* allow,
                    std::vector<Finding>* findings);

/// determinism: token-level port of tools/lint_determinism.py over
/// src/core, src/exec, src/api — banned ambient-nondeterminism tokens
/// (rand/srand, std::random_device, time/clock/gettimeofday, chrono
/// clocks), range-for over unordered containers declared in the same
/// file, plus one new rule the regex lint could not express:
/// pointer-keyed std::map/set (iteration order = allocation order).
void CheckDeterminism(const std::vector<LexedFile>& code, Allowlist* allow,
                      std::vector<Finding>* findings);

/// oracle: every function overload taking `ExecContext` declared in a
/// src/ header must have a discoverable serial oracle — a
/// `<Name>Reference` sibling or a serial overload of the same name —
/// and that oracle must be referenced from at least one test under
/// tests/ (identity tests are the repo's correctness spine; an
/// unreferenced oracle proves nothing). Allowlist key: function name.
void CheckOracle(const std::vector<LexedFile>& code,
                 const std::vector<LexedFile>& tests, Allowlist* allow,
                 std::vector<Finding>* findings);

/// identity_gate: every bench/bench_*.cc that emits a BENCH_*.json
/// artifact must run its optimized-vs-reference comparisons through the
/// shared `IdentityGate` helper in bench_common.h, so CI's "fail on
/// identity mismatch, never on timing" policy has one auditable
/// implementation. Allowlist key: file path.
void CheckIdentityGate(const std::vector<LexedFile>& code, Allowlist* allow,
                       std::vector<Finding>* findings);

}  // namespace wmlint

#endif  // FREQYWM_TOOLS_WMLINT_CHECKS_H_
