#include "wmlint/checks.h"

#include <map>
#include <set>

namespace wmlint {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Layer of a scanned file: "src/<layer>/..." -> <layer>,
/// "bench/..." -> "bench"; "" when the file is outside the layered tree.
std::string FileLayer(const std::string& path) {
  if (StartsWith(path, "src/")) {
    size_t slash = path.find('/', 4);
    if (slash != std::string::npos) return path.substr(4, slash - 4);
    return "";
  }
  if (StartsWith(path, "bench/")) return "bench";
  return "";
}

}  // namespace

// --------------------------------------------------------------- layers

void CheckLayers(const std::vector<LexedFile>& code, LayerConfig* layers,
                 std::vector<Finding>* findings) {
  if (!layers->loaded()) {
    findings->push_back({"config", layers->path(), 0, "",
                         "layers.txt missing — the layering check cannot "
                         "run without its edge config"});
    return;
  }
  for (const LexedFile& file : code) {
    const std::string from = FileLayer(file.path);
    if (from.empty()) continue;
    for (const IncludeDirective& inc : file.includes) {
      if (inc.angled) continue;  // system headers are out of scope
      size_t slash = inc.path.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = inc.path.substr(0, slash);
      std::string verdict = layers->JudgeEdge(from, to);
      if (!verdict.empty()) {
        findings->push_back({"layers", file.path, inc.line,
                             from + "->" + to,
                             "#include \"" + inc.path + "\": " + verdict});
      }
    }
  }
}

// ----------------------------------------------------------- guarded_by

namespace {

/// One member-declaration statement collected from a class body.
struct MemberStmt {
  std::vector<Token> toks;
  int line = 0;
};

size_t SkipBalanced(const std::vector<Token>& toks, size_t open,
                    const char* open_text, const char* close_text) {
  int depth = 0;
  size_t i = open;
  for (; i < toks.size(); ++i) {
    if (IsPunct(toks[i], open_text)) ++depth;
    if (IsPunct(toks[i], close_text) && --depth == 0) return i + 1;
  }
  return i;
}

bool StatementContainsIdent(const MemberStmt& stmt, const char* name) {
  for (const Token& t : stmt.toks) {
    if (IsIdent(t, name)) return true;
  }
  return false;
}

/// True when the statement declares a function (callable, not state):
/// an open paren at top level — outside template angles — with no `=`
/// before it, i.e. `Status Foo(...)` but not `int x_ = Init();`.
bool LooksLikeFunction(const MemberStmt& stmt) {
  int angle = 0;
  bool saw_eq = false;
  for (size_t i = 0; i < stmt.toks.size(); ++i) {
    const Token& t = stmt.toks[i];
    if (IsPunct(t, "<") && i > 0 &&
        stmt.toks[i - 1].kind == TokKind::kIdentifier) {
      ++angle;
    } else if (IsPunct(t, ">") && angle > 0) {
      --angle;
    } else if (IsPunct(t, "=") && angle == 0) {
      saw_eq = true;
    } else if (IsPunct(t, "(") && angle == 0) {
      return !saw_eq;
    }
  }
  return false;
}

/// Declared name of a member statement: the last identifier before the
/// first top-level `=`, `{` or `[` (the initializer / array bound), or
/// the last identifier overall (`std::vector<int> rows_`).
std::string MemberName(const MemberStmt& stmt) {
  int angle = 0;
  std::string name;
  for (size_t i = 0; i < stmt.toks.size(); ++i) {
    const Token& t = stmt.toks[i];
    if (IsPunct(t, "<") && i > 0 &&
        stmt.toks[i - 1].kind == TokKind::kIdentifier) {
      ++angle;
      continue;
    }
    if (IsPunct(t, ">") && angle > 0) {
      --angle;
      continue;
    }
    if (angle > 0) continue;
    if (IsPunct(t, "=") || IsPunct(t, "{") || IsPunct(t, "[")) break;
    if (t.kind == TokKind::kIdentifier) name = t.text;
  }
  return name;
}

const std::set<std::string>& ExemptLeaders() {
  static const std::set<std::string> kLeaders = {
      "static", "constexpr", "using",  "typedef", "friend",
      "enum",   "class",     "struct", "union",   "template",
      "public", "private",   "protected"};
  return kLeaders;
}

/// Parses one class body starting at the `{` at `open`; returns the
/// index just past the matching `}`. Emits findings for mutable
/// unannotated members when the class owns a Mutex.
size_t AuditClassBody(const LexedFile& file, const std::string& class_name,
                      size_t open, Allowlist* allow,
                      std::vector<Finding>* findings);

/// Starting at a `class`/`struct` keyword at `i`, finds the class name
/// and body. Returns the index to resume scanning from; sets *name and
/// *body_open (npos when this is not a definition: forward declaration,
/// template parameter, base-clause-less alias...).
size_t ScanClassHead(const std::vector<Token>& toks, size_t i,
                     std::string* name, size_t* body_open) {
  *body_open = std::string::npos;
  name->clear();
  bool in_base_clause = false;
  size_t j = i + 1;
  for (; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (IsPunct(t, "(")) {  // attribute macro: class CAPABILITY("m") X {
      j = SkipBalanced(toks, j, "(", ")") - 1;
      continue;
    }
    if (IsPunct(t, ":")) {
      in_base_clause = true;
      continue;
    }
    if (IsPunct(t, "{")) {
      *body_open = j;
      return j;
    }
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "," || t.text == ">" || t.text == ")" ||
         t.text == "=")) {
      return j;  // forward decl / template parameter / alias
    }
    if (IsIdent(t, "class") || IsIdent(t, "struct")) {
      return j - 1;  // template<class T> class Foo — restart from here
    }
    if (t.kind == TokKind::kIdentifier && !in_base_clause &&
        t.text != "final" && t.text != "alignas") {
      *name = t.text;
    }
  }
  return j;
}

size_t AuditClassBody(const LexedFile& file, const std::string& class_name,
                      size_t open, Allowlist* allow,
                      std::vector<Finding>* findings) {
  const std::vector<Token>& toks = file.tokens;
  bool owns_mutex = false;
  std::vector<MemberStmt> pending;  // mutable members awaiting the verdict

  MemberStmt cur;
  int paren = 0;
  size_t i = open + 1;
  auto flush = [&]() {
    if (cur.toks.empty()) return;
    const std::string& lead = cur.toks[0].text;
    bool exempt_leader = cur.toks[0].kind == TokKind::kIdentifier &&
                         ExemptLeaders().count(lead) != 0;
    bool is_function = LooksLikeFunction(cur) ||
                       StatementContainsIdent(cur, "operator");
    bool is_lock = StatementContainsIdent(cur, "Mutex") ||
                   StatementContainsIdent(cur, "CondVar");
    if (!exempt_leader && !is_function &&
        StatementContainsIdent(cur, "Mutex")) {
      owns_mutex = true;
    }
    bool annotated = StatementContainsIdent(cur, "GUARDED_BY") ||
                     StatementContainsIdent(cur, "PT_GUARDED_BY");
    bool is_atomic = StatementContainsIdent(cur, "atomic");
    bool const_value = cur.toks[0].kind == TokKind::kIdentifier &&
                       lead == "const";
    if (const_value) {
      for (const Token& t : cur.toks) {
        if (IsPunct(t, "*")) const_value = false;
      }
    }
    if (!exempt_leader && !annotated && !is_lock && !is_atomic &&
        !const_value && !is_function) {
      pending.push_back(cur);
    }
    cur = MemberStmt{};
  };

  while (i < toks.size()) {
    const Token& t = toks[i];
    if (IsPunct(t, "(")) ++paren;
    if (IsPunct(t, ")") && paren > 0) --paren;

    if (paren == 0 && IsPunct(t, "}")) {
      ++i;
      break;  // end of this class body
    }
    // Access specifiers reset the statement.
    if (paren == 0 && cur.toks.empty() && t.kind == TokKind::kIdentifier &&
        (t.text == "public" || t.text == "private" || t.text == "protected") &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], ":")) {
      i += 2;
      continue;
    }
    // Nested class/struct definition at statement start: recurse with
    // a qualified name. `friend class X;` / `enum class K {...};` have
    // a non-empty statement here and fall through as exempt leaders.
    if (paren == 0 && cur.toks.empty() &&
        (IsIdent(t, "class") || IsIdent(t, "struct"))) {
      std::string nested;
      size_t body = std::string::npos;
      size_t resume = ScanClassHead(toks, i, &nested, &body);
      if (body != std::string::npos) {
        std::string qualified =
            class_name.empty() ? nested : class_name + "::" + nested;
        i = AuditClassBody(file, qualified, body, allow, findings);
        // Consume the trailing `;` (and any declarator — none in this
        // codebase) of the nested definition.
        while (i < toks.size() && !IsPunct(toks[i], ";")) ++i;
        if (i < toks.size()) ++i;
        cur = MemberStmt{};
        continue;
      }
      // Forward declaration: resume lands on its `;` (or other
      // terminator), which flushes the empty statement harmlessly.
      i = resume;
      continue;
    }
    if (paren == 0 && IsPunct(t, ";")) {
      flush();
      ++i;
      continue;
    }
    if (paren == 0 && IsPunct(t, "{")) {
      // Function body vs brace initializer: a `;` right after the
      // balanced braces means the braces belonged to the statement
      // (member brace-init); anything else was a definition body.
      size_t after = SkipBalanced(toks, i, "{", "}");
      if (after < toks.size() && IsPunct(toks[after], ";") &&
          !LooksLikeFunction(cur)) {
        cur.toks.push_back(t);  // keep `{` so MemberName stops at it
        flush();
      } else {
        cur = MemberStmt{};
      }
      i = after;
      if (i < toks.size() && IsPunct(toks[i], ";")) ++i;
      continue;
    }
    if (cur.toks.empty()) cur.line = t.line;
    cur.toks.push_back(t);
    ++i;
  }

  if (owns_mutex) {
    for (const MemberStmt& stmt : pending) {
      std::string member = MemberName(stmt);
      if (member.empty()) continue;
      std::string key = file.path + ":" + class_name + "::" + member;
      if (allow->Claim(key)) continue;
      findings->push_back(
          {"guarded_by", file.path, stmt.line, key,
           "class " + class_name + " owns a Mutex but member '" + member +
               "' is neither GUARDED_BY-annotated nor allowlisted — "
               "annotate it, or allowlist with a rationale"});
    }
  }
  return i;
}

}  // namespace

void CheckGuardedBy(const std::vector<LexedFile>& code, Allowlist* allow,
                    std::vector<Finding>* findings) {
  for (const LexedFile& file : code) {
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      if (!(IsIdent(toks[i], "class") || IsIdent(toks[i], "struct"))) {
        continue;
      }
      if (i > 0 && (IsIdent(toks[i - 1], "enum") ||
                    IsIdent(toks[i - 1], "friend"))) {
        continue;
      }
      std::string name;
      size_t body = std::string::npos;
      size_t resume = ScanClassHead(toks, i, &name, &body);
      if (body != std::string::npos) {
        i = AuditClassBody(file, name, body, allow, findings) - 1;
      } else {
        i = resume;
      }
    }
  }
}

// ---------------------------------------------------------- determinism

namespace {

bool InDeterminismScope(const std::string& path) {
  return StartsWith(path, "src/core/") || StartsWith(path, "src/exec/") ||
         StartsWith(path, "src/api/");
}

/// Mirrors lint_determinism.py's `(?<![\w:.])`: the call is not a
/// member/qualified access like foo.time(, x->time( or my::time(.
bool PlainCall(const std::vector<Token>& toks, size_t i) {
  if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  return !(IsPunct(prev, "::") || IsPunct(prev, ".") || IsPunct(prev, "->"));
}

void Report(const LexedFile& file, int line, const std::string& token,
            const std::string& reason, Allowlist* allow,
            std::vector<Finding>* findings) {
  std::string key = file.path + ":" + token;
  if (allow->Claim(key)) return;
  findings->push_back({"determinism", file.path, line, key,
                       "banned token '" + token + "' (" + reason + ")"});
}

}  // namespace

void CheckDeterminism(const std::vector<LexedFile>& code, Allowlist* allow,
                      std::vector<Finding>* findings) {
  for (const LexedFile& file : code) {
    if (!InDeterminismScope(file.path)) continue;
    const std::vector<Token>& toks = file.tokens;

    // Pass 1: declared unordered containers (per file, like the python
    // lint: declaration and loop may be far apart but same file).
    std::set<std::string> hash_ordered;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!(IsIdent(toks[i], "unordered_map") ||
            IsIdent(toks[i], "unordered_set"))) {
        continue;
      }
      if (!IsPunct(toks[i + 1], "<")) continue;
      size_t j = i + 1;
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (IsPunct(toks[j], "<")) ++depth;
        if (IsPunct(toks[j], ">") && --depth == 0) break;
      }
      if (j >= toks.size()) continue;
      size_t k = j + 1;
      if (k < toks.size() && IsPunct(toks[k], "&")) ++k;
      if (k + 1 < toks.size() && toks[k].kind == TokKind::kIdentifier &&
          toks[k + 1].kind == TokKind::kPunct &&
          (toks[k + 1].text == ";" || toks[k + 1].text == "=" ||
           toks[k + 1].text == "{" || toks[k + 1].text == "(")) {
        hash_ordered.insert(toks[k].text);
      }
    }

    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;

      if ((t.text == "rand" || t.text == "srand") && PlainCall(toks, i)) {
        Report(file, t.line, "rand",
               "global C RNG; use a seeded common/random.h Rng", allow,
               findings);
      } else if ((t.text == "time" || t.text == "clock" ||
                  t.text == "gettimeofday") &&
                 PlainCall(toks, i)) {
        Report(file, t.line, "time",
               "wall/CPU clock in a result-producing layer", allow,
               findings);
      } else if (t.text == "random_device" && i >= 2 &&
                 IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std")) {
        Report(file, t.line, "random_device",
               "hardware entropy; results must derive from the key", allow,
               findings);
      } else if (t.text == "chrono" && i >= 2 && i + 2 < toks.size() &&
                 IsPunct(toks[i - 1], "::") && IsIdent(toks[i - 2], "std") &&
                 IsPunct(toks[i + 1], "::") &&
                 (IsIdent(toks[i + 2], "system_clock") ||
                  IsIdent(toks[i + 2], "steady_clock") ||
                  IsIdent(toks[i + 2], "high_resolution_clock"))) {
        Report(file, t.line, "chrono_clock",
               "clock reads must never steer results (timing lives in "
               "bench/)",
               allow, findings);
      } else if ((t.text == "map" || t.text == "set" ||
                  t.text == "multimap" || t.text == "multiset") &&
                 i >= 2 && IsPunct(toks[i - 1], "::") &&
                 IsIdent(toks[i - 2], "std") && i + 1 < toks.size() &&
                 IsPunct(toks[i + 1], "<")) {
        // New rule (impossible for the regex lint): pointer-keyed
        // ordered containers — iteration order is the allocator's.
        size_t j = i + 2;
        int depth = 1;
        size_t last_meaningful = 0;
        for (; j < toks.size(); ++j) {
          if (IsPunct(toks[j], "<")) ++depth;
          if (IsPunct(toks[j], ">") && --depth == 0) break;
          if (IsPunct(toks[j], ",") && depth == 1) break;
          last_meaningful = j;
        }
        if (last_meaningful != 0 && IsPunct(toks[last_meaningful], "*")) {
          Report(file, t.line, "pointer_key",
                 "pointer-keyed std::" + t.text +
                     " — iteration order follows allocation addresses, "
                     "which vary run to run; key by a stable id",
                 allow, findings);
        }
      } else if (t.text == "for" && PlainCall(toks, i)) {
        // Range-for over a hash-ordered container declared in this file.
        size_t close = SkipBalanced(toks, i + 1, "(", ")");
        if (close == 0 || close - 1 >= toks.size()) continue;
        size_t end = close - 1;  // the ')'
        bool plain_for = false;
        size_t colon = 0;
        int depth = 0;
        for (size_t j = i + 2; j < end; ++j) {
          if (IsPunct(toks[j], "(")) ++depth;
          if (IsPunct(toks[j], ")")) --depth;
          if (depth == 0 && IsPunct(toks[j], ";")) plain_for = true;
          if (depth == 0 && IsPunct(toks[j], ":") && colon == 0) colon = j;
        }
        if (plain_for || colon == 0) continue;
        // Range expression must be (*|&)* <ident> — exactly like the
        // python lint, which only matched bare variables.
        size_t j = colon + 1;
        while (j < end && (IsPunct(toks[j], "*") || IsPunct(toks[j], "&"))) {
          ++j;
        }
        if (j + 1 != end || toks[j].kind != TokKind::kIdentifier) continue;
        const std::string& var = toks[j].text;
        if (!hash_ordered.count(var)) continue;
        std::string key = file.path + ":" + var;
        if (allow->Claim(key)) continue;
        findings->push_back(
            {"determinism", file.path, toks[j].line, key,
             "range-for over hash-ordered '" + var +
                 "' — iteration order may leak into output; sort, or "
                 "allowlist with a justification"});
      }
    }
  }
}

// --------------------------------------------------------------- oracle

namespace {

/// A candidate function declaration `Name(...)` in a header: the token
/// before the name must read like the end of a return type (identifier,
/// `>`, `*`, `&`) and not like a call site (`return x`, `= f(...)`,
/// `obj.f(`, `ns::f(`).
bool LooksLikeDeclaration(const std::vector<Token>& toks, size_t i) {
  if (i == 0) return false;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokKind::kIdentifier) {
    return prev.text != "return" && prev.text != "new" &&
           prev.text != "throw" && prev.text != "else" &&
           prev.text != "case" && prev.text != "co_return" &&
           prev.text != "operator" && prev.text != "goto";
  }
  return IsPunct(prev, ">") || IsPunct(prev, "*") || IsPunct(prev, "&");
}

}  // namespace

void CheckOracle(const std::vector<LexedFile>& code,
                 const std::vector<LexedFile>& tests, Allowlist* allow,
                 std::vector<Finding>* findings) {
  struct DeclSite {
    std::string file;
    int line = 0;
  };
  // name -> first ExecContext-taking declaration site
  std::map<std::string, DeclSite> exec_decls;
  std::set<std::string> all_decls;     // every declared name
  std::set<std::string> serial_decls;  // names with a non-exec overload

  for (const LexedFile& file : code) {
    if (!StartsWith(file.path, "src/") || !EndsWith(file.path, ".h")) {
      continue;
    }
    const std::vector<Token>& toks = file.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdentifier ||
          !IsPunct(toks[i + 1], "(") || !LooksLikeDeclaration(toks, i)) {
        continue;
      }
      size_t close = SkipBalanced(toks, i + 1, "(", ")");
      bool takes_exec = false;
      for (size_t j = i + 2; j + 1 < close; ++j) {
        if (IsIdent(toks[j], "ExecContext")) takes_exec = true;
      }
      all_decls.insert(toks[i].text);
      if (takes_exec) {
        exec_decls.emplace(toks[i].text, DeclSite{file.path, toks[i].line});
      } else {
        serial_decls.insert(toks[i].text);
      }
    }
  }

  // Identifier universe of tests/ — an oracle must be exercised there.
  std::set<std::string> test_idents;
  for (const LexedFile& file : tests) {
    for (const Token& t : file.tokens) {
      if (t.kind == TokKind::kIdentifier) test_idents.insert(t.text);
    }
  }

  for (const auto& [name, site] : exec_decls) {
    std::string sibling;
    if (all_decls.count(name + "Reference")) {
      sibling = name + "Reference";
    } else if (serial_decls.count(name)) {
      sibling = name;  // serial overload is the oracle
    }
    if (sibling.empty()) {
      if (allow->Claim(name)) continue;
      findings->push_back(
          {"oracle", site.file, site.line, name,
           "'" + name + "' takes ExecContext but has no '" + name +
               "Reference' sibling and no serial overload — every "
               "parallel path needs a serial oracle (DESIGN.md §12)"});
      continue;
    }
    if (!test_idents.count(sibling)) {
      if (allow->Claim(name)) continue;
      findings->push_back(
          {"oracle", site.file, site.line, name,
           "oracle '" + sibling + "' for '" + name +
               "' is never referenced from tests/ — an unexercised "
               "oracle proves nothing; add an identity test"});
    }
  }
}

// -------------------------------------------------------- identity_gate

void CheckIdentityGate(const std::vector<LexedFile>& code, Allowlist* allow,
                       std::vector<Finding>* findings) {
  for (const LexedFile& file : code) {
    const std::string& p = file.path;
    if (!StartsWith(p, "bench/bench_") || !EndsWith(p, ".cc")) continue;
    bool emits_bench_json = false;
    bool uses_gate = false;
    for (const Token& t : file.tokens) {
      if (t.kind == TokKind::kString &&
          t.text.find("BENCH_") != std::string::npos &&
          t.text.find(".json") != std::string::npos) {
        emits_bench_json = true;
      }
      if (IsIdent(t, "IdentityGate")) uses_gate = true;
    }
    if (emits_bench_json && !uses_gate) {
      if (allow->Claim(p)) continue;
      findings->push_back(
          {"identity_gate", p, 0, p,
           "emits a BENCH_*.json artifact but never runs IdentityGate "
           "(bench_common.h) — CI's fail-on-mismatch policy needs one "
           "auditable gate"});
    }
  }
}

}  // namespace wmlint
