#ifndef FREQYWM_TOOLS_WMLINT_CONFIG_H_
#define FREQYWM_TOOLS_WMLINT_CONFIG_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "wmlint/finding.h"

namespace wmlint {

/// An audited allowlist (DESIGN.md §12). One entry per line; `#` starts
/// a comment; blank lines separate rationale blocks. Every entry must
/// carry a written rationale — either an inline `# ...` comment or a
/// comment block between the previous blank line and the entry — and
/// every entry must be *claimed* by a real finding during the run:
/// entries nobody claims are reported stale, so an allowlist entry can
/// never outlive the code it excuses.
class Allowlist {
 public:
  /// Parses `content` of the allowlist at repo-relative `path`.
  /// Entries without a rationale become `config` findings. A missing
  /// file parses as an empty allowlist (pass `""`).
  static Allowlist Parse(const std::string& path, const std::string& content,
                         std::vector<Finding>* findings);

  /// True (and the entry is marked used) when `key` is allowlisted.
  bool Claim(const std::string& key);

  /// Appends one `config` finding per never-claimed entry.
  void ReportStale(std::vector<Finding>* findings) const;

  size_t size() const { return entries_.size(); }
  const std::string& path() const { return path_; }

 private:
  struct Entry {
    int line = 0;
    bool used = false;
  };
  std::string path_;
  std::map<std::string, Entry> entries_;
};

/// The layer-DAG config parsed from tools/wmlint/layers.txt. Grammar
/// (one statement per line, `#` comments):
///
///   layer NAME            — declare a layer (a top-level directory of
///                           src/, plus `bench`)
///   stratum A B ...       — declare layers that are one strongly
///                           connected component: includes among them
///                           are implicitly legal (the repo's
///                           core<->exec<->api knot, ROADMAP §open)
///   allow A -> B          — A may include from B
///   forbid A -> B         — A must never include from B, even via a
///                           later `allow` (conflict = config error)
///
/// Parse-time validation: every referenced layer must be declared; the
/// declared allow edges must form a DAG over layers (mutual dependence
/// is only legal inside an explicit `stratum`, never emergent from
/// allow edges); an allow edge inside a stratum is redundant and
/// rejected.
/// The config doubles as the layering check's allowlist: allow edges no
/// include uses are reported stale.
class LayerConfig {
 public:
  static LayerConfig Parse(const std::string& path, const std::string& content,
                           std::vector<Finding>* findings);

  bool has_layer(const std::string& name) const {
    return layers_.count(name) != 0;
  }

  /// Judges the include edge `from` -> `to`. Returns "" when legal
  /// (same layer, same stratum, or a matching `allow`, which is marked
  /// used); otherwise a message naming the missing or forbidden edge.
  std::string JudgeEdge(const std::string& from, const std::string& to);

  /// Appends one `config` finding per never-used allow edge.
  void ReportStale(std::vector<Finding>* findings) const;

  const std::string& path() const { return path_; }
  bool loaded() const { return loaded_; }

 private:
  std::string path_;
  bool loaded_ = false;
  std::set<std::string> layers_;
  std::map<std::string, std::string> stratum_of_;  // layer -> stratum rep
  struct AllowEdge {
    int line = 0;
    bool used = false;
  };
  std::map<std::pair<std::string, std::string>, AllowEdge> allow_;
  std::map<std::pair<std::string, std::string>, int> forbid_;
};

}  // namespace wmlint

#endif  // FREQYWM_TOOLS_WMLINT_CONFIG_H_
