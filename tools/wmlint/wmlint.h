#ifndef FREQYWM_TOOLS_WMLINT_WMLINT_H_
#define FREQYWM_TOOLS_WMLINT_WMLINT_H_

#include <string>
#include <vector>

#include "wmlint/finding.h"

namespace wmlint {

/// The registered check names, in report order.
const std::vector<std::string>& AllCheckNames();

struct RunOptions {
  /// Repo root: src/ + bench/ are scanned, tests/ feeds the oracle
  /// check's reference universe.
  std::string root;
  /// Directory holding layers.txt and the per-check allowlists.
  /// Defaults to <root>/tools/wmlint when empty.
  std::string config_dir;
  /// Subset of AllCheckNames() to run; empty means all.
  std::vector<std::string> checks;
};

struct RunResult {
  std::vector<Finding> findings;  // sorted by FindingLess
  size_t files_scanned = 0;
  std::vector<std::string> checks_run;
};

/// Lexes the tree and runs the selected checks, including the stale-
/// entry audit of every loaded allowlist. Never throws; unreadable
/// files and missing configs surface as `config` findings.
RunResult Run(const RunOptions& options);

/// Human report: one `file:line: [check] message` per finding plus a
/// verdict line.
std::string RenderText(const RunResult& result);

/// Machine report: {"status", "files_scanned", "checks", "findings"}.
std::string RenderJson(const RunResult& result);

}  // namespace wmlint

#endif  // FREQYWM_TOOLS_WMLINT_WMLINT_H_
