#ifndef FREQYWM_TOOLS_WMLINT_FINDING_H_
#define FREQYWM_TOOLS_WMLINT_FINDING_H_

#include <string>
#include <vector>

namespace wmlint {

/// One analyzer finding. Emitted as human text
/// (`file:line: [check] message`) and as one JSON object; see
/// DESIGN.md §12.
struct Finding {
  /// Which check produced it: "layers", "guarded_by", "determinism",
  /// "oracle", "identity_gate" — or "config" for malformed / stale
  /// config and allowlist files (config findings are never
  /// allowlistable).
  std::string check;
  /// Repo-relative path with forward slashes; for config findings, the
  /// config file itself.
  std::string file;
  int line = 0;  // 1-based; 0 when no single line applies
  /// Allowlist key the finding can be suppressed under, or "" when the
  /// finding is not suppressible (config errors, stale entries).
  std::string key;
  std::string message;
};

/// Stable order for reports: by file, then line, then check, then key.
bool FindingLess(const Finding& a, const Finding& b);

}  // namespace wmlint

#endif  // FREQYWM_TOOLS_WMLINT_FINDING_H_
