#include "wmlint/wmlint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "wmlint/checks.h"
#include "wmlint/config.h"
#include "wmlint/lexer.h"

namespace fs = std::filesystem;

namespace wmlint {

namespace {

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Repo-relative forward-slash path of `p` under `root`; falls back to
/// the generic (already forward-slash) form when not under root.
std::string RelPath(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

bool IsSourceFile(const fs::path& p) {
  return p.extension() == ".h" || p.extension() == ".cc";
}

/// All .h/.cc files under root/<dir>, lexed, sorted by repo-relative
/// path so reports (and stale-entry claims) are byte-stable.
void LexTree(const fs::path& root, const std::string& dir,
             std::vector<LexedFile>* out, std::vector<Finding>* findings) {
  fs::path base = root / dir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return;
  std::vector<fs::path> paths;
  for (const auto& entry :
       fs::recursive_directory_iterator(base, ec)) {
    if (entry.is_regular_file() && IsSourceFile(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    std::string rel = RelPath(root, p);
    std::string content;
    if (!ReadFile(p, &content)) {
      findings->push_back({"config", rel, 0, "", "unreadable file"});
      continue;
    }
    out->push_back(LexSource(rel, content));
  }
}

bool CheckEnabled(const std::vector<std::string>& selected,
                  const std::string& name) {
  return selected.empty() ||
         std::find(selected.begin(), selected.end(), name) != selected.end();
}

/// Loads an allowlist from <config_dir>/<name>; missing file == empty
/// allowlist (checks that need no exceptions need no file).
Allowlist LoadAllowlist(const fs::path& root, const fs::path& config_dir,
                        const std::string& name,
                        std::vector<Finding>* findings) {
  fs::path p = config_dir / name;
  std::string content;
  std::error_code ec;
  if (fs::exists(p, ec)) ReadFile(p, &content);
  return Allowlist::Parse(RelPath(root, p), content, findings);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const std::vector<std::string>& AllCheckNames() {
  static const std::vector<std::string> kNames = {
      "layers", "guarded_by", "determinism", "oracle", "identity_gate"};
  return kNames;
}

RunResult Run(const RunOptions& options) {
  RunResult result;
  fs::path root(options.root.empty() ? "." : options.root);
  fs::path config_dir(options.config_dir.empty()
                          ? (root / "tools" / "wmlint")
                          : fs::path(options.config_dir));
  for (const std::string& name : AllCheckNames()) {
    if (CheckEnabled(options.checks, name)) result.checks_run.push_back(name);
  }

  std::vector<LexedFile> code;
  std::vector<LexedFile> tests;
  LexTree(root, "src", &code, &result.findings);
  LexTree(root, "bench", &code, &result.findings);
  LexTree(root, "tests", &tests, &result.findings);
  result.files_scanned = code.size() + tests.size();

  if (CheckEnabled(options.checks, "layers")) {
    fs::path p = config_dir / "layers.txt";
    LayerConfig layers;
    std::string content;
    std::error_code ec;
    if (fs::exists(p, ec) && ReadFile(p, &content)) {
      layers = LayerConfig::Parse(RelPath(root, p), content,
                                  &result.findings);
    } else {
      layers = LayerConfig();  // loaded() == false -> config finding
      // Parse was never run; give the missing-file finding a path.
      result.findings.push_back(
          {"config", RelPath(root, p), 0, "",
           "layers.txt missing — the layering check cannot run"});
    }
    if (layers.loaded()) {
      CheckLayers(code, &layers, &result.findings);
      layers.ReportStale(&result.findings);
    }
  }
  if (CheckEnabled(options.checks, "guarded_by")) {
    Allowlist allow = LoadAllowlist(root, config_dir,
                                    "guarded_by_allowlist.txt",
                                    &result.findings);
    CheckGuardedBy(code, &allow, &result.findings);
    allow.ReportStale(&result.findings);
  }
  if (CheckEnabled(options.checks, "determinism")) {
    Allowlist allow = LoadAllowlist(root, config_dir,
                                    "determinism_allowlist.txt",
                                    &result.findings);
    CheckDeterminism(code, &allow, &result.findings);
    allow.ReportStale(&result.findings);
  }
  if (CheckEnabled(options.checks, "oracle")) {
    Allowlist allow = LoadAllowlist(root, config_dir,
                                    "oracle_allowlist.txt",
                                    &result.findings);
    CheckOracle(code, tests, &allow, &result.findings);
    allow.ReportStale(&result.findings);
  }
  if (CheckEnabled(options.checks, "identity_gate")) {
    Allowlist allow = LoadAllowlist(root, config_dir,
                                    "identity_gate_allowlist.txt",
                                    &result.findings);
    CheckIdentityGate(code, &allow, &result.findings);
    allow.ReportStale(&result.findings);
  }

  std::sort(result.findings.begin(), result.findings.end(), FindingLess);
  return result;
}

std::string RenderText(const RunResult& result) {
  std::ostringstream out;
  for (const Finding& f : result.findings) {
    out << f.file;
    if (f.line > 0) out << ":" << f.line;
    out << ": [" << f.check << "] " << f.message << "\n";
  }
  if (result.findings.empty()) {
    out << "wmlint: OK (" << result.files_scanned << " files; checks:";
    for (const std::string& c : result.checks_run) out << " " << c;
    out << ")\n";
  } else {
    out << "wmlint: FAIL (" << result.findings.size() << " finding(s))\n";
  }
  return out.str();
}

std::string RenderJson(const RunResult& result) {
  std::ostringstream out;
  out << "{\n  \"status\": \""
      << (result.findings.empty() ? "ok" : "fail") << "\",\n"
      << "  \"files_scanned\": " << result.files_scanned << ",\n"
      << "  \"checks\": [";
  for (size_t i = 0; i < result.checks_run.size(); ++i) {
    out << (i ? ", " : "") << "\"" << JsonEscape(result.checks_run[i])
        << "\"";
  }
  out << "],\n  \"findings\": [";
  for (size_t i = 0; i < result.findings.size(); ++i) {
    const Finding& f = result.findings[i];
    out << (i ? "," : "") << "\n    {\"check\": \"" << JsonEscape(f.check)
        << "\", \"file\": \"" << JsonEscape(f.file)
        << "\", \"line\": " << f.line << ", \"key\": \""
        << JsonEscape(f.key) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  if (!result.findings.empty()) out << "\n  ";
  out << "]\n}\n";
  return out.str();
}

}  // namespace wmlint
