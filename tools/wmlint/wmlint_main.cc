// wmlint — the in-tree invariant analyzer (DESIGN.md §12).
//
//   wmlint --root DIR [--config DIR] [--json FILE] [--check NAME]...
//
// Scans <root>/src and <root>/bench (tests/ feeds the oracle check),
// prints one line per finding and a verdict, and exits 0 clean / 1 on
// findings / 2 on usage errors. `--check` may repeat to run a subset;
// `--json` additionally writes the machine-readable report.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "wmlint/wmlint.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --root DIR [--config DIR] [--json FILE] [--check NAME]...\n"
            << "checks:";
  for (const std::string& c : wmlint::AllCheckNames()) std::cerr << " " << c;
  std::cerr << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  wmlint::RunOptions options;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      options.root = v;
    } else if (arg == "--config") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      options.config_dir = v;
    } else if (arg == "--json") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      json_path = v;
    } else if (arg == "--check") {
      const char* v = value();
      if (!v) return Usage(argv[0]);
      const auto& names = wmlint::AllCheckNames();
      if (std::find(names.begin(), names.end(), v) == names.end()) {
        std::cerr << "wmlint: unknown check '" << v << "'\n";
        return Usage(argv[0]);
      }
      options.checks.push_back(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.root.empty()) return Usage(argv[0]);

  wmlint::RunResult result = wmlint::Run(options);
  std::cout << wmlint::RenderText(result);
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "wmlint: cannot write " << json_path << "\n";
      return 2;
    }
    out << wmlint::RenderJson(result);
  }
  return result.findings.empty() ? 0 : 1;
}
