#include "stats/rank.h"

#include <gtest/gtest.h>

namespace freqywm {
namespace {

Histogram MakeHist(std::vector<HistogramEntry> entries) {
  auto h = Histogram::FromCounts(std::move(entries));
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

TEST(SpearmanTest, PerfectAgreement) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({5, 4, 3, 2, 1}, {50, 40, 30, 20, 10}),
                   1.0);
}

TEST(SpearmanTest, PerfectDisagreement) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}), -1.0,
              1e-12);
}

TEST(SpearmanTest, TiesGetAverageRanks) {
  // With ties the coefficient stays defined and within [-1, 1].
  double rho = SpearmanCorrelation({1, 1, 2, 3}, {2, 1, 1, 3});
  EXPECT_GE(rho, -1.0);
  EXPECT_LE(rho, 1.0);
}

TEST(SpearmanTest, ConstantSeriesIsOne) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({2, 2, 2}, {1, 2, 3}), 1.0);
}

TEST(KendallTest, PerfectAgreementAndDisagreement) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3}, {10, 20, 30}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3}, {30, 20, 10}), -1.0);
}

TEST(KendallTest, PartialAgreement) {
  double tau = KendallTau({1, 2, 3, 4}, {1, 3, 2, 4});
  // 5 concordant, 1 discordant of 6 pairs -> (5-1)/6.
  EXPECT_NEAR(tau, 4.0 / 6.0, 1e-12);
}

TEST(CompareRankingsTest, IdenticalHistogramsUnchanged) {
  Histogram h = MakeHist({{"a", 30}, {"b", 20}, {"c", 10}});
  RankComparison cmp = CompareRankings(h, h);
  EXPECT_EQ(cmp.changed, 0u);
  EXPECT_EQ(cmp.compared, 3u);
  EXPECT_DOUBLE_EQ(cmp.spearman, 1.0);
}

TEST(CompareRankingsTest, FrequencyChangeWithoutRankChange) {
  Histogram a = MakeHist({{"a", 30}, {"b", 20}, {"c", 10}});
  Histogram b = MakeHist({{"a", 29}, {"b", 21}, {"c", 10}});
  RankComparison cmp = CompareRankings(a, b);
  EXPECT_EQ(cmp.changed, 0u);
  EXPECT_DOUBLE_EQ(cmp.spearman, 1.0);
}

TEST(CompareRankingsTest, SwapDetected) {
  Histogram a = MakeHist({{"a", 30}, {"b", 20}, {"c", 10}});
  Histogram b = MakeHist({{"a", 30}, {"b", 9}, {"c", 10}});
  RankComparison cmp = CompareRankings(a, b);
  EXPECT_EQ(cmp.changed, 2u);  // b and c swapped positions
  EXPECT_LT(cmp.spearman, 1.0);
}

TEST(CompareRankingsTest, MissingTokensExcluded) {
  Histogram a = MakeHist({{"a", 30}, {"b", 20}, {"c", 10}});
  Histogram b = MakeHist({{"a", 30}, {"b", 20}});
  RankComparison cmp = CompareRankings(a, b);
  EXPECT_EQ(cmp.compared, 2u);
}

TEST(CompareRankingsTest, TotalScrambleHasManyChanges) {
  // Reverse all counts: every token (except possibly middle) moves.
  std::vector<HistogramEntry> orig, rev;
  for (int i = 0; i < 20; ++i) {
    orig.push_back({"t" + std::to_string(i),
                    static_cast<uint64_t>(1000 - i * 10)});
    rev.push_back({"t" + std::to_string(i),
                   static_cast<uint64_t>(1000 - (19 - i) * 10)});
  }
  RankComparison cmp = CompareRankings(MakeHist(orig), MakeHist(rev));
  EXPECT_EQ(cmp.changed, 20u);
  EXPECT_NEAR(cmp.spearman, -1.0, 1e-9);
}

}  // namespace
}  // namespace freqywm
