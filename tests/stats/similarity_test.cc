#include "stats/similarity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

namespace freqywm {
namespace {

Histogram MakeHist(std::vector<HistogramEntry> entries) {
  auto h = Histogram::FromCounts(std::move(entries));
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

TEST(CosineTest, IdenticalVectorsAreOne) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(CosineTest, ScaledVectorsAreOne) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(CosineTest, OrthogonalVectorsAreZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
}

TEST(CosineTest, ZeroVectorEdgeCases) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 1}, {0, 0}), 0.0);
}

TEST(CosineTest, DifferentLengthsZeroPad) {
  EXPECT_NEAR(CosineSimilarity({3, 4}, {3, 4, 0}),
              CosineSimilarity({3, 4, 0}, {3, 4, 0}), 1e-12);
}

TEST(HistogramSimilarityTest, IdenticalHistograms) {
  Histogram h = MakeHist({{"a", 10}, {"b", 5}});
  EXPECT_DOUBLE_EQ(HistogramSimilarity(h, h), 1.0);
  EXPECT_DOUBLE_EQ(HistogramSimilarityPercent(h, h), 100.0);
}

TEST(HistogramSimilarityTest, AlignsByTokenNotRank) {
  // Same multiset of counts but swapped tokens: similarity must drop.
  Histogram a = MakeHist({{"x", 100}, {"y", 1}});
  Histogram b = MakeHist({{"x", 1}, {"y", 100}});
  EXPECT_LT(HistogramSimilarity(a, b), 0.1);
}

TEST(HistogramSimilarityTest, DisjointTokensAreOrthogonal) {
  Histogram a = MakeHist({{"a", 5}});
  Histogram b = MakeHist({{"b", 5}});
  EXPECT_DOUBLE_EQ(HistogramSimilarity(a, b), 0.0);
}

TEST(HistogramSimilarityTest, SmallPerturbationStaysNearOne) {
  Histogram a = MakeHist({{"a", 1098}, {"b", 980}, {"c", 674}, {"d", 537}});
  Histogram b = MakeHist({{"a", 1075}, {"b", 981}, {"c", 673}, {"d", 559}});
  EXPECT_GT(HistogramSimilarity(a, b), 0.999);
}

TEST(HistogramSimilarityTest, NormalizedL1Metric) {
  Histogram a = MakeHist({{"a", 10}});
  Histogram b = MakeHist({{"a", 10}});
  EXPECT_DOUBLE_EQ(
      HistogramSimilarity(a, b, SimilarityMetric::kNormalizedL1), 1.0);
  Histogram c = MakeHist({{"a", 30}});
  // |30-10| / (30+10) = 0.5 -> similarity 0.5.
  EXPECT_DOUBLE_EQ(
      HistogramSimilarity(a, c, SimilarityMetric::kNormalizedL1), 0.5);
}

TEST(HistogramSimilarityTest, MinMaxRatioMetric) {
  Histogram a = MakeHist({{"a", 10}, {"b", 20}});
  Histogram b = MakeHist({{"a", 20}, {"b", 10}});
  // sum(min)=20, sum(max)=40.
  EXPECT_DOUBLE_EQ(
      HistogramSimilarity(a, b, SimilarityMetric::kMinMaxRatio), 0.5);
}

TEST(IncrementalCosineTest, StartsAtOne) {
  Histogram h = MakeHist({{"a", 100}, {"b", 50}});
  IncrementalCosine c(h);
  EXPECT_DOUBLE_EQ(c.Similarity(), 1.0);
  EXPECT_DOUBLE_EQ(c.SimilarityPercent(), 100.0);
}

TEST(IncrementalCosineTest, MatchesFullRecomputation) {
  Histogram h =
      MakeHist({{"a", 1098}, {"b", 980}, {"c", 674}, {"d", 537}, {"e", 64}});
  IncrementalCosine inc(h);
  inc.ApplyDelta(0, -23);
  inc.ApplyDelta(3, +22);
  inc.ApplyDelta(4, +1);

  Histogram modified = h;
  ASSERT_TRUE(modified.AddDelta("a", -23).ok());
  ASSERT_TRUE(modified.AddDelta("d", +22).ok());
  ASSERT_TRUE(modified.AddDelta("e", +1).ok());
  EXPECT_NEAR(inc.Similarity(), HistogramSimilarity(h, modified), 1e-12);
}

TEST(IncrementalCosineTest, ProbeDoesNotCommit) {
  Histogram h = MakeHist({{"a", 100}, {"b", 50}, {"c", 25}});
  IncrementalCosine inc(h);
  double probed = inc.ProbePairDelta(0, -30, 2, +30);
  EXPECT_LT(probed, 1.0);
  EXPECT_DOUBLE_EQ(inc.Similarity(), 1.0);  // untouched
}

TEST(IncrementalCosineTest, ProbeEqualsApply) {
  Histogram h = MakeHist({{"a", 500}, {"b", 250}, {"c", 125}, {"d", 60}});
  IncrementalCosine inc(h);
  inc.ApplyDelta(1, -7);
  double probed = inc.ProbePairDelta(0, -10, 3, +9);
  inc.ApplyDelta(0, -10);
  inc.ApplyDelta(3, +9);
  EXPECT_NEAR(probed, inc.Similarity(), 1e-12);
}

TEST(IncrementalCosineTest, SequenceOfPairsMatchesBatch) {
  Histogram h = MakeHist(
      {{"t0", 9000}, {"t1", 7000}, {"t2", 5000}, {"t3", 3000}, {"t4", 1000}});
  IncrementalCosine inc(h);
  Histogram modified = h;
  struct Step {
    size_t rank;
    int64_t delta;
  };
  for (const Step& s : std::vector<Step>{
           {0, 120}, {1, -80}, {2, 33}, {3, -12}, {4, 5}}) {
    inc.ApplyDelta(s.rank, s.delta);
    ASSERT_TRUE(modified.AddDelta(h.entry(s.rank).token, s.delta).ok());
  }
  EXPECT_NEAR(inc.Similarity(), HistogramSimilarity(h, modified), 1e-12);
}

// Regression guard (DESIGN.md §11): counts near the uint64 ceiling must
// flow through the accumulators as doubles — an integer dot product or
// squared norm at this magnitude is signed-overflow UB the CI UBSan job
// catches. Results only need to stay finite and in range.
TEST(IncrementalCosineTest, ExtremeCountsDoNotOverflow) {
  const uint64_t huge = 0xfff0000000000000ULL;
  Histogram h = MakeHist({{"a", huge}, {"b", huge / 2}, {"c", 1}});
  IncrementalCosine inc(h);
  EXPECT_NEAR(inc.Similarity(), 1.0, 1e-12);

  inc.ApplyDelta(2, static_cast<int64_t>(1) << 62);
  double sim = inc.Similarity();
  EXPECT_TRUE(std::isfinite(sim));
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0 + 1e-12);

  double probe = inc.ProbePairDelta(0, -(static_cast<int64_t>(1) << 60), 1,
                                    static_cast<int64_t>(1) << 60);
  EXPECT_TRUE(std::isfinite(probe));
}

}  // namespace
}  // namespace freqywm
