#include "stats/poisson_binomial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace freqywm {
namespace {

double BinomialPmf(size_t n, size_t k, double p) {
  double logc = std::lgamma(static_cast<double>(n) + 1) -
                std::lgamma(static_cast<double>(k) + 1) -
                std::lgamma(static_cast<double>(n - k) + 1);
  return std::exp(logc + static_cast<double>(k) * std::log(p) +
                  static_cast<double>(n - k) * std::log1p(-p));
}

TEST(PoissonBinomialTest, SingleTrial) {
  PoissonBinomial pb({0.3});
  EXPECT_NEAR(pb.Pmf(0), 0.7, 1e-9);
  EXPECT_NEAR(pb.Pmf(1), 0.3, 1e-9);
  EXPECT_NEAR(pb.Survival(1), 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(pb.Survival(0), 1.0);
}

TEST(PoissonBinomialTest, MatchesBinomialForEqualProbabilities) {
  const size_t n = 20;
  const double p = 0.37;
  PoissonBinomial pb(std::vector<double>(n, p));
  for (size_t k = 0; k <= n; ++k) {
    EXPECT_NEAR(pb.Pmf(k), BinomialPmf(n, k, p), 1e-9) << "k=" << k;
  }
}

TEST(PoissonBinomialTest, PmfSumsToOne) {
  PoissonBinomial pb({0.1, 0.9, 0.5, 0.33, 0.67, 0.05});
  double sum = 0;
  for (size_t k = 0; k <= pb.n(); ++k) sum += pb.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PoissonBinomialTest, MeanIsSumOfProbabilities) {
  std::vector<double> ps{0.2, 0.4, 0.9};
  PoissonBinomial pb(ps);
  EXPECT_NEAR(pb.Mean(), 1.5, 1e-12);
  // E[S] from the PMF must agree.
  double mean = 0;
  for (size_t k = 0; k <= pb.n(); ++k) {
    mean += static_cast<double>(k) * pb.Pmf(k);
  }
  EXPECT_NEAR(mean, 1.5, 1e-9);
}

TEST(PoissonBinomialTest, DeterministicCases) {
  PoissonBinomial all_ones(std::vector<double>(5, 1.0));
  EXPECT_NEAR(all_ones.Pmf(5), 1.0, 1e-9);
  EXPECT_NEAR(all_ones.Survival(5), 1.0, 1e-9);

  PoissonBinomial all_zeros(std::vector<double>(5, 0.0));
  EXPECT_NEAR(all_zeros.Pmf(0), 1.0, 1e-9);
  EXPECT_NEAR(all_zeros.Survival(1), 0.0, 1e-9);
}

TEST(PoissonBinomialTest, SurvivalMonotoneDecreasingInK) {
  PoissonBinomial pb(std::vector<double>(50, 0.3));
  for (size_t k = 1; k <= 50; ++k) {
    EXPECT_LE(pb.Survival(k), pb.Survival(k - 1) + 1e-12);
  }
}

TEST(PoissonBinomialTest, SurvivalBeyondNIsZero) {
  PoissonBinomial pb({0.5, 0.5});
  EXPECT_NEAR(pb.Survival(3), 0.0, 1e-12);
  EXPECT_NEAR(pb.Pmf(99), 0.0, 1e-12);
}

TEST(PoissonBinomialTest, ProbabilitiesClampedToUnitInterval) {
  PoissonBinomial pb({-0.5, 1.5});
  EXPECT_NEAR(pb.Pmf(1), 1.0, 1e-9);  // exactly the clamped-to-1 trial
}

// The paper's §III-B4 figure: with n = 50 uniform p_m the survival
// probability reaches 0 as k approaches 50.
TEST(PoissonBinomialTest, PaperFigureBehaviorN50) {
  std::vector<double> ps(50);
  for (size_t i = 0; i < 50; ++i) {
    ps[i] = static_cast<double>(i + 1) / 51.0;  // spread over (0,1)
  }
  PoissonBinomial pb(ps);
  EXPECT_DOUBLE_EQ(pb.Survival(0), 1.0);
  EXPECT_GT(pb.Survival(10), 0.9);   // mean is ~25
  EXPECT_LT(pb.Survival(45), 1e-6);  // collapses near n
  EXPECT_LT(pb.Survival(50), 1e-12);
}

TEST(MarkovBoundTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(MarkovSurvivalBound(5.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(MarkovSurvivalBound(5.0, 10), 0.5);
  EXPECT_DOUBLE_EQ(MarkovSurvivalBound(5.0, 5), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(MarkovSurvivalBound(0.0, 3), 0.0);
}

TEST(MarkovBoundTest, DominatesExactSurvival) {
  // Markov's inequality: P(S >= k) <= mu/k for every k >= 1.
  std::vector<double> ps{0.1, 0.2, 0.3, 0.15, 0.25, 0.05, 0.4};
  PoissonBinomial pb(ps);
  for (size_t k = 1; k <= ps.size(); ++k) {
    EXPECT_LE(pb.Survival(k), MarkovSurvivalBound(pb.Mean(), k) + 1e-12)
        << "k=" << k;
  }
}

TEST(PairFalsePositiveTest, CountsPassingResidues) {
  // residues {0..t} of s pass.
  EXPECT_DOUBLE_EQ(PairFalsePositiveProbability(0, 100), 0.01);
  EXPECT_DOUBLE_EQ(PairFalsePositiveProbability(9, 100), 0.1);
  EXPECT_DOUBLE_EQ(PairFalsePositiveProbability(99, 100), 1.0);
  EXPECT_DOUBLE_EQ(PairFalsePositiveProbability(200, 100), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(PairFalsePositiveProbability(0, 0), 1.0);      // degenerate
}

}  // namespace
}  // namespace freqywm
