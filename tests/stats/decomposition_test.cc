#include "stats/decomposition.h"

#include <gtest/gtest.h>

#include <cmath>

namespace freqywm {
namespace {

TEST(MeanStdDevTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5, 5, 5}), 0.0);
  EXPECT_NEAR(StdDev({1, 3}), 1.0, 1e-12);
}

TEST(RmsdTest, IdenticalIsZero) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredDifference({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(RmsdTest, KnownValue) {
  EXPECT_NEAR(RootMeanSquaredDifference({0, 0}, {3, 4}),
              std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
}

TEST(RmsdTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredDifference({}, {}), 0.0);
}

std::vector<double> MakeSyntheticSeries(size_t n, size_t period,
                                        double trend_slope,
                                        double season_amp) {
  std::vector<double> s(n);
  for (size_t t = 0; t < n; ++t) {
    double trend = 100.0 + trend_slope * static_cast<double>(t);
    double season = season_amp *
                    std::sin(2.0 * M_PI * static_cast<double>(t % period) /
                             static_cast<double>(period));
    s[t] = trend + season;
  }
  return s;
}

TEST(DecomposeTest, ComponentsSumToSeries) {
  auto series = MakeSyntheticSeries(120, 12, 0.5, 10.0);
  auto dec = DecomposeAdditive(series, 12);
  ASSERT_EQ(dec.trend.size(), series.size());
  for (size_t t = 0; t < series.size(); ++t) {
    EXPECT_NEAR(dec.trend[t] + dec.seasonal[t] + dec.residual[t], series[t],
                1e-9);
  }
}

TEST(DecomposeTest, RecoversLinearTrend) {
  auto series = MakeSyntheticSeries(240, 24, 0.8, 15.0);
  auto dec = DecomposeAdditive(series, 24);
  // Interior trend estimates should match the true line closely.
  for (size_t t = 30; t < 200; ++t) {
    double truth = 100.0 + 0.8 * static_cast<double>(t);
    EXPECT_NEAR(dec.trend[t], truth, 1.0) << "t=" << t;
  }
}

TEST(DecomposeTest, RecoversSeasonalAmplitude) {
  auto series = MakeSyntheticSeries(240, 24, 0.0, 15.0);
  auto dec = DecomposeAdditive(series, 24);
  double max_season = 0;
  for (double v : dec.seasonal) max_season = std::max(max_season, v);
  EXPECT_NEAR(max_season, 15.0, 1.0);
}

TEST(DecomposeTest, SeasonalSumsToZeroOverPeriod) {
  auto series = MakeSyntheticSeries(120, 12, 0.3, 8.0);
  auto dec = DecomposeAdditive(series, 12);
  double sum = 0;
  for (size_t ph = 0; ph < 12; ++ph) sum += dec.seasonal[ph];
  EXPECT_NEAR(sum, 0.0, 1e-9);
}

TEST(DecomposeTest, NoiseFreeSeriesHasTinyInteriorResidual) {
  auto series = MakeSyntheticSeries(240, 24, 0.5, 10.0);
  auto dec = DecomposeAdditive(series, 24);
  for (size_t t = 30; t < 210; ++t) {
    EXPECT_LT(std::abs(dec.residual[t]), 1.0) << "t=" << t;
  }
}

TEST(DecomposeTest, OddPeriodSupported) {
  auto series = MakeSyntheticSeries(70, 7, 0.2, 5.0);
  auto dec = DecomposeAdditive(series, 7);
  for (size_t t = 0; t < series.size(); ++t) {
    EXPECT_NEAR(dec.trend[t] + dec.seasonal[t] + dec.residual[t], series[t],
                1e-9);
  }
}

TEST(DecomposeTest, SeasonalPatternIsPeriodic) {
  auto series = MakeSyntheticSeries(96, 24, 0.1, 12.0);
  auto dec = DecomposeAdditive(series, 24);
  for (size_t t = 24; t < series.size(); ++t) {
    EXPECT_DOUBLE_EQ(dec.seasonal[t], dec.seasonal[t - 24]);
  }
}

}  // namespace
}  // namespace freqywm
