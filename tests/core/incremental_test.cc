#include "core/incremental.h"

#include <gtest/gtest.h>

#include "core/detect.h"
#include "core/watermark.h"
#include "datagen/power_law.h"

namespace freqywm {
namespace {

struct Fixture {
  Histogram watermarked;
  WatermarkSecrets secrets;
  size_t chosen = 0;
};

Fixture MakeFixture(uint64_t seed = 42) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = 200;
  spec.sample_size = 300000;
  spec.alpha = 0.6;
  Histogram original = GeneratePowerLawHistogram(spec, rng);
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = seed;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(original);
  EXPECT_TRUE(r.ok());
  return {std::move(r.value().watermarked),
          std::move(r.value().report.secrets),
          r.value().report.chosen_pairs};
}

TEST(RefreshTest, CleanWatermarkIsAllIntact) {
  Fixture f = MakeFixture(1);
  auto r = RefreshWatermark(f.watermarked, f.secrets, RefreshOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().report.pairs_intact, f.chosen);
  EXPECT_EQ(r.value().report.pairs_repaired, 0u);
  EXPECT_EQ(r.value().report.total_churn, 0u);
}

Histogram Drift(const Histogram& h, uint64_t seed, double fraction) {
  // Organic growth: every token gains Poisson-ish increments proportional
  // to its popularity.
  Rng rng(seed);
  Histogram out = h;
  for (const auto& e : h.entries()) {
    uint64_t extra = rng.UniformU64(
        1 + static_cast<uint64_t>(static_cast<double>(e.count) * fraction));
    (void)out.AddDelta(e.token, static_cast<int64_t>(extra));
  }
  return out;
}

TEST(RefreshTest, RepairsDriftedPairsAndRestoresDetection) {
  Fixture f = MakeFixture(2);
  Histogram drifted = Drift(f.watermarked, 7, 0.01);

  DetectOptions strict;
  strict.pair_threshold = 0;
  strict.min_pairs = f.chosen;
  EXPECT_FALSE(DetectWatermark(drifted, f.secrets, strict).accepted);

  auto r = RefreshWatermark(drifted, f.secrets, RefreshOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().report.pairs_repaired, 0u);

  // Every surviving pair verifies strictly on the refreshed histogram.
  DetectOptions after;
  after.pair_threshold = 0;
  after.min_pairs = r.value().secrets.pairs.size();
  DetectResult dr =
      DetectWatermark(r.value().refreshed, r.value().secrets, after);
  EXPECT_TRUE(dr.accepted);
  EXPECT_EQ(dr.pairs_verified, r.value().secrets.pairs.size());
}

TEST(RefreshTest, PreservesRankingOfDriftedData) {
  Fixture f = MakeFixture(3);
  Histogram drifted = Drift(f.watermarked, 8, 0.02);
  auto r = RefreshWatermark(drifted, f.secrets, RefreshOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().refreshed.IsSortedDescending());
}

TEST(RefreshTest, DroppedTokensAreRemovedFromSecrets) {
  Fixture f = MakeFixture(4);
  ASSERT_GE(f.secrets.pairs.size(), 2u);
  // Delete one watermarked token outright.
  Token victim = f.secrets.pairs[0].token_i;
  std::vector<HistogramEntry> entries;
  for (const auto& e : f.watermarked.entries()) {
    if (e.token != victim) entries.push_back(e);
  }
  auto reduced = Histogram::FromCounts(std::move(entries));
  ASSERT_TRUE(reduced.ok());

  auto r = RefreshWatermark(reduced.value(), f.secrets, RefreshOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().report.pairs_dropped, 1u);
  for (const auto& pair : r.value().secrets.pairs) {
    EXPECT_NE(pair.token_i, victim);
    EXPECT_NE(pair.token_j, victim);
  }
}

TEST(RefreshTest, ChurnBudgetZeroRepairsNothing) {
  Fixture f = MakeFixture(5);
  Histogram drifted = Drift(f.watermarked, 9, 0.02);
  RefreshOptions o;
  o.max_churn_percent = 0.0;
  auto r = RefreshWatermark(drifted, f.secrets, o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().report.pairs_repaired, 0u);
  EXPECT_EQ(r.value().report.total_churn, 0u);
}

TEST(RefreshTest, RejectsMalformedInputs) {
  Fixture f = MakeFixture(6);
  WatermarkSecrets bad = f.secrets;
  bad.z = 1;
  EXPECT_FALSE(RefreshWatermark(f.watermarked, bad, RefreshOptions()).ok());
  RefreshOptions bad_opts;
  bad_opts.max_churn_percent = 200;
  EXPECT_FALSE(
      RefreshWatermark(f.watermarked, f.secrets, bad_opts).ok());
}

TEST(RefreshTest, SecretKeyAndModulusAreCarriedOver) {
  Fixture f = MakeFixture(7);
  auto r = RefreshWatermark(f.watermarked, f.secrets, RefreshOptions());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().secrets.r, f.secrets.r);
  EXPECT_EQ(r.value().secrets.z, f.secrets.z);
}

TEST(RefreshTest, RepairedWatermarkSurvivesRepeatedDriftCycles) {
  // Production lifecycle: drift -> refresh -> drift -> refresh. The pair
  // list may shrink but never grows, and detection always recovers.
  Fixture f = MakeFixture(8);
  Histogram current = f.watermarked;
  WatermarkSecrets secrets = f.secrets;
  size_t prev_pairs = secrets.pairs.size();
  for (int cycle = 0; cycle < 4; ++cycle) {
    current = Drift(current, 100 + static_cast<uint64_t>(cycle), 0.01);
    auto r = RefreshWatermark(current, secrets, RefreshOptions());
    ASSERT_TRUE(r.ok());
    current = r.value().refreshed;
    secrets = r.value().secrets;
    EXPECT_LE(secrets.pairs.size(), prev_pairs);
    prev_pairs = secrets.pairs.size();

    DetectOptions d;
    d.pair_threshold = 0;
    d.min_pairs = secrets.pairs.size();
    EXPECT_TRUE(DetectWatermark(current, secrets, d).accepted)
        << "cycle " << cycle;
  }
  EXPECT_GT(prev_pairs, 0u);
}

}  // namespace
}  // namespace freqywm
