#include "core/watermark.h"

#include <gtest/gtest.h>

#include "core/detect.h"
#include "crypto/pair_modulus.h"
#include "datagen/power_law.h"
#include "stats/rank.h"
#include "stats/similarity.h"

namespace freqywm {
namespace {

Histogram MakeSkewedHistogram(uint64_t seed, size_t tokens = 150,
                              size_t samples = 200000, double alpha = 0.7) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = tokens;
  spec.sample_size = samples;
  spec.alpha = alpha;
  return GeneratePowerLawHistogram(spec, rng);
}

GenerateOptions DefaultOptions(uint64_t seed = 42) {
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = seed;
  return o;
}

TEST(WatermarkGeneratorTest, RejectsBadOptions) {
  Histogram h = MakeSkewedHistogram(1);
  {
    GenerateOptions o = DefaultOptions();
    o.modulus_bound = 1;
    EXPECT_EQ(WatermarkGenerator(o).GenerateFromHistogram(h).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    GenerateOptions o = DefaultOptions();
    o.budget_percent = 101;
    EXPECT_EQ(WatermarkGenerator(o).GenerateFromHistogram(h).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    GenerateOptions o = DefaultOptions();
    o.lambda_bits = 4;
    EXPECT_EQ(WatermarkGenerator(o).GenerateFromHistogram(h).status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(WatermarkGeneratorTest, RejectsTinyHistogram) {
  auto h = Histogram::FromCounts({{"only", 5}});
  ASSERT_TRUE(h.ok());
  WatermarkGenerator gen(DefaultOptions());
  EXPECT_EQ(gen.GenerateFromHistogram(h.value()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WatermarkGeneratorTest, UniformDataIsResourceExhausted) {
  // The paper's inapplicability case: no frequency variation.
  std::vector<HistogramEntry> entries;
  for (int i = 0; i < 50; ++i) {
    entries.push_back({"t" + std::to_string(i), 1000});
  }
  auto h = Histogram::FromCounts(std::move(entries));
  ASSERT_TRUE(h.ok());
  WatermarkGenerator gen(DefaultOptions());
  auto r = gen.GenerateFromHistogram(h.value());
  // Either nothing eligible (ResourceExhausted) or only free pairs chosen.
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  } else {
    EXPECT_DOUBLE_EQ(r.value().report.similarity_percent, 100.0);
  }
}

TEST(WatermarkGeneratorTest, EmbedsDetectableWatermark) {
  Histogram h = MakeSkewedHistogram(2);
  WatermarkGenerator gen(DefaultOptions());
  auto r = gen.GenerateFromHistogram(h);
  ASSERT_TRUE(r.ok()) << r.status();
  const auto& result = r.value();
  EXPECT_GT(result.report.chosen_pairs, 0u);

  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = result.report.chosen_pairs;  // demand every pair verifies
  DetectResult dr =
      DetectWatermark(result.watermarked, result.report.secrets, d);
  EXPECT_TRUE(dr.accepted);
  EXPECT_EQ(dr.pairs_verified, result.report.chosen_pairs);
  EXPECT_DOUBLE_EQ(dr.verified_fraction, 1.0);
}

TEST(WatermarkGeneratorTest, RankingConstraintHolds) {
  for (uint64_t seed : {3ull, 4ull, 5ull}) {
    Histogram h = MakeSkewedHistogram(seed);
    WatermarkGenerator gen(DefaultOptions(seed));
    auto r = gen.GenerateFromHistogram(h);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().watermarked.IsSortedDescending());
    RankComparison cmp = CompareRankings(h, r.value().watermarked);
    // FreqyWM preserves every rank (ties may legitimately reorder under
    // resorting, so compare via Spearman on counts).
    EXPECT_GT(cmp.spearman, 0.9999);
  }
}

TEST(WatermarkGeneratorTest, SimilarityConstraintHolds) {
  Histogram h = MakeSkewedHistogram(6);
  GenerateOptions o = DefaultOptions();
  o.budget_percent = 0.5;
  WatermarkGenerator gen(o);
  auto r = gen.GenerateFromHistogram(h);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().report.similarity_percent, 99.5);
  EXPECT_NEAR(
      HistogramSimilarityPercent(h, r.value().watermarked),
      r.value().report.similarity_percent, 1e-9);
}

TEST(WatermarkGeneratorTest, EveryStoredPairSatisfiesEmbeddingRule) {
  Histogram h = MakeSkewedHistogram(7);
  WatermarkGenerator gen(DefaultOptions());
  auto r = gen.GenerateFromHistogram(h);
  ASSERT_TRUE(r.ok());
  const auto& secrets = r.value().report.secrets;
  PairModulus pm(secrets.r, secrets.z);
  for (const auto& pair : secrets.pairs) {
    auto fi = r.value().watermarked.CountOf(pair.token_i);
    auto fj = r.value().watermarked.CountOf(pair.token_j);
    ASSERT_TRUE(fi && fj);
    uint64_t s = pm.Compute(pair.token_i, pair.token_j);
    ASSERT_GE(s, 2u);
    EXPECT_EQ((*fi - *fj) % s, 0u)
        << pair.token_i << "/" << pair.token_j;
  }
}

TEST(WatermarkGeneratorTest, DeterministicForFixedSeed) {
  Histogram h = MakeSkewedHistogram(8);
  auto r1 = WatermarkGenerator(DefaultOptions(123)).GenerateFromHistogram(h);
  auto r2 = WatermarkGenerator(DefaultOptions(123)).GenerateFromHistogram(h);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.value().report.secrets, r2.value().report.secrets);
  EXPECT_EQ(r1.value().report.chosen_pairs, r2.value().report.chosen_pairs);
}

TEST(WatermarkGeneratorTest, DifferentSeedsProduceDifferentSecrets) {
  Histogram h = MakeSkewedHistogram(9);
  auto r1 = WatermarkGenerator(DefaultOptions(1)).GenerateFromHistogram(h);
  auto r2 = WatermarkGenerator(DefaultOptions(2)).GenerateFromHistogram(h);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_FALSE(r1.value().report.secrets.r == r2.value().report.secrets.r);
}

TEST(WatermarkGeneratorTest, TotalChurnMatchesHistogramDiff) {
  Histogram h = MakeSkewedHistogram(10);
  WatermarkGenerator gen(DefaultOptions());
  auto r = gen.GenerateFromHistogram(h);
  ASSERT_TRUE(r.ok());
  uint64_t churn = 0;
  for (const auto& e : h.entries()) {
    auto after = r.value().watermarked.CountOf(e.token);
    ASSERT_TRUE(after.has_value());
    churn += *after > e.count ? *after - e.count : e.count - *after;
  }
  EXPECT_EQ(churn, r.value().report.total_churn);
}

TEST(ApplyPairDeltasTest, AppliesDeltasAndReportsApplied) {
  auto h = Histogram::FromCounts(
      {{"a", 1000}, {"b", 800}, {"c", 500}, {"d", 200}});
  ASSERT_TRUE(h.ok());
  std::vector<EligiblePair> eligible = {
      MakePairPlan(0, 2, 500, 7),   // a-c
      MakePairPlan(1, 3, 600, 11),  // b-d
  };
  std::vector<size_t> applied;
  Histogram out =
      ApplyPairDeltas(h.value(), eligible, {0, 1}, &applied);
  EXPECT_EQ(applied.size(), 2u);
  EXPECT_TRUE(out.IsSortedDescending());
  EXPECT_EQ((*out.CountOf("a") - *out.CountOf("c")) % 7, 0u);
  EXPECT_EQ((*out.CountOf("b") - *out.CountOf("d")) % 11, 0u);
}

TEST(ApplyPairDeltasTest, RevertsRankBreakingPair) {
  // Construct a pair whose deltas would cross a neighbouring token.
  auto h = Histogram::FromCounts({{"a", 100}, {"b", 99}, {"c", 10}});
  ASSERT_TRUE(h.ok());
  // Force a large shrink on (a, c): delta_i = -13 would push a below b.
  EligiblePair bad = MakePairPlan(0, 2, 90, 53);  // rm=37>26 -> grow by 16
  // Make a definitely rank-breaking plan manually:
  bad.delta_i = -30;
  bad.delta_j = +30;
  std::vector<size_t> applied;
  Histogram out = ApplyPairDeltas(h.value(), {bad}, {0}, &applied);
  EXPECT_TRUE(applied.empty());
  EXPECT_EQ(out.CountOf("a"), 100u);
  EXPECT_EQ(out.CountOf("c"), 10u);
}

TEST(TransformDatasetTest, MatchesTargetHistogram) {
  Rng data_rng(11);
  PowerLawSpec spec;
  spec.num_tokens = 30;
  spec.sample_size = 5000;
  spec.alpha = 0.8;
  Dataset original = GeneratePowerLawDataset(spec, data_rng);
  Histogram hist = Histogram::FromDataset(original);

  // Build a target: move some counts around.
  Histogram target = hist;
  ASSERT_TRUE(target.AddDelta(hist.entry(0).token, -5).ok());
  ASSERT_TRUE(target.AddDelta(hist.entry(3).token, +7).ok());
  ASSERT_TRUE(target.AddDelta(hist.entry(5).token, -2).ok());

  Rng rng(12);
  Dataset transformed = TransformDataset(original, target, rng);
  Histogram result = Histogram::FromDataset(transformed);
  for (const auto& e : target.entries()) {
    EXPECT_EQ(result.CountOf(e.token), e.count) << e.token;
  }
  EXPECT_EQ(transformed.size(), target.total_count());
}

TEST(TransformDatasetTest, NoChangeIsIdentityContent) {
  Dataset original({"a", "b", "a", "c"});
  Histogram hist = Histogram::FromDataset(original);
  Rng rng(13);
  Dataset out = TransformDataset(original, hist, rng);
  EXPECT_EQ(out.tokens(), original.tokens());
}

TEST(TransformDatasetTest, InsertionsLandAtVariedPositions) {
  std::vector<Token> many(2000, "filler");
  Dataset original(std::move(many));
  Histogram target = Histogram::FromDataset(original);
  // Add a new... tokens must already exist in histogram; grow "filler"
  // instead and shrink nothing: target has +50 fillers.
  ASSERT_TRUE(target.AddDelta("filler", 50).ok());
  Rng rng(14);
  Dataset out = TransformDataset(original, target, rng);
  EXPECT_EQ(out.size(), 2050u);
}

TEST(EndToEndDatasetTest, GenerateTransformsAndStaysDetectable) {
  Rng data_rng(15);
  PowerLawSpec spec;
  spec.num_tokens = 80;
  spec.sample_size = 50000;
  spec.alpha = 0.7;
  Dataset original = GeneratePowerLawDataset(spec, data_rng);

  WatermarkGenerator gen(DefaultOptions(77));
  auto r = gen.Generate(original);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r.value().report.chosen_pairs, 0u);

  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = r.value().report.chosen_pairs;
  DetectResult dr =
      DetectWatermark(r.value().watermarked, r.value().report.secrets, d);
  EXPECT_TRUE(dr.accepted);
}

}  // namespace
}  // namespace freqywm
