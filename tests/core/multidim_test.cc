#include "core/multidim.h"

#include <gtest/gtest.h>

#include "datagen/real_world.h"

namespace freqywm {
namespace {

GenerateOptions Options(uint64_t seed = 42) {
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = seed;
  return o;
}

TEST(MultidimTest, WatermarkSingleAttributeAge) {
  Rng rng(1);
  TableDataset table = MakeAdultLikeTable(rng, 20000);
  auto r = WatermarkTable(table, {"Age"}, Options());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r.value().report.chosen_pairs, 0u);

  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = r.value().report.chosen_pairs;
  auto dr = DetectTableWatermark(r.value().watermarked, {"Age"},
                                 r.value().report.secrets, d);
  ASSERT_TRUE(dr.ok());
  EXPECT_TRUE(dr.value().accepted);
}

TEST(MultidimTest, WatermarkCompositeToken) {
  // The §IV-C experiment: token = [Age, WorkClass].
  Rng rng(2);
  TableDataset table = MakeAdultLikeTable(rng, 30000);
  auto r = WatermarkTable(table, {"Age", "WorkClass"}, Options(7));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r.value().report.chosen_pairs, 0u);

  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = r.value().report.chosen_pairs;
  auto dr = DetectTableWatermark(r.value().watermarked, {"Age", "WorkClass"},
                                 r.value().report.secrets, d);
  ASSERT_TRUE(dr.ok());
  EXPECT_TRUE(dr.value().accepted);
}

TEST(MultidimTest, AddedRowsCopyDonorAttributes) {
  Rng rng(3);
  TableDataset table = MakeAdultLikeTable(rng, 10000);

  // Record the set of (Age, WorkClass, Education) combos before.
  std::set<std::string> combos_before;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    combos_before.insert(table.row(i)[0] + "|" + table.row(i)[1] + "|" +
                         table.row(i)[2]);
  }

  auto r = WatermarkTable(table, {"Age"}, Options(11));
  ASSERT_TRUE(r.ok());
  // Every row in the output must be a combo that existed before: additions
  // replicate donors, never invent attribute values.
  for (size_t i = 0; i < r.value().watermarked.num_rows(); ++i) {
    const auto& row = r.value().watermarked.row(i);
    EXPECT_TRUE(combos_before.count(row[0] + "|" + row[1] + "|" + row[2]))
        << "invented row at " << i;
  }
}

TEST(MultidimTest, UnknownColumnFails) {
  Rng rng(4);
  TableDataset table = MakeAdultLikeTable(rng, 1000);
  EXPECT_FALSE(WatermarkTable(table, {"Ghost"}, Options()).ok());
}

TEST(MultidimTest, RowCountChangesOnlyByChurn) {
  Rng rng(5);
  TableDataset table = MakeAdultLikeTable(rng, 15000);
  auto r = WatermarkTable(table, {"Age"}, Options(13));
  ASSERT_TRUE(r.ok());
  size_t diff = r.value().watermarked.num_rows() > table.num_rows()
                    ? r.value().watermarked.num_rows() - table.num_rows()
                    : table.num_rows() - r.value().watermarked.num_rows();
  EXPECT_LE(diff, r.value().report.total_churn);
}

}  // namespace
}  // namespace freqywm
