#include "core/boundaries.h"

#include <gtest/gtest.h>

namespace freqywm {
namespace {

Histogram MakeHist(std::vector<HistogramEntry> entries) {
  auto h = Histogram::FromCounts(std::move(entries));
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

TEST(BoundariesTest, PaperRunningExample) {
  // Fig. 1 histogram: 1098, 980, 674, 537, 64, 53, 53.
  Histogram h = MakeHist({{"youtube", 1098},
                          {"facebook", 980},
                          {"google", 674},
                          {"instagram", 537},
                          {"bbc", 64},
                          {"cnn", 53},
                          {"elpais", 53}});
  auto b = ComputeBoundaries(h);
  ASSERT_EQ(b.size(), 7u);
  EXPECT_EQ(b[0].upper, TokenBoundary::kUnbounded);
  EXPECT_EQ(b[0].lower, 1098u - 980u);
  EXPECT_EQ(b[1].upper, 1098u - 980u);
  EXPECT_EQ(b[1].lower, 980u - 674u);
  EXPECT_EQ(b[3].upper, 674u - 537u);
  EXPECT_EQ(b[3].lower, 537u - 64u);
  // cnn/elpais tie at 53: zero slack between them.
  EXPECT_EQ(b[5].lower, 0u);
  EXPECT_EQ(b[6].upper, 0u);
  // Last token may drop to 1 instance.
  EXPECT_EQ(b[6].lower, 52u);
}

TEST(BoundariesTest, SingleToken) {
  Histogram h = MakeHist({{"only", 10}});
  auto b = ComputeBoundaries(h);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].upper, TokenBoundary::kUnbounded);
  EXPECT_EQ(b[0].lower, 9u);
}

TEST(BoundariesTest, UniformFrequenciesHaveZeroInteriorSlack) {
  Histogram h = MakeHist({{"a", 7}, {"b", 7}, {"c", 7}});
  auto b = ComputeBoundaries(h);
  EXPECT_EQ(b[0].lower, 0u);
  EXPECT_EQ(b[1].upper, 0u);
  EXPECT_EQ(b[1].lower, 0u);
  EXPECT_EQ(b[2].upper, 0u);
  EXPECT_EQ(b[2].lower, 6u);  // last can still shed instances
}

TEST(BoundariesTest, AdjacentGapsAreShared) {
  Histogram h = MakeHist({{"a", 100}, {"b", 90}, {"c", 40}});
  auto b = ComputeBoundaries(h);
  EXPECT_EQ(b[0].lower, b[1].upper);
  EXPECT_EQ(b[1].lower, b[2].upper);
}

TEST(BoundariesTest, LastTokenWithCountOne) {
  Histogram h = MakeHist({{"a", 5}, {"b", 1}});
  auto b = ComputeBoundaries(h);
  EXPECT_EQ(b[1].lower, 0u);  // cannot remove the only instance
}

}  // namespace
}  // namespace freqywm
