#include "core/options.h"

#include <gtest/gtest.h>

#include "core/eligible.h"
#include "core/watermark.h"
#include "datagen/power_law.h"

namespace freqywm {
namespace {

Histogram MakeHist(uint64_t seed = 42) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = 150;
  spec.sample_size = 200000;
  spec.alpha = 0.6;
  return GeneratePowerLawHistogram(spec, rng);
}

TEST(MinModulusTest, FiltersEligiblePairsMonotonically) {
  Histogram h = MakeHist(1);
  PairModulus pm(GenerateSecret(256, 2), 131);
  size_t prev = SIZE_MAX;
  for (uint64_t mm : {2ull, 8ull, 16ull, 32ull, 64ull}) {
    auto eligible =
        BuildEligiblePairs(h, pm, EligibilityRule::kPaper, mm);
    EXPECT_LE(eligible.size(), prev) << "mm=" << mm;
    for (const auto& p : eligible) EXPECT_GE(p.s, mm);
    prev = eligible.size();
  }
}

TEST(MinPairCostTest, ExcludesFreePairs) {
  Histogram h = MakeHist(2);
  PairModulus pm(GenerateSecret(256, 3), 131);
  auto all = BuildEligiblePairs(h, pm, EligibilityRule::kPaper, 2, 0);
  auto costly = BuildEligiblePairs(h, pm, EligibilityRule::kPaper, 2, 1);
  size_t free_pairs = 0;
  for (const auto& p : all) {
    if (p.cost == 0) ++free_pairs;
  }
  EXPECT_EQ(all.size() - free_pairs, costly.size());
  for (const auto& p : costly) EXPECT_GE(p.cost, 1u);
}

TEST(MinPairCostTest, HigherFloorsShrinkTheList) {
  Histogram h = MakeHist(3);
  PairModulus pm(GenerateSecret(256, 4), 131);
  size_t prev = SIZE_MAX;
  for (uint64_t cost : {0ull, 1ull, 4ull, 16ull}) {
    auto eligible =
        BuildEligiblePairs(h, pm, EligibilityRule::kPaper, 2, cost);
    EXPECT_LE(eligible.size(), prev);
    prev = eligible.size();
  }
}

TEST(BudgetModeTest, AdditiveChurnCapsTotalCost) {
  Histogram h = MakeHist(4);
  GenerateOptions o;
  o.budget_percent = 0.001;  // capacity = 0.001% of 200k rows = 2 tokens
  o.modulus_bound = 131;
  o.budget_mode = BudgetMode::kAdditiveChurn;
  o.seed = 5;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(h);
  if (r.ok()) {
    EXPECT_LE(r.value().report.total_churn, 2u);
  } else {
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(BudgetModeTest, AdditiveModeSelectsFewerOrEqualPairsThanSimilarity) {
  Histogram h = MakeHist(5);
  GenerateOptions similarity;
  similarity.budget_percent = 0.05;
  similarity.modulus_bound = 131;
  similarity.seed = 6;
  GenerateOptions additive = similarity;
  additive.budget_mode = BudgetMode::kAdditiveChurn;
  auto rs = WatermarkGenerator(similarity).GenerateFromHistogram(h);
  auto ra = WatermarkGenerator(additive).GenerateFromHistogram(h);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(ra.ok());
  // At a tight budget the additive cap binds first: cosine barely moves,
  // so the similarity mode admits (weakly) more pairs.
  EXPECT_LE(ra.value().report.chosen_pairs, rs.value().report.chosen_pairs);
  // And the additive run respects the cap exactly.
  uint64_t cap = static_cast<uint64_t>(0.05 / 100.0 *
                                       static_cast<double>(h.total_count()));
  EXPECT_LE(ra.value().report.total_churn, cap);
}

TEST(OptionsValidationTest, MinModulusMustBeBelowZ) {
  Histogram h = MakeHist(6);
  GenerateOptions o;
  o.modulus_bound = 131;
  o.min_modulus = 131;
  o.seed = 7;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(h);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(HardenedProfileTest, SelectsFewerButStrongerPairs) {
  Histogram h = MakeHist(7);
  GenerateOptions paper;
  paper.modulus_bound = 131;
  paper.seed = 8;
  GenerateOptions hardened = paper;
  hardened.min_modulus = 16;
  auto rp = WatermarkGenerator(paper).GenerateFromHistogram(h);
  auto rh = WatermarkGenerator(hardened).GenerateFromHistogram(h);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rh.ok());
  EXPECT_LT(rh.value().report.chosen_pairs,
            rp.value().report.chosen_pairs);
  // Stronger evidence: every hardened pair has modulus >= 16, so a chance
  // match at t = 0 has probability <= 1/16 per pair.
  PairModulus pm(rh.value().report.secrets.r, rh.value().report.secrets.z);
  for (const auto& pair : rh.value().report.secrets.pairs) {
    EXPECT_GE(pm.Compute(pair.token_i, pair.token_j), 16u);
  }
}

}  // namespace
}  // namespace freqywm
