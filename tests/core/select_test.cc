#include "core/select.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/power_law.h"
#include "stats/similarity.h"

namespace freqywm {
namespace {

struct Fixture {
  Histogram hist;
  std::vector<EligiblePair> eligible;
};

Fixture MakeFixture(uint64_t seed, uint64_t z = 131, double alpha = 0.7,
                    size_t tokens = 120, size_t samples = 150000) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = tokens;
  spec.sample_size = samples;
  spec.alpha = alpha;
  Fixture f;
  f.hist = GeneratePowerLawHistogram(spec, rng);
  PairModulus pm(GenerateSecret(256, seed + 1), z);
  f.eligible = BuildEligiblePairs(f.hist, pm, EligibilityRule::kPaper);
  return f;
}

GenerateOptions MakeOptions(SelectionStrategy strategy, double budget = 2.0,
                            uint64_t z = 131) {
  GenerateOptions o;
  o.strategy = strategy;
  o.budget_percent = budget;
  o.modulus_bound = z;
  o.seed = 42;
  return o;
}

void ExpectTokenDisjoint(const std::vector<EligiblePair>& eligible,
                         const std::vector<size_t>& chosen) {
  std::set<size_t> used;
  for (size_t idx : chosen) {
    EXPECT_TRUE(used.insert(eligible[idx].rank_i).second);
    EXPECT_TRUE(used.insert(eligible[idx].rank_j).second);
  }
}

class StrategyTest : public ::testing::TestWithParam<SelectionStrategy> {};

TEST_P(StrategyTest, ChosenPairsAreTokenDisjoint) {
  Fixture f = MakeFixture(1);
  Rng rng(7);
  SelectionResult r =
      SelectPairs(f.hist, f.eligible, MakeOptions(GetParam()), rng);
  EXPECT_FALSE(r.chosen.empty());
  ExpectTokenDisjoint(f.eligible, r.chosen);
}

TEST_P(StrategyTest, SimilarityBudgetRespected) {
  Fixture f = MakeFixture(2);
  Rng rng(8);
  const double budget = 1.0;
  SelectionResult r =
      SelectPairs(f.hist, f.eligible, MakeOptions(GetParam(), budget), rng);
  EXPECT_GE(r.similarity_percent, 100.0 - budget);

  // Verify against a full recomputation.
  Histogram modified = f.hist;
  for (size_t idx : r.chosen) {
    const auto& p = f.eligible[idx];
    ASSERT_TRUE(
        modified.AddDelta(f.hist.entry(p.rank_i).token, p.delta_i).ok());
    ASSERT_TRUE(
        modified.AddDelta(f.hist.entry(p.rank_j).token, p.delta_j).ok());
  }
  EXPECT_NEAR(HistogramSimilarityPercent(f.hist, modified),
              r.similarity_percent, 1e-6);
}

TEST_P(StrategyTest, EmptyEligibleListYieldsEmptySelection) {
  Fixture f = MakeFixture(3);
  Rng rng(9);
  SelectionResult r = SelectPairs(f.hist, {}, MakeOptions(GetParam()), rng);
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_DOUBLE_EQ(r.similarity_percent, 100.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(SelectionStrategy::kOptimal,
                                           SelectionStrategy::kGreedy,
                                           SelectionStrategy::kRandom));

TEST(SelectTest, OptimalDominatesHeuristics) {
  // Fig. 2a's core claim: optimal >= greedy, random in chosen-pair count.
  for (uint64_t seed : {10ull, 20ull, 30ull}) {
    Fixture f = MakeFixture(seed);
    Rng rng(seed);
    size_t optimal =
        SelectPairs(f.hist, f.eligible,
                    MakeOptions(SelectionStrategy::kOptimal), rng)
            .chosen.size();
    size_t greedy =
        SelectPairs(f.hist, f.eligible,
                    MakeOptions(SelectionStrategy::kGreedy), rng)
            .chosen.size();
    size_t random =
        SelectPairs(f.hist, f.eligible,
                    MakeOptions(SelectionStrategy::kRandom), rng)
            .chosen.size();
    EXPECT_GE(optimal, greedy) << "seed " << seed;
    EXPECT_GE(optimal, random) << "seed " << seed;
  }
}

TEST(SelectTest, LargerBudgetNeverChoosesFewerPairs) {
  // Fig. 2c's mechanism.
  Fixture f = MakeFixture(4);
  Rng rng(11);
  size_t prev = 0;
  for (double budget : {0.1, 0.5, 2.0, 8.0}) {
    SelectionResult r = SelectPairs(
        f.hist, f.eligible,
        MakeOptions(SelectionStrategy::kGreedy, budget), rng);
    EXPECT_GE(r.chosen.size(), prev) << "budget " << budget;
    prev = r.chosen.size();
  }
}

TEST(SelectTest, GreedyPrefersSmallRemainders) {
  Fixture f = MakeFixture(5);
  Rng rng(12);
  SelectionResult r = SelectPairs(
      f.hist, f.eligible, MakeOptions(SelectionStrategy::kGreedy, 0.05), rng);
  ASSERT_FALSE(r.chosen.empty());
  // Under a tight budget greedy takes cheap (small-remainder) pairs; the
  // average remainder of chosen pairs should be well below the average of
  // all eligible pairs.
  double chosen_avg = 0, all_avg = 0;
  for (size_t idx : r.chosen) {
    chosen_avg += static_cast<double>(f.eligible[idx].remainder);
  }
  chosen_avg /= static_cast<double>(r.chosen.size());
  for (const auto& p : f.eligible) {
    all_avg += static_cast<double>(p.remainder);
  }
  all_avg /= static_cast<double>(f.eligible.size());
  EXPECT_LT(chosen_avg, all_avg);
}

TEST(SelectTest, RandomStrategyIsSeedDeterministic) {
  Fixture f = MakeFixture(6);
  Rng rng1(99), rng2(99);
  auto r1 = SelectPairs(f.hist, f.eligible,
                        MakeOptions(SelectionStrategy::kRandom), rng1);
  auto r2 = SelectPairs(f.hist, f.eligible,
                        MakeOptions(SelectionStrategy::kRandom), rng2);
  EXPECT_EQ(r1.chosen, r2.chosen);
}

TEST(SelectTest, WeightFormulaAblationBothWork) {
  Fixture f = MakeFixture(7);
  Rng rng(13);
  GenerateOptions paper = MakeOptions(SelectionStrategy::kOptimal);
  paper.weight_formula = WeightFormula::kPaperRemainder;
  GenerateOptions cost = MakeOptions(SelectionStrategy::kOptimal);
  cost.weight_formula = WeightFormula::kEffectiveCost;
  auto rp = SelectPairs(f.hist, f.eligible, paper, rng);
  auto rc = SelectPairs(f.hist, f.eligible, cost, rng);
  EXPECT_FALSE(rp.chosen.empty());
  EXPECT_FALSE(rc.chosen.empty());
  ExpectTokenDisjoint(f.eligible, rp.chosen);
  ExpectTokenDisjoint(f.eligible, rc.chosen);
}

TEST(SelectTest, ZeroBudgetAdmitsOnlyFreePairs) {
  Fixture f = MakeFixture(8);
  Rng rng(14);
  SelectionResult r = SelectPairs(
      f.hist, f.eligible, MakeOptions(SelectionStrategy::kGreedy, 0.0), rng);
  for (size_t idx : r.chosen) {
    EXPECT_EQ(f.eligible[idx].cost, 0u);
  }
  EXPECT_DOUBLE_EQ(r.similarity_percent, 100.0);
}

}  // namespace
}  // namespace freqywm
