#include "core/detect.h"

#include <gtest/gtest.h>

#include "core/watermark.h"
#include "crypto/pair_modulus.h"
#include "datagen/power_law.h"

namespace freqywm {
namespace {

struct WatermarkedFixture {
  Histogram original;
  Histogram watermarked;
  WatermarkSecrets secrets;
  size_t chosen = 0;
};

WatermarkedFixture MakeFixture(uint64_t seed = 42, uint64_t min_modulus = 2,
                               uint64_t min_pair_cost = 1) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = 150;
  spec.sample_size = 200000;
  spec.alpha = 0.7;
  WatermarkedFixture f;
  f.original = GeneratePowerLawHistogram(spec, rng);

  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.min_modulus = min_modulus;
  o.min_pair_cost = min_pair_cost;
  o.seed = seed;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(f.original);
  EXPECT_TRUE(r.ok());
  f.watermarked = std::move(r.value().watermarked);
  f.secrets = std::move(r.value().report.secrets);
  f.chosen = r.value().report.chosen_pairs;
  return f;
}

TEST(DetectTest, AcceptsWatermarkedData) {
  WatermarkedFixture f = MakeFixture();
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = f.chosen;
  DetectResult r = DetectWatermark(f.watermarked, f.secrets, d);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(r.pairs_found, f.chosen);
  EXPECT_EQ(r.pairs_verified, f.chosen);
}

TEST(DetectTest, RejectsNonWatermarkedDataWithStrictThresholds) {
  // With the hardened modulus floor, pre-aligned ("free") pairs are rare,
  // so the owner's own original does not verify at t = 0. (Under the
  // paper's bare s >= 2 rule, cheap pairs dominate selection and the
  // original legitimately verifies many pairs — see the ablation bench.)
  WatermarkedFixture f = MakeFixture(1, /*min_modulus=*/16);
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = std::max<size_t>(2, f.chosen / 2);
  DetectResult r = DetectWatermark(f.original, f.secrets, d);
  EXPECT_FALSE(r.accepted);
  EXPECT_LT(r.verified_fraction, 0.5);
}

TEST(DetectTest, FreePairsMakeOriginalPartiallyVerifyUnderPaperRule) {
  // Documents the scheme property the min_pair_cost filter exists to
  // counter: under the bare rule (min_pair_cost = 0) the cost-ascending
  // selection favours pairs that already satisfied the modular relation,
  // and those verify on the unmodified original.
  WatermarkedFixture f = MakeFixture(1, /*min_modulus=*/2,
                                     /*min_pair_cost=*/0);
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = 1;
  DetectResult r = DetectWatermark(f.original, f.secrets, d);
  EXPECT_GT(r.verified_fraction, 0.2);
  EXPECT_LT(r.verified_fraction, 1.0);
}

TEST(DetectTest, WrongSecretFailsOnWatermarkedData) {
  WatermarkedFixture f = MakeFixture(2);
  WatermarkSecrets wrong = f.secrets;
  wrong.r = GenerateSecret(256, 999);  // different key, same pairs and z
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = std::max<size_t>(2, f.chosen / 2);
  DetectResult r = DetectWatermark(f.watermarked, wrong, d);
  EXPECT_FALSE(r.accepted);
}

TEST(DetectTest, MissingTokensAreSkippedNotFailed) {
  WatermarkedFixture f = MakeFixture(3);
  // Remove one watermarked token entirely.
  ASSERT_FALSE(f.secrets.pairs.empty());
  Token victim = f.secrets.pairs[0].token_i;
  std::vector<HistogramEntry> entries;
  for (const auto& e : f.watermarked.entries()) {
    if (e.token != victim) entries.push_back(e);
  }
  auto reduced = Histogram::FromCounts(std::move(entries));
  ASSERT_TRUE(reduced.ok());

  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = 1;
  DetectResult r = DetectWatermark(reduced.value(), f.secrets, d);
  EXPECT_EQ(r.pairs_found, f.chosen - 1);
  EXPECT_EQ(r.pairs_verified, f.chosen - 1);
  EXPECT_TRUE(r.accepted);
}

TEST(DetectTest, ThresholdTToleratesSmallPerturbations) {
  WatermarkedFixture f = MakeFixture(4);
  // Nudge one token of a pair whose modulus exceeds the perturbation so
  // the residue genuinely becomes 2 (a pair with s = 2 would wrap back
  // to 0 and hide the perturbation).
  PairModulus pm(f.secrets.r, f.secrets.z);
  const SecretPair* victim = nullptr;
  for (const auto& pair : f.secrets.pairs) {
    if (pm.Compute(pair.token_i, pair.token_j) > 4) {
      victim = &pair;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no pair with modulus > 4 selected";
  Histogram perturbed = f.watermarked;
  ASSERT_TRUE(perturbed.AddDelta(victim->token_i, +2).ok());

  DetectOptions strict;
  strict.pair_threshold = 0;
  strict.min_pairs = f.chosen;
  EXPECT_FALSE(DetectWatermark(perturbed, f.secrets, strict).accepted);

  DetectOptions relaxed = strict;
  relaxed.pair_threshold = 2;
  EXPECT_TRUE(DetectWatermark(perturbed, f.secrets, relaxed).accepted);
}

TEST(DetectTest, SymmetricResidueCatchesDownwardPerturbation) {
  WatermarkedFixture f = MakeFixture(5);
  // Perturb downward: residue becomes s - 1 which one-sided t=1 misses.
  // The victim pair needs s > 3 so that s - 1 > t.
  PairModulus pm(f.secrets.r, f.secrets.z);
  const SecretPair* victim = nullptr;
  for (const auto& pair : f.secrets.pairs) {
    if (pm.Compute(pair.token_i, pair.token_j) > 3) {
      victim = &pair;
      break;
    }
  }
  ASSERT_NE(victim, nullptr);
  Histogram perturbed = f.watermarked;
  ASSERT_TRUE(perturbed.AddDelta(victim->token_i, -1).ok());

  DetectOptions one_sided;
  one_sided.pair_threshold = 1;
  one_sided.min_pairs = f.chosen;
  DetectResult r1 = DetectWatermark(perturbed, f.secrets, one_sided);
  EXPECT_FALSE(r1.accepted);

  DetectOptions symmetric = one_sided;
  symmetric.symmetric_residue = true;
  DetectResult r2 = DetectWatermark(perturbed, f.secrets, symmetric);
  EXPECT_TRUE(r2.accepted);
}

TEST(DetectTest, KThresholdControlsAcceptance) {
  WatermarkedFixture f = MakeFixture(6);
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = f.chosen + 1;  // more than exist
  EXPECT_FALSE(DetectWatermark(f.watermarked, f.secrets, d).accepted);
  d.min_pairs = f.chosen;
  EXPECT_TRUE(DetectWatermark(f.watermarked, f.secrets, d).accepted);
}

TEST(DetectTest, EmptySecretsNeverAccept) {
  WatermarkedFixture f = MakeFixture(7);
  WatermarkSecrets empty;
  empty.r = GenerateSecret(256, 1);
  empty.z = 131;
  DetectOptions d;
  DetectResult r = DetectWatermark(f.watermarked, empty, d);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(r.pairs_found, 0u);
}

TEST(DetectTest, RescaleFactorRecoversScaledCounts) {
  WatermarkedFixture f = MakeFixture(8);
  // Emulate a 50% subsample exactly: halve every count (even counts only,
  // to keep the math exact).
  Histogram halved = f.watermarked;
  bool all_even = true;
  for (const auto& e : f.watermarked.entries()) {
    if (e.count % 2 != 0) {
      all_even = false;
      ASSERT_TRUE(halved.SetCount(e.token, (e.count + 1) / 2).ok());
    } else {
      ASSERT_TRUE(halved.SetCount(e.token, e.count / 2).ok());
    }
  }
  DetectOptions d;
  d.pair_threshold = all_even ? 0 : 2;
  d.min_pairs = std::max<size_t>(1, f.chosen / 2);
  d.rescale_factor = 2.0;
  DetectResult r = DetectWatermark(halved, f.secrets, d);
  EXPECT_TRUE(r.accepted);
}

TEST(DetectTest, DatasetOverloadMatchesHistogramOverload) {
  // Small end-to-end check of the convenience overload.
  Rng rng(9);
  PowerLawSpec spec;
  spec.num_tokens = 40;
  spec.sample_size = 20000;
  spec.alpha = 0.8;
  Dataset data = GeneratePowerLawDataset(spec, rng);
  GenerateOptions o;
  o.seed = 11;
  o.modulus_bound = 131;
  auto r = WatermarkGenerator(o).Generate(data);
  ASSERT_TRUE(r.ok());
  DetectOptions d;
  d.min_pairs = 1;
  DetectResult via_dataset =
      DetectWatermark(r.value().watermarked, r.value().report.secrets, d);
  DetectResult via_hist = DetectWatermark(
      Histogram::FromDataset(r.value().watermarked),
      r.value().report.secrets, d);
  EXPECT_EQ(via_dataset.pairs_verified, via_hist.pairs_verified);
  EXPECT_EQ(via_dataset.accepted, via_hist.accepted);
}

}  // namespace
}  // namespace freqywm
