#include "core/bucketize.h"

#include <gtest/gtest.h>

#include "core/detect.h"
#include "core/watermark.h"

namespace freqywm {
namespace {

TEST(BucketTokenTest, MapsValuesToBuckets) {
  BucketizeSpec spec;
  spec.origin = 0.0;
  spec.width = 10.0;
  EXPECT_EQ(BucketToken(0.0, spec), "bucket0");
  EXPECT_EQ(BucketToken(9.99, spec), "bucket0");
  EXPECT_EQ(BucketToken(10.0, spec), "bucket1");
  EXPECT_EQ(BucketToken(105.5, spec), "bucket10");
}

TEST(BucketTokenTest, BelowOriginClampsToZero) {
  BucketizeSpec spec;
  spec.origin = 100.0;
  spec.width = 5.0;
  EXPECT_EQ(BucketToken(50.0, spec), "bucket0");
}

TEST(BucketTokenTest, CustomPrefixAndOrigin) {
  BucketizeSpec spec;
  spec.origin = 1000.0;
  spec.width = 250.0;
  spec.token_prefix = "price_";
  EXPECT_EQ(BucketToken(1600.0, spec), "price_2");
}

TEST(BucketizeNumericStringsTest, ParsesAndBuckets) {
  BucketizeSpec spec;
  spec.width = 100.0;
  auto d = BucketizeNumericStrings({"12.5", "150", "99.99", "250"}, spec);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().tokens(),
            (std::vector<Token>{"bucket0", "bucket1", "bucket0", "bucket2"}));
}

TEST(BucketizeNumericStringsTest, RejectsGarbage) {
  BucketizeSpec spec;
  EXPECT_FALSE(BucketizeNumericStrings({"1.5", "abc"}, spec).ok());
  EXPECT_FALSE(BucketizeNumericStrings({"1.5x"}, spec).ok());
  EXPECT_FALSE(BucketizeNumericStrings({"nan"}, spec).ok());
}

TEST(BucketizeNumericStringsTest, RejectsNonPositiveWidth) {
  BucketizeSpec spec;
  spec.width = 0.0;
  EXPECT_FALSE(BucketizeNumericStrings({"1"}, spec).ok());
}

TEST(BucketRangeTest, RoundTripsWithBucketToken) {
  BucketizeSpec spec;
  spec.origin = 50.0;
  spec.width = 25.0;
  Token t = BucketToken(112.0, spec);
  auto range = BucketRange(t, spec);
  ASSERT_TRUE(range.ok());
  EXPECT_LE(range.value().first, 112.0);
  EXPECT_GT(range.value().second, 112.0);
  EXPECT_DOUBLE_EQ(range.value().second - range.value().first, 25.0);
}

TEST(BucketRangeTest, RejectsForeignTokens) {
  BucketizeSpec spec;
  EXPECT_FALSE(BucketRange("youtube.com", spec).ok());
  EXPECT_FALSE(BucketRange("bucketXY", spec).ok());
}

TEST(BucketizeIntegrationTest, WideRangeSalesDataBecomesWatermarkable) {
  // §VI "Challenging datasets": raw sales amounts barely repeat, but their
  // buckets do — and the bucketized view watermarks and detects normally.
  Rng rng(5);
  std::vector<double> sales;
  sales.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    // Lognormal-ish prices with decimals: almost all values unique.
    double u = rng.UniformDouble();
    sales.push_back(5.0 + 995.0 * u * u + rng.UniformDouble());
  }
  BucketizeSpec spec;
  spec.width = 10.0;
  Dataset buckets = BucketizeNumeric(sales, spec);
  Histogram hist = Histogram::FromDataset(buckets);
  EXPECT_LT(hist.num_tokens(), 120u);  // clustering worked

  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 131;
  o.seed = 6;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(hist);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r.value().report.chosen_pairs, 0u);

  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = r.value().report.chosen_pairs;
  EXPECT_TRUE(
      DetectWatermark(r.value().watermarked, r.value().report.secrets, d)
          .accepted);
}

}  // namespace
}  // namespace freqywm
