#include "core/eligible.h"

#include <gtest/gtest.h>

#include "datagen/power_law.h"

namespace freqywm {
namespace {

Histogram MakeHist(std::vector<HistogramEntry> entries) {
  auto h = Histogram::FromCounts(std::move(entries));
  EXPECT_TRUE(h.ok());
  return std::move(h).value();
}

TEST(MakePairPlanTest, PaperWorkedExampleShrink) {
  // youtube=1098, instagram=537, s=129: rm = 561 mod 129 = 45 <= 64.
  EligiblePair p = MakePairPlan(0, 3, 1098 - 537, 129);
  EXPECT_EQ(p.remainder, 45u);
  EXPECT_EQ(p.delta_i, -23);
  EXPECT_EQ(p.delta_j, +22);
  EXPECT_EQ(p.cost, 45u);
  // New difference divisible by s: (1098-23) - (537+22) = 516 = 4*129.
  EXPECT_EQ((1098 + p.delta_i - (537 + p.delta_j)) % 129, 0);
}

TEST(MakePairPlanTest, WrapAroundGrowsDifference) {
  // rm > s/2: cheaper to grow the difference by s - rm.
  // diff = 10, s = 8 -> rm = 2 <= 4 shrink. Use diff=13, s=8 -> rm=5 > 4.
  EligiblePair p = MakePairPlan(0, 1, 13, 8);
  EXPECT_EQ(p.remainder, 5u);
  EXPECT_EQ(p.cost, 3u);  // s - rm
  EXPECT_EQ(p.delta_i, +2);
  EXPECT_EQ(p.delta_j, -1);
  EXPECT_EQ((13 + p.delta_i - p.delta_j) % 8, 0);
}

TEST(MakePairPlanTest, AlreadyAlignedPairIsFree) {
  EligiblePair p = MakePairPlan(0, 1, 24, 12);
  EXPECT_EQ(p.remainder, 0u);
  EXPECT_EQ(p.cost, 0u);
  EXPECT_EQ(p.delta_i, 0);
  EXPECT_EQ(p.delta_j, 0);
}

TEST(MakePairPlanTest, CostIsAlwaysMinOfRemainderAndComplement) {
  for (uint64_t s : {2ull, 3ull, 7ull, 100ull, 129ull}) {
    for (uint64_t diff = 0; diff < 2 * s; ++diff) {
      EligiblePair p = MakePairPlan(0, 1, diff, s);
      uint64_t rm = diff % s;
      EXPECT_EQ(p.cost, std::min(rm, s - rm == s ? 0 : s - rm))
          << "diff=" << diff << " s=" << s;
      // Deltas always zero the residue.
      int64_t new_diff = static_cast<int64_t>(diff) + p.delta_i - p.delta_j;
      EXPECT_EQ(((new_diff % static_cast<int64_t>(s)) +
                 static_cast<int64_t>(s)) % static_cast<int64_t>(s), 0)
          << "diff=" << diff << " s=" << s;
    }
  }
}

TEST(MakePairPlanTest, PerTokenChurnBoundedByHalfModulus) {
  // The wrap rule caps each token's change at ceil(s/4)+1 <= s/2; the
  // documented guarantee is |delta| <= ceil(s/2).
  for (uint64_t s : {2ull, 5ull, 13ull, 129ull}) {
    for (uint64_t diff = 0; diff < 3 * s; ++diff) {
      EligiblePair p = MakePairPlan(0, 1, diff, s);
      EXPECT_LE(static_cast<uint64_t>(std::abs(p.delta_i)), (s + 1) / 2);
      EXPECT_LE(static_cast<uint64_t>(std::abs(p.delta_j)), (s + 1) / 2);
    }
  }
}

class EligibleRuleTest
    : public ::testing::TestWithParam<EligibilityRule> {};

TEST_P(EligibleRuleTest, UniformHistogramHasNoEligiblePairs) {
  // The paper's inapplicability case: equal frequencies leave no slack.
  std::vector<HistogramEntry> entries;
  for (int i = 0; i < 20; ++i) {
    entries.push_back({"t" + std::to_string(i), 100});
  }
  Histogram h = MakeHist(std::move(entries));
  PairModulus pm(GenerateSecret(256, 3), 131);
  auto eligible = BuildEligiblePairs(h, pm, GetParam());
  // Interior tokens have zero boundaries; only pairs whose s is tiny AND
  // involve the extremes could sneak in under the strict rule with zero
  // deltas. The paper rule requires all four boundaries >= 1, impossible
  // here except for... nothing: every token has a zero boundary somewhere.
  for (const auto& p : eligible) {
    EXPECT_EQ(p.cost, 0u);  // at most already-aligned free pairs
  }
}

TEST_P(EligibleRuleTest, SkewedHistogramHasEligiblePairs) {
  Rng rng(5);
  PowerLawSpec spec;
  spec.num_tokens = 100;
  spec.sample_size = 200000;
  spec.alpha = 0.7;
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  PairModulus pm(GenerateSecret(256, 7), 131);
  auto eligible = BuildEligiblePairs(h, pm, GetParam());
  EXPECT_GT(eligible.size(), 10u);
  for (const auto& p : eligible) {
    EXPECT_LT(p.rank_i, p.rank_j);
    EXPECT_GE(p.s, 2u);
    EXPECT_LT(p.remainder, p.s);
  }
}

INSTANTIATE_TEST_SUITE_P(BothRules, EligibleRuleTest,
                         ::testing::Values(EligibilityRule::kPaper,
                                           EligibilityRule::kStrictHalfGap));

TEST(EligibleTest, StrictRuleIsMoreConservativeOnSharedGaps) {
  Rng rng(11);
  PowerLawSpec spec;
  spec.num_tokens = 150;
  spec.sample_size = 100000;
  spec.alpha = 0.5;
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  PairModulus pm(GenerateSecret(256, 13), 1031);
  auto paper = BuildEligiblePairs(h, pm, EligibilityRule::kPaper);
  auto strict = BuildEligiblePairs(h, pm, EligibilityRule::kStrictHalfGap);
  // Same modulus derivation; strict admits pairs by exact deltas, so its
  // list may differ but generally is not larger for mid-size moduli.
  EXPECT_FALSE(paper.empty());
  EXPECT_FALSE(strict.empty());
}

TEST(EligibleTest, SmallZYieldsMoreEligiblePairsThanLargeZ) {
  // Fig. 2b's mechanism: smaller z -> smaller s_ij -> smaller boundary
  // requirement -> more eligible pairs.
  Rng rng(17);
  PowerLawSpec spec;
  spec.num_tokens = 120;
  spec.sample_size = 150000;
  spec.alpha = 0.7;
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  WatermarkSecret secret = GenerateSecret(256, 19);
  auto small_z = BuildEligiblePairs(h, PairModulus(secret, 10),
                                    EligibilityRule::kPaper);
  auto large_z = BuildEligiblePairs(h, PairModulus(secret, 2063),
                                    EligibilityRule::kPaper);
  EXPECT_GT(small_z.size(), large_z.size());
}

TEST(EligibleTest, PairsWithModulusBelowTwoAreExcluded) {
  Rng rng(23);
  PowerLawSpec spec;
  spec.num_tokens = 60;
  spec.sample_size = 60000;
  spec.alpha = 0.8;
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  // z = 2 forces s in {0, 1} half the time; every survivor has s == ... no:
  // s in {0,1}; nothing is eligible at z=2? s must be >= 2 and s < z = 2.
  PairModulus pm(GenerateSecret(256, 29), 2);
  auto eligible = BuildEligiblePairs(h, pm, EligibilityRule::kPaper);
  EXPECT_TRUE(eligible.empty());
}

TEST(EligibleTest, DeterministicOrdering) {
  Rng rng(31);
  PowerLawSpec spec;
  spec.num_tokens = 50;
  spec.sample_size = 30000;
  spec.alpha = 0.6;
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  PairModulus pm(GenerateSecret(256, 37), 131);
  auto a = BuildEligiblePairs(h, pm, EligibilityRule::kPaper);
  auto b = BuildEligiblePairs(h, pm, EligibilityRule::kPaper);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rank_i, b[i].rank_i);
    EXPECT_EQ(a[i].rank_j, b[i].rank_j);
    EXPECT_EQ(a[i].s, b[i].s);
  }
  // Ordered by (rank_i, rank_j).
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_TRUE(a[i - 1].rank_i < a[i].rank_i ||
                (a[i - 1].rank_i == a[i].rank_i &&
                 a[i - 1].rank_j < a[i].rank_j));
  }
}

}  // namespace
}  // namespace freqywm
