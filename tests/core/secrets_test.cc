#include "core/secrets.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace freqywm {
namespace {

WatermarkSecrets MakeSecrets() {
  WatermarkSecrets s;
  s.r = GenerateSecret(256, 5);
  s.z = 1031;
  s.pairs = {{"youtube.com", "instagram.com"},
             {"facebook.com", "bbc.com"},
             {"token with spaces", "token,with,commas"}};
  return s;
}

TEST(SecretsTest, SerializeDeserializeRoundTrip) {
  WatermarkSecrets s = MakeSecrets();
  auto parsed = WatermarkSecrets::Deserialize(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), s);
}

TEST(SecretsTest, BinaryTokensSurviveRoundTrip) {
  WatermarkSecrets s;
  s.r = GenerateSecret(256, 6);
  s.z = 131;
  s.pairs = {{std::string("\x00\x01\xff", 3), std::string("\x1f\n\r", 3)}};
  auto parsed = WatermarkSecrets::Deserialize(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), s);
}

TEST(SecretsTest, EmptyPairListRoundTrips) {
  WatermarkSecrets s;
  s.r = GenerateSecret(256, 7);
  s.z = 17;
  auto parsed = WatermarkSecrets::Deserialize(s.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), s);
}

TEST(SecretsTest, RejectsBadMagic) {
  auto parsed = WatermarkSecrets::Deserialize("not-a-secrets-file\n");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kCorruption);
}

TEST(SecretsTest, RejectsTruncatedPairList) {
  WatermarkSecrets s = MakeSecrets();
  std::string text = s.Serialize();
  // Chop the final pair line off.
  text.erase(text.rfind('\n', text.size() - 2) + 1);
  EXPECT_FALSE(WatermarkSecrets::Deserialize(text).ok());
}

TEST(SecretsTest, RejectsBadZ) {
  EXPECT_FALSE(WatermarkSecrets::Deserialize(
                   "freqywm-secrets v1\nz 1\nr ab\npairs 0\n")
                   .ok());
  EXPECT_FALSE(WatermarkSecrets::Deserialize(
                   "freqywm-secrets v1\nz abc\nr ab\npairs 0\n")
                   .ok());
}

TEST(SecretsTest, RejectsMalformedHexInPairs) {
  std::string text =
      "freqywm-secrets v1\nz 131\nr abcd\npairs 1\nzz yy\n";
  EXPECT_FALSE(WatermarkSecrets::Deserialize(text).ok());
}

TEST(SecretsTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/freqywm_secrets_test.txt";
  WatermarkSecrets s = MakeSecrets();
  ASSERT_TRUE(s.SaveToFile(path).ok());
  auto loaded = WatermarkSecrets::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), s);
  std::remove(path.c_str());
}

TEST(SecretsTest, LoadMissingFileFails) {
  auto loaded = WatermarkSecrets::LoadFromFile("/no/such/file");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace freqywm
