#include "crypto/pair_modulus.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace freqywm {
namespace {

TEST(PairModulusTest, DeterministicForFixedSecret) {
  WatermarkSecret s = GenerateSecret(256, 11);
  PairModulus pm(s, 1031);
  EXPECT_EQ(pm.Compute("youtube.com", "instagram.com"),
            pm.Compute("youtube.com", "instagram.com"));
}

TEST(PairModulusTest, ResultBelowZ) {
  WatermarkSecret s = GenerateSecret(256, 13);
  for (uint64_t z : {2ull, 10ull, 131ull, 1031ull}) {
    PairModulus pm(s, z);
    for (int i = 0; i < 50; ++i) {
      uint64_t v = pm.Compute("tk" + std::to_string(i), "tk_other");
      EXPECT_LT(v, z);
    }
  }
}

TEST(PairModulusTest, AsymmetricInPairOrder) {
  // The derivation H(tk_i || H(R || tk_j)) is intentionally ordered.
  WatermarkSecret s = GenerateSecret(256, 17);
  PairModulus pm(s, 1000003);
  EXPECT_NE(pm.Compute("alpha", "beta"), pm.Compute("beta", "alpha"));
}

TEST(PairModulusTest, DifferentSecretsGiveDifferentModuli) {
  PairModulus a(GenerateSecret(256, 1), 1000003);
  PairModulus b(GenerateSecret(256, 2), 1000003);
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    std::string ti = "tk" + std::to_string(i);
    if (a.Compute(ti, "x") != b.Compute(ti, "x")) ++differing;
  }
  EXPECT_GT(differing, 15);  // collisions should be rare
}

TEST(PairModulusTest, InnerDigestCacheMatchesDirectComputation) {
  WatermarkSecret s = GenerateSecret(256, 19);
  PairModulus pm(s, 131);
  Sha256::Digest inner = pm.InnerDigest("facebook.com");
  for (const char* ti : {"youtube.com", "bbc.com", "cnn.com"}) {
    EXPECT_EQ(pm.ComputeWithInner(ti, inner), pm.Compute(ti, "facebook.com"));
  }
}

TEST(PairModulusTest, OuterStateReduceMatchesComputeWithInner) {
  // The midstate path of the O(n^2) scan: one OuterState per token_i, one
  // cloned finish per pair — must agree with both slower derivations for
  // tokens of every size class (empty, short, buffer-straddling, multi-
  // block).
  WatermarkSecret s = GenerateSecret(256, 31);
  for (uint64_t z : {2ull, 131ull, 1031ull}) {
    PairModulus pm(s, z);
    std::vector<std::string> tokens = {
        "", "a", "youtube.com", std::string(63, 'q'), std::string(64, 'r'),
        std::string(200, 'm')};
    for (const std::string& ti : tokens) {
      PairModulus::OuterState outer = pm.OuterFor(ti);
      for (const std::string& tj : tokens) {
        Sha256::Digest inner = pm.InnerDigest(tj);
        EXPECT_EQ(outer.Reduce(inner), pm.ComputeWithInner(ti, inner));
        EXPECT_EQ(outer.Reduce(inner), pm.Compute(ti, tj));
      }
    }
  }
}

TEST(PairModulusTest, OuterStateIsReusableAndCopyable) {
  WatermarkSecret s = GenerateSecret(256, 37);
  PairModulus pm(s, 1031);
  PairModulus::OuterState outer = pm.OuterFor("token-i");
  PairModulus::OuterState copy = outer;
  Sha256::Digest inner = pm.InnerDigest("token-j");
  // Repeated reductions (and reductions through a copy) never disturb the
  // midstate.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(outer.Reduce(inner), pm.Compute("token-i", "token-j"));
    EXPECT_EQ(copy.Reduce(inner), pm.Compute("token-i", "token-j"));
  }
}

TEST(PairModulusTest, ValuesLookUniformModZ) {
  // Bucket counts for s_ij over many token pairs should be roughly flat —
  // the property that makes t/s the right false-positive model.
  WatermarkSecret s = GenerateSecret(256, 23);
  const uint64_t z = 10;
  PairModulus pm(s, z);
  std::map<uint64_t, int> buckets;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    buckets[pm.Compute("a" + std::to_string(i), "b")]++;
  }
  for (const auto& [value, count] : buckets) {
    EXPECT_NEAR(count, n / static_cast<int>(z), n / static_cast<int>(z) / 2);
  }
}

TEST(PairModulusTest, TokenConcatenationIsNotAmbiguous) {
  // ("ab", "c") vs ("a", "bc") must not collide thanks to the inner hash
  // having fixed width: H(tk_i || H(R||tk_j)) separates the halves.
  WatermarkSecret s = GenerateSecret(256, 29);
  PairModulus pm(s, 1000003);
  EXPECT_NE(pm.Compute("ab", "c"), pm.Compute("a", "bc"));
}

}  // namespace
}  // namespace freqywm
