#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace freqywm {
namespace {

// NIST FIPS 180-4 / CAVP short-message vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::HexDigest(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::HexDigest("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::HexDigest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, LongMillionA) {
  std::string input(1000000, 'a');
  EXPECT_EQ(Sha256::HexDigest(input),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, FoxSentence) {
  EXPECT_EQ(Sha256::HexDigest("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

// Exercise the padding boundary cases: messages of length 55, 56, 63, 64
// hit the different pad paths (length fits / does not fit the final block).
TEST(Sha256Test, PaddingBoundaries) {
  EXPECT_EQ(Sha256::HexDigest(std::string(55, 'x')),
            Sha256::HexDigest(std::string(55, 'x')));
  std::string len55(55, 'a'), len56(56, 'a'), len63(63, 'a'), len64(64, 'a');
  // Distinct lengths must hash differently.
  EXPECT_NE(Sha256::HexDigest(len55), Sha256::HexDigest(len56));
  EXPECT_NE(Sha256::HexDigest(len56), Sha256::HexDigest(len63));
  EXPECT_NE(Sha256::HexDigest(len63), Sha256::HexDigest(len64));
}

// Known vector at the 56-byte boundary (CAVP).
TEST(Sha256Test, Exactly64Bytes) {
  std::string input(64, 'a');
  EXPECT_EQ(Sha256::HexDigest(input),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data =
      "FreqyWM hides a secret in the appearance frequency of tokens";
  Sha256 h;
  // Feed in awkward chunk sizes to cross block boundaries.
  size_t pos = 0;
  size_t chunk = 1;
  while (pos < data.size()) {
    size_t take = std::min(chunk, data.size() - pos);
    h.Update(data.substr(pos, take));
    pos += take;
    chunk = chunk * 2 + 1;
  }
  Sha256::Digest inc = h.Finish();
  Sha256::Digest once = Sha256::Hash(data);
  EXPECT_EQ(inc, once);
}

// Midstate clone-after-absorb (the per-pair hot path of eligible-pair
// enumeration): splitting any message into prefix/suffix, absorbing the
// prefix once and finishing clones over the suffix must reproduce the
// one-shot digest — including splits that straddle block boundaries.
TEST(Sha256Test, MidstateCloneMatchesOneShotAtEverySplit) {
  // > 2 blocks so splits cover buffered, block-aligned and mid-block
  // midstates.
  std::string data;
  for (int i = 0; i < 150; ++i) data.push_back(static_cast<char>('a' + i % 26));
  const Sha256::Digest once = Sha256::Hash(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 prefix;
    prefix.Update(std::string_view(data).substr(0, split));
    Sha256 clone = prefix;  // midstate snapshot
    clone.Update(std::string_view(data).substr(split));
    EXPECT_EQ(clone.Finish(), once) << "split at " << split;
  }
}

// One midstate, many suffixes: each cloned finish is independent and the
// original midstate stays reusable.
TEST(Sha256Test, MidstateIsReusableAcrossManySuffixes) {
  Sha256 midstate;
  midstate.Update("shared-prefix|");
  for (int k = 0; k < 20; ++k) {
    std::string suffix = "suffix-" + std::to_string(k);
    Sha256 clone = midstate;
    clone.Update(suffix);
    EXPECT_EQ(clone.Finish(), Sha256::Hash("shared-prefix|" + suffix));
  }
  // The midstate itself was never finished; finishing a final clone still
  // matches the prefix-only digest.
  EXPECT_EQ(midstate.FinishedCopy(), Sha256::Hash("shared-prefix|"));
}

// FinishedCopy does not consume the state: repeated calls agree, and
// updating afterwards continues from the same midstate.
TEST(Sha256Test, FinishedCopyLeavesStateIntact) {
  Sha256 h;
  h.Update("abc");
  EXPECT_EQ(h.FinishedCopy(), Sha256::Hash("abc"));
  EXPECT_EQ(h.FinishedCopy(), Sha256::Hash("abc"));
  h.Update("def");
  EXPECT_EQ(h.FinishedCopy(), Sha256::Hash("abcdef"));
}

// NIST vector through the midstate path: clone of an "abc" midstate must
// produce the canonical digest.
TEST(Sha256Test, MidstateCloneReproducesNistVector) {
  Sha256 h;
  h.Update("ab");
  Sha256 clone = h;
  clone.Update("c");
  Sha256::Digest d = clone.Finish();
  std::string hex;
  for (uint8_t b : d) {
    static const char* k = "0123456789abcdef";
    hex.push_back(k[b >> 4]);
    hex.push_back(k[b & 0xf]);
  }
  EXPECT_EQ(hex,
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, VectorOverloadMatchesStringOverload) {
  std::string s = "bytes";
  std::vector<uint8_t> v(s.begin(), s.end());
  EXPECT_EQ(Sha256::Hash(s), Sha256::Hash(v));
}

TEST(Sha256Test, DigestPrefixU64IsBigEndian) {
  Sha256::Digest d{};
  d[0] = 0x01;
  d[7] = 0xff;
  EXPECT_EQ(DigestPrefixU64(d), 0x01000000000000ffULL);
}

// Regression guard (DESIGN.md §11): every prefix byte has its top bit
// set, so any implicit promotion to signed int inside the byte-fold
// (`v << 8 | digest[i]`) would be UB the CI UBSan job catches — the fold
// must stay in uint64_t the whole way.
TEST(Sha256Test, DigestPrefixU64HighBitBytesStayUnsigned) {
  Sha256::Digest d{};
  for (size_t i = 0; i < 8; ++i) d[i] = 0xff;
  EXPECT_EQ(DigestPrefixU64(d), 0xffffffffffffffffULL);
  d[0] = 0x80;
  EXPECT_EQ(DigestPrefixU64(d), 0x80ffffffffffffffULL);
}

TEST(Sha256Test, AvalancheOneBitFlip) {
  Sha256::Digest a = Sha256::Hash("token-a");
  Sha256::Digest b = Sha256::Hash("token-b");
  int differing_bits = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    differing_bits += __builtin_popcount(a[i] ^ b[i]);
  }
  // ~128 expected for an ideal hash; anything above 80 shows diffusion.
  EXPECT_GT(differing_bits, 80);
}

}  // namespace
}  // namespace freqywm
