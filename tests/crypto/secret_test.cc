#include "crypto/secret.h"

#include <gtest/gtest.h>

namespace freqywm {
namespace {

TEST(SecretTest, DefaultLambdaIs256Bits) {
  WatermarkSecret s = GenerateSecret();
  EXPECT_EQ(s.lambda_bits(), 256u);
  EXPECT_EQ(s.r.size(), 32u);
}

TEST(SecretTest, CustomLambda) {
  EXPECT_EQ(GenerateSecret(128, 1).r.size(), 16u);
  EXPECT_EQ(GenerateSecret(8, 1).r.size(), 1u);
  // Sub-byte lambda is rounded up to one byte.
  EXPECT_EQ(GenerateSecret(3, 1).r.size(), 1u);
  // Long secrets need several SHA-256 blocks.
  EXPECT_EQ(GenerateSecret(1024, 1).r.size(), 128u);
}

TEST(SecretTest, DeterministicSeedReproduces) {
  WatermarkSecret a = GenerateSecret(256, 99);
  WatermarkSecret b = GenerateSecret(256, 99);
  EXPECT_EQ(a, b);
}

TEST(SecretTest, DifferentSeedsDiffer) {
  EXPECT_FALSE(GenerateSecret(256, 1) == GenerateSecret(256, 2));
}

TEST(SecretTest, NonDeterministicSecretsDiffer) {
  // Two draws from the entropy pool colliding would mean a broken RNG.
  EXPECT_FALSE(GenerateSecret() == GenerateSecret());
}

TEST(SecretTest, HexRoundTrip) {
  WatermarkSecret s = GenerateSecret(256, 7);
  auto parsed = WatermarkSecret::FromHex(s.ToHex());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), s);
}

TEST(SecretTest, FromHexRejectsGarbage) {
  EXPECT_FALSE(WatermarkSecret::FromHex("xyz").ok());
  EXPECT_FALSE(WatermarkSecret::FromHex("abc").ok());  // odd length
  EXPECT_FALSE(WatermarkSecret::FromHex("").ok());     // empty secret
}

TEST(SecretTest, LongSecretBlocksAreNotRepeated) {
  // Counter-mode stretching must not repeat the first block.
  WatermarkSecret s = GenerateSecret(512, 5);
  std::vector<uint8_t> first(s.r.begin(), s.r.begin() + 32);
  std::vector<uint8_t> second(s.r.begin() + 32, s.r.begin() + 64);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace freqywm
