#include "datagen/power_law.h"

#include <gtest/gtest.h>

#include <cmath>

namespace freqywm {
namespace {

TEST(PowerLawProbabilitiesTest, SumsToOne) {
  for (double alpha : {0.0, 0.05, 0.5, 1.0, 2.0}) {
    auto p = PowerLawProbabilities(100, alpha);
    double sum = 0;
    for (double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12) << "alpha=" << alpha;
  }
}

TEST(PowerLawProbabilitiesTest, AlphaZeroIsUniform) {
  auto p = PowerLawProbabilities(10, 0.0);
  for (double v : p) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(PowerLawProbabilitiesTest, MonotoneDecreasingForPositiveAlpha) {
  auto p = PowerLawProbabilities(50, 0.7);
  for (size_t i = 1; i < p.size(); ++i) EXPECT_LE(p[i], p[i - 1]);
}

TEST(PowerLawProbabilitiesTest, HigherAlphaIsMoreSkewed) {
  auto p_low = PowerLawProbabilities(100, 0.2);
  auto p_high = PowerLawProbabilities(100, 1.0);
  EXPECT_GT(p_high[0], p_low[0]);
  EXPECT_LT(p_high[99], p_low[99]);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(1);
  std::vector<double> weights{8.0, 1.0, 1.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.8, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.01);
}

TEST(AliasSamplerTest, SingleCategory) {
  Rng rng(2);
  AliasSampler sampler({3.0});
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightCategoryNeverSampled) {
  Rng rng(3);
  AliasSampler sampler({1.0, 0.0, 1.0});
  for (int i = 0; i < 5000; ++i) EXPECT_NE(sampler.Sample(rng), 1u);
}

TEST(GeneratePowerLawDatasetTest, SizeAndTokenUniverse) {
  Rng rng(4);
  PowerLawSpec spec;
  spec.num_tokens = 20;
  spec.sample_size = 5000;
  spec.alpha = 0.5;
  Dataset d = GeneratePowerLawDataset(spec, rng);
  EXPECT_EQ(d.size(), 5000u);
  for (const auto& t : d.tokens()) {
    EXPECT_EQ(t.rfind("tk", 0), 0u);
  }
}

TEST(GeneratePowerLawDatasetTest, RankZeroIsMostFrequent) {
  Rng rng(5);
  PowerLawSpec spec;
  spec.num_tokens = 10;
  spec.sample_size = 20000;
  spec.alpha = 1.0;
  Dataset d = GeneratePowerLawDataset(spec, rng);
  EXPECT_GT(d.CountOf("tk0"), d.CountOf("tk9"));
}

TEST(GeneratePowerLawHistogramTest, MatchesDatasetDistribution) {
  PowerLawSpec spec;
  spec.num_tokens = 50;
  spec.sample_size = 50000;
  spec.alpha = 0.7;
  Rng rng1(6), rng2(6);
  Histogram from_hist = GeneratePowerLawHistogram(spec, rng1);
  Histogram from_data =
      Histogram::FromDataset(GeneratePowerLawDataset(spec, rng2));
  // Same seed, same draw sequence — identical histograms.
  EXPECT_EQ(from_hist.total_count(), from_data.total_count());
  for (const auto& e : from_hist.entries()) {
    EXPECT_EQ(from_data.CountOf(e.token), e.count) << e.token;
  }
}

TEST(GeneratePowerLawHistogramTest, TotalEqualsSampleSize) {
  Rng rng(7);
  PowerLawSpec spec;
  spec.num_tokens = 100;
  spec.sample_size = 10000;
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  EXPECT_EQ(h.total_count(), 10000u);
  EXPECT_LE(h.num_tokens(), 100u);
  EXPECT_TRUE(h.IsSortedDescending());
}

// Property sweep: the paper's alpha grid produces valid histograms with
// variation that grows then saturates.
class PowerLawAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawAlphaSweep, HistogramIsWellFormed) {
  Rng rng(static_cast<uint64_t>(GetParam() * 1000) + 1);
  PowerLawSpec spec;
  spec.num_tokens = 200;
  spec.sample_size = 100000;
  spec.alpha = GetParam();
  Histogram h = GeneratePowerLawHistogram(spec, rng);
  EXPECT_TRUE(h.IsSortedDescending());
  EXPECT_EQ(h.total_count(), spec.sample_size);
  EXPECT_GT(h.num_tokens(), 150u);  // nearly all tokens appear at this size
}

INSTANTIATE_TEST_SUITE_P(PaperAlphas, PowerLawAlphaSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.7, 0.9, 1.0));

}  // namespace
}  // namespace freqywm
