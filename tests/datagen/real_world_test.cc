#include "datagen/real_world.h"

#include <gtest/gtest.h>

#include <set>

namespace freqywm {
namespace {

TEST(ChicagoTaxiLikeTest, DistinctTokensAndTotal) {
  Rng rng(1);
  Histogram h = MakeChicagoTaxiLikeHistogram(rng, 500, 100000);
  EXPECT_EQ(h.total_count(), 100000u);
  EXPECT_LE(h.num_tokens(), 500u);
  EXPECT_GT(h.num_tokens(), 450u);  // nearly every taxi has trips
  EXPECT_TRUE(h.IsSortedDescending());
}

TEST(ChicagoTaxiLikeTest, HeavyTailSpread) {
  Rng rng(2);
  Histogram h = MakeChicagoTaxiLikeHistogram(rng, 1000, 500000);
  // Lognormal activity: the busiest taxi should be far above the median.
  uint64_t top = h.entry(0).count;
  uint64_t median = h.entry(h.num_tokens() / 2).count;
  EXPECT_GT(top, 5 * median);
}

TEST(EyeWnderLikeTest, HistogramShape) {
  Rng rng(3);
  Histogram h = MakeEyeWnderLikeHistogram(rng, 2000, 200000);
  EXPECT_TRUE(h.IsSortedDescending());
  // Steep power law: the head dominates and the tail is long and flat.
  EXPECT_GT(h.entry(0).count, h.total_count() / 100);
  uint64_t tail = h.entry(h.num_tokens() - 1).count;
  EXPECT_LE(tail, 5u);
}

TEST(EyeWnderLikeTest, DatasetMatchesTokenUniverse) {
  Rng rng(4);
  Dataset d = MakeEyeWnderLikeDataset(rng, 300, 20000);
  EXPECT_EQ(d.size(), 20000u);
  for (const auto& t : d.tokens()) EXPECT_EQ(t.rfind("url", 0), 0u);
}

TEST(AdultLikeTest, SchemaAndRowCount) {
  Rng rng(5);
  TableDataset t = MakeAdultLikeTable(rng, 5000);
  EXPECT_EQ(t.num_rows(), 5000u);
  EXPECT_EQ(t.column_names(),
            (std::vector<std::string>{"Age", "WorkClass", "Education",
                                      "HoursPerWeek"}));
}

TEST(AdultLikeTest, AgeUniverseMatchesUci) {
  Rng rng(6);
  TableDataset t = MakeAdultLikeTable(rng, 48842);
  auto ages = t.ProjectTokens({"Age"});
  ASSERT_TRUE(ages.ok());
  Histogram h = Histogram::FromDataset(ages.value());
  // 73 distinct ages (17..89) as in the paper's Table II.
  EXPECT_LE(h.num_tokens(), 73u);
  EXPECT_GE(h.num_tokens(), 70u);
  for (const auto& e : h.entries()) {
    int age = std::stoi(e.token);
    EXPECT_GE(age, 17);
    EXPECT_LE(age, 89);
  }
}

TEST(AdultLikeTest, WorkClassDominatedByPrivate) {
  Rng rng(7);
  TableDataset t = MakeAdultLikeTable(rng, 20000);
  auto wc = t.ProjectTokens({"WorkClass"});
  ASSERT_TRUE(wc.ok());
  Histogram h = Histogram::FromDataset(wc.value());
  EXPECT_EQ(h.entry(0).token, "Private");
  EXPECT_GT(h.entry(0).count, h.total_count() / 2);
}

TEST(AdultLikeTest, CompositeTokenCountInPaperRegime) {
  Rng rng(8);
  TableDataset t = MakeAdultLikeTable(rng, 48842);
  auto combo = t.ProjectTokens({"Age", "WorkClass"});
  ASSERT_TRUE(combo.ok());
  Histogram h = Histogram::FromDataset(combo.value());
  // Paper reports 481 distinct [Age, WorkClass] tokens; our census-like
  // marginals land in the same few-hundred regime.
  EXPECT_GT(h.num_tokens(), 300u);
  EXPECT_LT(h.num_tokens(), 660u);
}

}  // namespace
}  // namespace freqywm
