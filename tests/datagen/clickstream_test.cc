#include "datagen/clickstream.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/decomposition.h"

namespace freqywm {
namespace {

ClickstreamSpec SmallSpec() {
  ClickstreamSpec spec;
  spec.num_urls = 100;
  spec.num_events = 20000;
  spec.num_days = 14;
  return spec;
}

TEST(ClickstreamTest, EventCountAndTimeRange) {
  Rng rng(1);
  ClickstreamSpec spec = SmallSpec();
  auto events = GenerateClickstream(spec, rng);
  EXPECT_EQ(events.size(), spec.num_events);
  for (const auto& e : events) {
    EXPECT_GE(e.timestamp, spec.start_timestamp);
    EXPECT_LT(e.timestamp, spec.start_timestamp +
                               static_cast<int64_t>(spec.num_days) * 86400);
  }
}

TEST(ClickstreamTest, EventsAreTimestampSorted) {
  Rng rng(2);
  auto events = GenerateClickstream(SmallSpec(), rng);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const ClickEvent& a, const ClickEvent& b) {
                               return a.timestamp < b.timestamp;
                             }));
}

TEST(ClickstreamTest, TokensProjectInOrder) {
  Rng rng(3);
  auto events = GenerateClickstream(SmallSpec(), rng);
  Dataset tokens = ClickstreamTokens(events);
  ASSERT_EQ(tokens.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(tokens[i], events[i].url);
  }
}

TEST(ClickstreamTest, DailyCountsSumToEvents) {
  Rng rng(4);
  ClickstreamSpec spec = SmallSpec();
  auto events = GenerateClickstream(spec, rng);
  auto daily = DailyClickCounts(events, spec.start_timestamp, spec.num_days);
  ASSERT_EQ(daily.size(), spec.num_days);
  double total = 0;
  for (double d : daily) total += d;
  EXPECT_EQ(static_cast<size_t>(total), spec.num_events);
}

TEST(ClickstreamTest, TrendIsVisibleInDailyCounts) {
  Rng rng(5);
  ClickstreamSpec spec;
  spec.num_urls = 50;
  spec.num_events = 100000;
  spec.num_days = 30;
  spec.daily_trend = 0.05;  // strong growth
  auto events = GenerateClickstream(spec, rng);
  auto daily = DailyClickCounts(events, spec.start_timestamp, spec.num_days);
  // Second half of the month must be busier than the first.
  double first = 0, second = 0;
  for (size_t i = 0; i < 15; ++i) first += daily[i];
  for (size_t i = 15; i < 30; ++i) second += daily[i];
  EXPECT_GT(second, first * 1.2);
}

TEST(ClickstreamTest, DailySeasonalityIsVisibleInHourlyCounts) {
  Rng rng(6);
  ClickstreamSpec spec;
  spec.num_urls = 50;
  spec.num_events = 200000;
  spec.num_days = 10;
  spec.daily_seasonality = 0.9;
  auto events = GenerateClickstream(spec, rng);

  // Hourly series should decompose into a clearly nonzero seasonal part.
  std::vector<double> hourly(spec.num_days * 24, 0.0);
  for (const auto& e : events) {
    int64_t hour = (e.timestamp - spec.start_timestamp) / 3600;
    hourly[static_cast<size_t>(hour)] += 1.0;
  }
  auto dec = DecomposeAdditive(hourly, 24);
  double seasonal_sd = StdDev(dec.seasonal);
  double residual_sd = StdDev(dec.residual);
  EXPECT_GT(seasonal_sd, residual_sd);
}

}  // namespace
}  // namespace freqywm
