// TenantContext suite (DESIGN.md §14): per-tenant quotas with typed
// kResourceExhausted rejections (escrow, sessions, in-flight suspects),
// the RAII session lifecycle with unit accounting, the health snapshot,
// and the isolation contract of the acceptance criteria: one tenant
// saturating its quotas — or holding keys whose circuits are open —
// cannot change another tenant's verdicts, cache contents or admission
// outcomes.

#include "analysis/tenant.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/factory.h"
#include "common/random.h"
#include "datagen/power_law.h"
#include "exec/batch_detector.h"

namespace freqywm {
namespace {

Histogram MakeHistogram(uint64_t seed) {
  Rng rng(seed);
  PowerLawSpec spec;
  spec.num_tokens = 150;
  spec.sample_size = 60000;
  spec.alpha = 0.6;
  return GeneratePowerLawHistogram(spec, rng);
}

struct TenantFixture {
  std::vector<SchemeKey> keys;
  std::vector<Histogram> suspects;

  TenantFixture() {
    Histogram original = MakeHistogram(91);
    for (uint64_t seed : {601, 602}) {
      OptionBag bag;
      bag.Set("seed", std::to_string(seed));
      auto scheme = SchemeFactory::Create("freqywm", bag);
      EXPECT_TRUE(scheme.ok());
      auto outcome = scheme.value()->Embed(original);
      EXPECT_TRUE(outcome.ok()) << outcome.status();
      keys.push_back(outcome.value().key);
      suspects.push_back(outcome.value().watermarked);
    }
    suspects.push_back(original);
  }
};

const TenantFixture& Fixture() {
  static const TenantFixture* fixture = new TenantFixture();
  return *fixture;
}

std::vector<Histogram> Batch(size_t from, size_t count) {
  std::vector<Histogram> out;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(Fixture().suspects[(from + i) % Fixture().suspects.size()]);
  }
  return out;
}

void EscrowAll(TenantContext& tenant) {
  for (size_t i = 0; i < Fixture().keys.size(); ++i) {
    ASSERT_TRUE(
        tenant.Escrow("buyer-" + std::to_string(i), Fixture().keys[i]).ok());
  }
}

TEST(TenantTest, EscrowQuotaIsTypedResourceExhausted) {
  TenantQuotas quotas;
  quotas.max_escrowed_keys = 1;
  TenantContext tenant("acme", quotas);

  ASSERT_TRUE(tenant.Escrow("buyer-0", Fixture().keys[0]).ok());
  Status over = tenant.Escrow("buyer-1", Fixture().keys[1]);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tenant.escrowed_keys(), 1u);
}

TEST(TenantTest, SessionQuotaFreesOnDestruction) {
  TenantQuotas quotas;
  quotas.max_concurrent_sessions = 1;
  TenantContext tenant("acme", quotas);
  EscrowAll(tenant);

  auto first = tenant.OpenSession();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(tenant.open_sessions(), 1u);

  auto second = tenant.OpenSession();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  first = Status::ResourceExhausted("drop");  // destroys the session
  EXPECT_EQ(tenant.open_sessions(), 0u);
  EXPECT_TRUE(tenant.OpenSession().ok());
}

TEST(TenantTest, SubmitDrainLifecycleAccountsUnits) {
  TenantQuotas quotas;
  quotas.max_in_flight_suspects = 8;
  TenantContext tenant("acme", quotas);
  EscrowAll(tenant);

  auto session = tenant.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      session.value()->Submit(Batch(0, 3), InterruptContext{}).ok());

  EngineHealthSnapshot mid = tenant.Health();
  EXPECT_EQ(mid.admission.in_flight, 3u);
  EXPECT_EQ(mid.session_queue_depth, 3u);
  EXPECT_EQ(mid.open_sessions, 1u);

  SessionDrainResult result =
      session.value()->DrainChecked(InterruptContext{});
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.verdicts.size(), 3u);

  // Each drained row returned one admitted unit.
  EngineHealthSnapshot after = tenant.Health();
  EXPECT_EQ(after.admission.in_flight, 0u);
  EXPECT_EQ(after.session_queue_depth, 0u);
}

TEST(TenantTest, InFlightQuotaShedsTypedAndRecoversAfterDrain) {
  TenantQuotas quotas;
  quotas.max_in_flight_suspects = 2;
  TenantContext tenant("acme", quotas);
  EscrowAll(tenant);

  auto session = tenant.OpenSession();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->TrySubmit(Batch(0, 2)).ok());

  Status shed = session.value()->TrySubmit(Batch(2, 1));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  // The shed enqueued nothing and leased nothing.
  EXPECT_EQ(session.value()->pending_suspects(), 2u);
  EXPECT_EQ(tenant.Health().admission.in_flight, 2u);

  (void)session.value()->DrainChecked(InterruptContext{});
  EXPECT_TRUE(session.value()->TrySubmit(Batch(2, 1)).ok());
}

TEST(TenantTest, AbandonedSessionReturnsLeasedUnits) {
  TenantQuotas quotas;
  quotas.max_in_flight_suspects = 2;
  TenantContext tenant("acme", quotas);
  EscrowAll(tenant);
  {
    auto session = tenant.OpenSession();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session.value()->TrySubmit(Batch(0, 2)).ok());
    // Abandoned without a drain.
  }
  EXPECT_EQ(tenant.Health().admission.in_flight, 0u);
  EXPECT_EQ(tenant.open_sessions(), 0u);
}

TEST(TenantTest, CacheSliceIsSizedByQuotaAndPrivate) {
  TenantQuotas quotas;
  quotas.max_cache_entries = 7;
  TenantContext tenant("acme", quotas);
  EXPECT_EQ(tenant.key_cache()->capacity(), 7u);

  TenantContext other("globex");
  EXPECT_EQ(other.key_cache()->capacity(),
            PreparedKeyCache::kDefaultCapacity);
  EXPECT_NE(tenant.key_cache().get(), other.key_cache().get());
}

TEST(TenantTest, VerdictsIdenticalToUntenantedSessionAnyThreads) {
  BatchDetector::Session reference(BatchDetectOptions{}, Fixture().keys);
  reference.AddSuspects(Batch(0, 3));
  const auto expected = reference.Drain();

  for (size_t threads : {1u, 2u, 4u}) {
    TenantQuotas quotas;
    quotas.max_in_flight_suspects = 16;
    quotas.max_pending_suspects = 16;
    TenantContext tenant("acme", quotas);
    EscrowAll(tenant);
    auto session = tenant.OpenSession(threads);
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(
        session.value()->Submit(Batch(0, 3), InterruptContext{}).ok());
    SessionDrainResult result =
        session.value()->DrainChecked(InterruptContext{});
    ASSERT_TRUE(result.status.ok());
    ASSERT_EQ(result.verdicts.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      for (size_t j = 0; j < expected[i].size(); ++j) {
        EXPECT_TRUE(result.verdicts[i][j] == expected[i][j])
            << "threads=" << threads << " cell (" << i << "," << j << ")";
      }
    }
  }
}

TEST(TenantTest, SaturatedOrPoisonedTenantCannotPerturbAnother) {
  // Tenant A: tiny quotas, saturated, and every key's circuit forced
  // open — the worst neighbor the acceptance criteria describe.
  TenantQuotas a_quotas;
  a_quotas.max_in_flight_suspects = 1;
  a_quotas.max_concurrent_sessions = 1;
  a_quotas.breaker_failure_threshold = 1;
  TenantContext tenant_a("noisy", a_quotas);
  EscrowAll(tenant_a);
  for (const SchemeKey& key : Fixture().keys) {
    tenant_a.circuit_breaker()->RecordFailure(
        PreparedKeyCache::Fingerprint(key));
  }
  auto a_session = tenant_a.OpenSession();
  ASSERT_TRUE(a_session.ok());
  ASSERT_TRUE(a_session.value()->TrySubmit(Batch(0, 1)).ok());
  // A is now fully saturated: in-flight quota consumed, session quota
  // consumed, every key quarantined.
  EXPECT_EQ(a_session.value()->key_statuses()[0].code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(a_session.value()->TrySubmit(Batch(0, 1)).ok());
  EXPECT_FALSE(tenant_a.OpenSession().ok());

  // Tenant B (same escrowed keys): verdicts must equal the untenanted
  // reference, its key columns must be healthy, and its admissions must
  // succeed — A's saturation and quarantines are invisible to B.
  BatchDetector::Session reference(BatchDetectOptions{}, Fixture().keys);
  reference.AddSuspects(Batch(0, 3));
  const auto expected = reference.Drain();

  TenantContext tenant_b("quiet");
  EscrowAll(tenant_b);
  auto b_session = tenant_b.OpenSession();
  ASSERT_TRUE(b_session.ok());
  for (const Status& status : b_session.value()->key_statuses()) {
    EXPECT_TRUE(status.ok()) << status;
  }
  ASSERT_TRUE(
      b_session.value()->Submit(Batch(0, 3), InterruptContext{}).ok());
  SessionDrainResult result =
      b_session.value()->DrainChecked(InterruptContext{});
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.verdicts.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    for (size_t j = 0; j < expected[i].size(); ++j) {
      EXPECT_TRUE(result.verdicts[i][j] == expected[i][j])
          << "cell (" << i << "," << j << ")";
    }
  }

  // B's cache slice saw only B's traffic (its own key preparations);
  // B's admission counters saw only B's submissions.
  EXPECT_EQ(tenant_b.Health().admission.total_shed(), 0u);
  EXPECT_EQ(tenant_b.Health().breaker.open_keys, 0u);
  EXPECT_EQ(tenant_b.key_cache()->stats().size, Fixture().keys.size());
}

TEST(TenantTest, TraceSuspectsMatchesRegistrySemantics) {
  TenantContext tenant("acme");
  EscrowAll(tenant);

  FingerprintRegistry reference;
  for (size_t i = 0; i < Fixture().keys.size(); ++i) {
    ASSERT_TRUE(
        reference.Register("buyer-" + std::to_string(i), Fixture().keys[i])
            .ok());
  }
  const auto expected = reference.TraceSuspects(Batch(0, 2));
  const auto actual = tenant.TraceSuspects(Batch(0, 2));
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "suspect " << i;
  }
}

}  // namespace
}  // namespace freqywm
