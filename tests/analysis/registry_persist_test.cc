// Crash-safe registry persistence suite (ISSUE 8 / DESIGN.md §13):
// SaveToFile/LoadFromFile round trips, the checksum footer rejecting
// truncation and bit rot with typed Corruption, NotFound for a missing
// path, the atomic write-temp/fsync/rename discipline (no temp residue,
// old snapshot survives an injected crash-before-rename), and the bounded
// retry overload driven by a fake sleep.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/registry.h"
#include "exec/cancellation.h"
#include "exec/fault_injection.h"
#include "exec/retry.h"

namespace freqywm {
namespace {

FingerprintRegistry MakeRegistry() {
  FingerprintRegistry registry;
  EXPECT_TRUE(registry
                  .Register("buyer-alpha",
                            SchemeKey{"wm-custom", "payload alpha\nline 2\n"})
                  .ok());
  EXPECT_TRUE(
      registry.Register("buyer-beta", SchemeKey{"wm-rvs", "payload beta"})
          .ok());
  EXPECT_TRUE(
      registry.Register("buyer-gamma", SchemeKey{"wm-obt", ""}).ok());
  return registry;
}

std::string UniquePath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "registry_persist_" +
         std::string(info->name()) + "_" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(RegistryPersistTest, SnapshotRoundTripsInMemory) {
  FingerprintRegistry registry = MakeRegistry();
  std::string snapshot = registry.SerializeSnapshot();
  auto loaded = FingerprintRegistry::ParseSnapshot(snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().Serialize(), registry.Serialize());
  EXPECT_EQ(loaded.value().size(), registry.size());
}

TEST(RegistryPersistTest, SaveThenLoadRoundTrips) {
  FingerprintRegistry registry = MakeRegistry();
  std::string path = UniquePath("roundtrip");
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().Serialize(), registry.Serialize());
  // The atomic discipline leaves no temp residue next to the snapshot.
  std::ifstream temp(path + ".tmp");
  EXPECT_FALSE(temp.good());
  std::remove(path.c_str());
}

TEST(RegistryPersistTest, EmptyRegistryRoundTrips) {
  FingerprintRegistry registry;
  std::string path = UniquePath("empty");
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().size(), 0u);
  std::remove(path.c_str());
}

TEST(RegistryPersistTest, SaveOverwritesPreviousSnapshot) {
  FingerprintRegistry small;
  ASSERT_TRUE(small.Register("only", SchemeKey{"wm-custom", "p"}).ok());
  FingerprintRegistry big = MakeRegistry();
  std::string path = UniquePath("overwrite");
  ASSERT_TRUE(small.SaveToFile(path).ok());
  ASSERT_TRUE(big.SaveToFile(path).ok());
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Serialize(), big.Serialize());
  std::remove(path.c_str());
}

TEST(RegistryPersistTest, LoadMissingFileIsNotFound) {
  auto loaded =
      FingerprintRegistry::LoadFromFile(UniquePath("never_written"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(RegistryPersistTest, EveryBitFlipIsDetected) {
  // Flip one bit at a sample of positions across the snapshot (payload
  // and footer alike): the load must fail typed — Corruption from the
  // checksum, or in principle a parse error — never succeed with
  // different records and never crash.
  FingerprintRegistry registry = MakeRegistry();
  std::string snapshot = registry.SerializeSnapshot();
  for (size_t pos = 0; pos < snapshot.size(); pos += 7) {
    std::string damaged = snapshot;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x10);
    auto loaded = FingerprintRegistry::ParseSnapshot(damaged);
    ASSERT_FALSE(loaded.ok()) << "undetected flip at byte " << pos;
  }
}

TEST(RegistryPersistTest, EveryTruncationIsDetected) {
  FingerprintRegistry registry = MakeRegistry();
  std::string snapshot = registry.SerializeSnapshot();
  for (size_t keep = 0; keep < snapshot.size(); keep += 11) {
    auto loaded =
        FingerprintRegistry::ParseSnapshot(snapshot.substr(0, keep));
    ASSERT_FALSE(loaded.ok()) << "undetected truncation to " << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

TEST(RegistryPersistTest, MissingFooterIsCorruption) {
  // A bare Serialize() payload (the pre-§13 on-disk format) has no
  // footer: the snapshot parser must reject it typed rather than guess.
  FingerprintRegistry registry = MakeRegistry();
  auto loaded = FingerprintRegistry::ParseSnapshot(registry.Serialize());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(RegistryPersistTest, DamagedFileFailsLoadTyped) {
  FingerprintRegistry registry = MakeRegistry();
  std::string path = UniquePath("damaged");
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  std::string bytes = ReadFileOrDie(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 1);
  WriteFileOrDie(path, bytes);
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(RegistryPersistTest, RetryOverloadSucceedsWithoutFaults) {
  FingerprintRegistry registry = MakeRegistry();
  std::string path = UniquePath("retry_clean");
  RetryPolicy policy;
  std::vector<std::chrono::nanoseconds> sleeps;
  policy.sleep = [&](std::chrono::nanoseconds d) { sleeps.push_back(d); };
  ASSERT_TRUE(registry.SaveToFile(path, policy, InterruptContext{}).ok());
  EXPECT_TRUE(sleeps.empty());
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Serialize(), registry.Serialize());
  std::remove(path.c_str());
}

TEST(RegistryPersistTest, RetryOverloadHonorsCancellation) {
  FingerprintRegistry registry = MakeRegistry();
  CancellationSource source;
  source.Cancel();
  RetryPolicy policy;
  policy.sleep = [](std::chrono::nanoseconds) {};
  Status status =
      registry.SaveToFile(UniquePath("retry_cancelled"), policy,
                          InterruptContext{source.token(), Deadline()});
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

#if defined(FREQYWM_FAULT_INJECTION)

/// Injected-crash tests: every registry_io fault site must leave the
/// previous snapshot loadable (the kill-during-save acceptance criterion).
class RegistryPersistFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Disarm(); }
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(RegistryPersistFaultTest, CrashBeforeRenameKeepsOldSnapshot) {
  FingerprintRegistry old_registry;
  ASSERT_TRUE(
      old_registry.Register("old-buyer", SchemeKey{"wm-custom", "v1"}).ok());
  FingerprintRegistry new_registry = MakeRegistry();
  std::string path = UniquePath("crash_rename");
  ASSERT_TRUE(old_registry.SaveToFile(path).ok());

  // The widest crash window: everything written and fsynced, the rename
  // never happens. The published snapshot must still be the old one.
  FaultInjector::Global().FailNextHits("registry_io/rename", 1);
  Status failed = new_registry.SaveToFile(path);
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().Serialize(), old_registry.Serialize());

  // And the save is retryable once the fault clears.
  ASSERT_TRUE(new_registry.SaveToFile(path).ok());
  auto reloaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().Serialize(), new_registry.Serialize());
  std::remove(path.c_str());
}

TEST_F(RegistryPersistFaultTest, EveryWriteSiteFailureLeavesOldLoadable) {
  FingerprintRegistry old_registry;
  ASSERT_TRUE(
      old_registry.Register("old-buyer", SchemeKey{"wm-custom", "v1"}).ok());
  FingerprintRegistry new_registry = MakeRegistry();
  for (const char* site : {"registry_io/open_temp", "registry_io/write",
                           "registry_io/fsync", "registry_io/rename"}) {
    std::string path = UniquePath(std::string("site_") +
                                  std::string(site).substr(12));
    ASSERT_TRUE(old_registry.SaveToFile(path).ok());
    FaultInjector::Global().FailNextHits(site, 1);
    Status failed = new_registry.SaveToFile(path);
    EXPECT_EQ(failed.code(), StatusCode::kUnavailable) << site;
    auto loaded = FingerprintRegistry::LoadFromFile(path);
    ASSERT_TRUE(loaded.ok()) << site << ": " << loaded.status();
    EXPECT_EQ(loaded.value().Serialize(), old_registry.Serialize()) << site;
    std::remove(path.c_str());
  }
}

TEST_F(RegistryPersistFaultTest, RetryOverloadRidesOutTransientFault) {
  FingerprintRegistry registry = MakeRegistry();
  std::string path = UniquePath("retry_transient");
  FaultInjector::Global().FailNextHits("registry_io/fsync", 1);
  RetryPolicy policy;
  std::vector<std::chrono::nanoseconds> sleeps;
  policy.sleep = [&](std::chrono::nanoseconds d) { sleeps.push_back(d); };
  ASSERT_TRUE(registry.SaveToFile(path, policy, InterruptContext{}).ok());
  EXPECT_EQ(sleeps.size(), 1u);  // attempt 1 failed, attempt 2 landed
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Serialize(), registry.Serialize());
  std::remove(path.c_str());
}

TEST_F(RegistryPersistFaultTest, ParentDirFsyncFailureIsCountedWarning) {
  // ISSUE 10 satellite: the parent-directory fsync (which makes the
  // rename itself durable) was silently best-effort. Its failure must
  // not fail the save — the data file is synced and the snapshot is
  // loadable — but it must surface as a counted SaveReport warning.
  FingerprintRegistry registry = MakeRegistry();
  std::string path = UniquePath("fsync_dir");

  FaultInjector::Global().FailNextHits("registry_io/fsync_dir", 1);
  FingerprintRegistry::SaveReport report;
  ASSERT_TRUE(registry.SaveToFile(path, &report).ok());
  EXPECT_EQ(report.parent_dir_fsync_warnings, 1u);
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value().Serialize(), registry.Serialize());

  // A clean save reports no warning (the counter is per-save, honest).
  FingerprintRegistry::SaveReport clean_report;
  ASSERT_TRUE(registry.SaveToFile(path, &clean_report).ok());
  EXPECT_EQ(clean_report.parent_dir_fsync_warnings, 0u);
  std::remove(path.c_str());
}

TEST_F(RegistryPersistFaultTest, InjectedReadFailureIsUnavailable) {
  FingerprintRegistry registry = MakeRegistry();
  std::string path = UniquePath("read_fault");
  ASSERT_TRUE(registry.SaveToFile(path).ok());
  FaultInjector::Global().FailNextHits("registry_io/read", 1);
  auto loaded = FingerprintRegistry::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  // Reads are side-effect free: the snapshot is intact afterwards.
  auto retried = FingerprintRegistry::LoadFromFile(path);
  ASSERT_TRUE(retried.ok());
  std::remove(path.c_str());
}

#endif  // FREQYWM_FAULT_INJECTION

}  // namespace
}  // namespace freqywm
