// DurableRegistry suite (DESIGN.md §15): WAL-before-ack recovery with
// and without a checkpoint, idempotent replay over the checkpoint/rotate
// crash window, auto-checkpointing, validation ordering (rejections log
// nothing), gauges — and, knob-gated, the crash-recovery invariant under
// both the 64-seed all-site sweep and a targeted kill at every I/O site:
// recovery always yields a valid registry containing every acknowledged
// record (fsync=every), never a corrupt registry, never a lost ack.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <sys/stat.h>

#include <fstream>
#include <sstream>

#include "analysis/durable_registry.h"
#include "analysis/registry.h"
#include "analysis/tenant.h"
#include "exec/fault_injection.h"

namespace freqywm {
namespace {

std::string UniqueDir(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "durable_" +
                    std::string(info->name()) + "_" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveDir(const std::string& dir) {
  std::remove(DurableRegistry::SnapshotPath(dir).c_str());
  std::remove(DurableRegistry::WalPath(dir).c_str());
  ::rmdir(dir.c_str());
}

SchemeKey KeyFor(size_t i) {
  return SchemeKey{"wm-custom", "payload-" + std::to_string(i)};
}

std::string BuyerFor(size_t i) { return "buyer-" + std::to_string(i); }

// Used by the knob-gated fault suite only; unused in plain builds.
[[maybe_unused]] std::set<std::string> BuyerIds(
    const FingerprintRegistry& registry) {
  std::set<std::string> ids;
  for (const FingerprintRecord& record : registry.records()) {
    ids.insert(record.buyer_id);
  }
  return ids;
}

TEST(DurableRegistryTest, OpensEmptyAndRecoversWalOnlyRegistrations) {
  const std::string dir = UniqueDir("wal_only");
  {
    auto opened = DurableRegistry::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(opened.value()->size(), 0u);
    EXPECT_FALSE(opened.value()->open_stats().snapshot_loaded);
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(opened.value()->Register(BuyerFor(i), KeyFor(i)).ok());
    }
  }
  // No checkpoint ever ran: recovery is pure WAL replay.
  auto reopened = DurableRegistry::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.value()->size(), 5u);
  EXPECT_FALSE(reopened.value()->open_stats().snapshot_loaded);
  EXPECT_EQ(reopened.value()->open_stats().records_replayed, 5u);
  EXPECT_EQ(reopened.value()->open_stats().duplicates_skipped, 0u);
  const FingerprintRegistry snapshot = reopened.value()->Snapshot();
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(snapshot.Contains(BuyerFor(i))) << i;
    EXPECT_EQ(snapshot.records()[i].key, KeyFor(i)) << i;
  }
  RemoveDir(dir);
}

TEST(DurableRegistryTest, CheckpointPublishesSnapshotAndRotatesWal) {
  const std::string dir = UniqueDir("checkpoint");
  {
    auto opened = DurableRegistry::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(opened.value()->Register(BuyerFor(i), KeyFor(i)).ok());
    }
    ASSERT_TRUE(opened.value()->Checkpoint().ok());
    EXPECT_EQ(opened.value()->gauges().checkpoints_published, 1u);
    EXPECT_EQ(opened.value()->gauges().wal_records_since_checkpoint, 0u);
    // Post-checkpoint registrations land in the rotated WAL.
    ASSERT_TRUE(opened.value()->Register(BuyerFor(4), KeyFor(4)).ok());
    EXPECT_EQ(opened.value()->gauges().wal_records_since_checkpoint, 1u);
  }
  auto reopened = DurableRegistry::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened.value()->size(), 5u);
  EXPECT_TRUE(reopened.value()->open_stats().snapshot_loaded);
  // Only the post-checkpoint record replays; the rest came from the
  // snapshot.
  EXPECT_EQ(reopened.value()->open_stats().records_replayed, 1u);
  EXPECT_EQ(reopened.value()->open_stats().duplicates_skipped, 0u);
  RemoveDir(dir);
}

TEST(DurableRegistryTest, AutoCheckpointFiresOnThreshold) {
  const std::string dir = UniqueDir("auto");
  DurableRegistryOptions options;
  options.checkpoint_threshold_bytes = 256;  // a few records
  auto opened = DurableRegistry::Open(dir, options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  for (size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(opened.value()->Register(BuyerFor(i), KeyFor(i)).ok());
  }
  const DurabilityGauges gauges = opened.value()->gauges();
  EXPECT_GE(gauges.checkpoints_published, 1u);
  EXPECT_EQ(gauges.checkpoint_failures, 0u);
  // The WAL never grows far past the threshold: each crossing rotates.
  EXPECT_LT(gauges.wal_size_bytes, 2 * 256 + 128);
  // And the published snapshot alone already covers the checkpointed
  // prefix.
  auto snapshot =
      FingerprintRegistry::LoadFromFile(DurableRegistry::SnapshotPath(dir));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_GT(snapshot.value().size(), 0u);
  RemoveDir(dir);
}

TEST(DurableRegistryTest, RejectionsAreValidatedBeforeLogging) {
  const std::string dir = UniqueDir("reject");
  auto opened = DurableRegistry::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  ASSERT_TRUE(opened.value()->Register("dup", KeyFor(0)).ok());
  const uint64_t size_after_ack = opened.value()->gauges().wal_size_bytes;

  EXPECT_EQ(opened.value()->Register("dup", KeyFor(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(opened.value()->Register("", KeyFor(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(opened.value()->Register("two\nlines", KeyFor(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(opened.value()
                ->Register("ok-id", SchemeKey{"bad scheme", "p"})
                .code(),
            StatusCode::kInvalidArgument);
  // None of the rejections consumed log space.
  EXPECT_EQ(opened.value()->gauges().wal_size_bytes, size_after_ack);
  EXPECT_EQ(opened.value()->size(), 1u);
  RemoveDir(dir);
}

TEST(DurableRegistryTest, RegistrationRoundTripsBinaryPayloads) {
  const std::string dir = UniqueDir("binary");
  const SchemeKey key{"wm-custom",
                      std::string("raw\0bytes\nwith newlines\xff", 24)};
  {
    auto opened = DurableRegistry::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    ASSERT_TRUE(opened.value()->Register("binary-buyer", key).ok());
  }
  auto reopened = DurableRegistry::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const FingerprintRegistry snapshot = reopened.value()->Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.records()[0].key, key);
  RemoveDir(dir);
}

TEST(DurableRegistryTest, EncodeDecodeRegistrationRoundTrips) {
  const SchemeKey key{"wm-rvs", std::string("a\nb\0c", 5)};
  auto decoded = DecodeRegistration(EncodeRegistration("buyer x", key));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().buyer_id, "buyer x");
  EXPECT_TRUE(decoded.value().key == key);
  // Malformed payloads are typed Corruption, never applied.
  EXPECT_EQ(DecodeRegistration("no newlines at all").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeRegistration("id-only\n").status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(DecodeRegistration("\nscheme\npayload").status().code(),
            StatusCode::kCorruption);
}

TEST(DurableRegistryTest, TenantWiringRecoversEscrowAcrossReopen) {
  // The TenantQuotas::durable_dir opt-in end to end: a durable tenant's
  // acknowledged escrows survive dropping the whole TenantContext, the
  // recovered tenant enforces the same duplicate/quota rules, and
  // Health() carries the durability gauges.
  const std::string dir = UniqueDir("tenant");
  TenantQuotas quotas;
  quotas.durable_dir = dir;
  quotas.max_escrowed_keys = 3;
  {
    auto tenant = TenantContext::Open("acme", quotas);
    ASSERT_TRUE(tenant.ok()) << tenant.status();
    ASSERT_TRUE(tenant.value()->Escrow("buyer-a", KeyFor(0)).ok());
    ASSERT_TRUE(tenant.value()->Escrow("buyer-b", KeyFor(1)).ok());
    const EngineHealthSnapshot health = tenant.value()->Health();
    EXPECT_TRUE(health.durability.durable);
    EXPECT_EQ(health.durability.wal_records_since_checkpoint, 2u);
    EXPECT_EQ(health.durability.wal_unsynced_records, 0u);  // fsync=every
  }  // crash: the context (and its in-memory registry) is gone
  auto tenant = TenantContext::Open("acme", quotas);
  ASSERT_TRUE(tenant.ok()) << tenant.status();
  EXPECT_EQ(tenant.value()->escrowed_keys(), 2u);
  EXPECT_EQ(tenant.value()->Health().durability.records_replayed_at_open,
            2u);
  // Recovered state enforces the same rules: duplicate rejected, quota
  // counts the recovered records.
  EXPECT_EQ(tenant.value()->Escrow("buyer-a", KeyFor(0)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(tenant.value()->Escrow("buyer-c", KeyFor(2)).ok());
  EXPECT_EQ(tenant.value()->Escrow("buyer-d", KeyFor(3)).code(),
            StatusCode::kResourceExhausted);
  RemoveDir(dir);
}

TEST(DurableRegistryTest, TenantOpenSurfacesDamagedStateTyped) {
  // A durable tenant over a damaged snapshot must fail at Open — typed,
  // immediately — and a directly-constructed context must surface the
  // same error on first Escrow instead of silently running in-memory.
  const std::string dir = UniqueDir("tenant_damaged");
  {
    auto registry = DurableRegistry::Open(dir);
    ASSERT_TRUE(registry.ok()) << registry.status();
    ASSERT_TRUE(registry.value()->Register("buyer-a", KeyFor(0)).ok());
    ASSERT_TRUE(registry.value()->Checkpoint().ok());
  }
  // Flip a byte in the published snapshot.
  const std::string snapshot_path = DurableRegistry::SnapshotPath(dir);
  std::string bytes;
  {
    std::ifstream in(snapshot_path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  bytes[bytes.size() / 2] ^= 0x04;
  {
    std::ofstream out(snapshot_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  TenantQuotas quotas;
  quotas.durable_dir = dir;
  auto tenant = TenantContext::Open("acme", quotas);
  ASSERT_FALSE(tenant.ok());
  EXPECT_EQ(tenant.status().code(), StatusCode::kCorruption);

  TenantContext direct("acme", quotas);
  EXPECT_EQ(direct.Escrow("buyer-b", KeyFor(1)).code(),
            StatusCode::kCorruption);
  EXPECT_EQ(direct.escrowed_keys(), 0u);
  RemoveDir(dir);
}

#if defined(FREQYWM_FAULT_INJECTION)

class DurableRegistryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Disarm(); }
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

/// Registers `attempts` buyers against `registry`, returning the set of
/// ACKNOWLEDGED ids (non-OK returns are unacked by contract). Failures
/// must be typed, never a crash.
std::set<std::string> RegisterUnderFaults(DurableRegistry& registry,
                                          size_t attempts) {
  std::set<std::string> acked;
  for (size_t i = 0; i < attempts; ++i) {
    Status status = registry.Register(BuyerFor(i), KeyFor(i));
    if (status.ok()) {
      acked.insert(BuyerFor(i));
    } else {
      EXPECT_TRUE(status.code() == StatusCode::kUnavailable ||
                  status.code() == StatusCode::kInvalidArgument)
          << BuyerFor(i) << ": " << status;
    }
  }
  return acked;
}

/// The crash-recovery invariant, checked after the simulated crash:
/// recovery succeeds, every acked record is present, and nothing that
/// was never submitted appears.
void VerifyRecovery(const std::string& dir,
                    const std::set<std::string>& acked, size_t attempts,
                    const std::string& label) {
  auto recovered = DurableRegistry::Open(dir);
  ASSERT_TRUE(recovered.ok()) << label << ": " << recovered.status();
  const FingerprintRegistry snapshot = recovered.value()->Snapshot();
  const std::set<std::string> ids = BuyerIds(snapshot);
  for (const std::string& id : acked) {
    EXPECT_TRUE(ids.count(id) > 0) << label << ": lost acked " << id;
  }
  std::set<std::string> submitted;
  for (size_t i = 0; i < attempts; ++i) submitted.insert(BuyerFor(i));
  for (const std::string& id : ids) {
    EXPECT_TRUE(submitted.count(id) > 0)
        << label << ": phantom record " << id;
  }
  // Recovered keys must be the exact bytes submitted for that buyer.
  for (const FingerprintRecord& record : snapshot.records()) {
    const size_t i = std::stoul(record.buyer_id.substr(6));
    EXPECT_TRUE(record.key == KeyFor(i)) << label << ": " << record.buyer_id;
  }
}

TEST_F(DurableRegistryFaultTest, SweptFaultsNeverLoseAnAckedRecord) {
  // ISSUE 10 acceptance sweep: 64 seeds, faults armed across ALL sites
  // (wal/append, wal/fsync, wal/rotate, checkpoint/publish, every
  // registry_io/* site) at rate 1-in-3, with an auto-checkpoint
  // threshold small enough that the publish/rotate path runs inside the
  // sweep. Crash = dropping the instance mid-stream; recovery must
  // yield every acked record under fsync=every.
  constexpr uint64_t kSweepSeeds = 64;
  constexpr size_t kAttempts = 24;
  for (uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
    const std::string dir = UniqueDir("seed" + std::to_string(seed));
    DurableRegistryOptions options;
    options.checkpoint_threshold_bytes = 200;
    auto opened = DurableRegistry::Open(dir, options);
    ASSERT_TRUE(opened.ok()) << "seed " << seed << ": " << opened.status();

    FaultInjector::Global().ArmSeeded(seed, 3);
    const std::set<std::string> acked =
        RegisterUnderFaults(*opened.value(), kAttempts);
    opened.value().reset();  // crash point: whatever the disk holds, holds
    FaultInjector::Global().Disarm();

    VerifyRecovery(dir, acked, kAttempts, "seed " + std::to_string(seed));
    RemoveDir(dir);
  }
}

TEST_F(DurableRegistryFaultTest, KillAtEveryIoSiteRecoversAckedExactly) {
  // Targeted kill: force ONE failure at each I/O site on the durable
  // path, crash immediately at the failure, recover, and pin down the
  // per-site contract. For every site except wal/fsync the recovered
  // set is EXACTLY the acked set; a failed fsync may leave the one
  // unacked in-flight record durable (written, not synced) — never
  // fewer than acked, never more than acked plus that record.
  const struct SiteCase {
    const char* site;
    bool may_carry_one_unacked;
  } kSites[] = {
      {"wal/append", false},        {"wal/fsync", true},
      {"wal/rotate", false},        {"checkpoint/publish", false},
      {"registry_io/open_temp", false}, {"registry_io/write", false},
      {"registry_io/fsync", false}, {"registry_io/rename", false},
  };
  constexpr size_t kAttempts = 16;
  for (const SiteCase& site_case : kSites) {
    const std::string dir = UniqueDir(std::string("kill_") +
                                      (std::strchr(site_case.site, '/') + 1));
    DurableRegistryOptions options;
    options.checkpoint_threshold_bytes = 200;  // checkpoints inside the run
    auto opened = DurableRegistry::Open(dir, options);
    ASSERT_TRUE(opened.ok()) << site_case.site << ": " << opened.status();

    FaultInjector::Global().FailNextHits(site_case.site, 1);
    std::set<std::string> acked;
    bool fault_fired = false;
    for (size_t i = 0; i < kAttempts; ++i) {
      Status status = opened.value()->Register(BuyerFor(i), KeyFor(i));
      if (status.ok()) {
        acked.insert(BuyerFor(i));
        // Checkpoint-path failures (publish, rotate, registry_io/*) are
        // swallowed into the failure gauge — the record stays acked.
        if (opened.value()->gauges().checkpoint_failures > 0) {
          fault_fired = true;
          break;  // crash right at the swallowed checkpoint failure
        }
      } else {
        EXPECT_EQ(status.code(), StatusCode::kUnavailable)
            << site_case.site << ": " << status;
        fault_fired = true;
        break;  // crash right at the failure
      }
    }
    EXPECT_TRUE(fault_fired) << site_case.site << ": site never on path";
    opened.value().reset();  // the kill
    FaultInjector::Global().Disarm();

    auto recovered = DurableRegistry::Open(dir);
    ASSERT_TRUE(recovered.ok())
        << site_case.site << ": " << recovered.status();
    const std::set<std::string> ids =
        BuyerIds(recovered.value()->Snapshot());
    for (const std::string& id : acked) {
      EXPECT_TRUE(ids.count(id) > 0)
          << site_case.site << ": lost acked " << id;
    }
    EXPECT_LE(ids.size(), acked.size() + (site_case.may_carry_one_unacked
                                              ? 1u
                                              : 0u))
        << site_case.site;
    RemoveDir(dir);
  }
}

TEST_F(DurableRegistryFaultTest,
       CrashBetweenPublishAndRotateReplaysIdempotently) {
  // The checkpoint crash window: snapshot durably published, WAL not
  // yet rotated. Recovery must load the snapshot AND replay the stale
  // WAL records as duplicates — skipped by id, surfaced in the gauge.
  const std::string dir = UniqueDir("publish_rotate_window");
  {
    auto opened = DurableRegistry::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status();
    for (size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(opened.value()->Register(BuyerFor(i), KeyFor(i)).ok());
    }
    FaultInjector::Global().FailNextHits("wal/rotate", 1);
    Status checkpoint = opened.value()->Checkpoint();
    ASSERT_FALSE(checkpoint.ok());
    EXPECT_EQ(checkpoint.code(), StatusCode::kUnavailable);
  }  // crash
  FaultInjector::Global().Disarm();
  auto recovered = DurableRegistry::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value()->size(), 6u);
  EXPECT_TRUE(recovered.value()->open_stats().snapshot_loaded);
  EXPECT_EQ(recovered.value()->open_stats().duplicates_skipped, 6u);
  EXPECT_EQ(recovered.value()->open_stats().records_replayed, 0u);
  EXPECT_EQ(recovered.value()->gauges().duplicates_skipped_at_open, 6u);
  RemoveDir(dir);
}

TEST_F(DurableRegistryFaultTest, ParentDirFsyncWarningSurfacesInGauges) {
  // Satellite 2, gauge half: a checkpoint whose parent-directory fsync
  // fails still succeeds, and the warning lands in DurabilityGauges.
  const std::string dir = UniqueDir("fsync_dir_gauge");
  auto opened = DurableRegistry::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  ASSERT_TRUE(opened.value()->Register("warned", KeyFor(0)).ok());
  FaultInjector::Global().FailNextHits("registry_io/fsync_dir", 1);
  ASSERT_TRUE(opened.value()->Checkpoint().ok());
  EXPECT_EQ(opened.value()->gauges().parent_dir_fsync_warnings, 1u);
  EXPECT_EQ(opened.value()->gauges().checkpoints_published, 1u);
  RemoveDir(dir);
}

TEST_F(DurableRegistryFaultTest, FailedFsyncRetryReportsAlreadyRegistered) {
  // The documented caller protocol after a failed-sync ack loss: retry
  // of the same buyer id either succeeds (record never became durable)
  // or reports InvalidArgument/already-registered — both mean the
  // record is now escrowed exactly once.
  const std::string dir = UniqueDir("fsync_retry");
  auto opened = DurableRegistry::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status();
  FaultInjector::Global().FailNextHits("wal/fsync", 1);
  ASSERT_FALSE(opened.value()->Register("retry-me", KeyFor(0)).ok());
  FaultInjector::Global().Disarm();
  // In-process, the in-memory state never applied the record, so the
  // retry succeeds and the WAL now holds it twice — which recovery
  // must collapse to one registration.
  ASSERT_TRUE(opened.value()->Register("retry-me", KeyFor(0)).ok());
  opened.value().reset();
  auto recovered = DurableRegistry::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value()->size(), 1u);
  EXPECT_EQ(recovered.value()->open_stats().records_replayed +
                recovered.value()->open_stats().duplicates_skipped,
            2u);
  RemoveDir(dir);
}

#endif  // FREQYWM_FAULT_INJECTION

}  // namespace
}  // namespace freqywm
