#include "analysis/registry.h"

#include <gtest/gtest.h>

#include "attacks/destroy.h"
#include "core/watermark.h"
#include "datagen/power_law.h"

namespace freqywm {
namespace {

WatermarkSecrets MakeSecrets(uint64_t seed) {
  WatermarkSecrets s;
  s.r = GenerateSecret(256, seed);
  s.z = 131;
  s.pairs = {{"tk" + std::to_string(seed), "tk_other"}};
  return s;
}

TEST(RegistryTest, RegisterAndEnumerate) {
  FingerprintRegistry registry;
  ASSERT_TRUE(registry.Register("buyer-a", MakeSecrets(1)).ok());
  ASSERT_TRUE(registry.Register("buyer-b", MakeSecrets(2)).ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.records()[0].buyer_id, "buyer-a");
}

TEST(RegistryTest, RejectsDuplicatesAndBadIds) {
  FingerprintRegistry registry;
  ASSERT_TRUE(registry.Register("buyer-a", MakeSecrets(1)).ok());
  EXPECT_EQ(registry.Register("buyer-a", MakeSecrets(2)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("", MakeSecrets(3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("two\nlines", MakeSecrets(4)).code(),
            StatusCode::kInvalidArgument);
}

TEST(RegistryTest, SerializeDeserializeRoundTrip) {
  FingerprintRegistry registry;
  ASSERT_TRUE(registry.Register("acme analytics", MakeSecrets(1)).ok());
  ASSERT_TRUE(registry.Register("hedge-fund-42", MakeSecrets(2)).ok());
  auto parsed = FingerprintRegistry::Deserialize(registry.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value().records()[0].buyer_id, "acme analytics");
  EXPECT_EQ(parsed.value().records()[0].secrets,
            registry.records()[0].secrets);
}

TEST(RegistryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FingerprintRegistry::Deserialize("nope").ok());
  EXPECT_FALSE(
      FingerprintRegistry::Deserialize("freqywm-registry v1\nrecords x\n")
          .ok());
  FingerprintRegistry registry;
  ASSERT_TRUE(registry.Register("a", MakeSecrets(1)).ok());
  std::string text = registry.Serialize();
  text.resize(text.size() / 2);  // truncate mid-secrets
  EXPECT_FALSE(FingerprintRegistry::Deserialize(text).ok());
}

TEST(RegistryTest, TraceIdentifiesLeakingBuyer) {
  Rng rng(5);
  PowerLawSpec spec;
  spec.num_tokens = 300;
  spec.sample_size = 300000;
  spec.alpha = 0.6;
  Histogram master = GeneratePowerLawHistogram(spec, rng);

  FingerprintRegistry registry;
  std::vector<Histogram> delivered;
  for (int buyer = 0; buyer < 3; ++buyer) {
    GenerateOptions o;
    o.budget_percent = 2.0;
    o.modulus_bound = 67;
    o.min_modulus = 16;
    // Fingerprint hygiene: every pair must have been at least 12 steps
    // from alignment in the master, so a foreign buyer's copy cannot pass
    // the t = 5 trace below by proximity.
    o.min_pair_cost = 12;
    o.seed = 100 + static_cast<uint64_t>(buyer);
    auto r = WatermarkGenerator(o).GenerateFromHistogram(master);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(registry
                    .Register("buyer-" + std::to_string(buyer),
                              r.value().report.secrets)
                    .ok());
    delivered.push_back(std::move(r.value().watermarked));
  }

  // Buyer 1 leaks a noise-disguised copy.
  Rng pirate_rng(9);
  Histogram pirated =
      DestroyAttackPercentOfBoundary(delivered[1], 4.0, pirate_rng);

  DetectOptions d;
  d.pair_threshold = 5;
  d.symmetric_residue = true;
  d.min_pairs = std::max<size_t>(
      1, registry.records()[1].secrets.pairs.size() / 2);
  auto matches = registry.Trace(pirated, d);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].buyer_id, "buyer-1");
}

TEST(RegistryTest, TraceOnUnrelatedDataFindsNothing) {
  Rng rng(6);
  PowerLawSpec spec;
  spec.num_tokens = 300;
  spec.sample_size = 300000;
  spec.alpha = 0.6;
  Histogram master = GeneratePowerLawHistogram(spec, rng);

  FingerprintRegistry registry;
  GenerateOptions o;
  o.budget_percent = 2.0;
  o.modulus_bound = 67;
  o.min_modulus = 16;
  o.seed = 7;
  auto r = WatermarkGenerator(o).GenerateFromHistogram(master);
  ASSERT_TRUE(r.ok());
  size_t pairs = r.value().report.secrets.pairs.size();
  ASSERT_TRUE(registry.Register("only-buyer",
                                std::move(r.value().report.secrets))
                  .ok());

  Rng rng2(8);
  spec.alpha = 0.9;
  Histogram unrelated = GeneratePowerLawHistogram(spec, rng2);
  DetectOptions d;
  d.pair_threshold = 0;
  d.min_pairs = std::max<size_t>(1, pairs / 2);
  EXPECT_TRUE(registry.Trace(unrelated, d).empty());
}

}  // namespace
}  // namespace freqywm
